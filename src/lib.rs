//! # gbgcn-repro
//!
//! Umbrella crate for the pure-Rust reproduction of *"Group-Buying
//! Recommendation for Social E-Commerce"* (GBGCN, ICDE 2021).
//!
//! Re-exports the public API of every workspace crate so downstream users
//! (and the examples / integration tests in this repository) can depend on a
//! single crate:
//!
//! ```
//! use gbgcn_repro::prelude::*;
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

pub use gb_autograd as autograd;
pub use gb_core as gbgcn;
pub use gb_data as data;
pub use gb_eval as eval;
pub use gb_graph as graph;
pub use gb_models as models;
pub use gb_serve as serve;
pub use gb_tensor as tensor;

/// Most-used items across the workspace, for glob import.
pub mod prelude {
    pub use gb_autograd::{AdamConfig, ParamStore, Tape};
    pub use gb_core::{GbgcnConfig, GbgcnModel};
    pub use gb_data::{Dataset, GroupBehavior, NegativeSampler, Split, SynthConfig, TestInstance};
    pub use gb_eval::{EvalProtocol, RankingMetrics, Scorer};
    pub use gb_graph::{BitMatrix, HeteroGraphs};
    pub use gb_models::{EmbeddingSnapshot, Recommender, SnapshotSource};
    pub use gb_serve::{QueryEngine, RecommendService, ScoredItem};
    pub use gb_tensor::Matrix;
}
