//! Shared training infrastructure for all recommenders.

use gb_autograd::{Tape, Var};
use gb_data::Dataset;
use gb_eval::Scorer;
use gb_tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Hyper-parameters shared by every model in the comparison.
///
/// Matches the experimental settings of Sec. IV-A.2: embedding size 32,
/// negative-sampling ratio 1:1, mini-batches, Xavier initialization. The
/// epoch budget defaults to a scaled-down value suitable for the synthetic
/// dataset (the paper trains 500 epochs on the full Beibei data; the
/// experiment binaries override this per run).
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Embedding size `d` (the paper fixes 32 for all methods).
    pub dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size (the paper uses 4096; scaled datasets use less).
    pub batch_size: usize,
    /// Negative samples per observed interaction (paper: 1).
    pub neg_ratio: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// L2 regularization coefficient applied to batch embeddings.
    pub l2: f32,
    /// RNG seed controlling init, shuffling, and negative sampling.
    pub seed: u64,
    /// Print per-epoch loss to stderr.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            dim: 32,
            epochs: 30,
            batch_size: 1024,
            neg_ratio: 1,
            lr: 5e-3,
            l2: 1e-5,
            seed: 42,
            verbose: false,
        }
    }
}

impl TrainConfig {
    /// Config with a different epoch budget.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Config with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Summary of one training run.
#[derive(Clone, Copy, Debug)]
pub struct TrainReport {
    /// Epochs executed.
    pub epochs: usize,
    /// Mean wall-clock seconds per epoch.
    pub mean_epoch_secs: f64,
    /// Mean loss of the final epoch.
    pub final_loss: f32,
}

/// A trainable, evaluatable recommender.
///
/// `fit` consumes the *training* split; scoring afterwards goes through
/// [`gb_eval::Scorer`], reading cached post-training embeddings.
pub trait Recommender: Scorer {
    /// Display name used in the experiment tables.
    fn name(&self) -> &str;

    /// Trains on `train`, returning timing/loss telemetry.
    fn fit(&mut self, train: &Dataset) -> TrainReport;
}

/// Yields shuffled mini-batches of indices `0..n`.
pub fn shuffled_batches(n: usize, batch_size: usize, rng: &mut StdRng) -> Vec<Vec<usize>> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    idx.chunks(batch_size.max(1)).map(|c| c.to_vec()).collect()
}

/// BPR loss `-mean(ln σ(pos - neg))` over aligned `n x 1` score columns
/// (Rendle et al. [27], the loss the paper uses for most baselines).
pub fn bpr_loss(tape: &mut Tape, pos: Var, neg: Var) -> Var {
    let diff = tape.sub(pos, neg);
    let ls = tape.log_sigmoid(diff);
    let mean = tape.mean_all(ls);
    tape.scale(mean, -1.0)
}

/// BPR loss of one shard of a batch: `-(Σ ln σ(pos - neg)) / denom`,
/// where `denom` is the *full* batch's pair count.
///
/// Keeping the parent batch's normalizer makes shard losses sum to the
/// full-batch [`bpr_loss`] (up to float association), and for a shard
/// spanning the whole batch the gradient is bit-identical to
/// `bpr_loss`'s — `x * (1/n)` negated and `x * (-(1/n))` are the same
/// IEEE value, so the serial paths of the sharded trainers reproduce the
/// legacy recipe exactly.
pub fn sharded_bpr_loss(tape: &mut Tape, pos: Var, neg: Var, denom: usize) -> Var {
    let diff = tape.sub(pos, neg);
    let ls = tape.log_sigmoid(diff);
    let sum = tape.sum_all(ls);
    tape.scale(sum, -1.0 / denom.max(1) as f32)
}

/// Adds `coef * Σ sum_sq(vars) / denom` to `loss` — the standard
/// batch-embedding L2 penalty.
pub fn add_l2(tape: &mut Tape, loss: Var, vars: &[Var], coef: f32, denom: usize) -> Var {
    if coef == 0.0 || vars.is_empty() {
        return loss;
    }
    let mut acc: Option<Var> = None;
    for &v in vars {
        let sq = tape.sum_sq(v);
        acc = Some(match acc {
            Some(a) => tape.add(a, sq),
            None => sq,
        });
    }
    let scaled = tape.scale(acc.expect("non-empty vars"), coef / denom.max(1) as f32);
    tape.add(loss, scaled)
}

/// Plain dot-product scoring of `items` for one user row — the shared
/// fast path for every cached-embedding scorer.
///
/// Goes through the lane-blocked [`gb_tensor::kernels::dot`], the same
/// accumulation `gb-serve`'s `blend_dot_block` uses, so offline scores
/// stay bit-identical to served scores.
pub fn dot_scores(user_emb: &[f32], item_table: &Matrix, items: &[u32]) -> Vec<f32> {
    items
        .iter()
        .map(|&i| gb_tensor::kernels::dot(user_emb, item_table.row(i as usize)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_autograd::ParamStore;
    use rand::SeedableRng;

    #[test]
    fn batches_cover_all_indices_once() {
        let mut rng = StdRng::seed_from_u64(0);
        let batches = shuffled_batches(10, 3, &mut rng);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn batch_sizes_respect_limit() {
        let mut rng = StdRng::seed_from_u64(0);
        let batches = shuffled_batches(10, 4, &mut rng);
        assert_eq!(batches.len(), 3);
        assert!(batches.iter().all(|b| b.len() <= 4));
    }

    #[test]
    fn bpr_loss_decreases_with_margin() {
        // Larger positive margin => smaller loss.
        let mut store = ParamStore::new();
        let small = store.add("small", Matrix::from_vec(2, 1, vec![0.1, 0.1]));
        let large = store.add("large", Matrix::from_vec(2, 1, vec![3.0, 3.0]));
        let zero = store.add("zero", Matrix::zeros(2, 1));

        let mut t = Tape::new();
        let s = t.param(&store, small);
        let l = t.param(&store, large);
        let z = t.param(&store, zero);
        let loss_small = bpr_loss(&mut t, s, z);
        let loss_large = bpr_loss(&mut t, l, z);
        assert!(t.value(loss_large).get(0, 0) < t.value(loss_small).get(0, 0));
    }

    #[test]
    fn sharded_bpr_full_span_matches_bpr_gradient_bitwise() {
        let mut store = ParamStore::new();
        let p = store.add("pos", Matrix::from_vec(3, 1, vec![0.4, -0.2, 1.3]));
        let n = store.add("neg", Matrix::from_vec(3, 1, vec![0.1, 0.5, -0.7]));

        let mut t1 = Tape::new();
        let (pv, nv) = (t1.param(&store, p), t1.param(&store, n));
        let legacy = bpr_loss(&mut t1, pv, nv);
        let g1 = t1.backward(legacy, &store);

        let mut t2 = Tape::new();
        let (pv, nv) = (t2.param(&store, p), t2.param(&store, n));
        let sharded = sharded_bpr_loss(&mut t2, pv, nv, 3);
        let g2 = t2.backward(sharded, &store);

        for id in [p, n] {
            assert_eq!(
                g1.get(id).unwrap().as_slice(),
                g2.get(id).unwrap().as_slice()
            );
        }
    }

    #[test]
    fn l2_penalty_scales_with_coef() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::full(2, 2, 2.0)); // sum_sq = 16
        let mut t = Tape::new();
        let wv = t.param(&store, w);
        let zero = t.constant(Matrix::zeros(1, 1));
        let with_l2 = add_l2(&mut t, zero, &[wv], 0.5, 4);
        assert!((t.value(with_l2).get(0, 0) - 2.0).abs() < 1e-6); // 0.5*16/4
        let no_l2 = add_l2(&mut t, zero, &[wv], 0.0, 4);
        assert_eq!(t.value(no_l2).get(0, 0), 0.0);
    }

    #[test]
    fn dot_scores_match_manual() {
        let table = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let scores = dot_scores(&[2.0, 3.0], &table, &[0, 1, 2]);
        assert_eq!(scores, vec![2.0, 3.0, 5.0]);
    }
}
