//! AGREE [19]: attentive group recommendation, on the paper's group
//! conversion of the group-buying data.

use crate::common::{add_l2, shuffled_batches, Recommender, TrainConfig, TrainReport};
use gb_autograd::{Adam, AdamConfig, ParamId, ParamStore, Tape, Var};
use gb_data::convert::{to_groups, GroupData};
use gb_data::{Dataset, NegativeSampler};
use gb_eval::Scorer;
use gb_tensor::{init, kernels, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// AGREE aggregates member embeddings into a group embedding with an
/// item-conditioned attention gate, adds a learned group-preference
/// embedding, and scores the target item against the result. As the paper
/// prescribes, it trains with the **regression-based pairwise loss**
/// `(ŷ_pos − ŷ_neg − 1)²`, which the paper identifies as one reason the
/// group recommenders trail BPR-trained baselines on this task.
///
/// Faithfulness note (documented in DESIGN.md): the original softmax
/// attention over variable-size member sets is replaced by a sigmoid
/// gate followed by mean aggregation. On Beibei-like sparsity the paper
/// itself observes that "attention mechanisms do not work due to the data
/// sparsity problem", and the gate preserves the item-conditioned,
/// member-weighted structure that defines the model family.
pub struct Agree {
    cfg: TrainConfig,
    state: Option<AgreeState>,
}

struct AgreeState {
    store: ParamStore,
    user_emb: ParamId,
    item_emb: ParamId,
    group_pref: ParamId,
    att_w: ParamId,
    att_b: ParamId,
    groups: GroupData,
}

impl Agree {
    /// Creates an untrained AGREE model.
    pub fn new(cfg: TrainConfig) -> Self {
        Self { cfg, state: None }
    }

    /// Tape forward: group scores for aligned `(group, item)` lists.
    ///
    /// `flat_members` / `offsets` is the CSR layout of the batch groups'
    /// member lists; `items_per_member` repeats each entry's item for each
    /// of its members.
    #[allow(clippy::too_many_arguments)]
    fn forward(
        s: &AgreeState,
        tape: &mut Tape,
        groups: &[u32],
        items: &[u32],
        flat_members: Arc<Vec<u32>>,
        items_per_member: Arc<Vec<u32>>,
        offsets: Arc<Vec<usize>>,
    ) -> (Var, Vec<Var>) {
        let n_edges = flat_members.len();
        let mem = tape.gather_param(&s.store, s.user_emb, flat_members);
        let itm_edge = tape.gather_param(&s.store, s.item_emb, items_per_member);
        let att_in = tape.concat_cols(&[mem, itm_edge]);
        let w = tape.param(&s.store, s.att_w);
        let b = tape.param(&s.store, s.att_b);
        let att_lin = tape.matmul(att_in, w);
        let att_logit = tape.add_bias(att_lin, b);
        let gate = tape.sigmoid(att_logit);
        let gated = tape.scale_rows(mem, gate);
        // Segment i of the flattened edge rows is exactly rows
        // offsets[i]..offsets[i+1], so the member list is the identity.
        let ident: Arc<Vec<u32>> = Arc::new((0..n_edges as u32).collect());
        let agg = tape.segment_mean(gated, offsets, ident);

        let pref = tape.gather_param(&s.store, s.group_pref, Arc::new(groups.to_vec()));
        let group_repr = tape.add(agg, pref);
        let item_repr = tape.gather_param(&s.store, s.item_emb, Arc::new(items.to_vec()));
        let score = tape.rowwise_dot(group_repr, item_repr);
        (score, vec![mem, item_repr, pref])
    }

    /// Flattens member lists of the given groups into CSR form.
    fn flatten(
        groups: &GroupData,
        group_ids: &[u32],
        items: &[u32],
    ) -> (Vec<u32>, Vec<u32>, Vec<usize>) {
        let mut flat = Vec::new();
        let mut per_member_items = Vec::new();
        let mut offsets = vec![0usize];
        for (&g, &it) in group_ids.iter().zip(items) {
            let members = &groups.members[g as usize];
            flat.extend_from_slice(members);
            per_member_items.extend(std::iter::repeat_n(it, members.len()));
            offsets.push(flat.len());
        }
        (flat, per_member_items, offsets)
    }
}

impl Recommender for Agree {
    fn name(&self) -> &str {
        "AGREE"
    }

    fn fit(&mut self, train: &Dataset) -> TrainReport {
        let cfg = self.cfg.clone();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let groups = to_groups(train);

        let mut store = ParamStore::new();
        let d = cfg.dim;
        let user_emb = store.add(
            "agree.user",
            init::xavier_uniform(train.n_users(), d, &mut rng),
        );
        let item_emb = store.add(
            "agree.item",
            init::xavier_uniform(train.n_items(), d, &mut rng),
        );
        let group_pref = store.add(
            "agree.group",
            init::xavier_uniform(train.n_users(), d, &mut rng),
        );
        let att_w = store.add("agree.att.w", init::xavier_uniform(2 * d, 1, &mut rng));
        let att_b = store.add("agree.att.b", Matrix::zeros(1, 1));
        let mut adam = Adam::new(AdamConfig::with_lr(cfg.lr), &store);

        let mut state = AgreeState {
            store,
            user_emb,
            item_emb,
            group_pref,
            att_w,
            att_b,
            groups,
        };
        let sampler = NegativeSampler::from_dataset(train);
        let activities = state.groups.group_items.clone();

        let mut final_loss = 0.0f32;
        let start = Instant::now();
        for epoch in 0..cfg.epochs {
            let mut epoch_loss = 0.0f32;
            let mut n_batches = 0usize;
            for batch in shuffled_batches(activities.len(), cfg.batch_size, &mut rng) {
                let mut gids = Vec::new();
                let mut pos = Vec::new();
                let mut neg = Vec::new();
                for idx in batch {
                    let (g, item) = activities[idx];
                    for _ in 0..cfg.neg_ratio.max(1) {
                        gids.push(g);
                        pos.push(item);
                        neg.push(sampler.sample_one(g, &mut rng));
                    }
                }
                let n = gids.len();

                let mut tape = Tape::new();
                let (flat_p, ipm_p, off_p) = Self::flatten(&state.groups, &gids, &pos);
                let (pos_s, mut reg) = Self::forward(
                    &state,
                    &mut tape,
                    &gids,
                    &pos,
                    Arc::new(flat_p),
                    Arc::new(ipm_p),
                    Arc::new(off_p),
                );
                let (flat_n, ipm_n, off_n) = Self::flatten(&state.groups, &gids, &neg);
                let (neg_s, reg_n) = Self::forward(
                    &state,
                    &mut tape,
                    &gids,
                    &neg,
                    Arc::new(flat_n),
                    Arc::new(ipm_n),
                    Arc::new(off_n),
                );
                reg.extend(reg_n);

                // Regression-based pairwise loss: mean((pos - neg - 1)^2).
                let diff = tape.sub(pos_s, neg_s);
                let ones = tape.constant(Matrix::full(n, 1, 1.0));
                let shifted = tape.sub(diff, ones);
                let sq = tape.mul(shifted, shifted);
                let loss = tape.mean_all(sq);
                let loss = add_l2(&mut tape, loss, &reg, cfg.l2, n);

                epoch_loss += tape.value(loss).get(0, 0);
                n_batches += 1;
                let grads = tape.backward(loss, &state.store);
                adam.step(&mut state.store, &grads);
            }
            final_loss = epoch_loss / n_batches.max(1) as f32;
            if cfg.verbose {
                eprintln!("[AGREE] epoch {epoch}: loss {final_loss:.4}");
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        self.state = Some(state);
        TrainReport {
            epochs: cfg.epochs,
            mean_epoch_secs: elapsed / cfg.epochs.max(1) as f64,
            final_loss,
        }
    }
}

impl Scorer for Agree {
    /// Test-time scoring follows the paper's protocol: "replace each user
    /// with the group corresponding to the user" — group ids coincide with
    /// user ids in the conversion.
    fn score_items(&self, user: u32, items: &[u32]) -> Vec<f32> {
        let s = self.state.as_ref().expect("model not fitted");
        let members = &s.groups.members[user as usize];
        let mem_emb = kernels::gather_rows(s.store.value(s.user_emb), members);
        let pref = s.store.value(s.group_pref).row(user as usize);
        let w = s.store.value(s.att_w);
        let b = s.store.value(s.att_b).get(0, 0);

        items
            .iter()
            .map(|&item| {
                let item_row = s.store.value(s.item_emb).row(item as usize);
                // Gate each member on this item, mean-aggregate, add pref.
                let dcols = mem_emb.cols();
                let mut agg = vec![0.0f32; dcols];
                for r in 0..mem_emb.rows() {
                    let m = mem_emb.row(r);
                    let mut logit = b;
                    for (k, &mv) in m.iter().enumerate() {
                        logit += mv * w.get(k, 0);
                    }
                    for (k, &iv) in item_row.iter().enumerate() {
                        logit += iv * w.get(dcols + k, 0);
                    }
                    let gate = kernels::sigmoid_scalar(logit);
                    for (a, &mv) in agg.iter_mut().zip(m) {
                        *a += gate * mv;
                    }
                }
                let inv = 1.0 / mem_emb.rows().max(1) as f32;
                let mut score = 0.0f32;
                for k in 0..dcols {
                    score += (agg[k] * inv + pref[k]) * item_row[k];
                }
                score
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_data::GroupBehavior;

    fn toy() -> Dataset {
        let behaviors = vec![
            GroupBehavior::new(0, 0, vec![1]),
            GroupBehavior::new(0, 1, vec![1]),
            GroupBehavior::new(2, 2, vec![3]),
            GroupBehavior::new(2, 3, vec![3]),
        ];
        Dataset::new(4, 4, behaviors, vec![(0, 1), (2, 3)], vec![1; 4])
    }

    #[test]
    fn learns_group_preferences() {
        let cfg = TrainConfig {
            dim: 8,
            epochs: 200,
            batch_size: 8,
            lr: 0.03,
            ..Default::default()
        };
        let mut m = Agree::new(cfg);
        m.fit(&toy());
        let s = m.score_items(0, &[0, 1, 2, 3]);
        assert!(s[0] > s[2] && s[1] > s[3], "scores {s:?}");
    }

    #[test]
    fn tape_and_plain_scoring_agree() {
        let cfg = TrainConfig {
            dim: 8,
            epochs: 2,
            batch_size: 4,
            ..Default::default()
        };
        let mut m = Agree::new(cfg);
        m.fit(&toy());
        let s = m.state.as_ref().unwrap();
        let gids = vec![0u32];
        let items = vec![2u32];
        let (flat, ipm, off) = Agree::flatten(&s.groups, &gids, &items);
        let mut tape = Tape::new();
        let (score, _) = Agree::forward(
            s,
            &mut tape,
            &gids,
            &items,
            Arc::new(flat),
            Arc::new(ipm),
            Arc::new(off),
        );
        let tape_score = tape.value(score).get(0, 0);
        let plain_score = m.score_items(0, &[2])[0];
        assert!(
            (tape_score - plain_score).abs() < 1e-5,
            "tape {tape_score} vs plain {plain_score}"
        );
    }

    #[test]
    fn failed_behaviors_do_not_create_group_activities() {
        // A dataset whose only behavior fails: AGREE has nothing to train
        // on but must not panic.
        let d = Dataset::new(
            2,
            2,
            vec![GroupBehavior::new(0, 0, vec![])],
            vec![(0, 1)],
            vec![1; 2],
        );
        let cfg = TrainConfig {
            dim: 4,
            epochs: 2,
            ..Default::default()
        };
        let mut m = Agree::new(cfg);
        let report = m.fit(&d);
        assert_eq!(report.epochs, 2);
        assert!(m.score_items(0, &[0, 1]).iter().all(|s| s.is_finite()));
    }
}
