//! Matrix factorization with BPR (the paper's `MF` and `MF(oi)` rows).

use crate::common::{
    add_l2, dot_scores, sharded_bpr_loss, shuffled_batches, Recommender, TrainConfig, TrainReport,
};
use gb_autograd::{shard_spans, Adam, AdamConfig, ParamStore, ShardExecutor, Tape};
use gb_data::convert::{to_pairs, InteractionKind};
use gb_data::{Dataset, NegativeSampler};
use gb_eval::Scorer;
use gb_tensor::{init, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// BPR matrix factorization [38], [27].
///
/// The conversion `kind` selects between the paper's two ways of
/// flattening group-buying records into user–item interactions:
/// [`InteractionKind::InitiatorOnly`] is the `MF(oi)` row of Table III,
/// [`InteractionKind::BothRoles`] the stronger `MF` row.
pub struct Mf {
    cfg: TrainConfig,
    kind: InteractionKind,
    name: String,
    user_emb: Matrix,
    item_emb: Matrix,
}

impl Mf {
    /// Creates an untrained MF model.
    pub fn new(cfg: TrainConfig, kind: InteractionKind) -> Self {
        let name = match kind {
            InteractionKind::InitiatorOnly => "MF(oi)".to_string(),
            InteractionKind::BothRoles => "MF".to_string(),
        };
        Self {
            cfg,
            kind,
            name,
            user_emb: Matrix::zeros(0, 0),
            item_emb: Matrix::zeros(0, 0),
        }
    }

    /// The trained user embedding table (`P x d`).
    pub fn user_embeddings(&self) -> &Matrix {
        &self.user_emb
    }

    /// The trained item embedding table (`Q x d`).
    pub fn item_embeddings(&self) -> &Matrix {
        &self.item_emb
    }

    /// Sharded-parallel training: every mini-batch (negatives sampled on
    /// the calling thread) is split into `n_shards` contiguous spans
    /// whose gradients are computed on `executor`'s threads and reduced
    /// in fixed shard order before one Adam step.
    ///
    /// [`Recommender::fit`] is exactly `fit_sharded(train, 1,
    /// &ShardExecutor::serial())`; for a fixed shard count, every thread
    /// count produces bit-identical embeddings.
    pub fn fit_sharded(
        &mut self,
        train: &Dataset,
        n_shards: usize,
        executor: &ShardExecutor,
    ) -> TrainReport {
        let cfg = self.cfg.clone();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let u = store.add(
            "mf.user",
            init::xavier_uniform(train.n_users(), cfg.dim, &mut rng),
        );
        let v = store.add(
            "mf.item",
            init::xavier_uniform(train.n_items(), cfg.dim, &mut rng),
        );
        let mut adam = Adam::new(AdamConfig::with_lr(cfg.lr), &store);

        let pairs = to_pairs(train, self.kind);
        let sampler = NegativeSampler::from_dataset(train);

        let mut final_loss = 0.0f32;
        let start = Instant::now();
        for epoch in 0..cfg.epochs {
            let mut epoch_loss = 0.0f32;
            let mut n_batches = 0usize;
            for batch in shuffled_batches(pairs.len(), cfg.batch_size, &mut rng) {
                let mut users = Vec::with_capacity(batch.len() * cfg.neg_ratio);
                let mut pos = Vec::with_capacity(users.capacity());
                let mut neg = Vec::with_capacity(users.capacity());
                for idx in batch {
                    let (usr, item) = pairs[idx];
                    for _ in 0..cfg.neg_ratio.max(1) {
                        users.push(usr);
                        pos.push(item);
                        neg.push(sampler.sample_one(usr, &mut rng));
                    }
                }
                let n = users.len();
                // Empty-batch fast path: a zero-example batch has nothing
                // to shard — never build tapes or touch the worker pool
                // (`shard_spans(0, n)` is an empty decomposition).
                if n == 0 {
                    continue;
                }

                let spans = shard_spans(n, n_shards);
                // Per-span index vectors are built once on the calling
                // thread; worker closures only clone `Arc`s instead of
                // re-slicing the batch vectors per gradient call.
                let shard_idx: Vec<[Arc<Vec<u32>>; 3]> = spans
                    .iter()
                    .map(|&(a, b)| {
                        [
                            Arc::new(users[a..b].to_vec()),
                            Arc::new(pos[a..b].to_vec()),
                            Arc::new(neg[a..b].to_vec()),
                        ]
                    })
                    .collect();
                let (loss, grads) = executor.accumulate(store.len(), spans.len(), |s| {
                    let [shard_users, shard_pos, shard_neg] = &shard_idx[s];
                    let mut tape = Tape::new();
                    let ue = tape.gather_param(&store, u, Arc::clone(shard_users));
                    let pe = tape.gather_param(&store, v, Arc::clone(shard_pos));
                    let ne = tape.gather_param(&store, v, Arc::clone(shard_neg));
                    let pos_s = tape.rowwise_dot(ue, pe);
                    let neg_s = tape.rowwise_dot(ue, ne);
                    let loss = sharded_bpr_loss(&mut tape, pos_s, neg_s, n);
                    let loss = add_l2(&mut tape, loss, &[ue, pe, ne], cfg.l2, n);
                    (tape.value(loss).get(0, 0), tape.backward(loss, &store))
                });
                epoch_loss += loss;
                n_batches += 1;
                adam.step(&mut store, &grads);
            }
            final_loss = epoch_loss / n_batches.max(1) as f32;
            if cfg.verbose {
                eprintln!("[{}] epoch {epoch}: loss {final_loss:.4}", self.name);
            }
        }
        let elapsed = start.elapsed().as_secs_f64();

        self.user_emb = store.value(u).clone();
        self.item_emb = store.value(v).clone();
        TrainReport {
            epochs: cfg.epochs,
            mean_epoch_secs: elapsed / cfg.epochs.max(1) as f64,
            final_loss,
        }
    }
}

impl Recommender for Mf {
    fn name(&self) -> &str {
        &self.name
    }

    fn fit(&mut self, train: &Dataset) -> TrainReport {
        self.fit_sharded(train, 1, &ShardExecutor::serial())
    }
}

impl Scorer for Mf {
    fn score_items(&self, user: u32, items: &[u32]) -> Vec<f32> {
        dot_scores(self.user_emb.row(user as usize), &self.item_emb, items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_data::synth::{generate, SynthConfig};
    use gb_data::GroupBehavior;

    #[test]
    fn learns_to_separate_observed_from_unobserved() {
        // Two users with disjoint tastes; MF must rank own items higher.
        let behaviors = vec![
            GroupBehavior::new(0, 0, vec![]),
            GroupBehavior::new(0, 1, vec![]),
            GroupBehavior::new(1, 2, vec![]),
            GroupBehavior::new(1, 3, vec![]),
        ];
        let d = Dataset::new(2, 4, behaviors, vec![(0, 1)], vec![1; 4]);
        let cfg = TrainConfig {
            dim: 8,
            epochs: 200,
            batch_size: 8,
            lr: 0.05,
            ..Default::default()
        };
        let mut mf = Mf::new(cfg, InteractionKind::BothRoles);
        mf.fit(&d);
        let s = mf.score_items(0, &[0, 1, 2, 3]);
        assert!(s[0] > s[2] && s[0] > s[3], "scores {s:?}");
        assert!(s[1] > s[2] && s[1] > s[3], "scores {s:?}");
    }

    #[test]
    fn oi_variant_ignores_participant_interactions() {
        // User 1 only ever participates; in (oi) its row gets no positive
        // signal, so training must not crash and scores stay finite.
        let behaviors = vec![GroupBehavior::new(0, 0, vec![1]); 3];
        let d = Dataset::new(2, 3, behaviors, vec![(0, 1)], vec![1; 3]);
        let cfg = TrainConfig {
            dim: 4,
            epochs: 5,
            batch_size: 4,
            ..Default::default()
        };
        let mut mf = Mf::new(cfg, InteractionKind::InitiatorOnly);
        let report = mf.fit(&d);
        assert!(report.final_loss.is_finite());
        assert!(mf.score_items(1, &[0, 1, 2]).iter().all(|s| s.is_finite()));
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let d = generate(&SynthConfig::tiny());
        let cfg = TrainConfig {
            dim: 8,
            epochs: 2,
            ..Default::default()
        };
        let mut a = Mf::new(cfg.clone(), InteractionKind::BothRoles);
        let mut b = Mf::new(cfg, InteractionKind::BothRoles);
        a.fit(&d);
        b.fit(&d);
        assert_eq!(a.user_embeddings(), b.user_embeddings());
        assert_eq!(a.item_embeddings(), b.item_embeddings());
    }

    #[test]
    fn zero_pair_dataset_never_reaches_the_pool() {
        // No behaviors at all: every epoch is a zero-example epoch. The
        // empty-batch fast path must keep the worker pool completely idle
        // and still produce a usable (untrained) model.
        let d = Dataset::new(2, 3, vec![], vec![(0, 1)], vec![1; 3]);
        let cfg = TrainConfig {
            dim: 4,
            epochs: 3,
            ..Default::default()
        };
        let mut mf = Mf::new(cfg, InteractionKind::BothRoles);
        let executor = ShardExecutor::new(4);
        let report = mf.fit_sharded(&d, 4, &executor);
        assert_eq!(executor.jobs_dispatched(), 0, "empty epochs woke the pool");
        assert_eq!(report.final_loss, 0.0);
        assert!(mf.score_items(1, &[0, 1, 2]).iter().all(|s| s.is_finite()));
    }

    #[test]
    fn names_distinguish_conversions() {
        let a = Mf::new(TrainConfig::default(), InteractionKind::InitiatorOnly);
        let b = Mf::new(TrainConfig::default(), InteractionKind::BothRoles);
        assert_eq!(a.name(), "MF(oi)");
        assert_eq!(b.name(), "MF");
    }
}
