//! GBMF: the paper's purpose-built group-buying matrix factorization
//! baseline (the strongest baseline in Table III).

use crate::common::{
    add_l2, sharded_bpr_loss, shuffled_batches, Recommender, TrainConfig, TrainReport,
};
use gb_autograd::{shard_spans, Adam, AdamConfig, ParamStore, ShardExecutor, Tape, Var};
use gb_data::{Dataset, NegativeSampler};
use gb_eval::Scorer;
use gb_graph::Csr;
use gb_tensor::{init, kernels, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// GBMF configuration: the shared hyper-parameters plus the role
/// coefficient `α` of the Eq. 9-style prediction.
#[derive(Clone, Debug)]
pub struct GbmfConfig {
    /// Shared training hyper-parameters.
    pub base: TrainConfig,
    /// Role coefficient balancing initiator vs. participant interest.
    pub alpha: f32,
}

impl Default for GbmfConfig {
    fn default() -> Self {
        Self {
            base: TrainConfig::default(),
            alpha: 0.5,
        }
    }
}

/// GBMF scores a launch as the paper describes: a weighted sum of the
/// initiator's own dot-product interest and the mean of their friends'
/// interest in the item,
/// `y_mn = (1-α) u_m·v_n + α · mean_{f ∈ S(m)} (u_f·v_n)`,
/// trained with BPR over observed launches.
pub struct Gbmf {
    cfg: GbmfConfig,
    user_emb: Matrix,
    item_emb: Matrix,
    /// Per-user mean of friends' embeddings (zero row for loners).
    friend_mean: Matrix,
}

/// Tape-level Eq. 9 score for aligned `(user, item)` lists given the full
/// user table and the friend-mean table.
fn eq9_score(
    tape: &mut Tape,
    u_full: Var,
    friend_mean: Var,
    item_rows: Var,
    users: Arc<Vec<u32>>,
    alpha: f32,
) -> Var {
    let ue = tape.gather(u_full, users.clone());
    let fe = tape.gather(friend_mean, users);
    let own = tape.rowwise_dot(ue, item_rows);
    let social = tape.rowwise_dot(fe, item_rows);
    let own_w = tape.scale(own, 1.0 - alpha);
    let social_w = tape.scale(social, alpha);
    tape.add(own_w, social_w)
}

impl Gbmf {
    /// Creates an untrained GBMF model.
    pub fn new(cfg: GbmfConfig) -> Self {
        Self {
            cfg,
            user_emb: Matrix::zeros(0, 0),
            item_emb: Matrix::zeros(0, 0),
            friend_mean: Matrix::zeros(0, 0),
        }
    }

    /// The role coefficient α.
    pub fn alpha(&self) -> f32 {
        self.cfg.alpha
    }

    /// The trained `(user, item, friend_mean)` tables (empty pre-fit).
    pub fn tables(&self) -> (&Matrix, &Matrix, &Matrix) {
        (&self.user_emb, &self.item_emb, &self.friend_mean)
    }

    /// Sharded-parallel training: every mini-batch (negatives sampled on
    /// the calling thread) is split into `n_shards` contiguous spans
    /// whose gradients are computed on `executor`'s threads and reduced
    /// in fixed shard order before one Adam step. The full-table social
    /// `segment_mean` is identical for every shard, so it is recorded
    /// **once per batch** on a shared forward tape; shards bind
    /// read-only `Arc` views of the user and friend-mean tables via
    /// [`Tape::input`] and their reduced table cotangents seed the
    /// single backward through that shared forward.
    ///
    /// [`Recommender::fit`] is exactly `fit_sharded(train, 1,
    /// &ShardExecutor::serial())`; for a fixed shard count, every thread
    /// count produces bit-identical embeddings.
    pub fn fit_sharded(
        &mut self,
        train: &Dataset,
        n_shards: usize,
        executor: &ShardExecutor,
    ) -> TrainReport {
        let cfg = self.cfg.clone();
        let base = &cfg.base;
        let mut rng = StdRng::seed_from_u64(base.seed);
        let mut store = ParamStore::new();
        let u = store.add(
            "gbmf.user",
            init::xavier_uniform(train.n_users(), base.dim, &mut rng),
        );
        let v = store.add(
            "gbmf.item",
            init::xavier_uniform(train.n_items(), base.dim, &mut rng),
        );
        let mut adam = Adam::new(AdamConfig::with_lr(base.lr), &store);

        // GBMF trains on launches (initiator-item), the task's positives.
        let launches: Vec<(u32, u32)> = train
            .behaviors()
            .iter()
            .map(|b| (b.initiator, b.item))
            .collect();
        let sampler = NegativeSampler::from_dataset(train);
        let social: Csr = train.social().csr().clone();

        let mut final_loss = 0.0f32;
        let start = Instant::now();
        for epoch in 0..base.epochs {
            let mut epoch_loss = 0.0f32;
            let mut n_batches = 0usize;
            for batch in shuffled_batches(launches.len(), base.batch_size, &mut rng) {
                let mut users = Vec::new();
                let mut pos = Vec::new();
                let mut neg = Vec::new();
                for idx in batch {
                    let (usr, item) = launches[idx];
                    for _ in 0..base.neg_ratio.max(1) {
                        users.push(usr);
                        pos.push(item);
                        neg.push(sampler.sample_one(usr, &mut rng));
                    }
                }
                let n = users.len();
                // Empty-batch fast path: nothing to shard, skip the pool.
                if n == 0 {
                    continue;
                }

                let spans = shard_spans(n, n_shards);
                // Shared forward: record the user table and the social
                // segment mean once per batch; shards see them read-only.
                let mut fwd = Tape::new();
                let u_full = fwd.param(&store, u);
                let friend_mean = fwd.segment_mean(u_full, social.offsets(), social.members());
                let tables = [fwd.arc_value(u_full), fwd.arc_value(friend_mean)];
                // Per-span index vectors built once on the calling thread.
                let shard_idx: Vec<[Arc<Vec<u32>>; 3]> = spans
                    .iter()
                    .map(|&(a, b)| {
                        [
                            Arc::new(users[a..b].to_vec()),
                            Arc::new(pos[a..b].to_vec()),
                            Arc::new(neg[a..b].to_vec()),
                        ]
                    })
                    .collect();
                let table_grads: Vec<OnceLock<Vec<Option<Matrix>>>> =
                    (0..spans.len()).map(|_| OnceLock::new()).collect();
                let (loss, mut grads) = executor.accumulate(store.len(), spans.len(), |s| {
                    let [shard_users, shard_pos, shard_neg] = &shard_idx[s];
                    let mut tape = Tape::new();
                    let u_in = tape.input(Arc::clone(&tables[0]));
                    let fm_in = tape.input(Arc::clone(&tables[1]));
                    let pe = tape.gather_param(&store, v, Arc::clone(shard_pos));
                    let ne = tape.gather_param(&store, v, Arc::clone(shard_neg));
                    let pos_s = eq9_score(
                        &mut tape,
                        u_in,
                        fm_in,
                        pe,
                        Arc::clone(shard_users),
                        cfg.alpha,
                    );
                    let neg_s = eq9_score(
                        &mut tape,
                        u_in,
                        fm_in,
                        ne,
                        Arc::clone(shard_users),
                        cfg.alpha,
                    );
                    let loss = sharded_bpr_loss(&mut tape, pos_s, neg_s, n);
                    let ue = tape.gather(u_in, Arc::clone(shard_users));
                    let loss = add_l2(&mut tape, loss, &[ue, pe, ne], base.l2, n);
                    let value = tape.value(loss).get(0, 0);
                    let (g, tg) = tape.backward_with_inputs(loss, &store);
                    assert!(
                        table_grads[s].set(tg).is_ok(),
                        "shard {s} ran twice within one accumulate call"
                    );
                    (value, g)
                });
                // Reduce table cotangents in fixed shard order, then run
                // the single shared backward seeded by the reduction.
                let mut reduced: Vec<Option<Matrix>> = vec![None, None];
                for slot in table_grads {
                    // invariant: `accumulate` runs every shard closure
                    // exactly once before returning, so each slot was
                    // published by the `set` above.
                    let shard_grads = slot
                        .into_inner()
                        .expect("shard table gradients published before accumulate returned");
                    for (acc, g) in reduced.iter_mut().zip(shard_grads) {
                        if let Some(g) = g {
                            match acc {
                                Some(a) => kernels::add_assign(a, &g),
                                slot @ None => *slot = Some(g),
                            }
                        }
                    }
                }
                let seeds: Vec<(Var, Matrix)> = [u_full, friend_mean]
                    .iter()
                    .zip(reduced)
                    .filter_map(|(&var, g)| g.map(|g| (var, g)))
                    .collect();
                if !seeds.is_empty() {
                    grads.merge(fwd.backward_seeded(seeds, &store));
                }
                epoch_loss += loss;
                n_batches += 1;
                adam.step(&mut store, &grads);
            }
            final_loss = epoch_loss / n_batches.max(1) as f32;
            if base.verbose {
                eprintln!("[GBMF] epoch {epoch}: loss {final_loss:.4}");
            }
        }
        let elapsed = start.elapsed().as_secs_f64();

        self.user_emb = store.value(u).clone();
        self.item_emb = store.value(v).clone();
        let (offsets, members) = social.segments();
        self.friend_mean = kernels::segment_mean(&self.user_emb, offsets, members);
        TrainReport {
            epochs: base.epochs,
            mean_epoch_secs: elapsed / base.epochs.max(1) as f64,
            final_loss,
        }
    }
}

impl Recommender for Gbmf {
    fn name(&self) -> &str {
        "GBMF"
    }

    fn fit(&mut self, train: &Dataset) -> TrainReport {
        self.fit_sharded(train, 1, &ShardExecutor::serial())
    }
}

impl Scorer for Gbmf {
    /// Eq. 9 via the lane-blocked [`kernels::dot`] — the identical
    /// accumulation order the serving kernel uses, so exported snapshots
    /// score bit-for-bit like this method.
    fn score_items(&self, user: u32, items: &[u32]) -> Vec<f32> {
        let own = self.user_emb.row(user as usize);
        let social = self.friend_mean.row(user as usize);
        let a = self.cfg.alpha;
        items
            .iter()
            .map(|&i| {
                let row = self.item_emb.row(i as usize);
                let o = kernels::dot(own, row);
                let s = kernels::dot(social, row);
                (1.0 - a) * o + a * s
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_data::GroupBehavior;

    fn toy() -> Dataset {
        let behaviors = vec![
            GroupBehavior::new(0, 0, vec![1]),
            GroupBehavior::new(0, 1, vec![1]),
            GroupBehavior::new(2, 2, vec![3]),
            GroupBehavior::new(2, 3, vec![3]),
        ];
        Dataset::new(4, 4, behaviors, vec![(0, 1), (2, 3)], vec![1; 4])
    }

    #[test]
    fn learns_launch_preferences() {
        let cfg = GbmfConfig {
            base: TrainConfig {
                dim: 8,
                epochs: 200,
                batch_size: 8,
                lr: 0.03,
                ..Default::default()
            },
            alpha: 0.4,
        };
        let mut m = Gbmf::new(cfg);
        m.fit(&toy());
        let s = m.score_items(0, &[0, 1, 2, 3]);
        assert!(s[0] > s[2] && s[1] > s[3], "scores {s:?}");
    }

    #[test]
    fn alpha_zero_equals_pure_dot_product() {
        let cfg = GbmfConfig {
            base: TrainConfig {
                dim: 8,
                epochs: 10,
                batch_size: 8,
                ..Default::default()
            },
            alpha: 0.0,
        };
        let mut m = Gbmf::new(cfg);
        m.fit(&toy());
        let scores = m.score_items(0, &[0, 1]);
        let manual: Vec<f32> = [0u32, 1]
            .iter()
            .map(|&i| {
                m.user_emb
                    .row(0)
                    .iter()
                    .zip(m.item_emb.row(i as usize))
                    .map(|(a, b)| a * b)
                    .sum()
            })
            .collect();
        for (s, e) in scores.iter().zip(&manual) {
            assert!((s - e).abs() < 1e-6);
        }
    }

    #[test]
    fn alpha_one_scores_only_through_friends() {
        let cfg = GbmfConfig {
            base: TrainConfig {
                dim: 8,
                epochs: 10,
                batch_size: 8,
                ..Default::default()
            },
            alpha: 1.0,
        };
        let mut m = Gbmf::new(cfg);
        m.fit(&toy());
        // User 0's friend is user 1, so the score must equal u_1 · v.
        let scores = m.score_items(0, &[2]);
        let manual: f32 = m
            .user_emb
            .row(1)
            .iter()
            .zip(m.item_emb.row(2))
            .map(|(a, b)| a * b)
            .sum();
        assert!((scores[0] - manual).abs() < 1e-6);
    }

    #[test]
    fn loner_with_alpha_one_gets_zero_scores() {
        let d = Dataset::new(
            2,
            2,
            vec![
                GroupBehavior::new(0, 0, vec![]),
                GroupBehavior::new(1, 1, vec![]),
            ],
            vec![], // no friendships at all
            vec![1; 2],
        );
        let cfg = GbmfConfig {
            base: TrainConfig {
                dim: 4,
                epochs: 3,
                ..Default::default()
            },
            alpha: 1.0,
        };
        let mut m = Gbmf::new(cfg);
        m.fit(&d);
        assert!(m.score_items(0, &[0, 1]).iter().all(|&s| s == 0.0));
    }
}
