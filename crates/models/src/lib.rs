//! # gb-models
//!
//! The nine baseline recommenders of the paper's evaluation (Sec. IV-B.1),
//! implemented from scratch on the `gb-autograd` training substrate:
//!
//! | Category | Models |
//! |---|---|
//! | Collaborative filtering | [`Mf`] (both conversions), [`Ncf`], [`Ngcf`] |
//! | Social recommendation | [`SocialMf`], [`DiffNet`] |
//! | Group recommendation | [`Agree`], [`Sigr`] |
//! | Group-buying | [`Gbmf`] |
//!
//! All models share the [`Recommender`] trait (`fit` + scoring through
//! [`gb_eval::Scorer`]), the [`TrainConfig`] hyper-parameters, and the
//! mini-batch/negative-sampling loop of Sec. III-C.2, so the Table III
//! harness can treat them uniformly. Where the paper prescribes a
//! loss that differs from BPR (AGREE's regression-based pairwise loss,
//! SIGR's log loss) the prescribed loss is used — the paper explicitly
//! discusses those choices when analysing why the group recommenders
//! underperform.

pub mod agree;
pub mod common;
pub mod diffnet;
pub mod gbmf;
pub mod handle;
pub mod mf;
pub mod ncf;
pub mod ngcf;
pub mod sigr;
pub mod snapshot;
pub mod socialmf;

pub use agree::Agree;
pub use common::{Recommender, TrainConfig, TrainReport};
pub use diffnet::DiffNet;
pub use gbmf::{Gbmf, GbmfConfig};
pub use handle::{DeltaStamp, SnapshotHandle, VersionedSnapshot};
pub use mf::Mf;
pub use ncf::Ncf;
pub use ngcf::Ngcf;
pub use sigr::Sigr;
pub use snapshot::{EmbeddingSnapshot, SnapshotDelta, SnapshotSource};
pub use socialmf::SocialMf;
