//! SocialMF [1]: matrix factorization with trust propagation.

use crate::common::{
    add_l2, bpr_loss, dot_scores, shuffled_batches, Recommender, TrainConfig, TrainReport,
};
use gb_autograd::{Adam, AdamConfig, ParamStore, Tape};
use gb_data::convert::{to_pairs, InteractionKind};
use gb_data::{Dataset, NegativeSampler};
use gb_eval::Scorer;
use gb_tensor::{init, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// SocialMF: BPR matrix factorization plus the social regularization term
/// of Jamali & Ester [1], which pulls each user's embedding toward the
/// mean of their friends' embeddings:
/// `λ_s Σ_m ||u_m − mean_{f ∈ S(m)} u_f||²`.
pub struct SocialMf {
    cfg: TrainConfig,
    /// Strength of the trust-propagation term (`λ_s`).
    social_reg: f32,
    user_emb: Matrix,
    item_emb: Matrix,
}

impl SocialMf {
    /// Creates an untrained SocialMF model; `social_reg` is the trust-
    /// propagation coefficient (tuned like the paper tunes its
    /// regularizers).
    pub fn new(cfg: TrainConfig, social_reg: f32) -> Self {
        Self {
            cfg,
            social_reg,
            user_emb: Matrix::zeros(0, 0),
            item_emb: Matrix::zeros(0, 0),
        }
    }
}

impl Recommender for SocialMf {
    fn name(&self) -> &str {
        "SocialMF"
    }

    fn fit(&mut self, train: &Dataset) -> TrainReport {
        let cfg = self.cfg.clone();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let u = store.add(
            "socialmf.user",
            init::xavier_uniform(train.n_users(), cfg.dim, &mut rng),
        );
        let v = store.add(
            "socialmf.item",
            init::xavier_uniform(train.n_items(), cfg.dim, &mut rng),
        );
        let mut adam = Adam::new(AdamConfig::with_lr(cfg.lr), &store);

        let pairs = to_pairs(train, InteractionKind::BothRoles);
        let sampler = NegativeSampler::from_dataset(train);
        let social = train.social().csr();

        let mut final_loss = 0.0f32;
        let start = Instant::now();
        for epoch in 0..cfg.epochs {
            let mut epoch_loss = 0.0f32;
            let mut n_batches = 0usize;
            for batch in shuffled_batches(pairs.len(), cfg.batch_size, &mut rng) {
                let mut users = Vec::new();
                let mut pos = Vec::new();
                let mut neg = Vec::new();
                for idx in batch {
                    let (usr, item) = pairs[idx];
                    for _ in 0..cfg.neg_ratio.max(1) {
                        users.push(usr);
                        pos.push(item);
                        neg.push(sampler.sample_one(usr, &mut rng));
                    }
                }
                let n = users.len();
                let users = Arc::new(users);

                let mut tape = Tape::new();
                let u_full = tape.param(&store, u);
                let ue = tape.gather(u_full, users.clone());
                let pe = tape.gather_param(&store, v, Arc::new(pos));
                let ne = tape.gather_param(&store, v, Arc::new(neg));
                let pos_s = tape.rowwise_dot(ue, pe);
                let neg_s = tape.rowwise_dot(ue, ne);
                let loss = bpr_loss(&mut tape, pos_s, neg_s);
                let loss = add_l2(&mut tape, loss, &[ue, pe, ne], cfg.l2, n);

                // Trust propagation: batch users toward their friend mean.
                // Users without friends have a zero friend-mean; we still
                // regularize them toward zero, which is the shrinkage
                // SocialMF applies to isolated users.
                let friend_mean = tape.segment_mean(u_full, social.offsets(), social.members());
                let fm_batch = tape.gather(friend_mean, users);
                let gap = tape.sub(ue, fm_batch);
                let loss = add_l2(&mut tape, loss, &[gap], self.social_reg, n);

                epoch_loss += tape.value(loss).get(0, 0);
                n_batches += 1;
                let grads = tape.backward(loss, &store);
                adam.step(&mut store, &grads);
            }
            final_loss = epoch_loss / n_batches.max(1) as f32;
            if cfg.verbose {
                eprintln!("[SocialMF] epoch {epoch}: loss {final_loss:.4}");
            }
        }
        let elapsed = start.elapsed().as_secs_f64();

        self.user_emb = store.value(u).clone();
        self.item_emb = store.value(v).clone();
        TrainReport {
            epochs: cfg.epochs,
            mean_epoch_secs: elapsed / cfg.epochs.max(1) as f64,
            final_loss,
        }
    }
}

impl Scorer for SocialMf {
    fn score_items(&self, user: u32, items: &[u32]) -> Vec<f32> {
        dot_scores(self.user_emb.row(user as usize), &self.item_emb, items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_data::GroupBehavior;
    use gb_tensor::kernels;

    #[test]
    fn social_reg_pulls_friends_together() {
        // Users 0 and 1 are friends with identical interactions; user 2 is
        // isolated with opposite interactions. With strong social
        // regularization, 0 and 1 end closer than 0 and 2.
        let behaviors = vec![
            GroupBehavior::new(0, 0, vec![]),
            GroupBehavior::new(1, 0, vec![]),
            GroupBehavior::new(2, 1, vec![]),
            GroupBehavior::new(0, 2, vec![]),
            GroupBehavior::new(1, 2, vec![]),
            GroupBehavior::new(2, 3, vec![]),
        ];
        let d = Dataset::new(3, 4, behaviors, vec![(0, 1)], vec![1; 4]);
        let cfg = TrainConfig {
            dim: 8,
            epochs: 120,
            batch_size: 16,
            lr: 0.02,
            ..Default::default()
        };
        let mut m = SocialMf::new(cfg, 0.5);
        m.fit(&d);
        let sim01 = kernels::cosine_similarity(m.user_emb.row(0), m.user_emb.row(1));
        let sim02 = kernels::cosine_similarity(m.user_emb.row(0), m.user_emb.row(2));
        assert!(sim01 > sim02, "sim01 = {sim01}, sim02 = {sim02}");
    }

    #[test]
    fn still_learns_preferences() {
        let behaviors = vec![
            GroupBehavior::new(0, 0, vec![]),
            GroupBehavior::new(0, 1, vec![]),
            GroupBehavior::new(1, 2, vec![]),
            GroupBehavior::new(1, 3, vec![]),
        ];
        let d = Dataset::new(2, 4, behaviors, vec![], vec![1; 4]);
        let cfg = TrainConfig {
            dim: 8,
            epochs: 200,
            batch_size: 8,
            lr: 0.05,
            ..Default::default()
        };
        let mut m = SocialMf::new(cfg, 0.01);
        m.fit(&d);
        let s = m.score_items(0, &[0, 1, 2, 3]);
        assert!(s[0] > s[2] && s[1] > s[3], "scores {s:?}");
    }
}
