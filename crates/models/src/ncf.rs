//! Neural Collaborative Filtering [28]: GMF ⊕ MLP.

use crate::common::{add_l2, bpr_loss, shuffled_batches, Recommender, TrainConfig, TrainReport};
use gb_autograd::{Adam, AdamConfig, ParamId, ParamStore, Tape, Var};
use gb_data::convert::{to_pairs, InteractionKind};
use gb_data::{Dataset, NegativeSampler};
use gb_eval::Scorer;
use gb_tensor::{init, kernels, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// NeuMF architecture: a GMF branch (elementwise product of embeddings)
/// fused with an MLP branch (`[u || v] -> d -> d/2`), combined by a final
/// linear head. Trained with BPR on implicit feedback, both-roles
/// conversion (the setting that wins in Table III's CF block).
pub struct Ncf {
    cfg: TrainConfig,
    params: Option<NcfParams>,
}

struct NcfParams {
    store: ParamStore,
    ug: ParamId,
    vg: ParamId,
    um: ParamId,
    vm: ParamId,
    w1: ParamId,
    b1: ParamId,
    w2: ParamId,
    b2: ParamId,
    head: ParamId,
}

impl Ncf {
    /// Creates an untrained NCF model.
    pub fn new(cfg: TrainConfig) -> Self {
        Self { cfg, params: None }
    }

    fn init_params(&self, train: &Dataset, rng: &mut StdRng) -> NcfParams {
        let d = self.cfg.dim;
        let mut store = ParamStore::new();
        let ug = store.add(
            "ncf.gmf.user",
            init::xavier_uniform(train.n_users(), d, rng),
        );
        let vg = store.add(
            "ncf.gmf.item",
            init::xavier_uniform(train.n_items(), d, rng),
        );
        let um = store.add(
            "ncf.mlp.user",
            init::xavier_uniform(train.n_users(), d, rng),
        );
        let vm = store.add(
            "ncf.mlp.item",
            init::xavier_uniform(train.n_items(), d, rng),
        );
        let w1 = store.add("ncf.mlp.w1", init::xavier_uniform(2 * d, d, rng));
        let b1 = store.add("ncf.mlp.b1", Matrix::zeros(1, d));
        let w2 = store.add("ncf.mlp.w2", init::xavier_uniform(d, d / 2, rng));
        let b2 = store.add("ncf.mlp.b2", Matrix::zeros(1, d / 2));
        let head = store.add("ncf.head", init::xavier_uniform(d + d / 2, 1, rng));
        NcfParams {
            store,
            ug,
            vg,
            um,
            vm,
            w1,
            b1,
            w2,
            b2,
            head,
        }
    }

    /// Scores a batch of (user, item) index lists on a tape.
    fn forward(
        p: &NcfParams,
        tape: &mut Tape,
        users: Arc<Vec<u32>>,
        items: Arc<Vec<u32>>,
    ) -> (Var, Vec<Var>) {
        let ug = tape.gather_param(&p.store, p.ug, users.clone());
        let vg = tape.gather_param(&p.store, p.vg, items.clone());
        let um = tape.gather_param(&p.store, p.um, users);
        let vm = tape.gather_param(&p.store, p.vm, items);

        let gmf = tape.mul(ug, vg);

        let mlp_in = tape.concat_cols(&[um, vm]);
        let w1 = tape.param(&p.store, p.w1);
        let b1 = tape.param(&p.store, p.b1);
        let z1_lin = tape.matmul(mlp_in, w1);
        let z1_b = tape.add_bias(z1_lin, b1);
        let z1 = tape.leaky_relu(z1_b, 0.0); // ReLU as in the paper

        let w2 = tape.param(&p.store, p.w2);
        let b2 = tape.param(&p.store, p.b2);
        let z2_lin = tape.matmul(z1, w2);
        let z2_b = tape.add_bias(z2_lin, b2);
        let z2 = tape.leaky_relu(z2_b, 0.0);

        let feat = tape.concat_cols(&[gmf, z2]);
        let head = tape.param(&p.store, p.head);
        let score = tape.matmul(feat, head);
        (score, vec![ug, vg, um, vm])
    }

    /// Plain-kernel forward for post-training scoring.
    fn forward_plain(&self, user: u32, items: &[u32]) -> Vec<f32> {
        let p = self.params.as_ref().expect("model not fitted");
        let n = items.len();
        let users = vec![user; n];
        let idx_items: Vec<u32> = items.to_vec();

        let ug = kernels::gather_rows(p.store.value(p.ug), &users);
        let vg = kernels::gather_rows(p.store.value(p.vg), &idx_items);
        let um = kernels::gather_rows(p.store.value(p.um), &users);
        let vm = kernels::gather_rows(p.store.value(p.vm), &idx_items);

        let gmf = kernels::mul(&ug, &vg);
        let mlp_in = kernels::concat_cols(&[&um, &vm]);
        let z1 = kernels::leaky_relu(
            &kernels::add_bias(
                &kernels::matmul(&mlp_in, p.store.value(p.w1)),
                p.store.value(p.b1),
            ),
            0.0,
        );
        let z2 = kernels::leaky_relu(
            &kernels::add_bias(
                &kernels::matmul(&z1, p.store.value(p.w2)),
                p.store.value(p.b2),
            ),
            0.0,
        );
        let feat = kernels::concat_cols(&[&gmf, &z2]);
        kernels::matmul(&feat, p.store.value(p.head)).into_vec()
    }
}

impl Recommender for Ncf {
    fn name(&self) -> &str {
        "NCF"
    }

    fn fit(&mut self, train: &Dataset) -> TrainReport {
        let cfg = self.cfg.clone();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let params = self.init_params(train, &mut rng);
        let mut adam = Adam::new(AdamConfig::with_lr(cfg.lr), &params.store);

        let pairs = to_pairs(train, InteractionKind::BothRoles);
        let sampler = NegativeSampler::from_dataset(train);

        let mut final_loss = 0.0f32;
        let start = Instant::now();
        let mut p = params;
        for epoch in 0..cfg.epochs {
            let mut epoch_loss = 0.0f32;
            let mut n_batches = 0usize;
            for batch in shuffled_batches(pairs.len(), cfg.batch_size, &mut rng) {
                let mut users = Vec::new();
                let mut pos = Vec::new();
                let mut neg = Vec::new();
                for idx in batch {
                    let (usr, item) = pairs[idx];
                    for _ in 0..cfg.neg_ratio.max(1) {
                        users.push(usr);
                        pos.push(item);
                        neg.push(sampler.sample_one(usr, &mut rng));
                    }
                }
                let n = users.len();
                let users = Arc::new(users);

                let mut tape = Tape::new();
                let (pos_s, mut reg) = Self::forward(&p, &mut tape, users.clone(), Arc::new(pos));
                let (neg_s, reg_n) = Self::forward(&p, &mut tape, users, Arc::new(neg));
                reg.extend(reg_n);
                let loss = bpr_loss(&mut tape, pos_s, neg_s);
                let loss = add_l2(&mut tape, loss, &reg, cfg.l2, n);

                epoch_loss += tape.value(loss).get(0, 0);
                n_batches += 1;
                let grads = tape.backward(loss, &p.store);
                adam.step(&mut p.store, &grads);
            }
            final_loss = epoch_loss / n_batches.max(1) as f32;
            if cfg.verbose {
                eprintln!("[NCF] epoch {epoch}: loss {final_loss:.4}");
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        self.params = Some(p);
        TrainReport {
            epochs: cfg.epochs,
            mean_epoch_secs: elapsed / cfg.epochs.max(1) as f64,
            final_loss,
        }
    }
}

impl Scorer for Ncf {
    fn score_items(&self, user: u32, items: &[u32]) -> Vec<f32> {
        self.forward_plain(user, items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_data::GroupBehavior;

    fn toy_dataset() -> Dataset {
        let behaviors = vec![
            GroupBehavior::new(0, 0, vec![]),
            GroupBehavior::new(0, 1, vec![]),
            GroupBehavior::new(1, 2, vec![]),
            GroupBehavior::new(1, 3, vec![]),
        ];
        Dataset::new(2, 4, behaviors, vec![(0, 1)], vec![1; 4])
    }

    #[test]
    fn learns_disjoint_tastes() {
        let cfg = TrainConfig {
            dim: 8,
            epochs: 250,
            batch_size: 8,
            lr: 0.02,
            ..Default::default()
        };
        let mut m = Ncf::new(cfg);
        m.fit(&toy_dataset());
        let s = m.score_items(0, &[0, 1, 2, 3]);
        assert!(s[0] > s[2] && s[1] > s[3], "scores {s:?}");
    }

    #[test]
    fn tape_and_plain_forward_agree() {
        let cfg = TrainConfig {
            dim: 8,
            epochs: 3,
            batch_size: 8,
            ..Default::default()
        };
        let mut m = Ncf::new(cfg);
        m.fit(&toy_dataset());
        let p = m.params.as_ref().unwrap();
        let mut tape = Tape::new();
        let (scores, _) = Ncf::forward(p, &mut tape, Arc::new(vec![0, 1]), Arc::new(vec![2, 3]));
        let tape_scores = tape.value(scores).as_slice().to_vec();
        let plain0 = m.score_items(0, &[2]);
        let plain1 = m.score_items(1, &[3]);
        assert!((tape_scores[0] - plain0[0]).abs() < 1e-5);
        assert!((tape_scores[1] - plain1[0]).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn scoring_before_fit_panics() {
        let m = Ncf::new(TrainConfig::default());
        m.score_items(0, &[0]);
    }
}
