//! Immutable embedding snapshots — the hand-off artifact between
//! offline training and online serving.
//!
//! Every cached-embedding scorer in this workspace evaluates the same
//! Eq. 9-shaped prediction: a `(1-α)`-weighted *own* dot product plus an
//! `α`-weighted *social* dot product over a per-user friend aggregate.
//! [`EmbeddingSnapshot`] freezes exactly the four tables that prediction
//! needs (own/social user tables, own/social item tables) plus `α`, so a
//! serving process can answer queries without the training graph, the
//! parameter store, or the autodiff tape.
//!
//! Models opt in through [`SnapshotSource`]; `gb-serve` adds the
//! versioned binary persistence and the top-K query engine on top.

use crate::gbmf::Gbmf;
use crate::mf::Mf;
use gb_eval::Scorer;
use gb_tensor::{kernels, Matrix};

/// Frozen post-training embeddings, sufficient to score any
/// `(user, item)` pair.
///
/// Scoring is `(1-α) · u_own[u]·v_own[n] + α · u_social[u]·v_social[n]`,
/// computed in the same accumulation order as the offline scorers so
/// served scores are bit-identical to evaluation scores. Models without
/// a social term use `α = 0` and zero-width social tables.
#[derive(Clone, Debug, PartialEq)]
pub struct EmbeddingSnapshot {
    alpha: f32,
    user_own: Matrix,
    item_own: Matrix,
    user_social: Matrix,
    item_social: Matrix,
}

impl EmbeddingSnapshot {
    /// Assembles a snapshot from its four tables.
    ///
    /// # Panics
    /// Panics if row counts disagree between the own/social tables, the
    /// own widths of users and items disagree, the social widths
    /// disagree, `alpha` is not a finite value in `[0, 1]`, or any table
    /// holds a non-finite value (a diverged training run must fail
    /// loudly at export, not serve NaN rankings).
    pub fn new(
        alpha: f32,
        user_own: Matrix,
        item_own: Matrix,
        user_social: Matrix,
        item_social: Matrix,
    ) -> Self {
        for (name, m) in [
            ("user_own", &user_own),
            ("item_own", &item_own),
            ("user_social", &user_social),
            ("item_social", &item_social),
        ] {
            assert!(
                !m.has_non_finite(),
                "snapshot table `{name}` holds non-finite values"
            );
        }
        Self::new_trusted(alpha, user_own, item_own, user_social, item_social)
    }

    /// Assembles a snapshot from tables that are already known finite —
    /// the shape/alpha checks of [`EmbeddingSnapshot::new`] still run,
    /// but the O(elements) non-finite scan is skipped.
    ///
    /// Two callers earn that trust: [`EmbeddingSnapshot::slice_items`]
    /// (its inputs are views of already-validated tables) and the
    /// serving mmap loader (which must publish a multi-GB mapped file
    /// without faulting every page in; it defends against corrupted
    /// floats downstream instead, where the serving heap refuses to rank
    /// non-finite scores). Everyone else should use
    /// [`EmbeddingSnapshot::new`].
    pub fn new_trusted(
        alpha: f32,
        user_own: Matrix,
        item_own: Matrix,
        user_social: Matrix,
        item_social: Matrix,
    ) -> Self {
        assert!(
            alpha.is_finite() && (0.0..=1.0).contains(&alpha),
            "alpha {alpha} outside [0, 1]"
        );
        assert_eq!(
            user_own.rows(),
            user_social.rows(),
            "user table row mismatch"
        );
        assert_eq!(
            item_own.rows(),
            item_social.rows(),
            "item table row mismatch"
        );
        assert_eq!(
            user_own.cols(),
            item_own.cols(),
            "own embedding width mismatch"
        );
        assert_eq!(
            user_social.cols(),
            item_social.cols(),
            "social embedding width mismatch"
        );
        Self {
            alpha,
            user_own,
            item_own,
            user_social,
            item_social,
        }
    }

    /// Snapshot of a pure dot-product model (no social term, `α = 0`).
    pub fn without_social(user_own: Matrix, item_own: Matrix) -> Self {
        let nu = user_own.rows();
        let ni = item_own.rows();
        Self::new(
            0.0,
            user_own,
            item_own,
            Matrix::zeros(nu, 0),
            Matrix::zeros(ni, 0),
        )
    }

    /// The role coefficient `α`.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.user_own.rows()
    }

    /// Number of items in the catalogue.
    pub fn n_items(&self) -> usize {
        self.item_own.rows()
    }

    /// Width of the own-interest embeddings.
    pub fn own_dim(&self) -> usize {
        self.user_own.cols()
    }

    /// Width of the social-interest embeddings (0 for social-free models).
    pub fn social_dim(&self) -> usize {
        self.user_social.cols()
    }

    /// The own-interest user table.
    pub fn user_own(&self) -> &Matrix {
        &self.user_own
    }

    /// The own-interest item table.
    pub fn item_own(&self) -> &Matrix {
        &self.item_own
    }

    /// The social-interest user table (friend aggregates).
    pub fn user_social(&self) -> &Matrix {
        &self.user_social
    }

    /// The social-interest item table.
    pub fn item_social(&self) -> &Matrix {
        &self.item_social
    }

    /// Scores one `(user, item)` pair.
    pub fn score(&self, user: u32, item: u32) -> f32 {
        let mut out = [0.0f32];
        self.score_block(user, item as usize, &mut out);
        out[0]
    }

    /// Scores the contiguous item range `[start, start + out.len())` for
    /// `user` into `out` — the blocked serving fast path.
    pub fn score_block(&self, user: u32, start: usize, out: &mut [f32]) {
        kernels::blend_dot_block(
            self.user_own.row(user as usize),
            &self.item_own,
            self.user_social.row(user as usize),
            &self.item_social,
            self.alpha,
            start,
            out,
        );
    }

    /// Scores the contiguous item range `[start, start + len)` for a
    /// *block* of users in one pass over the item tables — the batched
    /// serving fast path. `out` holds one `len`-wide row per user,
    /// row-major: `out[u * len + j]` is `users[u]`'s score for item
    /// `start + j`, bit-identical to what [`EmbeddingSnapshot::score_block`]
    /// writes for that user alone (the kernel shares loads of the item
    /// tables across the block; it never changes any user's accumulation
    /// order).
    ///
    /// # Panics
    /// Panics if any user is out of range, the item range exceeds the
    /// catalogue, or `out.len() != users.len() * len`.
    pub fn score_block_multi(&self, users: &[u32], start: usize, len: usize, out: &mut [f32]) {
        let owns: Vec<&[f32]> = users
            .iter()
            .map(|&u| self.user_own.row(u as usize))
            .collect();
        let socials: Vec<&[f32]> = users
            .iter()
            .map(|&u| self.user_social.row(u as usize))
            .collect();
        kernels::blend_dot_block_multi(
            &owns,
            &self.item_own,
            &socials,
            &self.item_social,
            self.alpha,
            start,
            len,
            out,
        );
    }

    /// Scores an explicit list of item ids for `user` into `out` — the
    /// gathered scoring path behind `Scorer::score_items` (explicit
    /// candidate lists, e.g. the evaluation protocol's 1000-candidate
    /// sets). Each score is bit-identical to what
    /// [`EmbeddingSnapshot::score_block`] computes for that item (both
    /// are the same lane-blocked dot), so selecting a candidate subset
    /// never changes an item's score.
    ///
    /// # Panics
    /// Panics if `user` or any item id is out of range, or
    /// `out.len() != items.len()`.
    pub fn score_indexed(&self, user: u32, items: &[u32], out: &mut [f32]) {
        kernels::blend_dot_indexed(
            self.user_own.row(user as usize),
            &self.item_own,
            self.user_social.row(user as usize),
            &self.item_social,
            self.alpha,
            items,
            out,
        );
    }

    /// Heap footprint of the four tables in bytes.
    pub fn size_bytes(&self) -> usize {
        4 * (self.user_own.len()
            + self.item_own.len()
            + self.user_social.len()
            + self.item_social.len())
    }

    /// A snapshot whose four tables are shareable: clones and item-range
    /// slices ([`EmbeddingSnapshot::slice_items`]) of the result are
    /// O(1) and allocation-free. Idempotent — already-shared tables are
    /// reused, not recopied — and every score is bit-identical to the
    /// source snapshot (the tables are the same bytes).
    ///
    /// The sharded serving tier calls this once per publish so that N
    /// shard slices alias one copy of the catalogue instead of holding N
    /// partial copies plus N user-table duplicates.
    pub fn to_shared(&self) -> EmbeddingSnapshot {
        EmbeddingSnapshot::new_trusted(
            self.alpha,
            self.user_own.to_shared(),
            self.item_own.to_shared(),
            self.user_social.to_shared(),
            self.item_social.to_shared(),
        )
    }

    /// The sub-snapshot owning the contiguous item range
    /// `[start, start + len)`: full user tables, sliced item tables, the
    /// same `α`. Local item id `j` in the slice is global item
    /// `start + j`, and its score for any user is bit-identical to the
    /// full snapshot's (`score_block` reads whole item rows; slicing
    /// never changes a row).
    ///
    /// On a shared snapshot ([`EmbeddingSnapshot::to_shared`]) the slice
    /// is zero-copy; on an owned snapshot the item range is copied out
    /// and the user tables are duplicated — shard construction should
    /// share first.
    ///
    /// # Panics
    /// Panics if `start + len > n_items()`.
    pub fn slice_items(&self, start: usize, len: usize) -> EmbeddingSnapshot {
        assert!(
            start
                .checked_add(len)
                .is_some_and(|end| end <= self.n_items()),
            "item range [{start}, {start}+{len}) out of bounds ({} items)",
            self.n_items()
        );
        EmbeddingSnapshot::new_trusted(
            self.alpha,
            self.user_own.clone(),
            self.item_own.view_rows(start, len),
            self.user_social.clone(),
            self.item_social.view_rows(start, len),
        )
    }
}

impl Scorer for EmbeddingSnapshot {
    /// Scores an explicit candidate list through the gathered kernel
    /// ([`EmbeddingSnapshot::score_indexed`]) — one call instead of one
    /// single-item block per candidate, with every score bit-identical
    /// either way (the same lane-blocked dot per item).
    fn score_items(&self, user: u32, items: &[u32]) -> Vec<f32> {
        let mut out = vec![0.0f32; items.len()];
        self.score_indexed(user, items, &mut out);
        out
    }
}

/// A trained model that can export its cached final embeddings.
pub trait SnapshotSource {
    /// Freezes the model's post-training embeddings for serving.
    ///
    /// # Panics
    /// Implementations panic if the model has not been fitted.
    fn export_snapshot(&self) -> EmbeddingSnapshot;
}

impl SnapshotSource for Mf {
    fn export_snapshot(&self) -> EmbeddingSnapshot {
        assert!(self.user_embeddings().rows() > 0, "model not fitted");
        EmbeddingSnapshot::without_social(
            self.user_embeddings().clone(),
            self.item_embeddings().clone(),
        )
    }
}

impl SnapshotSource for Gbmf {
    fn export_snapshot(&self) -> EmbeddingSnapshot {
        let (user, item, friend_mean) = self.tables();
        assert!(user.rows() > 0, "model not fitted");
        // GBMF shares one item table between the own and social terms.
        EmbeddingSnapshot::new(
            self.alpha(),
            user.clone(),
            item.clone(),
            friend_mean.clone(),
            item.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> EmbeddingSnapshot {
        EmbeddingSnapshot::new(
            0.25,
            Matrix::from_fn(3, 2, |r, c| (r + c) as f32),
            Matrix::from_fn(5, 2, |r, c| (r as f32 - c as f32) * 0.5),
            Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.1),
            Matrix::from_fn(5, 4, |r, c| ((r + c) % 3) as f32),
        )
    }

    #[test]
    fn score_blends_own_and_social() {
        let s = snap();
        let (u, i) = (1u32, 2u32);
        let own: f32 = s
            .user_own()
            .row(u as usize)
            .iter()
            .zip(s.item_own().row(i as usize))
            .map(|(a, b)| a * b)
            .sum();
        let social: f32 = s
            .user_social()
            .row(u as usize)
            .iter()
            .zip(s.item_social().row(i as usize))
            .map(|(a, b)| a * b)
            .sum();
        let expect = 0.75 * own + 0.25 * social;
        assert!((s.score(u, i) - expect).abs() < 1e-6);
    }

    #[test]
    fn score_block_matches_pointwise_scores() {
        let s = snap();
        let mut block = vec![0.0f32; 5];
        s.score_block(2, 0, &mut block);
        for (i, &b) in block.iter().enumerate() {
            assert_eq!(b, s.score(2, i as u32));
        }
    }

    #[test]
    fn score_block_multi_matches_score_block_bitwise() {
        let s = snap();
        let users = [2u32, 0, 1, 2]; // duplicates allowed
        for &(start, len) in &[(0usize, 5usize), (1, 3), (4, 1), (2, 0)] {
            let mut multi = vec![0.0f32; users.len() * len];
            s.score_block_multi(&users, start, len, &mut multi);
            for (u, &user) in users.iter().enumerate() {
                let mut single = vec![0.0f32; len];
                s.score_block(user, start, &mut single);
                for j in 0..len {
                    assert_eq!(
                        multi[u * len + j].to_bits(),
                        single[j].to_bits(),
                        "user {user} item {j} (start {start})"
                    );
                }
            }
        }
    }

    #[test]
    fn score_indexed_matches_score_block_bitwise() {
        let s = snap();
        let mut full = vec![0.0f32; 5];
        s.score_block(1, 0, &mut full);
        let items = [4u32, 0, 2, 2, 1];
        let mut got = vec![0.0f32; items.len()];
        s.score_indexed(1, &items, &mut got);
        for (j, &i) in items.iter().enumerate() {
            assert_eq!(got[j].to_bits(), full[i as usize].to_bits(), "item {i}");
        }
    }

    #[test]
    fn scorer_impl_matches_score() {
        let s = snap();
        let items = [4u32, 0, 2];
        let scores = s.score_items(1, &items);
        for (&i, &v) in items.iter().zip(&scores) {
            assert_eq!(v, s.score(1, i));
        }
    }

    #[test]
    fn without_social_is_pure_dot() {
        let s = EmbeddingSnapshot::without_social(
            Matrix::from_vec(1, 2, vec![2.0, 3.0]),
            Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.5, 0.5]),
        );
        assert_eq!(s.score(0, 0), 2.0);
        assert_eq!(s.score(0, 1), 2.5);
        assert_eq!(s.social_dim(), 0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn diverged_embeddings_rejected() {
        let mut bad = Matrix::zeros(3, 2);
        bad.set(1, 1, f32::NAN);
        EmbeddingSnapshot::without_social(bad, Matrix::zeros(5, 2));
    }

    #[test]
    fn shared_snapshot_scores_bitwise_like_the_original() {
        let s = snap();
        let shared = s.to_shared();
        assert!(shared.item_own().is_shared());
        for u in 0..3u32 {
            for i in 0..5u32 {
                assert_eq!(shared.score(u, i).to_bits(), s.score(u, i).to_bits());
            }
        }
        // Idempotent: re-sharing aliases the same table memory.
        let again = shared.to_shared();
        assert_eq!(
            again.item_own().as_slice().as_ptr(),
            shared.item_own().as_slice().as_ptr()
        );
    }

    #[test]
    fn slice_items_scores_match_the_full_catalogue_bitwise() {
        let s = snap().to_shared();
        for (start, len) in [(0usize, 5usize), (1, 3), (4, 1), (2, 0), (5, 0)] {
            let slice = s.slice_items(start, len);
            assert_eq!(slice.n_items(), len);
            assert_eq!(slice.n_users(), s.n_users());
            let mut local = vec![0.0f32; len];
            let mut global = vec![0.0f32; len];
            for u in 0..s.n_users() as u32 {
                slice.score_block(u, 0, &mut local);
                s.score_block(u, start, &mut global);
                for (a, b) in local.iter().zip(&global) {
                    assert_eq!(a.to_bits(), b.to_bits(), "user {u} range {start}+{len}");
                }
            }
            // Zero-copy: the slice aliases the shared item table.
            if len > 0 {
                assert_eq!(
                    slice.item_own().as_slice().as_ptr(),
                    s.item_own().row(start).as_ptr()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_items_checks_bounds() {
        snap().slice_items(3, 3);
    }

    #[test]
    #[should_panic(expected = "row mismatch")]
    fn mismatched_tables_rejected() {
        EmbeddingSnapshot::new(
            0.5,
            Matrix::zeros(3, 2),
            Matrix::zeros(5, 2),
            Matrix::zeros(4, 2),
            Matrix::zeros(5, 2),
        );
    }
}
