//! Immutable embedding snapshots — the hand-off artifact between
//! offline training and online serving.
//!
//! Every cached-embedding scorer in this workspace evaluates the same
//! Eq. 9-shaped prediction: a `(1-α)`-weighted *own* dot product plus an
//! `α`-weighted *social* dot product over a per-user friend aggregate.
//! [`EmbeddingSnapshot`] freezes exactly the four tables that prediction
//! needs (own/social user tables, own/social item tables) plus `α`, so a
//! serving process can answer queries without the training graph, the
//! parameter store, or the autodiff tape.
//!
//! Models opt in through [`SnapshotSource`]; `gb-serve` adds the
//! versioned binary persistence and the top-K query engine on top.

use crate::gbmf::Gbmf;
use crate::mf::Mf;
use gb_eval::Scorer;
use gb_tensor::{kernels, Matrix};

/// Frozen post-training embeddings, sufficient to score any
/// `(user, item)` pair.
///
/// Scoring is `(1-α) · u_own[u]·v_own[n] + α · u_social[u]·v_social[n]`,
/// computed in the same accumulation order as the offline scorers so
/// served scores are bit-identical to evaluation scores. Models without
/// a social term use `α = 0` and zero-width social tables.
#[derive(Clone, Debug, PartialEq)]
pub struct EmbeddingSnapshot {
    alpha: f32,
    user_own: Matrix,
    item_own: Matrix,
    user_social: Matrix,
    item_social: Matrix,
}

impl EmbeddingSnapshot {
    /// Assembles a snapshot from its four tables.
    ///
    /// # Panics
    /// Panics if row counts disagree between the own/social tables, the
    /// own widths of users and items disagree, the social widths
    /// disagree, `alpha` is not a finite value in `[0, 1]`, or any table
    /// holds a non-finite value (a diverged training run must fail
    /// loudly at export, not serve NaN rankings).
    pub fn new(
        alpha: f32,
        user_own: Matrix,
        item_own: Matrix,
        user_social: Matrix,
        item_social: Matrix,
    ) -> Self {
        for (name, m) in [
            ("user_own", &user_own),
            ("item_own", &item_own),
            ("user_social", &user_social),
            ("item_social", &item_social),
        ] {
            assert!(
                !m.has_non_finite(),
                "snapshot table `{name}` holds non-finite values"
            );
        }
        Self::new_trusted(alpha, user_own, item_own, user_social, item_social)
    }

    /// Assembles a snapshot from tables that are already known finite —
    /// the shape/alpha checks of [`EmbeddingSnapshot::new`] still run,
    /// but the O(elements) non-finite scan is skipped.
    ///
    /// Two callers earn that trust: [`EmbeddingSnapshot::slice_items`]
    /// (its inputs are views of already-validated tables) and the
    /// serving mmap loader (which must publish a multi-GB mapped file
    /// without faulting every page in; it defends against corrupted
    /// floats downstream instead, where the serving heap refuses to rank
    /// non-finite scores). Everyone else should use
    /// [`EmbeddingSnapshot::new`].
    pub fn new_trusted(
        alpha: f32,
        user_own: Matrix,
        item_own: Matrix,
        user_social: Matrix,
        item_social: Matrix,
    ) -> Self {
        assert!(
            alpha.is_finite() && (0.0..=1.0).contains(&alpha),
            "alpha {alpha} outside [0, 1]"
        );
        assert_eq!(
            user_own.rows(),
            user_social.rows(),
            "user table row mismatch"
        );
        assert_eq!(
            item_own.rows(),
            item_social.rows(),
            "item table row mismatch"
        );
        assert_eq!(
            user_own.cols(),
            item_own.cols(),
            "own embedding width mismatch"
        );
        assert_eq!(
            user_social.cols(),
            item_social.cols(),
            "social embedding width mismatch"
        );
        Self {
            alpha,
            user_own,
            item_own,
            user_social,
            item_social,
        }
    }

    /// Snapshot of a pure dot-product model (no social term, `α = 0`).
    pub fn without_social(user_own: Matrix, item_own: Matrix) -> Self {
        let nu = user_own.rows();
        let ni = item_own.rows();
        Self::new(
            0.0,
            user_own,
            item_own,
            Matrix::zeros(nu, 0),
            Matrix::zeros(ni, 0),
        )
    }

    /// The role coefficient `α`.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.user_own.rows()
    }

    /// Number of items in the catalogue.
    pub fn n_items(&self) -> usize {
        self.item_own.rows()
    }

    /// Width of the own-interest embeddings.
    pub fn own_dim(&self) -> usize {
        self.user_own.cols()
    }

    /// Width of the social-interest embeddings (0 for social-free models).
    pub fn social_dim(&self) -> usize {
        self.user_social.cols()
    }

    /// The own-interest user table.
    pub fn user_own(&self) -> &Matrix {
        &self.user_own
    }

    /// The own-interest item table.
    pub fn item_own(&self) -> &Matrix {
        &self.item_own
    }

    /// The social-interest user table (friend aggregates).
    pub fn user_social(&self) -> &Matrix {
        &self.user_social
    }

    /// The social-interest item table.
    pub fn item_social(&self) -> &Matrix {
        &self.item_social
    }

    /// Scores one `(user, item)` pair.
    pub fn score(&self, user: u32, item: u32) -> f32 {
        let mut out = [0.0f32];
        self.score_block(user, item as usize, &mut out);
        out[0]
    }

    /// Scores the contiguous item range `[start, start + out.len())` for
    /// `user` into `out` — the blocked serving fast path.
    pub fn score_block(&self, user: u32, start: usize, out: &mut [f32]) {
        kernels::blend_dot_block(
            self.user_own.row(user as usize),
            &self.item_own,
            self.user_social.row(user as usize),
            &self.item_social,
            self.alpha,
            start,
            out,
        );
    }

    /// Scores the contiguous item range `[start, start + len)` for a
    /// *block* of users in one pass over the item tables — the batched
    /// serving fast path. `out` holds one `len`-wide row per user,
    /// row-major: `out[u * len + j]` is `users[u]`'s score for item
    /// `start + j`, bit-identical to what [`EmbeddingSnapshot::score_block`]
    /// writes for that user alone (the kernel shares loads of the item
    /// tables across the block; it never changes any user's accumulation
    /// order).
    ///
    /// # Panics
    /// Panics if any user is out of range, the item range exceeds the
    /// catalogue, or `out.len() != users.len() * len`.
    pub fn score_block_multi(&self, users: &[u32], start: usize, len: usize, out: &mut [f32]) {
        let owns: Vec<&[f32]> = users
            .iter()
            .map(|&u| self.user_own.row(u as usize))
            .collect();
        let socials: Vec<&[f32]> = users
            .iter()
            .map(|&u| self.user_social.row(u as usize))
            .collect();
        kernels::blend_dot_block_multi(
            &owns,
            &self.item_own,
            &socials,
            &self.item_social,
            self.alpha,
            start,
            len,
            out,
        );
    }

    /// Scores an explicit list of item ids for `user` into `out` — the
    /// gathered scoring path behind `Scorer::score_items` (explicit
    /// candidate lists, e.g. the evaluation protocol's 1000-candidate
    /// sets). Each score is bit-identical to what
    /// [`EmbeddingSnapshot::score_block`] computes for that item (both
    /// are the same lane-blocked dot), so selecting a candidate subset
    /// never changes an item's score.
    ///
    /// # Panics
    /// Panics if `user` or any item id is out of range, or
    /// `out.len() != items.len()`.
    pub fn score_indexed(&self, user: u32, items: &[u32], out: &mut [f32]) {
        kernels::blend_dot_indexed(
            self.user_own.row(user as usize),
            &self.item_own,
            self.user_social.row(user as usize),
            &self.item_social,
            self.alpha,
            items,
            out,
        );
    }

    /// Heap footprint of the four tables in bytes.
    pub fn size_bytes(&self) -> usize {
        4 * (self.user_own.len()
            + self.item_own.len()
            + self.user_social.len()
            + self.item_social.len())
    }

    /// A snapshot whose four tables are shareable: clones and item-range
    /// slices ([`EmbeddingSnapshot::slice_items`]) of the result are
    /// O(1) and allocation-free. Idempotent — already-shared tables are
    /// reused, not recopied — and every score is bit-identical to the
    /// source snapshot (the tables are the same bytes).
    ///
    /// The sharded serving tier calls this once per publish so that N
    /// shard slices alias one copy of the catalogue instead of holding N
    /// partial copies plus N user-table duplicates.
    pub fn to_shared(&self) -> EmbeddingSnapshot {
        EmbeddingSnapshot::new_trusted(
            self.alpha,
            self.user_own.to_shared(),
            self.item_own.to_shared(),
            self.user_social.to_shared(),
            self.item_social.to_shared(),
        )
    }

    /// The sub-snapshot owning the contiguous item range
    /// `[start, start + len)`: full user tables, sliced item tables, the
    /// same `α`. Local item id `j` in the slice is global item
    /// `start + j`, and its score for any user is bit-identical to the
    /// full snapshot's (`score_block` reads whole item rows; slicing
    /// never changes a row).
    ///
    /// On a shared snapshot ([`EmbeddingSnapshot::to_shared`]) the slice
    /// is zero-copy; on an owned snapshot the item range is copied out
    /// and the user tables are duplicated — shard construction should
    /// share first.
    ///
    /// # Panics
    /// Panics if `start + len > n_items()`.
    pub fn slice_items(&self, start: usize, len: usize) -> EmbeddingSnapshot {
        assert!(
            start
                .checked_add(len)
                .is_some_and(|end| end <= self.n_items()),
            "item range [{start}, {start}+{len}) out of bounds ({} items)",
            self.n_items()
        );
        EmbeddingSnapshot::new_trusted(
            self.alpha,
            self.user_own.clone(),
            self.item_own.view_rows(start, len),
            self.user_social.clone(),
            self.item_social.view_rows(start, len),
        )
    }
}

impl Scorer for EmbeddingSnapshot {
    /// Scores an explicit candidate list through the gathered kernel
    /// ([`EmbeddingSnapshot::score_indexed`]) — one call instead of one
    /// single-item block per candidate, with every score bit-identical
    /// either way (the same lane-blocked dot per item).
    fn score_items(&self, user: u32, items: &[u32]) -> Vec<f32> {
        let mut out = vec![0.0f32; items.len()];
        self.score_indexed(user, items, &mut out);
        out
    }
}

/// A sparse, grow-only update to an [`EmbeddingSnapshot`]: the changed
/// user rows, the changed item rows, and item rows appended to the end
/// of the catalogue (newly opened deals).
///
/// [`SnapshotDelta::apply`] materializes the successor snapshot
/// copy-on-write over the previous version's tables: a table with no
/// changed rows is aliased (an O(1) shared clone — see
/// [`gb_tensor::Matrix::to_shared`]), a table with changed rows pays
/// exactly one copy, and the result is **bitwise identical** to building
/// the equivalent full snapshot from scratch — scoring reads whole rows,
/// and every row is byte-for-byte the same either way.
///
/// The universe is grow-only: items can be appended, never removed, and
/// the user count never changes mid-run (seen-filters are sized per
/// user at startup; item-side filters probe appended ids as unseen).
#[derive(Clone, Debug, Default)]
pub struct SnapshotDelta {
    /// `(user, own row, social row)` replacements.
    user_rows: Vec<(u32, Vec<f32>, Vec<f32>)>,
    /// `(item, own row, social row)` replacements.
    item_rows: Vec<(u32, Vec<f32>, Vec<f32>)>,
    /// `(own row, social row)` appended past the current catalogue end.
    appended_items: Vec<(Vec<f32>, Vec<f32>)>,
}

impl SnapshotDelta {
    /// An empty delta (applying it aliases every table unchanged).
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces `user`'s own/social rows. Last write wins on duplicates.
    pub fn set_user(mut self, user: u32, own: Vec<f32>, social: Vec<f32>) -> Self {
        self.user_rows.push((user, own, social));
        self
    }

    /// Replaces `item`'s own/social rows. Last write wins on duplicates.
    pub fn set_item(mut self, item: u32, own: Vec<f32>, social: Vec<f32>) -> Self {
        self.item_rows.push((item, own, social));
        self
    }

    /// Appends a new item row past the catalogue end (a newly opened
    /// deal). Appended ids are assigned in call order starting at the
    /// previous snapshot's `n_items()`.
    pub fn append_item(mut self, own: Vec<f32>, social: Vec<f32>) -> Self {
        self.appended_items.push((own, social));
        self
    }

    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.user_rows.is_empty() && self.item_rows.is_empty() && self.appended_items.is_empty()
    }

    /// Number of appended item rows.
    pub fn n_appended(&self) -> usize {
        self.appended_items.len()
    }

    /// The replaced item ids, ascending and deduplicated (appended ids
    /// are not included — the consumer derives them from the row-count
    /// growth). The incremental IVF maintainer reassigns exactly these.
    pub fn changed_item_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.item_rows.iter().map(|(i, _, _)| *i).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Materializes the successor of `prev` under this delta.
    ///
    /// # Panics
    /// Panics if any row id is out of range for `prev`, any row has the
    /// wrong width, or any replacement value is non-finite (the same
    /// export-time discipline as [`EmbeddingSnapshot::new`], paid only on
    /// the delta rows instead of the whole universe).
    pub fn apply(&self, prev: &EmbeddingSnapshot) -> EmbeddingSnapshot {
        let check = |what: &str, id: usize, row: &[f32], want: usize| {
            assert_eq!(
                row.len(),
                want,
                "{what} row {id} has width {}, snapshot expects {want}",
                row.len()
            );
            assert!(
                row.iter().all(|v| v.is_finite()),
                "{what} row {id} holds non-finite values"
            );
        };
        for (u, own, social) in &self.user_rows {
            assert!(
                (*u as usize) < prev.n_users(),
                "delta user {u} out of range ({} users)",
                prev.n_users()
            );
            check("user own", *u as usize, own, prev.own_dim());
            check("user social", *u as usize, social, prev.social_dim());
        }
        for (i, own, social) in &self.item_rows {
            assert!(
                (*i as usize) < prev.n_items(),
                "delta item {i} out of range ({} items)",
                prev.n_items()
            );
            check("item own", *i as usize, own, prev.own_dim());
            check("item social", *i as usize, social, prev.social_dim());
        }
        for (n, (own, social)) in self.appended_items.iter().enumerate() {
            let id = prev.n_items() + n;
            check("appended item own", id, own, prev.own_dim());
            check("appended item social", id, social, prev.social_dim());
        }

        // Unchanged tables are aliased (shared clone, O(1) once the
        // source is shared); changed tables pay exactly one copy — the
        // copy-on-write detach of the first `set_row`, or the plain clone
        // if the source is still owned. Either way the previous version's
        // tables are untouched, so in-flight queries keep serving them.
        let patch = |table: &Matrix, rows: &[(u32, Vec<f32>, Vec<f32>)], social: bool| {
            if rows.is_empty() {
                return table.to_shared();
            }
            let mut out = table.clone();
            for (id, own_row, social_row) in rows {
                out.set_row(*id as usize, if social { social_row } else { own_row });
            }
            out
        };
        let user_own = patch(prev.user_own(), &self.user_rows, false);
        let user_social = patch(prev.user_social(), &self.user_rows, true);
        let mut item_own = patch(prev.item_own(), &self.item_rows, false);
        let mut item_social = patch(prev.item_social(), &self.item_rows, true);
        if !self.appended_items.is_empty() {
            // Grow-only append: the extended tables pay one copy of the
            // catalogue (vstack), never a re-layout of existing rows.
            let stack = |base: &Matrix, cols: usize, social: bool| {
                let tail = Matrix::from_fn(self.appended_items.len(), cols, |r, c| {
                    let (own_row, social_row) = &self.appended_items[r];
                    if social {
                        social_row[c]
                    } else {
                        own_row[c]
                    }
                });
                Matrix::vstack(&[base, &tail])
            };
            item_own = stack(&item_own, prev.own_dim(), false);
            item_social = stack(&item_social, prev.social_dim(), true);
        }
        EmbeddingSnapshot::new_trusted(prev.alpha(), user_own, item_own, user_social, item_social)
    }
}

/// A trained model that can export its cached final embeddings.
pub trait SnapshotSource {
    /// Freezes the model's post-training embeddings for serving.
    ///
    /// # Panics
    /// Implementations panic if the model has not been fitted.
    fn export_snapshot(&self) -> EmbeddingSnapshot;
}

impl SnapshotSource for Mf {
    fn export_snapshot(&self) -> EmbeddingSnapshot {
        assert!(self.user_embeddings().rows() > 0, "model not fitted");
        EmbeddingSnapshot::without_social(
            self.user_embeddings().clone(),
            self.item_embeddings().clone(),
        )
    }
}

impl SnapshotSource for Gbmf {
    fn export_snapshot(&self) -> EmbeddingSnapshot {
        let (user, item, friend_mean) = self.tables();
        assert!(user.rows() > 0, "model not fitted");
        // GBMF shares one item table between the own and social terms.
        EmbeddingSnapshot::new(
            self.alpha(),
            user.clone(),
            item.clone(),
            friend_mean.clone(),
            item.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> EmbeddingSnapshot {
        EmbeddingSnapshot::new(
            0.25,
            Matrix::from_fn(3, 2, |r, c| (r + c) as f32),
            Matrix::from_fn(5, 2, |r, c| (r as f32 - c as f32) * 0.5),
            Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.1),
            Matrix::from_fn(5, 4, |r, c| ((r + c) % 3) as f32),
        )
    }

    #[test]
    fn score_blends_own_and_social() {
        let s = snap();
        let (u, i) = (1u32, 2u32);
        let own: f32 = s
            .user_own()
            .row(u as usize)
            .iter()
            .zip(s.item_own().row(i as usize))
            .map(|(a, b)| a * b)
            .sum();
        let social: f32 = s
            .user_social()
            .row(u as usize)
            .iter()
            .zip(s.item_social().row(i as usize))
            .map(|(a, b)| a * b)
            .sum();
        let expect = 0.75 * own + 0.25 * social;
        assert!((s.score(u, i) - expect).abs() < 1e-6);
    }

    #[test]
    fn score_block_matches_pointwise_scores() {
        let s = snap();
        let mut block = vec![0.0f32; 5];
        s.score_block(2, 0, &mut block);
        for (i, &b) in block.iter().enumerate() {
            assert_eq!(b, s.score(2, i as u32));
        }
    }

    #[test]
    fn score_block_multi_matches_score_block_bitwise() {
        let s = snap();
        let users = [2u32, 0, 1, 2]; // duplicates allowed
        for &(start, len) in &[(0usize, 5usize), (1, 3), (4, 1), (2, 0)] {
            let mut multi = vec![0.0f32; users.len() * len];
            s.score_block_multi(&users, start, len, &mut multi);
            for (u, &user) in users.iter().enumerate() {
                let mut single = vec![0.0f32; len];
                s.score_block(user, start, &mut single);
                for j in 0..len {
                    assert_eq!(
                        multi[u * len + j].to_bits(),
                        single[j].to_bits(),
                        "user {user} item {j} (start {start})"
                    );
                }
            }
        }
    }

    #[test]
    fn score_indexed_matches_score_block_bitwise() {
        let s = snap();
        let mut full = vec![0.0f32; 5];
        s.score_block(1, 0, &mut full);
        let items = [4u32, 0, 2, 2, 1];
        let mut got = vec![0.0f32; items.len()];
        s.score_indexed(1, &items, &mut got);
        for (j, &i) in items.iter().enumerate() {
            assert_eq!(got[j].to_bits(), full[i as usize].to_bits(), "item {i}");
        }
    }

    #[test]
    fn scorer_impl_matches_score() {
        let s = snap();
        let items = [4u32, 0, 2];
        let scores = s.score_items(1, &items);
        for (&i, &v) in items.iter().zip(&scores) {
            assert_eq!(v, s.score(1, i));
        }
    }

    #[test]
    fn without_social_is_pure_dot() {
        let s = EmbeddingSnapshot::without_social(
            Matrix::from_vec(1, 2, vec![2.0, 3.0]),
            Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.5, 0.5]),
        );
        assert_eq!(s.score(0, 0), 2.0);
        assert_eq!(s.score(0, 1), 2.5);
        assert_eq!(s.social_dim(), 0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn diverged_embeddings_rejected() {
        let mut bad = Matrix::zeros(3, 2);
        bad.set(1, 1, f32::NAN);
        EmbeddingSnapshot::without_social(bad, Matrix::zeros(5, 2));
    }

    #[test]
    fn shared_snapshot_scores_bitwise_like_the_original() {
        let s = snap();
        let shared = s.to_shared();
        assert!(shared.item_own().is_shared());
        for u in 0..3u32 {
            for i in 0..5u32 {
                assert_eq!(shared.score(u, i).to_bits(), s.score(u, i).to_bits());
            }
        }
        // Idempotent: re-sharing aliases the same table memory.
        let again = shared.to_shared();
        assert_eq!(
            again.item_own().as_slice().as_ptr(),
            shared.item_own().as_slice().as_ptr()
        );
    }

    #[test]
    fn slice_items_scores_match_the_full_catalogue_bitwise() {
        let s = snap().to_shared();
        for (start, len) in [(0usize, 5usize), (1, 3), (4, 1), (2, 0), (5, 0)] {
            let slice = s.slice_items(start, len);
            assert_eq!(slice.n_items(), len);
            assert_eq!(slice.n_users(), s.n_users());
            let mut local = vec![0.0f32; len];
            let mut global = vec![0.0f32; len];
            for u in 0..s.n_users() as u32 {
                slice.score_block(u, 0, &mut local);
                s.score_block(u, start, &mut global);
                for (a, b) in local.iter().zip(&global) {
                    assert_eq!(a.to_bits(), b.to_bits(), "user {u} range {start}+{len}");
                }
            }
            // Zero-copy: the slice aliases the shared item table.
            if len > 0 {
                assert_eq!(
                    slice.item_own().as_slice().as_ptr(),
                    s.item_own().row(start).as_ptr()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_items_checks_bounds() {
        snap().slice_items(3, 3);
    }

    #[test]
    fn delta_apply_is_bitwise_the_full_rebuild() {
        let base = snap().to_shared();
        let delta = SnapshotDelta::new()
            .set_user(1, vec![9.0, -2.0], vec![0.5, 0.25, 0.0, 1.0])
            .set_item(3, vec![1.5, 2.5], vec![0.0, 1.0, 2.0, 3.0])
            .set_item(3, vec![-1.5, 0.5], vec![4.0, 3.0, 2.0, 1.0]) // last wins
            .append_item(vec![7.0, 8.0], vec![1.0, 1.0, 1.0, 1.0]);
        let next = delta.apply(&base);

        // The equivalent full rebuild, row by row.
        let full = EmbeddingSnapshot::new(
            base.alpha(),
            Matrix::from_fn(3, 2, |r, c| {
                if r == 1 {
                    [9.0, -2.0][c]
                } else {
                    base.user_own().get(r, c)
                }
            }),
            Matrix::from_fn(6, 2, |r, c| match r {
                3 => [-1.5, 0.5][c],
                5 => [7.0, 8.0][c],
                _ => base.item_own().get(r, c),
            }),
            Matrix::from_fn(3, 4, |r, c| {
                if r == 1 {
                    [0.5, 0.25, 0.0, 1.0][c]
                } else {
                    base.user_social().get(r, c)
                }
            }),
            Matrix::from_fn(6, 4, |r, c| match r {
                3 => [4.0, 3.0, 2.0, 1.0][c],
                5 => [1.0; 4][c],
                _ => base.item_social().get(r, c),
            }),
        );
        assert_eq!(next.n_items(), 6);
        for u in 0..3u32 {
            for i in 0..6u32 {
                assert_eq!(
                    next.score(u, i).to_bits(),
                    full.score(u, i).to_bits(),
                    "user {u} item {i}"
                );
            }
        }
        // The previous version's tables are untouched by the publish.
        assert_eq!(base.n_items(), 5);
        assert_eq!(base.item_own().get(3, 0), snap().item_own().get(3, 0));
    }

    #[test]
    fn delta_apply_aliases_unchanged_tables() {
        let base = snap().to_shared();
        let next = SnapshotDelta::new()
            .set_item(0, vec![1.0, 2.0], vec![0.0, 0.0, 0.0, 0.0])
            .apply(&base);
        // User tables had no changed rows: zero-copy aliases.
        assert_eq!(
            next.user_own().as_slice().as_ptr(),
            base.user_own().as_slice().as_ptr()
        );
        assert_eq!(
            next.user_social().as_slice().as_ptr(),
            base.user_social().as_slice().as_ptr()
        );
        // Item tables changed: detached, base unchanged.
        assert_ne!(
            next.item_own().as_slice().as_ptr(),
            base.item_own().as_slice().as_ptr()
        );
        assert_eq!(next.item_own().get(0, 0), 1.0);
        assert_eq!(base.item_own().get(0, 0), snap().item_own().get(0, 0));
    }

    #[test]
    fn empty_delta_is_identity() {
        let base = snap().to_shared();
        let delta = SnapshotDelta::new();
        assert!(delta.is_empty());
        let next = delta.apply(&base);
        assert_eq!(next, base);
        assert_eq!(
            next.item_own().as_slice().as_ptr(),
            base.item_own().as_slice().as_ptr()
        );
    }

    #[test]
    fn delta_changed_ids_are_sorted_and_deduped() {
        let d = SnapshotDelta::new()
            .set_item(4, vec![0.0; 2], vec![0.0; 4])
            .set_item(1, vec![0.0; 2], vec![0.0; 4])
            .set_item(4, vec![0.0; 2], vec![0.0; 4]);
        assert_eq!(d.changed_item_ids(), vec![1, 4]);
        assert_eq!(d.n_appended(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn delta_rejects_out_of_range_item() {
        SnapshotDelta::new()
            .set_item(5, vec![0.0; 2], vec![0.0; 4])
            .apply(&snap());
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn delta_rejects_non_finite_rows() {
        SnapshotDelta::new()
            .set_item(0, vec![f32::NAN, 0.0], vec![0.0; 4])
            .apply(&snap());
    }

    #[test]
    #[should_panic(expected = "width")]
    fn delta_rejects_wrong_width_rows() {
        SnapshotDelta::new()
            .append_item(vec![0.0; 3], vec![0.0; 4])
            .apply(&snap());
    }

    #[test]
    #[should_panic(expected = "row mismatch")]
    fn mismatched_tables_rejected() {
        EmbeddingSnapshot::new(
            0.5,
            Matrix::zeros(3, 2),
            Matrix::zeros(5, 2),
            Matrix::zeros(4, 2),
            Matrix::zeros(5, 2),
        );
    }
}
