//! Neural Graph Collaborative Filtering [25].

use crate::common::{
    add_l2, bpr_loss, dot_scores, shuffled_batches, Recommender, TrainConfig, TrainReport,
};
use gb_autograd::{Adam, AdamConfig, ParamId, ParamStore, Tape, Var};
use gb_data::convert::{to_pairs, InteractionKind};
use gb_data::{Dataset, NegativeSampler};
use gb_eval::Scorer;
use gb_graph::Bipartite;
use gb_tensor::{init, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// NGCF with two propagation layers on the user–item bipartite graph.
///
/// Per layer: `e' = LeakyReLU(W1 (e + agg) + W2 (agg ⊙ e) + b)` where
/// `agg` is the neighbourhood mean — the mean-normalized form of NGCF's
/// message construction (self-connection + bi-interaction term). Layer
/// outputs are concatenated as in the original. Trained with BPR on the
/// both-roles conversion.
pub struct Ngcf {
    cfg: TrainConfig,
    n_layers: usize,
    user_final: Matrix,
    item_final: Matrix,
}

struct NgcfParams {
    store: ParamStore,
    u: ParamId,
    v: ParamId,
    w1: Vec<ParamId>,
    w2: Vec<ParamId>,
    b: Vec<ParamId>,
}

impl Ngcf {
    /// Creates an untrained NGCF model with the paper's L = 2.
    pub fn new(cfg: TrainConfig) -> Self {
        Self {
            cfg,
            n_layers: 2,
            user_final: Matrix::zeros(0, 0),
            item_final: Matrix::zeros(0, 0),
        }
    }

    fn init_params(&self, train: &Dataset, rng: &mut StdRng) -> NgcfParams {
        let d = self.cfg.dim;
        let mut store = ParamStore::new();
        let u = store.add("ngcf.user", init::xavier_uniform(train.n_users(), d, rng));
        let v = store.add("ngcf.item", init::xavier_uniform(train.n_items(), d, rng));
        let (mut w1, mut w2, mut b) = (Vec::new(), Vec::new(), Vec::new());
        for l in 0..self.n_layers {
            w1.push(store.add(format!("ngcf.w1.{l}"), init::xavier_uniform(d, d, rng)));
            w2.push(store.add(format!("ngcf.w2.{l}"), init::xavier_uniform(d, d, rng)));
            b.push(store.add(format!("ngcf.b.{l}"), Matrix::zeros(1, d)));
        }
        NgcfParams {
            store,
            u,
            v,
            w1,
            w2,
            b,
        }
    }

    /// Full-graph propagation; returns concatenated (user, item) finals.
    fn propagate(
        p: &NgcfParams,
        tape: &mut Tape,
        graph: &Bipartite,
        n_layers: usize,
    ) -> (Var, Var) {
        let mut u_cur = tape.param(&p.store, p.u);
        let mut v_cur = tape.param(&p.store, p.v);
        let mut u_all = vec![u_cur];
        let mut v_all = vec![v_cur];
        for l in 0..n_layers {
            let w1 = tape.param(&p.store, p.w1[l]);
            let w2 = tape.param(&p.store, p.w2[l]);
            let b = tape.param(&p.store, p.b[l]);

            let agg_u = tape.segment_mean(
                v_cur,
                graph.user_to_item().offsets(),
                graph.user_to_item().members(),
            );
            let self_u = tape.add(u_cur, agg_u);
            let t1u = tape.matmul(self_u, w1);
            let bi_u = tape.mul(agg_u, u_cur);
            let t2u = tape.matmul(bi_u, w2);
            let sum_u = tape.add(t1u, t2u);
            let lin_u = tape.add_bias(sum_u, b);
            let u_next = tape.leaky_relu(lin_u, 0.2);

            let agg_v = tape.segment_mean(
                u_cur,
                graph.item_to_user().offsets(),
                graph.item_to_user().members(),
            );
            let self_v = tape.add(v_cur, agg_v);
            let t1v = tape.matmul(self_v, w1);
            let bi_v = tape.mul(agg_v, v_cur);
            let t2v = tape.matmul(bi_v, w2);
            let sum_v = tape.add(t1v, t2v);
            let lin_v = tape.add_bias(sum_v, b);
            let v_next = tape.leaky_relu(lin_v, 0.2);

            u_cur = u_next;
            v_cur = v_next;
            u_all.push(u_cur);
            v_all.push(v_cur);
        }
        (tape.concat_cols(&u_all), tape.concat_cols(&v_all))
    }
}

impl Recommender for Ngcf {
    fn name(&self) -> &str {
        "NGCF"
    }

    fn fit(&mut self, train: &Dataset) -> TrainReport {
        let cfg = self.cfg.clone();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut p = self.init_params(train, &mut rng);
        let mut adam = Adam::new(AdamConfig::with_lr(cfg.lr), &p.store);

        let pairs = to_pairs(train, InteractionKind::BothRoles);
        let graph = Bipartite::from_interactions(train.n_users(), train.n_items(), &pairs);
        let sampler = NegativeSampler::from_dataset(train);

        let mut final_loss = 0.0f32;
        let start = Instant::now();
        for epoch in 0..cfg.epochs {
            let mut epoch_loss = 0.0f32;
            let mut n_batches = 0usize;
            for batch in shuffled_batches(pairs.len(), cfg.batch_size, &mut rng) {
                let mut users = Vec::new();
                let mut pos = Vec::new();
                let mut neg = Vec::new();
                for idx in batch {
                    let (usr, item) = pairs[idx];
                    for _ in 0..cfg.neg_ratio.max(1) {
                        users.push(usr);
                        pos.push(item);
                        neg.push(sampler.sample_one(usr, &mut rng));
                    }
                }
                let n = users.len();

                let mut tape = Tape::new();
                let (u_final, v_final) = Self::propagate(&p, &mut tape, &graph, self.n_layers);
                let ue = tape.gather(u_final, Arc::new(users));
                let pe = tape.gather(v_final, Arc::new(pos));
                let ne = tape.gather(v_final, Arc::new(neg));
                let pos_s = tape.rowwise_dot(ue, pe);
                let neg_s = tape.rowwise_dot(ue, ne);
                let loss = bpr_loss(&mut tape, pos_s, neg_s);
                let loss = add_l2(&mut tape, loss, &[ue, pe, ne], cfg.l2, n);

                epoch_loss += tape.value(loss).get(0, 0);
                n_batches += 1;
                let grads = tape.backward(loss, &p.store);
                adam.step(&mut p.store, &grads);
            }
            final_loss = epoch_loss / n_batches.max(1) as f32;
            if cfg.verbose {
                eprintln!("[NGCF] epoch {epoch}: loss {final_loss:.4}");
            }
        }
        let elapsed = start.elapsed().as_secs_f64();

        // Cache final embeddings with one last propagation.
        let mut tape = Tape::new();
        let (u_final, v_final) = Self::propagate(&p, &mut tape, &graph, self.n_layers);
        self.user_final = tape.value(u_final).clone();
        self.item_final = tape.value(v_final).clone();

        TrainReport {
            epochs: cfg.epochs,
            mean_epoch_secs: elapsed / cfg.epochs.max(1) as f64,
            final_loss,
        }
    }
}

impl Scorer for Ngcf {
    fn score_items(&self, user: u32, items: &[u32]) -> Vec<f32> {
        dot_scores(self.user_final.row(user as usize), &self.item_final, items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_data::GroupBehavior;

    #[test]
    fn learns_simple_preference_structure() {
        let behaviors = vec![
            GroupBehavior::new(0, 0, vec![]),
            GroupBehavior::new(0, 1, vec![]),
            GroupBehavior::new(1, 2, vec![]),
            GroupBehavior::new(1, 3, vec![]),
        ];
        let d = Dataset::new(2, 4, behaviors, vec![(0, 1)], vec![1; 4]);
        let cfg = TrainConfig {
            dim: 8,
            epochs: 150,
            batch_size: 8,
            lr: 0.02,
            ..Default::default()
        };
        let mut m = Ngcf::new(cfg);
        m.fit(&d);
        let s = m.score_items(0, &[0, 1, 2, 3]);
        assert!(s[0] > s[2] && s[1] > s[3], "scores {s:?}");
    }

    #[test]
    fn final_embedding_width_is_l_plus_one_times_d() {
        let behaviors = vec![GroupBehavior::new(0, 0, vec![])];
        let d = Dataset::new(2, 2, behaviors, vec![], vec![1; 2]);
        let cfg = TrainConfig {
            dim: 4,
            epochs: 1,
            ..Default::default()
        };
        let mut m = Ngcf::new(cfg);
        m.fit(&d);
        assert_eq!(m.user_final.cols(), 4 * 3); // d * (L + 1)
        assert_eq!(m.item_final.cols(), 4 * 3);
    }
}
