//! Hot-swappable published snapshots.
//!
//! Training and serving meet at a [`SnapshotHandle`]: the trainer
//! publishes a fresh [`EmbeddingSnapshot`] every few epochs and every
//! serving query loads the current one — no restart, no torn reads.
//!
//! The swap is an ArcSwap-style pointer replacement behind an `RwLock`:
//! readers clone one `Arc<VersionedSnapshot>` (a few nanoseconds under an
//! uncontended read lock) and then score against an immutable object that
//! can never change underneath them. The version counter rides inside the
//! same `Arc`, so a `(version, tables)` pair is always mutually
//! consistent — the serving cache keys its invalidation on exactly that
//! version (see `gb-serve`).
//!
//! ## Refresh protocol
//!
//! 1. Versions are assigned by [`SnapshotHandle::publish`] and increase
//!    by one per publish, starting at 1 for the snapshot the handle was
//!    created with. They order snapshots; nothing else about a version is
//!    meaningful.
//! 2. A query that loaded version `v` keeps scoring against `v` even if
//!    `v+1` is published mid-query — responses are consistent with
//!    exactly one published snapshot, never a blend.
//! 3. Cached responses record the version they were computed from and
//!    are treated as misses once the current version differs (the cache
//!    invalidation rule; asserted by the serve integration tests).

use crate::snapshot::EmbeddingSnapshot;
use std::sync::{Arc, RwLock};

/// An immutable snapshot plus the version it was published as.
#[derive(Clone, Debug)]
pub struct VersionedSnapshot {
    version: u64,
    snapshot: EmbeddingSnapshot,
}

impl VersionedSnapshot {
    /// Pairs a snapshot with an externally assigned version.
    ///
    /// [`SnapshotHandle::publish`] assigns versions for the ordinary
    /// hot-swap flow; this constructor exists for layers that *derive*
    /// snapshots from a published one and must tag the derivative with
    /// the source's version — e.g. the sharded serving tier, which
    /// slices one published catalogue into per-shard sub-snapshots and
    /// pins every slice to the global version so a scatter can never mix
    /// publishes.
    pub fn new(version: u64, snapshot: EmbeddingSnapshot) -> Self {
        Self { version, snapshot }
    }

    /// The publish ordinal (1 = the snapshot the handle started with).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The published tables.
    pub fn snapshot(&self) -> &EmbeddingSnapshot {
        &self.snapshot
    }
}

/// A shared, versioned pointer to the currently-served snapshot.
///
/// Cloning the handle is cheap and every clone observes the same
/// publishes — the trainer holds one clone, the query engine another.
#[derive(Clone)]
pub struct SnapshotHandle {
    current: Arc<RwLock<Arc<VersionedSnapshot>>>,
}

impl SnapshotHandle {
    /// A handle serving `initial` as version 1.
    pub fn new(initial: EmbeddingSnapshot) -> Self {
        Self {
            current: Arc::new(RwLock::new(Arc::new(VersionedSnapshot {
                version: 1,
                snapshot: initial,
            }))),
        }
    }

    /// Atomically replaces the served snapshot, returning the version
    /// assigned to it.
    ///
    /// In-flight queries keep the snapshot they already loaded; new loads
    /// observe `snapshot` immediately.
    ///
    /// # Panics
    /// Panics if `snapshot` disagrees with the current one on user or
    /// item counts — mid-run refreshes never resize the universe, and a
    /// mismatched table would break seen-filters sized at startup.
    pub fn publish(&self, snapshot: EmbeddingSnapshot) -> u64 {
        let mut slot = self.current.write().expect("snapshot lock poisoned");
        assert_eq!(
            snapshot.n_users(),
            slot.snapshot.n_users(),
            "published snapshot changes the user count"
        );
        assert_eq!(
            snapshot.n_items(),
            slot.snapshot.n_items(),
            "published snapshot changes the item count"
        );
        let version = slot.version + 1;
        *slot = Arc::new(VersionedSnapshot { version, snapshot });
        version
    }

    /// Loads the current `(version, snapshot)` pair.
    ///
    /// The returned `Arc` stays valid (and unchanged) for as long as the
    /// caller holds it, regardless of later publishes.
    pub fn load(&self) -> Arc<VersionedSnapshot> {
        Arc::clone(&self.current.read().expect("snapshot lock poisoned"))
    }

    /// The currently-served version without cloning the snapshot pointer.
    pub fn version(&self) -> u64 {
        self.current.read().expect("snapshot lock poisoned").version
    }
}

impl std::fmt::Debug for SnapshotHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cur = self.load();
        f.debug_struct("SnapshotHandle")
            .field("version", &cur.version)
            .field("n_users", &cur.snapshot.n_users())
            .field("n_items", &cur.snapshot.n_items())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_tensor::Matrix;

    fn snap(fill: f32) -> EmbeddingSnapshot {
        EmbeddingSnapshot::without_social(Matrix::full(3, 2, fill), Matrix::full(4, 2, fill))
    }

    #[test]
    fn publish_bumps_version_monotonically() {
        let h = SnapshotHandle::new(snap(0.0));
        assert_eq!(h.version(), 1);
        assert_eq!(h.publish(snap(1.0)), 2);
        assert_eq!(h.publish(snap(2.0)), 3);
        assert_eq!(h.version(), 3);
        assert_eq!(h.load().snapshot().score(0, 0), 2.0 * 2.0 * 2.0);
    }

    #[test]
    fn loaded_snapshot_survives_later_publishes() {
        let h = SnapshotHandle::new(snap(1.0));
        let old = h.load();
        h.publish(snap(5.0));
        assert_eq!(old.version(), 1);
        assert_eq!(old.snapshot().score(1, 1), 2.0, "old Arc still v1 tables");
        assert_eq!(h.load().version(), 2);
    }

    #[test]
    fn clones_share_publishes() {
        let h = SnapshotHandle::new(snap(0.5));
        let trainer_side = h.clone();
        trainer_side.publish(snap(3.0));
        assert_eq!(h.version(), 2);
    }

    #[test]
    #[should_panic(expected = "user count")]
    fn resizing_publish_rejected() {
        let h = SnapshotHandle::new(snap(1.0));
        h.publish(EmbeddingSnapshot::without_social(
            Matrix::full(9, 2, 1.0),
            Matrix::full(4, 2, 1.0),
        ));
    }
}
