//! Hot-swappable published snapshots.
//!
//! Training and serving meet at a [`SnapshotHandle`]: the trainer
//! publishes a fresh [`EmbeddingSnapshot`] every few epochs and every
//! serving query loads the current one — no restart, no torn reads.
//!
//! The swap is an ArcSwap-style pointer replacement behind an `RwLock`:
//! readers clone one `Arc<VersionedSnapshot>` (a few nanoseconds under an
//! uncontended read lock) and then score against an immutable object that
//! can never change underneath them. The version counter rides inside the
//! same `Arc`, so a `(version, tables)` pair is always mutually
//! consistent — the serving cache keys its invalidation on exactly that
//! version (see `gb-serve`).
//!
//! ## Refresh protocol
//!
//! 1. Versions are assigned by [`SnapshotHandle::publish`] and increase
//!    by one per publish, starting at 1 for the snapshot the handle was
//!    created with. They order snapshots; nothing else about a version is
//!    meaningful.
//! 2. A query that loaded version `v` keeps scoring against `v` even if
//!    `v+1` is published mid-query — responses are consistent with
//!    exactly one published snapshot, never a blend.
//! 3. Cached responses record the version they were computed from and
//!    are treated as misses once the current version differs (the cache
//!    invalidation rule; asserted by the serve integration tests).

use crate::snapshot::{EmbeddingSnapshot, SnapshotDelta};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Reads `l`, recovering from poisoning instead of propagating the
/// panic to every later reader. Sound for the snapshot slot because
/// every panic in the publish paths (the validation asserts,
/// `SnapshotDelta::apply`) fires *before* the slot is mutated — a
/// poisoned lock still guards a fully consistent previous version.
fn read_recover<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    // lint:allow(no-bare-locks): this is the recover helper itself
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// [`read_recover`] for writers — same soundness argument.
fn write_recover<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    // lint:allow(no-bare-locks): this is the recover helper itself
    l.write().unwrap_or_else(PoisonError::into_inner)
}

/// What a delta publish changed, stamped onto the version it produced.
///
/// Consumers that maintain per-version derived structures (the serving
/// IVF index) read this to update incrementally instead of rebuilding:
/// if they hold the structure for [`DeltaStamp::prev_version`], only
/// [`DeltaStamp::changed_items`] moved and [`DeltaStamp::n_appended`]
/// rows appeared at the end of the catalogue — every other item row is
/// byte-identical across the two versions.
#[derive(Clone, Debug)]
pub struct DeltaStamp {
    prev_version: u64,
    changed_items: Vec<u32>,
    n_appended: usize,
}

impl DeltaStamp {
    /// A stamp for a derived snapshot: `changed_items` is normalized to
    /// ascending unique ids. Layers that slice a stamped publish into
    /// sub-snapshots (the sharded serving tier) use this to re-stamp each
    /// slice with its translated change set, so per-slice consumers keep
    /// the incremental path.
    pub fn new(prev_version: u64, mut changed_items: Vec<u32>, n_appended: usize) -> Self {
        changed_items.sort_unstable();
        changed_items.dedup();
        Self {
            prev_version,
            changed_items,
            n_appended,
        }
    }

    /// The version this delta was applied on top of (always the
    /// immediately preceding publish: `version() - 1`).
    pub fn prev_version(&self) -> u64 {
        self.prev_version
    }

    /// Replaced item ids, ascending and unique (appended ids excluded).
    pub fn changed_items(&self) -> &[u32] {
        &self.changed_items
    }

    /// Item rows appended past the previous catalogue end.
    pub fn n_appended(&self) -> usize {
        self.n_appended
    }
}

/// An immutable snapshot plus the version it was published as.
#[derive(Clone, Debug)]
pub struct VersionedSnapshot {
    version: u64,
    snapshot: EmbeddingSnapshot,
    /// Present iff this version was produced by
    /// [`SnapshotHandle::publish_delta`].
    delta: Option<Arc<DeltaStamp>>,
}

impl VersionedSnapshot {
    /// Pairs a snapshot with an externally assigned version.
    ///
    /// [`SnapshotHandle::publish`] assigns versions for the ordinary
    /// hot-swap flow; this constructor exists for layers that *derive*
    /// snapshots from a published one and must tag the derivative with
    /// the source's version — e.g. the sharded serving tier, which
    /// slices one published catalogue into per-shard sub-snapshots and
    /// pins every slice to the global version so a scatter can never mix
    /// publishes.
    pub fn new(version: u64, snapshot: EmbeddingSnapshot) -> Self {
        Self {
            version,
            snapshot,
            delta: None,
        }
    }

    /// [`VersionedSnapshot::new`] with a [`DeltaStamp`] attached — for
    /// derived snapshots that preserve the incremental-update contract of
    /// a stamped publish (e.g. a shard slice of a delta-published
    /// catalogue, stamped with the change set translated to local ids).
    ///
    /// The caller owns the contract: every item row of `snapshot` outside
    /// `stamp.changed_items()` and the appended tail must be byte-equal
    /// to the same row at `stamp.prev_version()`.
    pub fn with_delta(version: u64, snapshot: EmbeddingSnapshot, stamp: DeltaStamp) -> Self {
        Self {
            version,
            snapshot,
            delta: Some(Arc::new(stamp)),
        }
    }

    /// The publish ordinal (1 = the snapshot the handle started with).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The published tables.
    pub fn snapshot(&self) -> &EmbeddingSnapshot {
        &self.snapshot
    }

    /// The delta that produced this version, if it was published with
    /// [`SnapshotHandle::publish_delta`] — `None` for full publishes and
    /// for derived snapshots tagged via [`VersionedSnapshot::new`].
    pub fn delta(&self) -> Option<&DeltaStamp> {
        self.delta.as_deref()
    }
}

/// A shared, versioned pointer to the currently-served snapshot.
///
/// Cloning the handle is cheap and every clone observes the same
/// publishes — the trainer holds one clone, the query engine another.
#[derive(Clone)]
pub struct SnapshotHandle {
    current: Arc<RwLock<Arc<VersionedSnapshot>>>,
}

impl SnapshotHandle {
    /// A handle serving `initial` as version 1.
    pub fn new(initial: EmbeddingSnapshot) -> Self {
        Self {
            current: Arc::new(RwLock::new(Arc::new(VersionedSnapshot {
                version: 1,
                snapshot: initial,
                delta: None,
            }))),
        }
    }

    /// Atomically replaces the served snapshot, returning the version
    /// assigned to it.
    ///
    /// In-flight queries keep the snapshot they already loaded; new loads
    /// observe `snapshot` immediately.
    ///
    /// # Panics
    /// Panics if `snapshot` changes the user count or shrinks the item
    /// catalogue. The universe rule is **grow-only**: the user population
    /// is fixed mid-run (seen-filters are sized per user at startup), and
    /// items may only be appended — newly opened deals land past the old
    /// catalogue end, so existing item ids, filter columns, and shard
    /// ranges never shift. Serving filters probe appended ids as unseen.
    pub fn publish(&self, snapshot: EmbeddingSnapshot) -> u64 {
        // Recover from poison rather than propagate it (see
        // `write_recover`) — one rejected publish must not take serving
        // down with it.
        let mut slot = write_recover(&self.current);
        assert_eq!(
            snapshot.n_users(),
            slot.snapshot.n_users(),
            "published snapshot changes the user count"
        );
        assert!(
            snapshot.n_items() >= slot.snapshot.n_items(),
            "published snapshot shrinks the item count ({} -> {}): the universe is grow-only",
            slot.snapshot.n_items(),
            snapshot.n_items()
        );
        let version = slot.version + 1;
        *slot = Arc::new(VersionedSnapshot {
            version,
            snapshot,
            delta: None,
        });
        version
    }

    /// Publishes the successor of the current snapshot under `delta`,
    /// returning the version assigned to it.
    ///
    /// This is the streaming refresh path: instead of exporting and
    /// validating a full snapshot, the trainer ships only the changed
    /// user/item rows (plus grow-only appended items) and the handle
    /// materializes the new version copy-on-write over the current one —
    /// unchanged tables are aliased, changed tables pay one copy, and the
    /// result is bitwise identical to publishing the equivalent full
    /// snapshot (see [`SnapshotDelta::apply`]). The new version carries a
    /// [`DeltaStamp`] so per-version derived structures downstream (the
    /// serving IVF index) can update incrementally.
    ///
    /// # Panics
    /// Panics if the delta is malformed (out-of-range ids, wrong row
    /// widths, non-finite values).
    pub fn publish_delta(&self, delta: &SnapshotDelta) -> u64 {
        // Poison recovery is sound here for the same reason as in `publish`.
        let mut slot = write_recover(&self.current);
        let snapshot = delta.apply(&slot.snapshot);
        let version = slot.version + 1;
        let stamp = DeltaStamp {
            prev_version: slot.version,
            changed_items: delta.changed_item_ids(),
            n_appended: delta.n_appended(),
        };
        *slot = Arc::new(VersionedSnapshot {
            version,
            snapshot,
            delta: Some(Arc::new(stamp)),
        });
        version
    }

    /// Loads the current `(version, snapshot)` pair.
    ///
    /// The returned `Arc` stays valid (and unchanged) for as long as the
    /// caller holds it, regardless of later publishes.
    pub fn load(&self) -> Arc<VersionedSnapshot> {
        Arc::clone(&read_recover(&self.current))
    }

    /// The currently-served version without cloning the snapshot pointer.
    pub fn version(&self) -> u64 {
        read_recover(&self.current).version
    }
}

impl std::fmt::Debug for SnapshotHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cur = self.load();
        f.debug_struct("SnapshotHandle")
            .field("version", &cur.version)
            .field("n_users", &cur.snapshot.n_users())
            .field("n_items", &cur.snapshot.n_items())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_tensor::Matrix;

    fn snap(fill: f32) -> EmbeddingSnapshot {
        EmbeddingSnapshot::without_social(Matrix::full(3, 2, fill), Matrix::full(4, 2, fill))
    }

    #[test]
    fn publish_bumps_version_monotonically() {
        let h = SnapshotHandle::new(snap(0.0));
        assert_eq!(h.version(), 1);
        assert_eq!(h.publish(snap(1.0)), 2);
        assert_eq!(h.publish(snap(2.0)), 3);
        assert_eq!(h.version(), 3);
        assert_eq!(h.load().snapshot().score(0, 0), 2.0 * 2.0 * 2.0);
    }

    #[test]
    fn loaded_snapshot_survives_later_publishes() {
        let h = SnapshotHandle::new(snap(1.0));
        let old = h.load();
        h.publish(snap(5.0));
        assert_eq!(old.version(), 1);
        assert_eq!(old.snapshot().score(1, 1), 2.0, "old Arc still v1 tables");
        assert_eq!(h.load().version(), 2);
    }

    #[test]
    fn clones_share_publishes() {
        let h = SnapshotHandle::new(snap(0.5));
        let trainer_side = h.clone();
        trainer_side.publish(snap(3.0));
        assert_eq!(h.version(), 2);
    }

    #[test]
    #[should_panic(expected = "user count")]
    fn resizing_publish_rejected() {
        let h = SnapshotHandle::new(snap(1.0));
        h.publish(EmbeddingSnapshot::without_social(
            Matrix::full(9, 2, 1.0),
            Matrix::full(4, 2, 1.0),
        ));
    }

    #[test]
    fn rejected_publish_does_not_poison_the_handle() {
        let h = SnapshotHandle::new(snap(1.0));
        let publisher = h.clone();
        // A publish that trips the validation asserts panics while holding
        // the write lock; serving must keep reading the previous version.
        let result = std::thread::spawn(move || {
            publisher.publish(EmbeddingSnapshot::without_social(
                Matrix::full(9, 2, 1.0),
                Matrix::full(4, 2, 1.0),
            ));
        })
        .join();
        assert!(result.is_err(), "resizing publish should panic");
        assert_eq!(h.version(), 1, "bad publish must not bump the version");
        assert_eq!(h.load().snapshot().score(0, 0), 2.0);
        assert_eq!(h.publish(snap(2.0)), 2, "handle still accepts publishes");
    }

    #[test]
    fn item_growth_is_an_allowed_publish() {
        let h = SnapshotHandle::new(snap(1.0));
        let v = h.publish(EmbeddingSnapshot::without_social(
            Matrix::full(3, 2, 2.0),
            Matrix::full(6, 2, 2.0),
        ));
        assert_eq!(v, 2);
        assert_eq!(h.load().snapshot().n_items(), 6);
        assert!(h.load().delta().is_none(), "full publishes carry no stamp");
    }

    #[test]
    #[should_panic(expected = "grow-only")]
    fn item_shrink_rejected() {
        let h = SnapshotHandle::new(snap(1.0));
        h.publish(EmbeddingSnapshot::without_social(
            Matrix::full(3, 2, 1.0),
            Matrix::full(3, 2, 1.0),
        ));
    }

    #[test]
    fn publish_delta_stamps_the_version() {
        let h = SnapshotHandle::new(snap(1.0));
        let delta = SnapshotDelta::new()
            .set_item(2, vec![5.0, 6.0], vec![])
            .set_user(0, vec![-1.0, 1.0], vec![])
            .append_item(vec![3.0, 4.0], vec![]);
        let v = h.publish_delta(&delta);
        assert_eq!(v, 2);
        let cur = h.load();
        assert_eq!(cur.snapshot().n_items(), 5);
        assert_eq!(cur.snapshot().score(0, 2), -5.0 + 6.0);
        assert_eq!(cur.snapshot().score(0, 4), -3.0 + 4.0);
        let stamp = cur.delta().expect("delta publish is stamped");
        assert_eq!(stamp.prev_version(), 1);
        assert_eq!(stamp.changed_items(), &[2]);
        assert_eq!(stamp.n_appended(), 1);
        // A later full publish drops the stamp again.
        h.publish(cur.snapshot().clone());
        assert!(h.load().delta().is_none());
    }

    #[test]
    fn delta_publish_matches_full_publish_bitwise() {
        let base = snap(1.5);
        let delta = SnapshotDelta::new().set_item(1, vec![9.0, -3.0], vec![]);

        let via_delta = SnapshotHandle::new(base.clone());
        via_delta.publish_delta(&delta);
        let via_full = SnapshotHandle::new(base.clone());
        via_full.publish(delta.apply(&base));

        let (a, b) = (via_delta.load(), via_full.load());
        assert_eq!(a.version(), b.version());
        for u in 0..3u32 {
            for i in 0..4u32 {
                assert_eq!(
                    a.snapshot().score(u, i).to_bits(),
                    b.snapshot().score(u, i).to_bits(),
                    "user {u} item {i}"
                );
            }
        }
    }
}
