//! SIGR [21]: social-influence-based group recommendation.

use crate::common::{add_l2, shuffled_batches, Recommender, TrainConfig, TrainReport};
use gb_autograd::{Adam, AdamConfig, ParamId, ParamStore, Tape, Var};
use gb_data::convert::{to_groups, to_pairs, GroupData, InteractionKind};
use gb_data::{Dataset, NegativeSampler};
use gb_eval::Scorer;
use gb_graph::Bipartite;
use gb_tensor::{init, kernels, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// SIGR combines bipartite-graph embeddings (user–item propagation) with a
/// learned per-user **social influence** weight that controls how much
/// each member shapes the group representation, and classifies positive
/// vs. sampled-negative items with a **log loss** — the loss the paper
/// attributes to SIGR when analysing its weakness against BPR training.
///
/// Faithfulness note (documented in DESIGN.md): the original's latent
/// influence attention with global/local contexts is reduced to a learned
/// per-user influence scalar gating member contributions after one round
/// of bipartite propagation. The structure that matters for the
/// comparison — bipartite graph embedding + influence-weighted group
/// aggregation + log loss — is preserved.
pub struct Sigr {
    cfg: TrainConfig,
    state: Option<SigrState>,
}

struct SigrState {
    store: ParamStore,
    user_emb: ParamId,
    item_emb: ParamId,
    influence: ParamId,
    groups: GroupData,
    /// Cached post-training propagated embeddings.
    user_final: Matrix,
    item_final: Matrix,
}

/// One round of bipartite propagation: `u' = (u + mean items)/2`,
/// `v' = (v + mean users)/2`.
fn propagate(
    store: &ParamStore,
    user_emb: ParamId,
    item_emb: ParamId,
    tape: &mut Tape,
    graph: &Bipartite,
) -> (Var, Var) {
    let u0 = tape.param(store, user_emb);
    let v0 = tape.param(store, item_emb);
    let agg_u = tape.segment_mean(
        v0,
        graph.user_to_item().offsets(),
        graph.user_to_item().members(),
    );
    let agg_v = tape.segment_mean(
        u0,
        graph.item_to_user().offsets(),
        graph.item_to_user().members(),
    );
    let u_sum = tape.add(u0, agg_u);
    let v_sum = tape.add(v0, agg_v);
    (tape.scale(u_sum, 0.5), tape.scale(v_sum, 0.5))
}

impl Sigr {
    /// Creates an untrained SIGR model.
    pub fn new(cfg: TrainConfig) -> Self {
        Self { cfg, state: None }
    }

    /// Group representation for aligned group batches on the tape.
    fn group_repr(s: &SigrState, tape: &mut Tape, u_final: Var, gids: &[u32]) -> Var {
        let mut flat = Vec::new();
        let mut offsets = vec![0usize];
        for &g in gids {
            flat.extend_from_slice(&s.groups.members[g as usize]);
            offsets.push(flat.len());
        }
        let n_edges = flat.len();
        let flat = Arc::new(flat);
        let mem = tape.gather(u_final, flat.clone());
        let infl = tape.gather_param(&s.store, s.influence, flat);
        let gate = tape.sigmoid(infl);
        let gated = tape.scale_rows(mem, gate);
        let ident: Arc<Vec<u32>> = Arc::new((0..n_edges as u32).collect());
        tape.segment_mean(gated, Arc::new(offsets), ident)
    }
}

impl Recommender for Sigr {
    fn name(&self) -> &str {
        "SIGR"
    }

    fn fit(&mut self, train: &Dataset) -> TrainReport {
        let cfg = self.cfg.clone();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let groups = to_groups(train);

        let mut store = ParamStore::new();
        let d = cfg.dim;
        let user_emb = store.add(
            "sigr.user",
            init::xavier_uniform(train.n_users(), d, &mut rng),
        );
        let item_emb = store.add(
            "sigr.item",
            init::xavier_uniform(train.n_items(), d, &mut rng),
        );
        let influence = store.add("sigr.influence", Matrix::zeros(train.n_users(), 1));
        let mut adam = Adam::new(AdamConfig::with_lr(cfg.lr), &store);

        let pairs = to_pairs(train, InteractionKind::BothRoles);
        let graph = Bipartite::from_interactions(train.n_users(), train.n_items(), &pairs);
        let sampler = NegativeSampler::from_dataset(train);

        let mut state = SigrState {
            store,
            user_emb,
            item_emb,
            influence,
            groups,
            user_final: Matrix::zeros(0, 0),
            item_final: Matrix::zeros(0, 0),
        };
        let activities = state.groups.group_items.clone();

        let mut final_loss = 0.0f32;
        let start = Instant::now();
        for epoch in 0..cfg.epochs {
            let mut epoch_loss = 0.0f32;
            let mut n_batches = 0usize;
            for batch in shuffled_batches(activities.len(), cfg.batch_size, &mut rng) {
                let mut gids = Vec::new();
                let mut pos = Vec::new();
                let mut neg = Vec::new();
                for idx in batch {
                    let (g, item) = activities[idx];
                    for _ in 0..cfg.neg_ratio.max(1) {
                        gids.push(g);
                        pos.push(item);
                        neg.push(sampler.sample_one(g, &mut rng));
                    }
                }
                let n = gids.len();

                let mut tape = Tape::new();
                let (u_final, v_final) = propagate(
                    &state.store,
                    state.user_emb,
                    state.item_emb,
                    &mut tape,
                    &graph,
                );
                let grp = Sigr::group_repr(&state, &mut tape, u_final, &gids);
                let pe = tape.gather(v_final, Arc::new(pos));
                let ne = tape.gather(v_final, Arc::new(neg));
                let pos_s = tape.rowwise_dot(grp, pe);
                let neg_s = tape.rowwise_dot(grp, ne);

                // Log loss: -mean(ln σ(pos)) - mean(ln σ(-neg)).
                let lp = tape.log_sigmoid(pos_s);
                let neg_neg = tape.scale(neg_s, -1.0);
                let ln = tape.log_sigmoid(neg_neg);
                let mp = tape.mean_all(lp);
                let mn = tape.mean_all(ln);
                let sum = tape.add(mp, mn);
                let loss = tape.scale(sum, -1.0);
                let loss = add_l2(&mut tape, loss, &[grp, pe, ne], cfg.l2, n);

                epoch_loss += tape.value(loss).get(0, 0);
                n_batches += 1;
                let grads = tape.backward(loss, &state.store);
                adam.step(&mut state.store, &grads);
            }
            final_loss = epoch_loss / n_batches.max(1) as f32;
            if cfg.verbose {
                eprintln!("[SIGR] epoch {epoch}: loss {final_loss:.4}");
            }
        }
        let elapsed = start.elapsed().as_secs_f64();

        // Cache propagated embeddings for scoring.
        let mut tape = Tape::new();
        let (u_final, v_final) = propagate(
            &state.store,
            state.user_emb,
            state.item_emb,
            &mut tape,
            &graph,
        );
        state.user_final = tape.value(u_final).clone();
        state.item_final = tape.value(v_final).clone();
        self.state = Some(state);

        TrainReport {
            epochs: cfg.epochs,
            mean_epoch_secs: elapsed / cfg.epochs.max(1) as f64,
            final_loss,
        }
    }
}

impl Scorer for Sigr {
    fn score_items(&self, user: u32, items: &[u32]) -> Vec<f32> {
        let s = self.state.as_ref().expect("model not fitted");
        // Influence-gated mean of the user's group members.
        let members = &s.groups.members[user as usize];
        let d = s.user_final.cols();
        let mut grp = vec![0.0f32; d];
        for &m in members {
            let infl = s.store.value(s.influence).get(m as usize, 0);
            let gate = kernels::sigmoid_scalar(infl);
            for (g, &e) in grp.iter_mut().zip(s.user_final.row(m as usize)) {
                *g += gate * e;
            }
        }
        let inv = 1.0 / members.len().max(1) as f32;
        grp.iter_mut().for_each(|g| *g *= inv);

        items
            .iter()
            .map(|&i| {
                grp.iter()
                    .zip(s.item_final.row(i as usize))
                    .map(|(a, b)| a * b)
                    .sum()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_data::GroupBehavior;

    fn toy() -> Dataset {
        let behaviors = vec![
            GroupBehavior::new(0, 0, vec![1]),
            GroupBehavior::new(0, 1, vec![1]),
            GroupBehavior::new(2, 2, vec![3]),
            GroupBehavior::new(2, 3, vec![3]),
        ];
        Dataset::new(4, 4, behaviors, vec![(0, 1), (2, 3)], vec![1; 4])
    }

    #[test]
    fn learns_group_preferences() {
        let cfg = TrainConfig {
            dim: 8,
            epochs: 200,
            batch_size: 8,
            lr: 0.03,
            ..Default::default()
        };
        let mut m = Sigr::new(cfg);
        m.fit(&toy());
        let s = m.score_items(0, &[0, 1, 2, 3]);
        assert!(s[0] > s[2] && s[1] > s[3], "scores {s:?}");
    }

    #[test]
    fn influence_weights_stay_finite() {
        let cfg = TrainConfig {
            dim: 8,
            epochs: 20,
            batch_size: 8,
            ..Default::default()
        };
        let mut m = Sigr::new(cfg);
        m.fit(&toy());
        let s = m.state.as_ref().unwrap();
        assert!(!s.store.value(s.influence).has_non_finite());
    }

    #[test]
    fn scores_finite_for_all_users() {
        let cfg = TrainConfig {
            dim: 4,
            epochs: 3,
            ..Default::default()
        };
        let mut m = Sigr::new(cfg);
        m.fit(&toy());
        for u in 0..4 {
            assert!(m
                .score_items(u, &[0, 1, 2, 3])
                .iter()
                .all(|v| v.is_finite()));
        }
    }
}
