//! DiffNet [11]: layered social influence diffusion.

use crate::common::{
    add_l2, bpr_loss, dot_scores, shuffled_batches, Recommender, TrainConfig, TrainReport,
};
use gb_autograd::{Adam, AdamConfig, ParamId, ParamStore, Tape, Var};
use gb_data::convert::{to_pairs, InteractionKind};
use gb_data::{Dataset, NegativeSampler};
use gb_eval::Scorer;
use gb_graph::{Bipartite, Csr};
use gb_tensor::{init, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// DiffNet simulates the recursive social-influence diffusion process:
/// starting from the raw user embedding, each diffusion layer fuses a
/// user's state with the mean of their friends' states
/// (`h^{k+1} = (h^k + mean_{f∈S(u)} h^k_f) / 2`); the final user
/// representation additionally absorbs the mean of interacted item
/// embeddings, and items are scored by inner product — the structure of
/// Wu et al.'s model with mean-pooling fusion.
pub struct DiffNet {
    cfg: TrainConfig,
    /// Diffusion depth (the paper tunes it; default 2).
    depth: usize,
    user_final: Matrix,
    item_emb: Matrix,
}

/// Full-graph diffusion; returns the final user representation node.
fn diffuse(
    store: &ParamStore,
    u: ParamId,
    v: ParamId,
    tape: &mut Tape,
    social: &Csr,
    graph: &Bipartite,
    depth: usize,
) -> Var {
    let mut h = tape.param(store, u);
    for _ in 0..depth {
        let social_agg = tape.segment_mean(h, social.offsets(), social.members());
        let summed = tape.add(h, social_agg);
        // Halve to keep magnitudes stable across layers.
        h = tape.scale(summed, 0.5);
    }
    let v_full = tape.param(store, v);
    let item_agg = tape.segment_mean(
        v_full,
        graph.user_to_item().offsets(),
        graph.user_to_item().members(),
    );
    tape.add(h, item_agg)
}

impl DiffNet {
    /// Creates an untrained DiffNet with diffusion depth 2.
    pub fn new(cfg: TrainConfig) -> Self {
        Self {
            cfg,
            depth: 2,
            user_final: Matrix::zeros(0, 0),
            item_emb: Matrix::zeros(0, 0),
        }
    }
}

impl Recommender for DiffNet {
    fn name(&self) -> &str {
        "DiffNet"
    }

    fn fit(&mut self, train: &Dataset) -> TrainReport {
        let cfg = self.cfg.clone();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let u = store.add(
            "diffnet.user",
            init::xavier_uniform(train.n_users(), cfg.dim, &mut rng),
        );
        let v = store.add(
            "diffnet.item",
            init::xavier_uniform(train.n_items(), cfg.dim, &mut rng),
        );
        let mut adam = Adam::new(AdamConfig::with_lr(cfg.lr), &store);

        let pairs = to_pairs(train, InteractionKind::BothRoles);
        let graph = Bipartite::from_interactions(train.n_users(), train.n_items(), &pairs);
        let sampler = NegativeSampler::from_dataset(train);
        let social = train.social().csr().clone();

        let mut final_loss = 0.0f32;
        let start = Instant::now();
        for epoch in 0..cfg.epochs {
            let mut epoch_loss = 0.0f32;
            let mut n_batches = 0usize;
            for batch in shuffled_batches(pairs.len(), cfg.batch_size, &mut rng) {
                let mut users = Vec::new();
                let mut pos = Vec::new();
                let mut neg = Vec::new();
                for idx in batch {
                    let (usr, item) = pairs[idx];
                    for _ in 0..cfg.neg_ratio.max(1) {
                        users.push(usr);
                        pos.push(item);
                        neg.push(sampler.sample_one(usr, &mut rng));
                    }
                }
                let n = users.len();

                let mut tape = Tape::new();
                let u_final = diffuse(&store, u, v, &mut tape, &social, &graph, self.depth);
                let ue = tape.gather(u_final, Arc::new(users));
                let pe = tape.gather_param(&store, v, Arc::new(pos));
                let ne = tape.gather_param(&store, v, Arc::new(neg));
                let pos_s = tape.rowwise_dot(ue, pe);
                let neg_s = tape.rowwise_dot(ue, ne);
                let loss = bpr_loss(&mut tape, pos_s, neg_s);
                let loss = add_l2(&mut tape, loss, &[ue, pe, ne], cfg.l2, n);

                epoch_loss += tape.value(loss).get(0, 0);
                n_batches += 1;
                let grads = tape.backward(loss, &store);
                adam.step(&mut store, &grads);
            }
            final_loss = epoch_loss / n_batches.max(1) as f32;
            if cfg.verbose {
                eprintln!("[DiffNet] epoch {epoch}: loss {final_loss:.4}");
            }
        }
        let elapsed = start.elapsed().as_secs_f64();

        let mut tape = Tape::new();
        let u_final = diffuse(&store, u, v, &mut tape, &social, &graph, self.depth);
        self.user_final = tape.value(u_final).clone();
        self.item_emb = store.value(v).clone();

        TrainReport {
            epochs: cfg.epochs,
            mean_epoch_secs: elapsed / cfg.epochs.max(1) as f64,
            final_loss,
        }
    }
}

impl Scorer for DiffNet {
    fn score_items(&self, user: u32, items: &[u32]) -> Vec<f32> {
        dot_scores(self.user_final.row(user as usize), &self.item_emb, items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_data::GroupBehavior;

    #[test]
    fn learns_preferences_with_social_diffusion() {
        let behaviors = vec![
            GroupBehavior::new(0, 0, vec![]),
            GroupBehavior::new(0, 1, vec![]),
            GroupBehavior::new(1, 2, vec![]),
            GroupBehavior::new(1, 3, vec![]),
        ];
        let d = Dataset::new(2, 4, behaviors, vec![], vec![1; 4]);
        let cfg = TrainConfig {
            dim: 8,
            epochs: 200,
            batch_size: 8,
            lr: 0.05,
            ..Default::default()
        };
        let mut m = DiffNet::new(cfg);
        m.fit(&d);
        let s = m.score_items(0, &[0, 1, 2, 3]);
        assert!(s[0] > s[2] && s[1] > s[3], "scores {s:?}");
    }

    #[test]
    fn friendless_users_still_get_finite_scores() {
        let behaviors = vec![
            GroupBehavior::new(0, 0, vec![]),
            GroupBehavior::new(1, 1, vec![]),
        ];
        let d = Dataset::new(2, 2, behaviors, vec![], vec![1; 2]);
        let cfg = TrainConfig {
            dim: 4,
            epochs: 3,
            ..Default::default()
        };
        let mut m = DiffNet::new(cfg);
        m.fit(&d);
        assert!(m.score_items(0, &[0, 1]).iter().all(|s| s.is_finite()));
    }

    #[test]
    fn friends_influence_scores() {
        // User 1 has no own interactions with item 0, but their friend
        // (user 0) strongly prefers it; diffusion should lift item 0's
        // score for user 1 above that of an item nobody interacted with.
        let behaviors = vec![
            GroupBehavior::new(0, 0, vec![]),
            GroupBehavior::new(0, 0, vec![]),
            GroupBehavior::new(1, 1, vec![]),
        ];
        let d = Dataset::new(2, 3, behaviors, vec![(0, 1)], vec![1; 3]);
        let cfg = TrainConfig {
            dim: 8,
            epochs: 150,
            batch_size: 8,
            lr: 0.05,
            ..Default::default()
        };
        let mut m = DiffNet::new(cfg);
        m.fit(&d);
        let s = m.score_items(1, &[0, 2]);
        assert!(
            s[0] > s[1],
            "friend-endorsed item should outrank cold item: {s:?}"
        );
    }
}
