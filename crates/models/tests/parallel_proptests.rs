//! Property tests for the sharded-parallel MF and GBMF trainers:
//! parallel gradient accumulation must equal serial accumulation bit for
//! bit across random shard counts and batch sizes.

use gb_autograd::ShardExecutor;
use gb_data::convert::InteractionKind;
use gb_data::synth::{generate, SynthConfig};
use gb_data::Dataset;
use gb_models::{Gbmf, GbmfConfig, Mf, Recommender, TrainConfig};
use gb_tensor::Matrix;
use proptest::prelude::*;

fn workload() -> Dataset {
    generate(&SynthConfig::tiny())
}

fn assert_bit_identical(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what} shape");
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: {x} vs {y}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn mf_parallel_accumulation_equals_serial_bitwise(
        n_shards in 1usize..=8,
        threads in 2usize..=6,
        batch_size in 4usize..=96,
    ) {
        let d = workload();
        let cfg = TrainConfig {
            dim: 8,
            epochs: 2,
            batch_size,
            ..Default::default()
        };
        let mut serial = Mf::new(cfg.clone(), InteractionKind::BothRoles);
        serial.fit_sharded(&d, n_shards, &ShardExecutor::serial());
        let mut parallel = Mf::new(cfg, InteractionKind::BothRoles);
        parallel.fit_sharded(&d, n_shards, &ShardExecutor::new(threads));
        assert_bit_identical(serial.user_embeddings(), parallel.user_embeddings(), "MF users");
        assert_bit_identical(serial.item_embeddings(), parallel.item_embeddings(), "MF items");
    }

    #[test]
    fn gbmf_parallel_accumulation_equals_serial_bitwise(
        n_shards in 1usize..=8,
        threads in 2usize..=6,
        batch_size in 4usize..=96,
    ) {
        let d = workload();
        let cfg = GbmfConfig {
            base: TrainConfig {
                dim: 8,
                epochs: 2,
                batch_size,
                ..Default::default()
            },
            alpha: 0.4,
        };
        let mut serial = Gbmf::new(cfg.clone());
        serial.fit_sharded(&d, n_shards, &ShardExecutor::serial());
        let mut parallel = Gbmf::new(cfg);
        parallel.fit_sharded(&d, n_shards, &ShardExecutor::new(threads));
        let (su, si, sf) = serial.tables();
        let (pu, pi, pf) = parallel.tables();
        assert_bit_identical(su, pu, "GBMF users");
        assert_bit_identical(si, pi, "GBMF items");
        assert_bit_identical(sf, pf, "GBMF friend means");
    }
}

/// `fit` is definitionally the one-shard serial recipe: delegating must
/// leave the public training behavior unchanged.
#[test]
fn fit_equals_one_shard_serial_for_both_models() {
    let d = workload();
    let cfg = TrainConfig {
        dim: 8,
        epochs: 2,
        ..Default::default()
    };
    let mut a = Mf::new(cfg.clone(), InteractionKind::BothRoles);
    a.fit(&d);
    let mut b = Mf::new(cfg.clone(), InteractionKind::BothRoles);
    b.fit_sharded(&d, 1, &ShardExecutor::serial());
    assert_bit_identical(a.user_embeddings(), b.user_embeddings(), "MF users");

    let gcfg = GbmfConfig {
        base: cfg,
        alpha: 0.5,
    };
    let mut c = Gbmf::new(gcfg.clone());
    c.fit(&d);
    let mut e = Gbmf::new(gcfg);
    e.fit_sharded(&d, 1, &ShardExecutor::serial());
    assert_bit_identical(c.tables().0, e.tables().0, "GBMF users");
    assert_bit_identical(c.tables().1, e.tables().1, "GBMF items");
}
