//! Assembly of the directed heterogeneous graphs `G = {Gi, Gp, Gs}`.

use crate::bipartite::Bipartite;
use crate::share::ShareGraph;

/// The paper's heterogeneous graph set built from group-buying behaviors
/// (Sec. III-A):
///
/// * for each behavior `b = ⟨mi, n, Mp⟩`,
///   * `Gi` gains the bidirectional edge `(mi, n)`,
///   * `Gp` gains edges `(mpj, n)` for every participant,
///   * `Gs` gains directed edges `(mi → mpj)`.
#[derive(Clone, Debug)]
pub struct HeteroGraphs {
    /// Initiator view `Gi`.
    pub initiator: Bipartite,
    /// Participant view `Gp`.
    pub participant: Bipartite,
    /// Directed share relations `Gs`.
    pub share: ShareGraph,
}

impl HeteroGraphs {
    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.initiator.n_users()
    }

    /// Number of items.
    pub fn n_items(&self) -> usize {
        self.initiator.n_items()
    }
}

/// Incremental builder for [`HeteroGraphs`].
///
/// ```
/// use gb_graph::HeteroBuilder;
///
/// let mut b = HeteroBuilder::new(4, 2);
/// // user 0 launches item 1; users 2 and 3 join.
/// b.add_behavior(0, 1, &[2, 3]);
/// let g = b.build();
/// assert_eq!(g.initiator.items_of(0), &[1]);
/// assert_eq!(g.participant.items_of(2), &[1]);
/// assert_eq!(g.share.outgoing(0), &[2, 3]);
/// assert_eq!(g.share.incoming(3), &[0]);
/// ```
#[derive(Debug)]
pub struct HeteroBuilder {
    n_users: usize,
    n_items: usize,
    init_edges: Vec<(u32, u32)>,
    part_edges: Vec<(u32, u32)>,
    share_edges: Vec<(u32, u32)>,
}

impl HeteroBuilder {
    /// Creates a builder for `n_users` users and `n_items` items.
    pub fn new(n_users: usize, n_items: usize) -> Self {
        Self {
            n_users,
            n_items,
            init_edges: Vec::new(),
            part_edges: Vec::new(),
            share_edges: Vec::new(),
        }
    }

    /// Records one group-buying behavior `⟨initiator, item, participants⟩`.
    ///
    /// Failed behaviors (possibly with an empty participant set) still
    /// contribute their initiator–item edge: the initiator *did* purchase
    /// and launch (Sec. III-C.1).
    pub fn add_behavior(&mut self, initiator: u32, item: u32, participants: &[u32]) {
        assert!(
            (initiator as usize) < self.n_users,
            "initiator out of bounds"
        );
        assert!((item as usize) < self.n_items, "item out of bounds");
        self.init_edges.push((initiator, item));
        for &p in participants {
            assert!((p as usize) < self.n_users, "participant out of bounds");
            self.part_edges.push((p, item));
            self.share_edges.push((initiator, p));
        }
    }

    /// Finalizes the three graphs.
    pub fn build(self) -> HeteroGraphs {
        HeteroGraphs {
            initiator: Bipartite::from_interactions(self.n_users, self.n_items, &self.init_edges),
            participant: Bipartite::from_interactions(self.n_users, self.n_items, &self.part_edges),
            share: ShareGraph::from_edges(self.n_users, &self.share_edges),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behavior_populates_all_three_graphs() {
        let mut b = HeteroBuilder::new(5, 3);
        b.add_behavior(1, 0, &[2, 4]);
        b.add_behavior(2, 1, &[1]);
        let g = b.build();

        assert_eq!(g.initiator.items_of(1), &[0]);
        assert_eq!(g.initiator.items_of(2), &[1]);
        assert_eq!(g.participant.items_of(2), &[0]);
        assert_eq!(g.participant.items_of(4), &[0]);
        assert_eq!(g.participant.items_of(1), &[1]);
        assert_eq!(g.share.outgoing(1), &[2, 4]);
        assert_eq!(g.share.incoming(1), &[2]);
        assert_eq!(g.n_users(), 5);
        assert_eq!(g.n_items(), 3);
    }

    #[test]
    fn failed_behavior_keeps_initiator_edge() {
        let mut b = HeteroBuilder::new(2, 2);
        b.add_behavior(0, 1, &[]); // failed: nobody joined
        let g = b.build();
        assert_eq!(g.initiator.items_of(0), &[1]);
        assert_eq!(g.participant.n_interactions(), 0);
        assert_eq!(g.share.n_edges(), 0);
    }

    #[test]
    fn user_in_both_roles_appears_in_both_views() {
        let mut b = HeteroBuilder::new(3, 2);
        b.add_behavior(0, 0, &[1]); // user 1 participates
        b.add_behavior(1, 1, &[0]); // user 1 initiates
        let g = b.build();
        assert_eq!(g.initiator.items_of(1), &[1]);
        assert_eq!(g.participant.items_of(1), &[0]);
        assert_eq!(g.share.outgoing(1), &[0]);
        assert_eq!(g.share.incoming(1), &[0]);
    }
}
