//! The directed initiator→participant share graph `Gs`.

use crate::csr::Csr;

/// Directed graph of sharing behaviour: an edge `(mi → mp)` records that
/// initiator `mi` shared a group that participant `mp` joined.
///
/// The cross-view propagation distinguishes directions:
/// * `outgoing(m)` = `N_s^O(m)` — users `m` has shared to; aggregated from
///   the participant view into the initiator view (Eq. 4).
/// * `incoming(m)` = `N_s^I(m)` — users who have shared to `m`; aggregated
///   from the initiator view into the participant view (Eq. 6).
#[derive(Clone, Debug)]
pub struct ShareGraph {
    out: Csr,
    inc: Csr,
}

impl ShareGraph {
    /// Builds `Gs` from directed `(initiator, participant)` pairs.
    pub fn from_edges(n_users: usize, edges: &[(u32, u32)]) -> Self {
        for &(_, p) in edges {
            assert!((p as usize) < n_users, "participant {p} out of bounds");
        }
        let out = Csr::from_edges(n_users, edges);
        let inc = out.reversed(n_users);
        Self { out, inc }
    }

    /// Graph with no share edges.
    pub fn empty(n_users: usize) -> Self {
        Self {
            out: Csr::empty(n_users),
            inc: Csr::empty(n_users),
        }
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.out.n_nodes()
    }

    /// Number of unique directed share edges.
    pub fn n_edges(&self) -> usize {
        self.out.n_edges()
    }

    /// `N_s^O(m)`: users this user has shared groups to.
    pub fn outgoing(&self, user: u32) -> &[u32] {
        self.out.neighbors(user)
    }

    /// `N_s^I(m)`: users who have shared groups to this user.
    pub fn incoming(&self, user: u32) -> &[u32] {
        self.inc.neighbors(user)
    }

    /// Outgoing CSR handle.
    pub fn out_csr(&self) -> &Csr {
        &self.out
    }

    /// Incoming CSR handle.
    pub fn in_csr(&self) -> &Csr {
        &self.inc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directions_are_distinct() {
        let g = ShareGraph::from_edges(4, &[(0, 1), (0, 2), (3, 0)]);
        assert_eq!(g.outgoing(0), &[1, 2]);
        assert_eq!(g.incoming(0), &[3]);
        assert_eq!(g.incoming(1), &[0]);
        assert_eq!(g.outgoing(1), &[] as &[u32]);
        assert_eq!(g.n_edges(), 3);
    }

    #[test]
    fn repeated_share_edges_dedup() {
        // The same pair can co-occur in many groups; Gs keeps one edge.
        let g = ShareGraph::from_edges(2, &[(0, 1), (0, 1), (0, 1)]);
        assert_eq!(g.n_edges(), 1);
    }
}
