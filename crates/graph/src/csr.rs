//! Compressed sparse row adjacency.

use std::sync::Arc;

/// CSR adjacency over `n` source nodes.
///
/// Neighbour lists are sorted and deduplicated. `offsets` and `members` are
/// reference-counted so propagation layers can share them with the autodiff
/// tape's `segment_mean` op without copying.
#[derive(Clone, Debug)]
pub struct Csr {
    offsets: Arc<Vec<usize>>,
    members: Arc<Vec<u32>>,
}

impl Csr {
    /// Builds a CSR from an edge list `(src, dst)` over `n_src` source
    /// nodes. Edges are sorted per source and duplicates removed.
    pub fn from_edges(n_src: usize, edges: &[(u32, u32)]) -> Self {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n_src];
        for &(s, d) in edges {
            assert!(
                (s as usize) < n_src,
                "source {s} out of bounds (n_src = {n_src})"
            );
            adj[s as usize].push(d);
        }
        Self::from_adj(adj)
    }

    /// Builds a CSR from per-node adjacency lists (sorted + deduped here).
    pub fn from_adj(mut adj: Vec<Vec<u32>>) -> Self {
        let mut offsets = Vec::with_capacity(adj.len() + 1);
        offsets.push(0usize);
        let mut members = Vec::new();
        for list in adj.iter_mut() {
            list.sort_unstable();
            list.dedup();
            members.extend_from_slice(list);
            offsets.push(members.len());
        }
        Self {
            offsets: Arc::new(offsets),
            members: Arc::new(members),
        }
    }

    /// An empty CSR with `n_src` sources and no edges.
    pub fn empty(n_src: usize) -> Self {
        Self {
            offsets: Arc::new(vec![0; n_src + 1]),
            members: Arc::new(Vec::new()),
        }
    }

    /// Number of source nodes.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of (deduplicated) edges.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.members.len()
    }

    /// Sorted neighbour list of node `u`.
    #[inline]
    pub fn neighbors(&self, u: u32) -> &[u32] {
        let u = u as usize;
        &self.members[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Out-degree of node `u`.
    #[inline]
    pub fn degree(&self, u: u32) -> usize {
        let u = u as usize;
        self.offsets[u + 1] - self.offsets[u]
    }

    /// Whether edge `(u, v)` exists (binary search on the sorted list).
    pub fn contains(&self, u: u32, v: u32) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Shared handle to the offsets array (for `Tape::segment_mean`).
    pub fn offsets(&self) -> Arc<Vec<usize>> {
        Arc::clone(&self.offsets)
    }

    /// Shared handle to the members array (for `Tape::segment_mean`).
    pub fn members(&self) -> Arc<Vec<u32>> {
        Arc::clone(&self.members)
    }

    /// Borrowed `(offsets, members)` views for direct (non-tape) CSR
    /// aggregation — e.g. `gb_tensor::kernels::segment_mean`, whose inner
    /// loops block to the shared `kernels::DOT_LANES` lane width. Avoids
    /// the refcount round-trip of the `Arc` accessors on hot paths.
    pub fn segments(&self) -> (&[usize], &[u32]) {
        (&self.offsets, &self.members)
    }

    /// Mean out-degree.
    pub fn mean_degree(&self) -> f64 {
        if self.n_nodes() == 0 {
            0.0
        } else {
            self.n_edges() as f64 / self.n_nodes() as f64
        }
    }

    /// Maximum out-degree.
    pub fn max_degree(&self) -> usize {
        (0..self.n_nodes() as u32)
            .map(|u| self.degree(u))
            .max()
            .unwrap_or(0)
    }

    /// Number of nodes with at least one neighbour.
    pub fn active_nodes(&self) -> usize {
        (0..self.n_nodes() as u32)
            .filter(|&u| self.degree(u) > 0)
            .count()
    }

    /// Reverses the graph: produces the CSR of incoming edges over
    /// `n_dst` destination nodes.
    pub fn reversed(&self, n_dst: usize) -> Csr {
        let mut edges = Vec::with_capacity(self.n_edges());
        for u in 0..self.n_nodes() as u32 {
            for &v in self.neighbors(u) {
                assert!(
                    (v as usize) < n_dst,
                    "dst {v} out of bounds (n_dst = {n_dst})"
                );
                edges.push((v, u));
            }
        }
        Csr::from_edges(n_dst, &edges)
    }

    /// Iterates all `(src, dst)` edges.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.n_nodes() as u32).flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_sorts_and_dedups() {
        let csr = Csr::from_edges(3, &[(0, 5), (0, 1), (0, 5), (2, 0)]);
        assert_eq!(csr.neighbors(0), &[1, 5]);
        assert_eq!(csr.neighbors(1), &[] as &[u32]);
        assert_eq!(csr.neighbors(2), &[0]);
        assert_eq!(csr.n_edges(), 3);
        assert_eq!(csr.degree(0), 2);
    }

    #[test]
    fn contains_uses_sorted_lists() {
        let csr = Csr::from_edges(2, &[(0, 9), (0, 3), (0, 7)]);
        assert!(csr.contains(0, 7));
        assert!(!csr.contains(0, 5));
        assert!(!csr.contains(1, 7));
    }

    #[test]
    fn reversed_flips_edges() {
        let csr = Csr::from_edges(3, &[(0, 1), (2, 1), (2, 0)]);
        let rev = csr.reversed(2);
        assert_eq!(rev.neighbors(0), &[2]);
        assert_eq!(rev.neighbors(1), &[0, 2]);
    }

    #[test]
    fn reversed_twice_is_identity_on_edge_set() {
        let csr = Csr::from_edges(4, &[(0, 3), (1, 2), (3, 0), (3, 1)]);
        let back = csr.reversed(4).reversed(4);
        let mut a: Vec<_> = csr.edges().collect();
        let mut b: Vec<_> = back.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn degree_stats() {
        let csr = Csr::from_edges(4, &[(0, 1), (0, 2), (1, 0)]);
        assert_eq!(csr.max_degree(), 2);
        assert_eq!(csr.active_nodes(), 2);
        assert!((csr.mean_degree() - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_edges_checks_bounds() {
        let _ = Csr::from_edges(2, &[(2, 0)]);
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::empty(5);
        assert_eq!(csr.n_nodes(), 5);
        assert_eq!(csr.n_edges(), 0);
        assert_eq!(csr.neighbors(4), &[] as &[u32]);
    }

    #[test]
    fn edges_iterator_yields_all() {
        let csr = Csr::from_edges(3, &[(1, 0), (1, 2), (0, 2)]);
        let edges: Vec<_> = csr.edges().collect();
        assert_eq!(edges, vec![(0, 2), (1, 0), (1, 2)]);
    }
}
