//! # gb-graph
//!
//! Graph containers for the directed heterogeneous graphs of Sec. III-A of
//! the paper: `G = {Gi, Gp, Gs}`.
//!
//! * [`Csr`] — compressed sparse row adjacency, the storage primitive.
//! * [`Bipartite`] — a user–item interaction view (`Gi` or `Gp`) with both
//!   user→item and item→user adjacency, ready to drive the segment-mean
//!   propagation of Eqs. 1–2.
//! * [`ShareGraph`] — the directed initiator→participant graph `Gs`, with
//!   outgoing (`N_s^O`, "shared to") and incoming (`N_s^I`, "was shared
//!   by") adjacency used in the cross-view propagation (Eqs. 4 and 6).
//! * [`SocialGraph`] — the symmetric friendship matrix `S` used in the
//!   prediction function (Eq. 9) and the failed-group loss (Eq. 10).
//! * [`HeteroGraphs`] / [`HeteroBuilder`] — the assembled `G`, built from
//!   raw group-buying behaviors.
//!
//! All node ids are `u32`; CSR neighbour lists are sorted and deduplicated,
//! matching the convention of DGL graphs built from unique edges.

pub mod bipartite;
pub mod bitset;
pub mod csr;
pub mod hetero;
pub mod share;
pub mod social;

pub use bipartite::Bipartite;
pub use bitset::BitMatrix;
pub use csr::Csr;
pub use hetero::{HeteroBuilder, HeteroGraphs};
pub use share::ShareGraph;
pub use social::SocialGraph;
