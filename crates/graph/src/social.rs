//! The symmetric online social network `S`.

use crate::csr::Csr;

/// Symmetric friendship graph (`S` in the paper, a `P x P` binary matrix).
///
/// Used by the prediction function (Eq. 9) to average friends' participant-
/// view scores, by the failed-group loss (Eq. 10) to push friends away from
/// the failed item, and by the social baselines (SocialMF, DiffNet).
#[derive(Clone, Debug)]
pub struct SocialGraph {
    adj: Csr,
}

impl SocialGraph {
    /// Builds the graph from undirected friend pairs; each pair is inserted
    /// in both directions, self-loops are dropped.
    pub fn from_pairs(n_users: usize, pairs: &[(u32, u32)]) -> Self {
        let mut edges = Vec::with_capacity(pairs.len() * 2);
        for &(a, b) in pairs {
            assert!(
                (a as usize) < n_users && (b as usize) < n_users,
                "user out of bounds"
            );
            if a != b {
                edges.push((a, b));
                edges.push((b, a));
            }
        }
        Self {
            adj: Csr::from_edges(n_users, &edges),
        }
    }

    /// Graph with no friendships.
    pub fn empty(n_users: usize) -> Self {
        Self {
            adj: Csr::empty(n_users),
        }
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.adj.n_nodes()
    }

    /// Number of undirected friendships.
    pub fn n_friendships(&self) -> usize {
        self.adj.n_edges() / 2
    }

    /// Sorted friend list of `user`.
    pub fn friends(&self, user: u32) -> &[u32] {
        self.adj.neighbors(user)
    }

    /// Number of friends of `user`.
    pub fn degree(&self, user: u32) -> usize {
        self.adj.degree(user)
    }

    /// Whether `a` and `b` are friends (`S_ab = 1`).
    pub fn are_friends(&self, a: u32, b: u32) -> bool {
        self.adj.contains(a, b)
    }

    /// Underlying CSR (symmetric adjacency).
    pub fn csr(&self) -> &Csr {
        &self.adj
    }

    /// Mean number of friends per user.
    pub fn mean_degree(&self) -> f64 {
        self.adj.mean_degree()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetry_enforced() {
        let s = SocialGraph::from_pairs(3, &[(0, 1)]);
        assert!(s.are_friends(0, 1));
        assert!(s.are_friends(1, 0));
        assert!(!s.are_friends(0, 2));
        assert_eq!(s.n_friendships(), 1);
    }

    #[test]
    fn self_loops_dropped() {
        let s = SocialGraph::from_pairs(2, &[(1, 1), (0, 1)]);
        assert_eq!(s.friends(1), &[0]);
        assert!(!s.are_friends(1, 1));
    }

    #[test]
    fn duplicate_pairs_collapse() {
        let s = SocialGraph::from_pairs(3, &[(0, 1), (1, 0), (0, 1)]);
        assert_eq!(s.n_friendships(), 1);
        assert_eq!(s.degree(0), 1);
    }
}
