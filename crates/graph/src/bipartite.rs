//! Bipartite user–item interaction views (`Gi` and `Gp`).

use crate::csr::Csr;

/// A user–item interaction graph with adjacency in both directions.
///
/// One `Bipartite` instance holds one *view* in the paper's sense: the
/// initiator view `Gi` stores initiator–item edges, the participant view
/// `Gp` stores participant–item edges. Both directions are needed because
/// the in-view propagation (Eqs. 1–2) aggregates items into users *and*
/// users into items.
#[derive(Clone, Debug)]
pub struct Bipartite {
    user_to_item: Csr,
    item_to_user: Csr,
    n_users: usize,
    n_items: usize,
}

impl Bipartite {
    /// Builds the view from `(user, item)` interaction pairs.
    pub fn from_interactions(n_users: usize, n_items: usize, pairs: &[(u32, u32)]) -> Self {
        for &(u, i) in pairs {
            assert!((u as usize) < n_users, "user {u} out of bounds");
            assert!((i as usize) < n_items, "item {i} out of bounds");
        }
        let user_to_item = Csr::from_edges(n_users, pairs);
        let item_to_user = user_to_item.reversed(n_items);
        Self {
            user_to_item,
            item_to_user,
            n_users,
            n_items,
        }
    }

    /// View with no interactions.
    pub fn empty(n_users: usize, n_items: usize) -> Self {
        Self {
            user_to_item: Csr::empty(n_users),
            item_to_user: Csr::empty(n_items),
            n_users,
            n_items,
        }
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Number of items.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Number of unique user–item edges.
    pub fn n_interactions(&self) -> usize {
        self.user_to_item.n_edges()
    }

    /// Items interacted by `user` (the `N(m)` of Eqs. 1–2), sorted.
    pub fn items_of(&self, user: u32) -> &[u32] {
        self.user_to_item.neighbors(user)
    }

    /// Users who interacted with `item` (the `N(n)`), sorted.
    pub fn users_of(&self, item: u32) -> &[u32] {
        self.item_to_user.neighbors(item)
    }

    /// Whether `(user, item)` is an edge of this view.
    pub fn has_interaction(&self, user: u32, item: u32) -> bool {
        self.user_to_item.contains(user, item)
    }

    /// User→item CSR (drives `u <- mean(v)` aggregation).
    pub fn user_to_item(&self) -> &Csr {
        &self.user_to_item
    }

    /// Item→user CSR (drives `v <- mean(u)` aggregation).
    pub fn item_to_user(&self) -> &Csr {
        &self.item_to_user
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_directions_consistent() {
        let b = Bipartite::from_interactions(3, 2, &[(0, 1), (2, 1), (2, 0)]);
        assert_eq!(b.items_of(0), &[1]);
        assert_eq!(b.items_of(2), &[0, 1]);
        assert_eq!(b.users_of(1), &[0, 2]);
        assert_eq!(b.users_of(0), &[2]);
        assert_eq!(b.n_interactions(), 3);
    }

    #[test]
    fn duplicate_interactions_collapse() {
        let b = Bipartite::from_interactions(2, 2, &[(0, 0), (0, 0), (0, 0)]);
        assert_eq!(b.n_interactions(), 1);
        assert_eq!(b.users_of(0), &[0]);
    }

    #[test]
    fn has_interaction_matches_edges() {
        let b = Bipartite::from_interactions(2, 3, &[(1, 2), (0, 0)]);
        assert!(b.has_interaction(1, 2));
        assert!(!b.has_interaction(1, 0));
    }

    #[test]
    #[should_panic(expected = "item 5 out of bounds")]
    fn bounds_checked() {
        let _ = Bipartite::from_interactions(2, 3, &[(1, 5)]);
    }
}
