//! Dense bitset membership structures.
//!
//! The serving layer must answer "has user `u` already interacted with
//! item `n`?" millions of times per second while filtering candidates.
//! The CSR adjacency answers that in `O(log degree)` via binary search;
//! [`BitMatrix`] trades `rows x cols / 8` bytes for an `O(1)` word probe,
//! which is the right call on the hot path (30k items = 3.8 KB per user).

use crate::Csr;

/// A dense `rows x cols` bit matrix (row-major, 64-bit words).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl BitMatrix {
    /// An all-zero `rows x cols` bit matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(64);
        Self {
            rows,
            cols,
            words_per_row,
            words: vec![0; rows * words_per_row],
        }
    }

    /// Builds the membership matrix of a CSR adjacency: bit `(u, v)` is
    /// set iff `v` is a neighbour of `u`. `n_cols` must bound every
    /// neighbour id (e.g. the item count for a user→item CSR).
    pub fn from_csr(csr: &Csr, n_cols: usize) -> Self {
        let mut m = Self::zeros(csr.n_nodes(), n_cols);
        for u in 0..csr.n_nodes() as u32 {
            for &v in csr.neighbors(u) {
                m.set(u as usize, v as usize);
            }
        }
        m
    }

    /// Builds from per-row neighbour lists (ids must be `< n_cols`).
    pub fn from_rows(rows: &[Vec<u32>], n_cols: usize) -> Self {
        let mut m = Self::zeros(rows.len(), n_cols);
        for (r, list) in rows.iter().enumerate() {
            for &c in list {
                m.set(r, c as usize);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Sets bit `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize) {
        assert!(
            r < self.rows && c < self.cols,
            "bit ({r}, {c}) out of bounds"
        );
        self.words[r * self.words_per_row + c / 64] |= 1u64 << (c % 64);
    }

    /// Whether bit `(r, c)` is set.
    #[inline]
    pub fn contains(&self, r: usize, c: usize) -> bool {
        debug_assert!(
            r < self.rows && c < self.cols,
            "bit ({r}, {c}) out of bounds"
        );
        self.words[r * self.words_per_row + c / 64] >> (c % 64) & 1 == 1
    }

    /// The 64-bit words of row `r` (bit `c` of the row lives in word
    /// `c / 64` at position `c % 64`). Lets scoring loops test 64
    /// candidates per load.
    #[inline]
    pub fn row_words(&self, r: usize) -> &[u64] {
        debug_assert!(r < self.rows, "row {r} out of bounds");
        &self.words[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// Number of set bits in row `r`.
    pub fn count_row(&self, r: usize) -> usize {
        self.row_words(r)
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Total number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Heap footprint of the bit store in bytes.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// The sub-matrix of the contiguous column range `[start, start+len)`:
    /// bit `(r, c)` of the slice equals bit `(r, start + c)` of `self`.
    ///
    /// The sharded serving tier slices one catalogue-wide seen-filter
    /// into per-shard item ranges with this, so each shard probes a
    /// filter indexed by its *local* item ids. Built word-at-a-time (a
    /// shift-and-or across adjacent source words), not bit-at-a-time.
    ///
    /// # Panics
    /// Panics if `start + len > cols`.
    pub fn slice_cols(&self, start: usize, len: usize) -> BitMatrix {
        assert!(
            start.checked_add(len).is_some_and(|end| end <= self.cols),
            "column range [{start}, {start}+{len}) out of bounds ({} cols)",
            self.cols
        );
        let mut out = BitMatrix::zeros(self.rows, len);
        let (base, shift) = (start / 64, start % 64);
        for r in 0..self.rows {
            let src = self.row_words(r);
            let dst = &mut out.words[r * out.words_per_row..(r + 1) * out.words_per_row];
            for (j, w) in dst.iter_mut().enumerate() {
                let lo = src.get(base + j).copied().unwrap_or(0) >> shift;
                // `>> 64` is UB-adjacent in Rust (it panics in debug,
                // wraps in release), so the shift==0 case must not read
                // the next word at all.
                let hi = if shift == 0 {
                    0
                } else {
                    src.get(base + j + 1).copied().unwrap_or(0) << (64 - shift)
                };
                *w = lo | hi;
            }
            // Clear bits past `len` in the final word: `count`/`count_row`
            // assume trailing bits are zero.
            if !len.is_multiple_of(64) {
                if let Some(last) = dst.last_mut() {
                    *last &= (1u64 << (len % 64)) - 1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_probe() {
        let mut m = BitMatrix::zeros(3, 130);
        m.set(0, 0);
        m.set(1, 63);
        m.set(1, 64);
        m.set(2, 129);
        assert!(m.contains(0, 0) && m.contains(1, 63) && m.contains(1, 64));
        assert!(m.contains(2, 129));
        assert!(!m.contains(0, 1) && !m.contains(2, 0) && !m.contains(0, 129));
        assert_eq!(m.count(), 4);
        assert_eq!(m.count_row(1), 2);
    }

    #[test]
    fn matches_csr_membership() {
        let csr = Csr::from_edges(4, &[(0, 5), (0, 1), (2, 0), (3, 7), (3, 7)]);
        let m = BitMatrix::from_csr(&csr, 8);
        for u in 0..4u32 {
            for v in 0..8u32 {
                assert_eq!(
                    m.contains(u as usize, v as usize),
                    csr.contains(u, v),
                    "mismatch at ({u}, {v})"
                );
            }
        }
        assert_eq!(m.count(), csr.n_edges());
    }

    #[test]
    fn from_rows_matches_lists() {
        let rows = vec![vec![0u32, 64, 65], vec![], vec![127]];
        let m = BitMatrix::from_rows(&rows, 128);
        assert!(m.contains(0, 0) && m.contains(0, 64) && m.contains(0, 65));
        assert_eq!(m.count_row(1), 0);
        assert!(m.contains(2, 127));
        assert_eq!(m.size_bytes(), 3 * 2 * 8);
    }

    #[test]
    fn row_words_expose_bit_layout() {
        let mut m = BitMatrix::zeros(1, 70);
        m.set(0, 2);
        m.set(0, 69);
        let words = m.row_words(0);
        assert_eq!(words.len(), 2);
        assert_eq!(words[0], 1 << 2);
        assert_eq!(words[1], 1 << 5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn set_checks_bounds() {
        BitMatrix::zeros(2, 10).set(0, 10);
    }

    #[test]
    fn slice_cols_matches_per_bit_membership() {
        // Dense-ish pseudo-random pattern over a shape that exercises
        // word-straddling slices.
        let mut m = BitMatrix::zeros(3, 200);
        for r in 0..3usize {
            for c in 0..200usize {
                if (r * 7 + c * 13) % 5 == 0 {
                    m.set(r, c);
                }
            }
        }
        for (start, len) in [
            (0usize, 200usize),
            (0, 64),
            (1, 63),
            (63, 2),
            (64, 64),
            (77, 101),
            (130, 70),
            (199, 1),
            (50, 0),
            (200, 0),
        ] {
            let s = m.slice_cols(start, len);
            assert_eq!((s.rows(), s.cols()), (3, len), "range {start}+{len}");
            let mut expect_count = 0usize;
            for r in 0..3 {
                for c in 0..len {
                    assert_eq!(
                        s.contains(r, c),
                        m.contains(r, start + c),
                        "bit ({r}, {c}) of range {start}+{len}"
                    );
                    expect_count += usize::from(m.contains(r, start + c));
                }
            }
            // Trailing bits past `len` stayed clear.
            assert_eq!(s.count(), expect_count, "range {start}+{len}");
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_cols_checks_bounds() {
        BitMatrix::zeros(2, 10).slice_cols(5, 6);
    }
}
