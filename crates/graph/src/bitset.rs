//! Dense bitset membership structures.
//!
//! The serving layer must answer "has user `u` already interacted with
//! item `n`?" millions of times per second while filtering candidates.
//! The CSR adjacency answers that in `O(log degree)` via binary search;
//! [`BitMatrix`] trades `rows x cols / 8` bytes for an `O(1)` word probe,
//! which is the right call on the hot path (30k items = 3.8 KB per user).

use crate::Csr;

/// A dense `rows x cols` bit matrix (row-major, 64-bit words).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl BitMatrix {
    /// An all-zero `rows x cols` bit matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(64);
        Self {
            rows,
            cols,
            words_per_row,
            words: vec![0; rows * words_per_row],
        }
    }

    /// Builds the membership matrix of a CSR adjacency: bit `(u, v)` is
    /// set iff `v` is a neighbour of `u`. `n_cols` must bound every
    /// neighbour id (e.g. the item count for a user→item CSR).
    pub fn from_csr(csr: &Csr, n_cols: usize) -> Self {
        let mut m = Self::zeros(csr.n_nodes(), n_cols);
        for u in 0..csr.n_nodes() as u32 {
            for &v in csr.neighbors(u) {
                m.set(u as usize, v as usize);
            }
        }
        m
    }

    /// Builds from per-row neighbour lists (ids must be `< n_cols`).
    pub fn from_rows(rows: &[Vec<u32>], n_cols: usize) -> Self {
        let mut m = Self::zeros(rows.len(), n_cols);
        for (r, list) in rows.iter().enumerate() {
            for &c in list {
                m.set(r, c as usize);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Sets bit `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize) {
        assert!(
            r < self.rows && c < self.cols,
            "bit ({r}, {c}) out of bounds"
        );
        self.words[r * self.words_per_row + c / 64] |= 1u64 << (c % 64);
    }

    /// Whether bit `(r, c)` is set.
    #[inline]
    pub fn contains(&self, r: usize, c: usize) -> bool {
        debug_assert!(
            r < self.rows && c < self.cols,
            "bit ({r}, {c}) out of bounds"
        );
        self.words[r * self.words_per_row + c / 64] >> (c % 64) & 1 == 1
    }

    /// The 64-bit words of row `r` (bit `c` of the row lives in word
    /// `c / 64` at position `c % 64`). Lets scoring loops test 64
    /// candidates per load.
    #[inline]
    pub fn row_words(&self, r: usize) -> &[u64] {
        debug_assert!(r < self.rows, "row {r} out of bounds");
        &self.words[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// Number of set bits in row `r`.
    pub fn count_row(&self, r: usize) -> usize {
        self.row_words(r)
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Total number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Heap footprint of the bit store in bytes.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_probe() {
        let mut m = BitMatrix::zeros(3, 130);
        m.set(0, 0);
        m.set(1, 63);
        m.set(1, 64);
        m.set(2, 129);
        assert!(m.contains(0, 0) && m.contains(1, 63) && m.contains(1, 64));
        assert!(m.contains(2, 129));
        assert!(!m.contains(0, 1) && !m.contains(2, 0) && !m.contains(0, 129));
        assert_eq!(m.count(), 4);
        assert_eq!(m.count_row(1), 2);
    }

    #[test]
    fn matches_csr_membership() {
        let csr = Csr::from_edges(4, &[(0, 5), (0, 1), (2, 0), (3, 7), (3, 7)]);
        let m = BitMatrix::from_csr(&csr, 8);
        for u in 0..4u32 {
            for v in 0..8u32 {
                assert_eq!(
                    m.contains(u as usize, v as usize),
                    csr.contains(u, v),
                    "mismatch at ({u}, {v})"
                );
            }
        }
        assert_eq!(m.count(), csr.n_edges());
    }

    #[test]
    fn from_rows_matches_lists() {
        let rows = vec![vec![0u32, 64, 65], vec![], vec![127]];
        let m = BitMatrix::from_rows(&rows, 128);
        assert!(m.contains(0, 0) && m.contains(0, 64) && m.contains(0, 65));
        assert_eq!(m.count_row(1), 0);
        assert!(m.contains(2, 127));
        assert_eq!(m.size_bytes(), 3 * 2 * 8);
    }

    #[test]
    fn row_words_expose_bit_layout() {
        let mut m = BitMatrix::zeros(1, 70);
        m.set(0, 2);
        m.set(0, 69);
        let words = m.row_words(0);
        assert_eq!(words.len(), 2);
        assert_eq!(words[0], 1 << 2);
        assert_eq!(words[1], 1 << 5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn set_checks_bounds() {
        BitMatrix::zeros(2, 10).set(0, 10);
    }
}
