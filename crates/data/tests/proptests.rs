//! Property-based tests of the data layer: splits, samplers, conversions.

use gb_data::convert::{to_groups, to_pairs, InteractionKind};
use gb_data::split::leave_one_out;
use gb_data::synth::{generate, SynthConfig};
use gb_data::NegativeSampler;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_config(seed: u64) -> SynthConfig {
    SynthConfig {
        n_users: 80,
        n_items: 30,
        ..SynthConfig::tiny().with_seed(seed)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Leave-one-out always partitions the behavior multiset exactly.
    #[test]
    fn split_partitions_behaviors(seed in 0u64..40, split_seed in 0u64..10) {
        let d = generate(&small_config(seed));
        let s = leave_one_out(&d, split_seed);
        prop_assert_eq!(
            s.train.behaviors().len() + s.test.len() + s.validation.len(),
            d.behaviors().len()
        );
        // Each held-out instance corresponds to a real behavior.
        for t in s.test.iter().chain(&s.validation) {
            prop_assert!(d
                .behaviors()
                .iter()
                .any(|b| b.initiator == t.user && b.item == t.item));
        }
    }

    /// Negative samples never collide with any-role positives.
    #[test]
    fn negatives_exclude_positives(seed in 0u64..20, user in 0u32..80) {
        let d = generate(&small_config(seed));
        let sampler = NegativeSampler::from_dataset(&d);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xAB);
        for _ in 0..50 {
            let n = sampler.sample_one(user, &mut rng);
            prop_assert!(!sampler.is_positive(user, n));
        }
    }

    /// The (oi) conversion is always a subset of the both-roles one.
    #[test]
    fn oi_pairs_subset_of_both(seed in 0u64..20) {
        let d = generate(&small_config(seed));
        let oi = to_pairs(&d, InteractionKind::InitiatorOnly);
        let both = to_pairs(&d, InteractionKind::BothRoles);
        prop_assert!(oi.len() <= both.len());
        for p in &oi {
            prop_assert!(both.binary_search(p).is_ok());
        }
    }

    /// Group membership is symmetric: u in group(v) iff v in group(u).
    #[test]
    fn group_membership_symmetric(seed in 0u64..20) {
        let d = generate(&small_config(seed));
        let g = to_groups(&d);
        for (u, members) in g.members.iter().enumerate() {
            for &m in members {
                prop_assert!(
                    g.members[m as usize].binary_search(&(u as u32)).is_ok(),
                    "asymmetric membership {u} / {m}"
                );
            }
        }
    }

    /// Generated statistics stay in the calibrated bands across seeds.
    #[test]
    fn stats_stay_in_band(seed in 0u64..15) {
        let d = generate(&small_config(seed));
        let s = d.stats();
        prop_assert!(s.n_behaviors > 0);
        let ratio = s.success_ratio();
        prop_assert!((0.3..=0.99).contains(&ratio), "success ratio {ratio}");
        prop_assert!(s.mean_friends > 1.0);
    }
}
