//! The group-buying dataset container.

use crate::behavior::GroupBehavior;
use crate::stats::DatasetStats;
use gb_graph::{HeteroBuilder, HeteroGraphs, SocialGraph};

/// A complete group-buying dataset: behaviors `B`, social relations `S`,
/// and the per-item group-size thresholds `t_n` (Sec. II).
#[derive(Clone, Debug)]
pub struct Dataset {
    n_users: usize,
    n_items: usize,
    behaviors: Vec<GroupBehavior>,
    social_pairs: Vec<(u32, u32)>,
    social: SocialGraph,
    item_thresholds: Vec<u32>,
}

impl Dataset {
    /// Assembles a dataset, building the social graph from undirected
    /// friend pairs.
    ///
    /// # Panics
    /// Panics if any id is out of bounds, `item_thresholds.len() !=
    /// n_items`, or a behavior's participants are not friends-consistent
    /// in size (participants must be distinct from the initiator).
    pub fn new(
        n_users: usize,
        n_items: usize,
        behaviors: Vec<GroupBehavior>,
        social_pairs: Vec<(u32, u32)>,
        item_thresholds: Vec<u32>,
    ) -> Self {
        assert_eq!(
            item_thresholds.len(),
            n_items,
            "one threshold per item required"
        );
        for b in &behaviors {
            assert!((b.initiator as usize) < n_users, "initiator out of bounds");
            assert!((b.item as usize) < n_items, "item out of bounds");
            for &p in &b.participants {
                assert!((p as usize) < n_users, "participant out of bounds");
                assert_ne!(p, b.initiator, "initiator cannot participate in own group");
            }
        }
        let social = SocialGraph::from_pairs(n_users, &social_pairs);
        Self {
            n_users,
            n_items,
            behaviors,
            social_pairs,
            social,
            item_thresholds,
        }
    }

    /// Number of users `P`.
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Number of items `Q`.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// All behaviors `B`.
    pub fn behaviors(&self) -> &[GroupBehavior] {
        &self.behaviors
    }

    /// The social network `S`.
    pub fn social(&self) -> &SocialGraph {
        &self.social
    }

    /// Raw undirected friendship pairs (for serialization).
    pub fn social_pairs(&self) -> &[(u32, u32)] {
        &self.social_pairs
    }

    /// The per-item group-size thresholds `t_n`.
    pub fn item_thresholds(&self) -> &[u32] {
        &self.item_thresholds
    }

    /// Threshold of `item`.
    pub fn threshold(&self, item: u32) -> u32 {
        self.item_thresholds[item as usize]
    }

    /// Whether behavior `b` clinched (`|Mp| >= t_n`).
    pub fn is_successful(&self, b: &GroupBehavior) -> bool {
        b.is_successful(self.threshold(b.item))
    }

    /// Iterates the successful part `B+` of the behaviors.
    pub fn successful(&self) -> impl Iterator<Item = &GroupBehavior> {
        self.behaviors.iter().filter(move |b| self.is_successful(b))
    }

    /// Iterates the failed part `B-` of the behaviors.
    pub fn failed(&self) -> impl Iterator<Item = &GroupBehavior> {
        self.behaviors
            .iter()
            .filter(move |b| !self.is_successful(b))
    }

    /// Builds the directed heterogeneous graphs `G = {Gi, Gp, Gs}` from the
    /// behaviors (Sec. III-A).
    pub fn build_hetero(&self) -> HeteroGraphs {
        let mut builder = HeteroBuilder::new(self.n_users, self.n_items);
        for b in &self.behaviors {
            builder.add_behavior(b.initiator, b.item, &b.participants);
        }
        builder.build()
    }

    /// Per-user sorted lists of items interacted with in *any* role —
    /// the exclusion set for negative sampling and test-candidate sampling.
    pub fn interacted_items(&self) -> Vec<Vec<u32>> {
        let mut sets: Vec<Vec<u32>> = vec![Vec::new(); self.n_users];
        for b in &self.behaviors {
            sets[b.initiator as usize].push(b.item);
            for &p in &b.participants {
                sets[p as usize].push(b.item);
            }
        }
        for s in &mut sets {
            s.sort_unstable();
            s.dedup();
        }
        sets
    }

    /// Table II-style statistics.
    pub fn stats(&self) -> DatasetStats {
        DatasetStats::compute(self)
    }

    /// Returns a copy with a different behavior set (used by the splitter).
    pub fn with_behaviors(&self, behaviors: Vec<GroupBehavior>) -> Dataset {
        Dataset::new(
            self.n_users,
            self.n_items,
            behaviors,
            self.social_pairs.clone(),
            self.item_thresholds.clone(),
        )
    }
}

#[cfg(test)]
pub(crate) mod test_fixtures {
    use super::*;

    /// A small hand-written dataset used across the crate's tests:
    /// 6 users, 4 items; user 0-1-2 a friend triangle, 3-4 friends, 5 loner.
    pub fn tiny() -> Dataset {
        let behaviors = vec![
            GroupBehavior::new(0, 0, vec![1, 2]), // success (t=1)
            GroupBehavior::new(0, 1, vec![]),     // failed  (t=1)
            GroupBehavior::new(1, 2, vec![0]),    // success
            GroupBehavior::new(3, 1, vec![4]),    // success
            GroupBehavior::new(3, 3, vec![]),     // failed
            GroupBehavior::new(5, 2, vec![]),     // failed
        ];
        Dataset::new(
            6,
            4,
            behaviors,
            vec![(0, 1), (1, 2), (0, 2), (3, 4)],
            vec![1, 1, 1, 2],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::test_fixtures::tiny;
    use super::*;

    #[test]
    fn success_failure_partition() {
        let d = tiny();
        assert_eq!(d.successful().count(), 3);
        assert_eq!(d.failed().count(), 3);
        assert_eq!(d.behaviors().len(), 6);
    }

    #[test]
    fn hetero_graph_matches_behaviors() {
        let d = tiny();
        let g = d.build_hetero();
        assert_eq!(g.initiator.items_of(0), &[0, 1]);
        assert_eq!(g.participant.items_of(2), &[0]);
        assert_eq!(g.share.outgoing(0), &[1, 2]);
        assert_eq!(g.share.incoming(4), &[3]);
    }

    #[test]
    fn interacted_items_cover_both_roles() {
        let d = tiny();
        let sets = d.interacted_items();
        assert_eq!(sets[0], vec![0, 1, 2]); // initiator of 0,1; participant of 2
        assert_eq!(sets[4], vec![1]); // participant only
        assert_eq!(sets[5], vec![2]);
    }

    #[test]
    #[should_panic(expected = "own group")]
    fn initiator_not_allowed_as_participant() {
        Dataset::new(
            2,
            1,
            vec![GroupBehavior::new(0, 0, vec![0])],
            vec![],
            vec![1],
        );
    }

    #[test]
    #[should_panic(expected = "one threshold per item")]
    fn thresholds_must_match_items() {
        Dataset::new(2, 3, vec![], vec![], vec![1]);
    }
}
