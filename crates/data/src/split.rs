//! Leave-one-out train/validation/test splitting (Sec. IV-A.2).
//!
//! Following the paper (and the NCF evaluation lineage it cites), for each
//! user one group-buying record *as initiator* is withheld for testing and
//! one more for validation; everything else trains. Users with too few
//! launches keep all their records in training and are not evaluated —
//! mirroring the paper's preprocessing, which filters low-activity users.

use crate::behavior::GroupBehavior;
use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A single held-out ranking instance: the ground-truth item a user
/// launched, to be ranked against sampled negatives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TestInstance {
    /// The initiator being evaluated.
    pub user: u32,
    /// The held-out ground-truth item.
    pub item: u32,
}

/// Result of leave-one-out splitting.
#[derive(Clone, Debug)]
pub struct Split {
    /// Training dataset (same user/item/social universe, fewer behaviors).
    pub train: Dataset,
    /// One held-out instance per eligible user.
    pub test: Vec<TestInstance>,
    /// One held-out instance per user eligible for validation.
    pub validation: Vec<TestInstance>,
}

/// Performs the leave-one-out split.
///
/// Users need at least 3 launches to contribute both a test and a
/// validation instance, and at least 2 to contribute a test instance.
/// The withheld behavior is chosen uniformly at random (seeded).
pub fn leave_one_out(dataset: &Dataset, seed: u64) -> Split {
    let mut rng = StdRng::seed_from_u64(seed);

    // Indices of behaviors grouped by initiator.
    let mut by_user: Vec<Vec<usize>> = vec![Vec::new(); dataset.n_users()];
    for (idx, b) in dataset.behaviors().iter().enumerate() {
        by_user[b.initiator as usize].push(idx);
    }

    let mut held_out = vec![false; dataset.behaviors().len()];
    let mut test = Vec::new();
    let mut validation = Vec::new();

    for (user, mut indices) in by_user.into_iter().enumerate() {
        if indices.len() < 2 {
            continue;
        }
        indices.shuffle(&mut rng);
        let test_idx = indices[0];
        held_out[test_idx] = true;
        let b = &dataset.behaviors()[test_idx];
        test.push(TestInstance {
            user: user as u32,
            item: b.item,
        });

        if indices.len() >= 3 {
            let val_idx = indices[1];
            held_out[val_idx] = true;
            let vb = &dataset.behaviors()[val_idx];
            validation.push(TestInstance {
                user: user as u32,
                item: vb.item,
            });
        }
    }

    let train_behaviors: Vec<GroupBehavior> = dataset
        .behaviors()
        .iter()
        .enumerate()
        .filter(|(i, _)| !held_out[*i])
        .map(|(_, b)| b.clone())
        .collect();

    Split {
        train: dataset.with_behaviors(train_behaviors),
        test,
        validation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SynthConfig};

    #[test]
    fn split_is_disjoint_and_complete() {
        let d = generate(&SynthConfig::tiny());
        let split = leave_one_out(&d, 1);
        let total = split.train.behaviors().len() + split.test.len() + split.validation.len();
        assert_eq!(total, d.behaviors().len());
    }

    #[test]
    fn every_user_with_min_launches_is_tested() {
        let d = generate(&SynthConfig::tiny()); // min_launches = 3
        let split = leave_one_out(&d, 1);
        assert_eq!(split.test.len(), d.n_users());
        assert_eq!(split.validation.len(), d.n_users());
    }

    #[test]
    fn train_still_contains_every_tested_user() {
        // Each tested user must keep >= 1 training launch, otherwise its
        // embedding never gets an initiator-view signal.
        let d = generate(&SynthConfig::tiny());
        let split = leave_one_out(&d, 1);
        let mut launches = vec![0usize; d.n_users()];
        for b in split.train.behaviors() {
            launches[b.initiator as usize] += 1;
        }
        for t in &split.test {
            assert!(
                launches[t.user as usize] >= 1,
                "user {} lost all train data",
                t.user
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let d = generate(&SynthConfig::tiny());
        let a = leave_one_out(&d, 5);
        let b = leave_one_out(&d, 5);
        assert_eq!(a.test, b.test);
        assert_eq!(a.validation, b.validation);
        let c = leave_one_out(&d, 6);
        assert_ne!(a.test, c.test);
    }

    #[test]
    fn users_with_one_launch_are_skipped() {
        use crate::behavior::GroupBehavior;
        let d = Dataset::new(
            3,
            2,
            vec![
                GroupBehavior::new(0, 0, vec![]),
                GroupBehavior::new(1, 0, vec![]),
                GroupBehavior::new(1, 1, vec![]),
            ],
            vec![(0, 1)],
            vec![1, 1],
        );
        let split = leave_one_out(&d, 0);
        assert!(split.test.iter().all(|t| t.user == 1));
        assert_eq!(split.test.len(), 1);
        assert!(split.validation.is_empty());
    }
}
