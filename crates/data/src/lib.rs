//! # gb-data
//!
//! Dataset model and workload generation for the GBGCN reproduction.
//!
//! The paper evaluates on a proprietary crawl of the Beibei platform
//! (Table II: 190,080 users / 30,782 items / 748,233 social relations /
//! 932,896 group-buying behaviors, 77.4% of which clinched). That dataset
//! is not redistributable, so this crate provides
//! [`synth::generate`] — a synthetic social e-commerce simulator whose
//! output has the same *schema* and matching *shape statistics*
//! (success ratio, social degree, behaviors per user, popularity skew) and
//! which plants exactly the structure the models under test are designed
//! to exploit: role-dependent user preferences, social homophily, and
//! tie-strength-dependent join behaviour. See `DESIGN.md` §1 for the full
//! substitution argument.
//!
//! Contents:
//!
//! * [`behavior`] — the group-buying record `⟨mi, n, Mp⟩` (Sec. II).
//! * [`dataset`] — container tying behaviors, the social network, and the
//!   per-item group-size thresholds `t_n` together.
//! * [`synth`] — the synthetic Beibei-like generator.
//! * [`split`] — leave-one-out train/validation/test splitting
//!   (Sec. IV-A.2).
//! * [`negative`] — the negative-sampling machinery of Sec. III-C.2.
//! * [`convert`] — dataset conversions for the baseline families
//!   (Sec. IV-A.1): *(oi)*, *(both roles)*, and the group-recommendation
//!   variant.
//! * [`stats`] — Table II-style statistics.
//! * [`io`] — JSON (de)serialization of datasets.
//! * [`events`] — the append-only deal lifecycle event log (open / join
//!   / full / expire with logical timestamps) behind the streaming
//!   serving path; [`synth::generate_with_events`] emits one alongside
//!   the batch dataset.

pub mod behavior;
pub mod convert;
pub mod dataset;
pub mod events;
pub mod io;
pub mod negative;
pub mod split;
pub mod stats;
pub mod synth;
pub mod text;

pub use behavior::GroupBehavior;
pub use convert::{GroupData, InteractionKind};
pub use dataset::Dataset;
pub use events::{DealEvent, DealEventKind, DealPhase, EventLog};
pub use negative::NegativeSampler;
pub use split::{Split, TestInstance};
pub use stats::DatasetStats;
pub use synth::SynthConfig;
