//! Plain-text dataset loader compatible with the authors' released data
//! layout (https://github.com/Sweetnow/group-buying-recommendation).
//!
//! The release ships whitespace/comma-delimited text files; this module
//! reads the equivalent structure so the real Beibei dump can be swapped
//! in for the synthetic workload without touching any other code:
//!
//! * `behaviors.txt` — one behavior per line:
//!   `initiator<TAB>item<TAB>participant,participant,...`
//!   (the participant field may be empty for failed solo launches);
//! * `social.txt` — one undirected friendship per line: `user<TAB>user`;
//! * `thresholds.txt` — optional, one `item<TAB>t_n` per line; items
//!   without an entry default to a threshold of 1.
//!
//! Ids must be contiguous `0..n`; the loader infers `n_users`/`n_items`
//! from the maximum id seen.

use crate::behavior::GroupBehavior;
use crate::dataset::Dataset;
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

/// Parses the behaviors file.
pub fn parse_behaviors<R: Read>(r: R) -> std::io::Result<Vec<GroupBehavior>> {
    let mut out = Vec::new();
    for (lineno, line) in BufReader::new(r).lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split('\t');
        let initiator = parse_id(fields.next(), "initiator", lineno)?;
        let item = parse_id(fields.next(), "item", lineno)?;
        let participants = match fields.next() {
            None | Some("") => Vec::new(),
            Some(list) => list
                .split(',')
                .filter(|t| !t.trim().is_empty())
                .map(|t| {
                    t.trim().parse::<u32>().map_err(|e| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("line {}: bad participant `{t}`: {e}", lineno + 1),
                        )
                    })
                })
                .collect::<Result<_, _>>()?,
        };
        out.push(GroupBehavior::new(initiator, item, participants));
    }
    Ok(out)
}

/// Parses the social file into undirected pairs.
pub fn parse_social<R: Read>(r: R) -> std::io::Result<Vec<(u32, u32)>> {
    let mut out = Vec::new();
    for (lineno, line) in BufReader::new(r).lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split('\t');
        let a = parse_id(fields.next(), "user", lineno)?;
        let b = parse_id(fields.next(), "friend", lineno)?;
        out.push((a, b));
    }
    Ok(out)
}

/// Parses the optional thresholds file into `(item, t_n)` pairs.
pub fn parse_thresholds<R: Read>(r: R) -> std::io::Result<Vec<(u32, u32)>> {
    let mut out = Vec::new();
    for (lineno, line) in BufReader::new(r).lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split('\t');
        let item = parse_id(fields.next(), "item", lineno)?;
        let t = parse_id(fields.next(), "threshold", lineno)?;
        out.push((item, t));
    }
    Ok(out)
}

/// Loads a dataset directory (`behaviors.txt`, `social.txt`, optional
/// `thresholds.txt`).
pub fn load_dir(dir: impl AsRef<Path>) -> std::io::Result<Dataset> {
    let dir = dir.as_ref();
    let behaviors = parse_behaviors(std::fs::File::open(dir.join("behaviors.txt"))?)?;
    let social = parse_social(std::fs::File::open(dir.join("social.txt"))?)?;
    let thresholds_path = dir.join("thresholds.txt");
    let thresholds = if thresholds_path.exists() {
        parse_thresholds(std::fs::File::open(thresholds_path)?)?
    } else {
        Vec::new()
    };
    assemble(behaviors, social, thresholds)
}

/// Assembles a [`Dataset`] from parsed parts, inferring universe sizes.
pub fn assemble(
    behaviors: Vec<GroupBehavior>,
    social: Vec<(u32, u32)>,
    thresholds: Vec<(u32, u32)>,
) -> std::io::Result<Dataset> {
    let mut max_user = 0u32;
    let mut max_item = 0u32;
    for b in &behaviors {
        max_user = max_user.max(b.initiator);
        max_item = max_item.max(b.item);
        for &p in &b.participants {
            max_user = max_user.max(p);
        }
    }
    for &(a, b) in &social {
        max_user = max_user.max(a).max(b);
    }
    for &(i, _) in &thresholds {
        max_item = max_item.max(i);
    }
    let n_users = max_user as usize + 1;
    let n_items = max_item as usize + 1;
    let mut item_thresholds = vec![1u32; n_items];
    for (i, t) in thresholds {
        item_thresholds[i as usize] = t;
    }
    Ok(Dataset::new(
        n_users,
        n_items,
        behaviors,
        social,
        item_thresholds,
    ))
}

fn parse_id(field: Option<&str>, what: &str, lineno: usize) -> std::io::Result<u32> {
    field
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line {}: missing {what}", lineno + 1),
            )
        })?
        .trim()
        .parse::<u32>()
        .map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line {}: bad {what}: {e}", lineno + 1),
            )
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    const BEHAVIORS: &str = "# header comment\n0\t1\t2,3\n1\t0\t\n2\t1\n";
    const SOCIAL: &str = "0\t2\n0\t3\n1\t2\n";
    const THRESHOLDS: &str = "1\t2\n0\t1\n";

    #[test]
    fn parses_behaviors_with_and_without_participants() {
        let b = parse_behaviors(BEHAVIORS.as_bytes()).unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(b[0], GroupBehavior::new(0, 1, vec![2, 3]));
        assert_eq!(b[1], GroupBehavior::new(1, 0, vec![]));
        assert_eq!(b[2], GroupBehavior::new(2, 1, vec![]));
    }

    #[test]
    fn assembles_full_dataset() {
        let d = assemble(
            parse_behaviors(BEHAVIORS.as_bytes()).unwrap(),
            parse_social(SOCIAL.as_bytes()).unwrap(),
            parse_thresholds(THRESHOLDS.as_bytes()).unwrap(),
        )
        .unwrap();
        assert_eq!(d.n_users(), 4);
        assert_eq!(d.n_items(), 2);
        assert_eq!(d.threshold(1), 2);
        assert_eq!(d.threshold(0), 1);
        assert!(d.social().are_friends(0, 2));
        // behavior 0: 2 participants >= t=2 -> success
        assert!(d.is_successful(&d.behaviors()[0]));
        // behavior 2: 0 participants < t=2 -> failed
        assert!(!d.is_successful(&d.behaviors()[2]));
    }

    #[test]
    fn directory_roundtrip() {
        let dir = std::env::temp_dir().join("gb_data_text_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("behaviors.txt"), BEHAVIORS).unwrap();
        std::fs::write(dir.join("social.txt"), SOCIAL).unwrap();
        std::fs::write(dir.join("thresholds.txt"), THRESHOLDS).unwrap();
        let d = load_dir(&dir).unwrap();
        assert_eq!(d.behaviors().len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_thresholds_default_to_one() {
        let d = assemble(
            parse_behaviors(BEHAVIORS.as_bytes()).unwrap(),
            vec![],
            vec![],
        )
        .unwrap();
        assert!(d.item_thresholds().iter().all(|&t| t == 1));
    }

    #[test]
    fn malformed_lines_are_errors() {
        assert!(parse_behaviors("x\t1\t\n".as_bytes()).is_err());
        assert!(parse_social("0\n".as_bytes()).is_err());
        assert!(parse_thresholds("0\tx\n".as_bytes()).is_err());
    }
}
