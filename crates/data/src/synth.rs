//! Synthetic Beibei-like group-buying data generator.
//!
//! The paper's dataset is a proprietary crawl of the Beibei platform.
//! This module is the documented substitution (DESIGN.md §1): a latent-
//! factor simulator of a social e-commerce site that produces the same
//! record schema (`⟨initiator, item, participants⟩` + social network +
//! per-item thresholds) with matching shape statistics:
//!
//! * ≈77% of groups clinch (Table II: 721,605 / 932,896);
//! * social degree ≈ 2·748,233 / 190,080 ≈ 7.9 friends/user;
//! * ≈4.9 behaviors per user;
//! * Zipf-skewed item popularity (universal in e-commerce logs).
//!
//! Crucially, the generator plants the *mechanisms* the compared models
//! differ on, so the evaluation discriminates between them the same way
//! the production data does:
//!
//! 1. **Role-dependent preference** — each user has an initiator-role and
//!    a participant-role latent vector that differ by a controlled angle
//!    `role_divergence` (drives the multi-view ablation, Table V, and the
//!    embedding analysis, Figs. 5–6).
//! 2. **Social homophily** — users in the same community have correlated
//!    latents and are more likely to be friends (what SocialMF/DiffNet
//!    exploit).
//! 3. **Tie-strength-dependent joining** — a friend joins a group with
//!    probability `σ(join_scale · ⟨z_f^part, w_n⟩ + tie(u,f) + join_bias)`,
//!    so group success depends on *both* participants' interests and the
//!    initiator's influence — the signal GBGCN's cross-view propagation
//!    and double-pairwise loss are built to extract.

use crate::behavior::GroupBehavior;
use crate::dataset::Dataset;
use crate::events::EventLog;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration of the synthetic generator.
#[derive(Clone, Debug)]
pub struct SynthConfig {
    /// Number of users `P`.
    pub n_users: usize,
    /// Number of items `Q`.
    pub n_items: usize,
    /// Dimensionality of the ground-truth latent space.
    pub latent_dim: usize,
    /// Number of latent communities (drives homophily).
    pub n_communities: usize,
    /// Target mean number of friends per user (Beibei ≈ 7.9).
    pub mean_friends: f64,
    /// Probability that a friendship is drawn inside the own community.
    pub social_homophily: f64,
    /// Target mean number of launched groups per user (Beibei ≈ 4.9).
    pub behaviors_per_user: f64,
    /// Minimum number of launches per user (emulates the paper's
    /// "filter out users with few interactions" preprocessing while
    /// keeping the id space compact; every user stays testable under
    /// leave-one-out).
    pub min_launches: usize,
    /// Fraction of a user's latent vector shared with the community
    /// centroid (0 = fully individual, 1 = pure community taste).
    pub taste_homophily: f32,
    /// Angular divergence between initiator-role and participant-role
    /// latents (0 = identical roles).
    pub role_divergence: f32,
    /// Inclusive range for per-item thresholds `t_n`.
    pub threshold_range: (u32, u32),
    /// Zipf exponent of item popularity.
    pub popularity_exponent: f64,
    /// Number of candidate items an initiator browses before launching.
    pub candidate_pool: usize,
    /// Scale of the affinity term in the join logit.
    pub join_scale: f32,
    /// Offset of the join logit; tunes the global success ratio.
    pub join_bias: f32,
    /// RNG seed; generation is fully deterministic given the config.
    pub seed: u64,
}

impl SynthConfig {
    /// Scaled-down Beibei-like default used by the experiment binaries:
    /// matches the proportions of Table II at ~1/95 scale so a full
    /// ten-model comparison runs on a laptop CPU.
    pub fn beibei_like() -> Self {
        Self {
            n_users: 2000,
            n_items: 400,
            latent_dim: 16,
            n_communities: 25,
            mean_friends: 7.9,
            social_homophily: 0.7,
            behaviors_per_user: 4.9,
            min_launches: 3,
            taste_homophily: 0.65,
            role_divergence: 0.7,
            threshold_range: (1, 2),
            popularity_exponent: 0.9,
            candidate_pool: 24,
            join_scale: 5.0,
            join_bias: -1.95,
            seed: 20210411,
        }
    }

    /// Larger configuration for the timing experiment (Table IV), where
    /// relative per-epoch cost matters more than model quality.
    pub fn beibei_large() -> Self {
        Self {
            n_users: 8000,
            n_items: 1500,
            ..Self::beibei_like()
        }
    }

    /// Miniature configuration for unit and integration tests.
    pub fn tiny() -> Self {
        Self {
            n_users: 220,
            n_items: 60,
            latent_dim: 8,
            n_communities: 6,
            mean_friends: 6.0,
            social_homophily: 0.7,
            behaviors_per_user: 4.0,
            min_launches: 3,
            taste_homophily: 0.65,
            role_divergence: 0.45,
            threshold_range: (1, 2),
            popularity_exponent: 0.9,
            candidate_pool: 12,
            join_scale: 3.0,
            // Calibrated so the tiny workload's success ratio sits at
            // Beibei's ~77% (Table II) under the workspace PRNG.
            join_bias: -2.0,
            seed: 7,
        }
    }

    /// Returns the config with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Generates a dataset according to `cfg`. Deterministic per config.
pub fn generate(cfg: &SynthConfig) -> Dataset {
    generate_with_events(cfg).0
}

/// Like [`generate`], additionally emitting the deal lifecycle behind
/// every behavior as an append-only [`EventLog`]: one `open` per launch,
/// one `join` per accepted friend (in browse order, before the stored
/// participant list is sorted), then `full` if the group clinched at the
/// item threshold or `expire` otherwise.
///
/// Event emission draws nothing from the RNG, so the returned dataset is
/// byte-identical to [`generate`]'s for the same config, and the log is
/// just as deterministic. Deal id `d` corresponds to `behaviors()[d]`.
pub fn generate_with_events(cfg: &SynthConfig) -> (Dataset, EventLog) {
    assert!(cfg.n_users >= 4, "need at least 4 users");
    assert!(cfg.n_items >= 2, "need at least 2 items");
    assert!(
        cfg.threshold_range.0 <= cfg.threshold_range.1,
        "bad threshold range"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // --- latent structure ---------------------------------------------
    let centers: Vec<Vec<f32>> = (0..cfg.n_communities)
        .map(|_| random_unit(cfg.latent_dim, &mut rng))
        .collect();
    let user_comm: Vec<usize> = (0..cfg.n_users)
        .map(|_| rng.gen_range(0..cfg.n_communities))
        .collect();
    let item_comm: Vec<usize> = (0..cfg.n_items)
        .map(|_| rng.gen_range(0..cfg.n_communities))
        .collect();

    let user_init: Vec<Vec<f32>> = (0..cfg.n_users)
        .map(|u| {
            mix(
                &centers[user_comm[u]],
                cfg.taste_homophily,
                cfg.latent_dim,
                &mut rng,
            )
        })
        .collect();
    let user_part: Vec<Vec<f32>> = user_init
        .iter()
        .map(|z| {
            let noise = random_unit(cfg.latent_dim, &mut rng);
            normalize(
                z.iter()
                    .zip(&noise)
                    .map(|(a, b)| a + cfg.role_divergence * b)
                    .collect(),
            )
        })
        .collect();
    let item_vec: Vec<Vec<f32>> = (0..cfg.n_items)
        .map(|i| mix(&centers[item_comm[i]], 0.7, cfg.latent_dim, &mut rng))
        .collect();

    // --- item popularity (Zipf over a random permutation) ---------------
    let mut ranks: Vec<usize> = (0..cfg.n_items).collect();
    ranks.shuffle(&mut rng);
    let mut pop_cdf = Vec::with_capacity(cfg.n_items);
    let mut acc = 0.0f64;
    let mut pop = vec![0.0f64; cfg.n_items];
    for (item, &rank) in ranks.iter().enumerate() {
        pop[item] = 1.0 / ((rank + 1) as f64).powf(cfg.popularity_exponent);
    }
    for &p in &pop {
        acc += p;
        pop_cdf.push(acc);
    }
    let total_pop = acc;

    // --- social network ---------------------------------------------------
    let mut comm_members: Vec<Vec<u32>> = vec![Vec::new(); cfg.n_communities];
    for (u, &c) in user_comm.iter().enumerate() {
        comm_members[c].push(u as u32);
    }
    let mut pair_set = std::collections::HashSet::new();
    let mut social_pairs = Vec::new();
    let target_edges = (cfg.mean_friends * cfg.n_users as f64 / 2.0).round() as usize;
    let mut guard = 0usize;
    while social_pairs.len() < target_edges && guard < target_edges * 50 {
        guard += 1;
        let a = rng.gen_range(0..cfg.n_users) as u32;
        let b = if rng.gen_bool(cfg.social_homophily) {
            let members = &comm_members[user_comm[a as usize]];
            members[rng.gen_range(0..members.len())]
        } else {
            rng.gen_range(0..cfg.n_users) as u32
        };
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if pair_set.insert(key) {
            social_pairs.push(key);
        }
    }

    // Friend lookup for the join process.
    let mut friends: Vec<Vec<u32>> = vec![Vec::new(); cfg.n_users];
    for &(a, b) in &social_pairs {
        friends[a as usize].push(b);
        friends[b as usize].push(a);
    }

    // --- per-item thresholds ------------------------------------------------
    let item_thresholds: Vec<u32> = (0..cfg.n_items)
        .map(|_| rng.gen_range(cfg.threshold_range.0..=cfg.threshold_range.1))
        .collect();

    // --- behaviors ---------------------------------------------------------
    // Activity follows a heavy-ish tail: a_u = exp(N(0, 0.6)), then launch
    // counts are scaled to the target mean with a per-user floor.
    let activities: Vec<f64> = (0..cfg.n_users)
        .map(|_| gaussian(&mut rng, 0.0, 0.6).exp())
        .collect();
    let mean_act = activities.iter().sum::<f64>() / cfg.n_users as f64;

    let mut behaviors = Vec::new();
    let mut log = EventLog::new();
    for u in 0..cfg.n_users {
        let expect = cfg.behaviors_per_user * activities[u] / mean_act;
        let n_launch = (expect + rng.gen_range(0.0..1.0)).floor() as usize;
        let n_launch = n_launch.max(cfg.min_launches);
        for _ in 0..n_launch {
            let item = pick_item(cfg, &user_init[u], &item_vec, &pop_cdf, total_pop, &mut rng);
            let tn = item_thresholds[item as usize] as usize;
            // Friends browse the shared group in random order; the group
            // closes as soon as it clinches (t_n joiners), matching how
            // Pinduoduo-style deals work. The lifecycle log mirrors the
            // process event by event — open, joins in browse order, then
            // full/expire — without consuming any randomness, so the
            // dataset is unchanged by the recording.
            let deal = log.open(item, u as u32, item_thresholds[item as usize]);
            let mut order = friends[u].clone();
            order.shuffle(&mut rng);
            let mut participants = Vec::new();
            for f in order {
                if participants.len() >= tn {
                    break;
                }
                let affinity = dot(&user_part[f as usize], &item_vec[item as usize]);
                let tie = tie_strength(u as u32, f, cfg.seed);
                let logit = cfg.join_scale * affinity + tie + cfg.join_bias;
                if rng.gen_bool(sigmoid64(logit as f64)) {
                    log.join(deal, f);
                    participants.push(f);
                }
            }
            if participants.len() >= tn {
                log.full(deal);
            } else {
                log.expire(deal);
            }
            participants.sort_unstable();
            behaviors.push(GroupBehavior::new(u as u32, item, participants));
        }
    }

    let data = Dataset::new(
        cfg.n_users,
        cfg.n_items,
        behaviors,
        social_pairs,
        item_thresholds,
    );
    (data, log)
}

// --- helpers ----------------------------------------------------------------

fn random_unit(dim: usize, rng: &mut StdRng) -> Vec<f32> {
    normalize((0..dim).map(|_| gaussian(rng, 0.0, 1.0) as f32).collect())
}

/// `homophily * center + (1 - homophily) * noise`, normalized.
fn mix(center: &[f32], homophily: f32, dim: usize, rng: &mut StdRng) -> Vec<f32> {
    let noise = random_unit(dim, rng);
    normalize(
        center
            .iter()
            .zip(&noise)
            .map(|(c, n)| homophily * c + (1.0 - homophily) * n)
            .collect(),
    )
}

fn normalize(mut v: Vec<f32>) -> Vec<f32> {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        v.iter_mut().for_each(|x| *x /= norm);
    }
    v
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn gaussian(rng: &mut StdRng, mean: f64, std: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    mean + std * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn sigmoid64(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Deterministic pseudo-random tie strength in roughly N(0, 0.5) for an
/// unordered user pair, derived by hashing — stable across the whole
/// generation process without storing a P x P matrix.
fn tie_strength(a: u32, b: u32, seed: u64) -> f32 {
    let (lo, hi) = (a.min(b) as u64, a.max(b) as u64);
    let mut h =
        seed ^ (lo.wrapping_mul(0x9E3779B97F4A7C15)) ^ (hi.wrapping_mul(0xBF58476D1CE4E5B9));
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58476D1CE4E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D049BB133111EB);
    h ^= h >> 31;
    let unit = (h as f64) / (u64::MAX as f64); // in [0, 1]
    ((unit - 0.5) * 2.0) as f32 // in [-1, 1], std ≈ 0.58
}

/// Samples `candidate_pool` items by popularity and returns the one with
/// the highest noisy affinity to the initiator (Gumbel-max ≈ softmax
/// choice over the browsed candidates).
fn pick_item(
    cfg: &SynthConfig,
    user_vec: &[f32],
    item_vec: &[Vec<f32>],
    pop_cdf: &[f64],
    total_pop: f64,
    rng: &mut StdRng,
) -> u32 {
    let mut best = 0u32;
    let mut best_score = f32::NEG_INFINITY;
    for _ in 0..cfg.candidate_pool.max(1) {
        let r = rng.gen_range(0.0..total_pop);
        let idx = pop_cdf.partition_point(|&c| c < r).min(item_vec.len() - 1);
        let gumbel = -(-(rng.gen_range(f64::EPSILON..1.0)).ln()).ln() as f32;
        let score = 2.0 * dot(user_vec, &item_vec[idx]) + 0.5 * gumbel;
        if score > best_score {
            best_score = score;
            best = idx as u32;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let cfg = SynthConfig::tiny();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.behaviors(), b.behaviors());
        assert_eq!(a.social_pairs(), b.social_pairs());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&SynthConfig::tiny());
        let b = generate(&SynthConfig::tiny().with_seed(99));
        assert_ne!(a.behaviors(), b.behaviors());
    }

    #[test]
    fn shape_statistics_match_targets() {
        let cfg = SynthConfig::tiny();
        let d = generate(&cfg);
        let stats = d.stats();

        // Success ratio in a plausible band around Beibei's 77%.
        let ratio = stats.n_successful as f64 / stats.n_behaviors as f64;
        assert!((0.45..=0.95).contains(&ratio), "success ratio {ratio}");

        // Mean friends within 40% of the target.
        assert!(
            (stats.mean_friends - cfg.mean_friends).abs() < 0.4 * cfg.mean_friends,
            "mean friends {} vs target {}",
            stats.mean_friends,
            cfg.mean_friends
        );

        // Every user launches at least `min_launches` groups.
        let mut launches = vec![0usize; d.n_users()];
        for b in d.behaviors() {
            launches[b.initiator as usize] += 1;
        }
        assert!(launches.iter().all(|&l| l >= cfg.min_launches));
    }

    #[test]
    fn participants_are_friends_of_initiator() {
        let d = generate(&SynthConfig::tiny());
        for b in d.behaviors() {
            for &p in &b.participants {
                assert!(
                    d.social().are_friends(b.initiator, p),
                    "participant {} of behavior by {} is not a friend",
                    p,
                    b.initiator
                );
            }
        }
    }

    #[test]
    fn groups_close_at_threshold() {
        let d = generate(&SynthConfig::tiny());
        for b in d.behaviors() {
            assert!(
                b.participants.len() <= d.threshold(b.item) as usize,
                "group overfilled beyond threshold"
            );
        }
    }

    #[test]
    fn popularity_is_skewed() {
        let d = generate(&SynthConfig::tiny());
        let mut counts = vec![0usize; d.n_items()];
        for b in d.behaviors() {
            counts[b.item as usize] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = counts.iter().sum();
        let top_decile: usize = counts.iter().take(d.n_items() / 10).sum();
        assert!(
            top_decile as f64 >= 0.2 * total as f64,
            "top-10% items should capture a disproportionate share, got {}/{}",
            top_decile,
            total
        );
    }

    #[test]
    fn event_log_mirrors_behaviors_exactly() {
        use crate::events::DealEventKind;
        let cfg = SynthConfig::tiny();
        let (d, log) = generate_with_events(&cfg);
        assert_eq!(log.n_deals(), d.behaviors().len());

        for (deal, b) in d.behaviors().iter().enumerate() {
            let deal = deal as u32;
            assert_eq!(log.deal_item(deal), b.item, "deal {deal}");
            assert_eq!(
                log.deal_joiners(deal) as usize,
                b.participants.len(),
                "deal {deal}"
            );
        }

        // Replay: joins per deal are the behavior's participants (as a
        // set — the log keeps browse order, the behavior sorts), and the
        // terminal event matches the clinch condition.
        let mut joined: Vec<Vec<u32>> = vec![Vec::new(); log.n_deals()];
        let mut terminal: Vec<Option<bool>> = vec![None; log.n_deals()];
        for ev in log.events() {
            match ev.kind {
                DealEventKind::Open {
                    item, initiator, ..
                } => {
                    let b = &d.behaviors()[ev.deal as usize];
                    assert_eq!((item, initiator), (b.item, b.initiator));
                }
                DealEventKind::Join { user } => joined[ev.deal as usize].push(user),
                DealEventKind::Full => terminal[ev.deal as usize] = Some(true),
                DealEventKind::Expire => terminal[ev.deal as usize] = Some(false),
            }
        }
        for (deal, b) in d.behaviors().iter().enumerate() {
            joined[deal].sort_unstable();
            assert_eq!(joined[deal], b.participants, "deal {deal} joiners");
            let clinched = b.participants.len() >= d.threshold(b.item) as usize;
            assert_eq!(terminal[deal], Some(clinched), "deal {deal} terminal");
        }
    }

    #[test]
    fn event_emission_never_perturbs_the_dataset() {
        let cfg = SynthConfig::tiny();
        let (with_events, _) = generate_with_events(&cfg);
        let plain = generate(&cfg);
        assert_eq!(with_events.behaviors(), plain.behaviors());
        assert_eq!(with_events.social_pairs(), plain.social_pairs());
    }

    #[test]
    fn tie_strength_symmetric_and_bounded() {
        for (a, b) in [(1u32, 2u32), (7, 3), (100, 100)] {
            let t1 = tie_strength(a, b, 42);
            let t2 = tie_strength(b, a, 42);
            assert_eq!(t1, t2);
            assert!((-1.0..=1.0).contains(&t1));
        }
    }
}
