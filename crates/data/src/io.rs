//! JSON (de)serialization of datasets.
//!
//! The authors released their dataset as text files; this module provides
//! the equivalent persistence layer so generated workloads can be frozen,
//! shared, and reloaded bit-identically across experiment binaries.

use crate::behavior::GroupBehavior;
use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::path::Path;

/// Plain-data mirror of [`Dataset`] used for serialization (the social
/// graph is rebuilt from pairs on load).
#[derive(Serialize, Deserialize)]
struct DatasetFile {
    n_users: usize,
    n_items: usize,
    behaviors: Vec<GroupBehavior>,
    social_pairs: Vec<(u32, u32)>,
    item_thresholds: Vec<u32>,
}

impl From<&Dataset> for DatasetFile {
    fn from(d: &Dataset) -> Self {
        Self {
            n_users: d.n_users(),
            n_items: d.n_items(),
            behaviors: d.behaviors().to_vec(),
            social_pairs: d.social_pairs().to_vec(),
            item_thresholds: d.item_thresholds().to_vec(),
        }
    }
}

impl From<DatasetFile> for Dataset {
    fn from(f: DatasetFile) -> Self {
        Dataset::new(
            f.n_users,
            f.n_items,
            f.behaviors,
            f.social_pairs,
            f.item_thresholds,
        )
    }
}

/// Serializes a dataset as JSON into any writer.
pub fn write_json<W: Write>(dataset: &Dataset, writer: W) -> serde_json::Result<()> {
    serde_json::to_writer(writer, &DatasetFile::from(dataset))
}

/// Deserializes a dataset from JSON.
pub fn read_json<R: Read>(reader: R) -> serde_json::Result<Dataset> {
    let file: DatasetFile = serde_json::from_reader(reader)?;
    Ok(file.into())
}

/// Saves a dataset to `path` as JSON.
pub fn save(dataset: &Dataset, path: impl AsRef<Path>) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_json(dataset, std::io::BufWriter::new(file))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Loads a dataset from a JSON file at `path`.
pub fn load(path: impl AsRef<Path>) -> std::io::Result<Dataset> {
    let file = std::fs::File::open(path)?;
    read_json(std::io::BufReader::new(file))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SynthConfig};

    #[test]
    fn json_roundtrip_preserves_everything() {
        let d = generate(&SynthConfig::tiny());
        let mut buf = Vec::new();
        write_json(&d, &mut buf).unwrap();
        let back = read_json(buf.as_slice()).unwrap();
        assert_eq!(d.n_users(), back.n_users());
        assert_eq!(d.n_items(), back.n_items());
        assert_eq!(d.behaviors(), back.behaviors());
        assert_eq!(d.social_pairs(), back.social_pairs());
        assert_eq!(d.item_thresholds(), back.item_thresholds());
        // Derived structure identical too.
        assert_eq!(d.stats(), back.stats());
    }

    #[test]
    fn file_roundtrip() {
        let d = generate(&SynthConfig::tiny());
        let dir = std::env::temp_dir().join("gb_data_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.json");
        save(&d, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(d.behaviors(), back.behaviors());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(read_json("not json".as_bytes()).is_err());
    }
}
