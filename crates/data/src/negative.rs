//! Negative sampling (Sec. III-C.2) and test-candidate sampling
//! (Sec. IV-A.2).

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::Rng;

/// Samples unobserved items for users.
///
/// Two uses, matching the paper:
/// * **training** — for each observed behavior, draw `k` items the user has
///   never interacted with (negative sampling ratio 1:1 in the paper's
///   main experiments);
/// * **evaluation** — draw the 999 candidate items that the test item is
///   ranked against.
pub struct NegativeSampler {
    n_items: usize,
    /// Per-user sorted interacted-item lists (both roles).
    interacted: Vec<Vec<u32>>,
}

impl NegativeSampler {
    /// Builds the sampler from a dataset's interaction sets.
    pub fn from_dataset(dataset: &Dataset) -> Self {
        Self {
            n_items: dataset.n_items(),
            interacted: dataset.interacted_items(),
        }
    }

    /// Builds a sampler from explicit per-user positive lists (each list
    /// must be sorted).
    pub fn from_positives(n_items: usize, interacted: Vec<Vec<u32>>) -> Self {
        debug_assert!(interacted.iter().all(|l| l.windows(2).all(|w| w[0] < w[1])));
        Self {
            n_items,
            interacted,
        }
    }

    /// Whether `user` has interacted with `item` in any role.
    pub fn is_positive(&self, user: u32, item: u32) -> bool {
        self.interacted[user as usize].binary_search(&item).is_ok()
    }

    /// Number of items a user has interacted with.
    pub fn n_positives(&self, user: u32) -> usize {
        self.interacted[user as usize].len()
    }

    /// Draws one unobserved item for `user` by rejection sampling.
    ///
    /// # Panics
    /// Panics if the user has interacted with every item.
    pub fn sample_one(&self, user: u32, rng: &mut StdRng) -> u32 {
        let positives = &self.interacted[user as usize];
        assert!(
            positives.len() < self.n_items,
            "user {user} interacted with all {} items",
            self.n_items
        );
        loop {
            let item = rng.gen_range(0..self.n_items) as u32;
            if positives.binary_search(&item).is_err() {
                return item;
            }
        }
    }

    /// Draws `k` unobserved items (with replacement across draws).
    pub fn sample_k(&self, user: u32, k: usize, rng: &mut StdRng) -> Vec<u32> {
        (0..k).map(|_| self.sample_one(user, rng)).collect()
    }

    /// Draws `k` *distinct* unobserved items, excluding `extra_exclude` —
    /// the evaluation-candidate sampler (999 negatives per test instance;
    /// `extra_exclude` carries the held-out test item, which is excluded
    /// from the user's training positives by construction).
    pub fn sample_distinct(
        &self,
        user: u32,
        k: usize,
        extra_exclude: &[u32],
        rng: &mut StdRng,
    ) -> Vec<u32> {
        let positives = &self.interacted[user as usize];
        let mut seen = std::collections::HashSet::with_capacity(k + extra_exclude.len());
        // Count only excludes that actually shrink the sampleable pool:
        // an exclude that is already a positive (or a duplicate, or out
        // of catalogue range) removes nothing the positives haven't
        // already removed. Over-counting here used to spuriously panic
        // for dense users on small catalogues even though `k` distinct
        // negatives existed.
        let mut effective_excludes = 0usize;
        for &e in extra_exclude {
            if seen.insert(e) && (e as usize) < self.n_items && positives.binary_search(&e).is_err()
            {
                effective_excludes += 1;
            }
        }
        let available = self.n_items - positives.len() - effective_excludes;
        assert!(
            available >= k,
            "cannot draw {k} distinct negatives: only {available} \
             non-positive non-excluded items exist"
        );
        let mut out = Vec::with_capacity(k);
        while out.len() < k {
            let item = rng.gen_range(0..self.n_items) as u32;
            if positives.binary_search(&item).is_ok() || !seen.insert(item) {
                continue;
            }
            out.push(item);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::GroupBehavior;
    use rand::SeedableRng;

    fn dataset() -> Dataset {
        Dataset::new(
            2,
            10,
            vec![
                GroupBehavior::new(0, 3, vec![1]),
                GroupBehavior::new(0, 7, vec![]),
            ],
            vec![(0, 1)],
            vec![1; 10],
        )
    }

    #[test]
    fn negatives_are_never_positives() {
        let s = NegativeSampler::from_dataset(&dataset());
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            let n = s.sample_one(0, &mut rng);
            assert!(n != 3 && n != 7);
        }
        // User 1 participated in item 3 only.
        for _ in 0..200 {
            assert_ne!(s.sample_one(1, &mut rng), 3);
        }
    }

    #[test]
    fn distinct_sampling_has_no_duplicates_and_respects_exclusions() {
        let s = NegativeSampler::from_dataset(&dataset());
        let mut rng = StdRng::seed_from_u64(1);
        let cands = s.sample_distinct(0, 6, &[9], &mut rng);
        assert_eq!(cands.len(), 6);
        let mut sorted = cands.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 6, "duplicates drawn");
        assert!(!cands.contains(&9));
        assert!(!cands.contains(&3));
        assert!(!cands.contains(&7));
    }

    #[test]
    #[should_panic(expected = "distinct negatives")]
    fn distinct_sampling_rejects_impossible_requests() {
        let s = NegativeSampler::from_dataset(&dataset());
        let mut rng = StdRng::seed_from_u64(2);
        let _ = s.sample_distinct(0, 9, &[], &mut rng); // only 8 non-positives
    }

    #[test]
    fn distinct_sampling_boundary_with_positive_exclude() {
        // User 0's positives are {3, 7} over 10 items: exactly 8
        // non-positives. Excluding an item that is *already* a positive
        // must not shrink the counted pool — the pre-fix assert required
        // 8 >= 8 + 1 and panicked on a request that is satisfiable.
        let s = NegativeSampler::from_dataset(&dataset());
        let mut rng = StdRng::seed_from_u64(3);
        let cands = s.sample_distinct(0, 8, &[3], &mut rng);
        assert_eq!(cands.len(), 8);
        let mut sorted = cands.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 4, 5, 6, 8, 9]);
    }

    #[test]
    fn distinct_sampling_ignores_duplicate_and_out_of_range_excludes() {
        let s = NegativeSampler::from_dataset(&dataset());
        let mut rng = StdRng::seed_from_u64(4);
        // [9, 9, 42]: one distinct in-range non-positive exclude (9);
        // the duplicate and the out-of-catalogue id cost nothing, so 7
        // distinct negatives remain and the draw must succeed.
        let cands = s.sample_distinct(0, 7, &[9, 9, 42], &mut rng);
        assert_eq!(cands.len(), 7);
        assert!(!cands.contains(&9) && !cands.contains(&3) && !cands.contains(&7));
    }

    #[test]
    #[should_panic(expected = "distinct negatives")]
    fn distinct_sampling_still_rejects_truly_impossible_requests() {
        // 8 non-positives, one genuinely excluded -> 7 available < 8.
        let s = NegativeSampler::from_dataset(&dataset());
        let mut rng = StdRng::seed_from_u64(5);
        let _ = s.sample_distinct(0, 8, &[9], &mut rng);
    }

    #[test]
    fn is_positive_covers_participant_role() {
        let s = NegativeSampler::from_dataset(&dataset());
        assert!(s.is_positive(0, 3));
        assert!(s.is_positive(1, 3)); // participant role counts
        assert!(!s.is_positive(1, 7));
        assert_eq!(s.n_positives(0), 2);
    }
}
