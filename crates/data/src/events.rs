//! Append-only deal lifecycle event log.
//!
//! Group deals have sharp temporal dynamics: a deal **opens**, friends
//! **join**, and the deal either clinches (**full**) or **expires**. The
//! batch [`Dataset`](crate::Dataset) records only the final outcome of
//! each group; streaming ingestion needs the intermediate states, because
//! a recommendation that is right while a deal is live is wrong an hour
//! later when it has filled.
//!
//! [`EventLog`] is the ingestion-side contract: an append-only sequence
//! of [`DealEvent`]s with *logical* timestamps (the event's position in
//! the log — strictly increasing, no wall clock, fully deterministic).
//! Consumers replay a prefix of the log to answer "what state was every
//! deal in at time `t`?" ([`EventLog::phases_at`]) and project that onto
//! the item catalogue as a serving filter
//! ([`EventLog::blocked_items_at`]): the bit mask composes with the
//! per-user seen-filter in `gb-serve`.
//!
//! The synthetic generator emits a full lifecycle log alongside the
//! batch dataset ([`crate::synth::generate_with_events`]), so the
//! streaming path can be exercised end-to-end without real traffic.

use gb_graph::BitMatrix;

/// What happened to a deal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DealEventKind {
    /// A deal opened on `item`, launched by `initiator`, clinching at
    /// `threshold` joiners.
    Open {
        item: u32,
        initiator: u32,
        threshold: u32,
    },
    /// `user` joined the deal.
    Join { user: u32 },
    /// The deal reached its threshold and closed successfully.
    Full,
    /// The deal closed without clinching.
    Expire,
}

/// One append-only log record: a logical timestamp, the deal it belongs
/// to, and what happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DealEvent {
    /// Logical timestamp — the event's position in the log. Strictly
    /// increasing across the whole log.
    pub ts: u64,
    /// Deal id, assigned densely in open order.
    pub deal: u32,
    /// The state change.
    pub kind: DealEventKind,
}

/// A deal's state at some logical time, derived by replaying the log.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DealPhase {
    /// Open and accepting joiners.
    Live,
    /// Still open, but older than the expiry horizon — about to close.
    Expiring,
    /// Clinched: closed successfully.
    Full,
    /// Closed without clinching.
    Expired,
}

/// Per-deal replay bookkeeping (the validation state machine).
#[derive(Clone, Debug)]
struct DealTrack {
    item: u32,
    opened_at: u64,
    joined: u32,
    closed: Option<DealPhase>,
}

/// An append-only log of deal lifecycle events with logical timestamps.
///
/// Appends validate the lifecycle state machine: a deal opens exactly
/// once, accepts joins only while open, and closes (full or expired)
/// exactly once. Invalid transitions panic — a malformed ingest stream
/// must fail loudly at append time, not corrupt replays later.
#[derive(Clone, Debug, Default)]
pub struct EventLog {
    events: Vec<DealEvent>,
    deals: Vec<DealTrack>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a new deal on `item`, returning its dense deal id.
    pub fn open(&mut self, item: u32, initiator: u32, threshold: u32) -> u32 {
        let deal = self.deals.len() as u32;
        let ts = self.stamp();
        self.deals.push(DealTrack {
            item,
            opened_at: ts,
            joined: 0,
            closed: None,
        });
        self.events.push(DealEvent {
            ts,
            deal,
            kind: DealEventKind::Open {
                item,
                initiator,
                threshold,
            },
        });
        deal
    }

    /// Records `user` joining `deal`.
    ///
    /// # Panics
    /// Panics if `deal` does not exist or is already closed.
    pub fn join(&mut self, deal: u32, user: u32) {
        let ts = self.stamp();
        let track = self.open_track(deal);
        track.joined += 1;
        self.events.push(DealEvent {
            ts,
            deal,
            kind: DealEventKind::Join { user },
        });
    }

    /// Closes `deal` as clinched.
    ///
    /// # Panics
    /// Panics if `deal` does not exist or is already closed.
    pub fn full(&mut self, deal: u32) {
        self.close(deal, DealPhase::Full, DealEventKind::Full);
    }

    /// Closes `deal` as expired (did not clinch).
    ///
    /// # Panics
    /// Panics if `deal` does not exist or is already closed.
    pub fn expire(&mut self, deal: u32) {
        self.close(deal, DealPhase::Expired, DealEventKind::Expire);
    }

    fn close(&mut self, deal: u32, phase: DealPhase, kind: DealEventKind) {
        let ts = self.stamp();
        let track = self.open_track(deal);
        track.closed = Some(phase);
        self.events.push(DealEvent { ts, deal, kind });
    }

    /// The next logical timestamp (== the index the event will land at).
    fn stamp(&self) -> u64 {
        self.events.len() as u64
    }

    fn open_track(&mut self, deal: u32) -> &mut DealTrack {
        let track = self
            .deals
            .get_mut(deal as usize)
            .unwrap_or_else(|| panic!("deal {deal} was never opened"));
        assert!(
            track.closed.is_none(),
            "deal {deal} is already closed ({:?})",
            track.closed.unwrap()
        );
        track
    }

    /// The full event sequence, in append (= logical time) order.
    pub fn events(&self) -> &[DealEvent] {
        &self.events
    }

    /// Number of events appended so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of deals opened so far.
    pub fn n_deals(&self) -> usize {
        self.deals.len()
    }

    /// The item a deal was opened on.
    ///
    /// # Panics
    /// Panics if `deal` was never opened.
    pub fn deal_item(&self, deal: u32) -> u32 {
        self.deals[deal as usize].item
    }

    /// Number of joins recorded for a deal so far.
    ///
    /// # Panics
    /// Panics if `deal` was never opened.
    pub fn deal_joiners(&self, deal: u32) -> u32 {
        self.deals[deal as usize].joined
    }

    /// Replays the prefix `ts <= now` and returns each opened deal's
    /// phase (index = deal id; `None` for deals opened after `now`).
    ///
    /// An open deal older than `expiring_after` logical ticks is
    /// [`DealPhase::Expiring`] — still joinable, but worth boosting or
    /// demoting differently from a fresh deal.
    pub fn phases_at(&self, now: u64, expiring_after: u64) -> Vec<Option<DealPhase>> {
        let mut phases = vec![None; self.deals.len()];
        for ev in &self.events {
            if ev.ts > now {
                break; // log order == time order
            }
            let slot = &mut phases[ev.deal as usize];
            match ev.kind {
                DealEventKind::Open { .. } => *slot = Some(DealPhase::Live),
                DealEventKind::Join { .. } => {}
                DealEventKind::Full => *slot = Some(DealPhase::Full),
                DealEventKind::Expire => *slot = Some(DealPhase::Expired),
            }
        }
        // Age still-open deals against the horizon.
        for (deal, phase) in phases.iter_mut().enumerate() {
            if *phase == Some(DealPhase::Live)
                && now.saturating_sub(self.deals[deal].opened_at) >= expiring_after
            {
                *phase = Some(DealPhase::Expiring);
            }
        }
        phases
    }

    /// Each item's phase at `now`: the phase of its most recently opened
    /// deal (`None` for items with no deal opened by `now`). Item ids
    /// must fit `n_items`.
    ///
    /// # Panics
    /// Panics if any opened deal's item id is `>= n_items`.
    pub fn item_phases_at(
        &self,
        now: u64,
        expiring_after: u64,
        n_items: usize,
    ) -> Vec<Option<DealPhase>> {
        let phases = self.phases_at(now, expiring_after);
        let mut items = vec![None; n_items];
        // Ascending deal id == open order, so later deals overwrite.
        for (deal, phase) in phases.iter().enumerate() {
            if let Some(p) = *phase {
                let item = self.deals[deal].item as usize;
                assert!(item < n_items, "deal {deal} on item {item} >= {n_items}");
                items[item] = Some(p);
            }
        }
        items
    }

    /// The serving-side candidate filter at `now`: bit `(0, item)` is set
    /// iff the item must be **blocked** — its deal phase is not in
    /// `allowed`, or (`block_undealt`) it has no deal at all. The 1-row
    /// [`BitMatrix`] plugs into `gb-serve`'s deal-state filter, composed
    /// with the per-user seen-filter.
    pub fn blocked_items_at(
        &self,
        now: u64,
        expiring_after: u64,
        allowed: &[DealPhase],
        block_undealt: bool,
        n_items: usize,
    ) -> BitMatrix {
        let phases = self.item_phases_at(now, expiring_after, n_items);
        let mut blocked = BitMatrix::zeros(1, n_items);
        for (item, phase) in phases.iter().enumerate() {
            let allow = match phase {
                Some(p) => allowed.contains(p),
                None => !block_undealt,
            };
            if !allow {
                blocked.set(0, item);
            }
        }
        blocked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// open d0(item 3) → join → full; open d1(item 5) → expire;
    /// open d2(item 3) stays live.
    fn sample() -> EventLog {
        let mut log = EventLog::new();
        let d0 = log.open(3, 0, 1); // ts 0
        log.join(d0, 7); // ts 1
        log.full(d0); // ts 2
        let d1 = log.open(5, 1, 2); // ts 3
        log.expire(d1); // ts 4
        log.open(3, 2, 2); // ts 5, stays live
        log
    }

    #[test]
    fn timestamps_are_strictly_increasing_log_positions() {
        let log = sample();
        assert_eq!(log.len(), 6);
        assert_eq!(log.n_deals(), 3);
        assert_eq!(log.deal_joiners(0), 1);
        assert_eq!(log.deal_joiners(1), 0);
        for (i, ev) in log.events().iter().enumerate() {
            assert_eq!(ev.ts, i as u64);
        }
        assert_eq!(log.deal_item(1), 5);
    }

    #[test]
    fn replay_reports_phases_at_any_prefix() {
        let log = sample();
        let horizon = 100; // far: nothing ages into Expiring
        assert_eq!(
            log.phases_at(0, horizon),
            vec![Some(DealPhase::Live), None, None]
        );
        assert_eq!(
            log.phases_at(2, horizon),
            vec![Some(DealPhase::Full), None, None]
        );
        assert_eq!(
            log.phases_at(3, horizon),
            vec![Some(DealPhase::Full), Some(DealPhase::Live), None]
        );
        assert_eq!(
            log.phases_at(6, horizon),
            vec![
                Some(DealPhase::Full),
                Some(DealPhase::Expired),
                Some(DealPhase::Live)
            ]
        );
    }

    #[test]
    fn open_deals_age_into_expiring() {
        let log = sample();
        // d2 opened at ts 5; with horizon 0 it is instantly Expiring.
        assert_eq!(log.phases_at(5, 0)[2], Some(DealPhase::Expiring));
        assert_eq!(log.phases_at(5, 1)[2], Some(DealPhase::Live));
        assert_eq!(log.phases_at(7, 2)[2], Some(DealPhase::Expiring));
        // Closed deals never age.
        assert_eq!(log.phases_at(100, 0)[0], Some(DealPhase::Full));
    }

    #[test]
    fn item_phase_is_the_most_recent_deal() {
        let log = sample();
        let items = log.item_phases_at(6, 100, 8);
        // Item 3 had d0 (Full) then d2 (Live): the later deal wins.
        assert_eq!(items[3], Some(DealPhase::Live));
        assert_eq!(items[5], Some(DealPhase::Expired));
        assert_eq!(items[0], None);
        // Before d2 opens, item 3 shows d0's state.
        assert_eq!(log.item_phases_at(4, 100, 8)[3], Some(DealPhase::Full));
    }

    #[test]
    fn blocked_filter_masks_disallowed_phases() {
        let log = sample();
        // Serve only live/expiring deals; undealt items stay eligible.
        let blocked = log.blocked_items_at(
            u64::MAX,
            100,
            &[DealPhase::Live, DealPhase::Expiring],
            false,
            8,
        );
        assert!(!blocked.contains(0, 3), "live deal item allowed");
        assert!(blocked.contains(0, 5), "expired deal item blocked");
        assert!(!blocked.contains(0, 0), "undealt item allowed");

        // Flash-sale mode: only items with a live deal are eligible.
        let flash = log.blocked_items_at(6, 100, &[DealPhase::Live], true, 8);
        assert!(!flash.contains(0, 3));
        assert!(flash.contains(0, 5));
        assert!(flash.contains(0, 0), "undealt item blocked in flash mode");
        assert_eq!(flash.count(), 7);
    }

    #[test]
    #[should_panic(expected = "already closed")]
    fn join_after_close_rejected() {
        let mut log = EventLog::new();
        let d = log.open(0, 0, 1);
        log.full(d);
        log.join(d, 3);
    }

    #[test]
    #[should_panic(expected = "never opened")]
    fn close_of_unknown_deal_rejected() {
        EventLog::new().expire(4);
    }

    #[test]
    #[should_panic(expected = "already closed")]
    fn double_close_rejected() {
        let mut log = EventLog::new();
        let d = log.open(0, 0, 1);
        log.expire(d);
        log.full(d);
    }
}
