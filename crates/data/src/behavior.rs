//! The group-buying behavior record.

use serde::{Deserialize, Serialize};

/// One group-buying behavior `b = ⟨mi, n, Mp⟩` (Sec. II of the paper).
///
/// `initiator` launched a group for `item` and shared it to their social
/// network; `participants` are the friends who joined. Whether the group
/// *clinched* is determined against the item's threshold `t_n`, which lives
/// on the [`crate::Dataset`] — the paper notes the threshold is set by the
/// service provider per item and "cannot be directly modeled".
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupBehavior {
    /// The user `mi` who launched the group.
    pub initiator: u32,
    /// The target item `n`.
    pub item: u32,
    /// The participant set `Mp` (friends of the initiator who joined).
    pub participants: Vec<u32>,
}

impl GroupBehavior {
    /// Creates a behavior record.
    pub fn new(initiator: u32, item: u32, participants: Vec<u32>) -> Self {
        Self {
            initiator,
            item,
            participants,
        }
    }

    /// Group size including the initiator.
    pub fn group_size(&self) -> usize {
        self.participants.len() + 1
    }

    /// Whether the group clinched given the item's threshold `t_n`
    /// (`|Mp| >= t_n`, Sec. II).
    pub fn is_successful(&self, threshold: u32) -> bool {
        self.participants.len() >= threshold as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_is_threshold_relative() {
        let b = GroupBehavior::new(0, 1, vec![2, 3]);
        assert!(b.is_successful(1));
        assert!(b.is_successful(2));
        assert!(!b.is_successful(3));
    }

    #[test]
    fn empty_group_fails_any_positive_threshold() {
        let b = GroupBehavior::new(0, 1, vec![]);
        assert!(!b.is_successful(1));
        assert!(b.is_successful(0));
        assert_eq!(b.group_size(), 1);
    }

    #[test]
    fn serde_roundtrip() {
        let b = GroupBehavior::new(7, 9, vec![1, 2, 3]);
        let json = serde_json::to_string(&b).unwrap();
        let back: GroupBehavior = serde_json::from_str(&json).unwrap();
        assert_eq!(b, back);
    }
}
