//! Dataset conversions for the baseline families (Sec. IV-A.1).
//!
//! The paper describes two conversions of group-buying records into pure
//! user–item interactions for CF and social baselines, plus a group-
//! recommendation variant for AGREE/SIGR:
//!
//! 1. *(oi)* — keep only initiator–item interactions;
//! 2. *(both)* — treat initiator–item **and** participant–item pairs as
//!    plain interactions (the better-performing option in Table III);
//! 3. *groups* — "each user and those who do group buying with him/her"
//!    form that user's group; each **successful** behavior becomes one
//!    activity of the initiator's group.

use crate::dataset::Dataset;

/// Which user–item conversion a CF/social baseline trains on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InteractionKind {
    /// Initiator–item interactions only (the *(oi)* marker in Table III).
    InitiatorOnly,
    /// Initiator–item plus participant–item interactions.
    BothRoles,
}

/// Flattens a group-buying dataset into deduplicated `(user, item)` pairs.
pub fn to_pairs(dataset: &Dataset, kind: InteractionKind) -> Vec<(u32, u32)> {
    let mut pairs = Vec::with_capacity(dataset.behaviors().len() * 2);
    for b in dataset.behaviors() {
        pairs.push((b.initiator, b.item));
        if kind == InteractionKind::BothRoles {
            for &p in &b.participants {
                pairs.push((p, b.item));
            }
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// Group-recommendation view of a group-buying dataset, as the paper
/// constructs it for AGREE and SIGR.
#[derive(Clone, Debug)]
pub struct GroupData {
    /// `members[u]` is user `u`'s group: the user plus everyone who has
    /// done group buying with them (as initiator or participant), sorted.
    /// Group ids coincide with user ids so that "replace each user with the
    /// group corresponding to the user" at test time is the identity map on
    /// ids.
    pub members: Vec<Vec<u32>>,
    /// Deduplicated `(group, item)` activities from successful behaviors.
    pub group_items: Vec<(u32, u32)>,
}

/// Builds the group-recommendation variant.
pub fn to_groups(dataset: &Dataset) -> GroupData {
    let mut members: Vec<Vec<u32>> = (0..dataset.n_users()).map(|u| vec![u as u32]).collect();
    for b in dataset.behaviors() {
        for &p in &b.participants {
            members[b.initiator as usize].push(p);
            members[p as usize].push(b.initiator);
        }
    }
    for m in &mut members {
        m.sort_unstable();
        m.dedup();
    }

    let mut group_items: Vec<(u32, u32)> = dataset
        .successful()
        .map(|b| (b.initiator, b.item))
        .collect();
    group_items.sort_unstable();
    group_items.dedup();

    GroupData {
        members,
        group_items,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::GroupBehavior;

    fn dataset() -> Dataset {
        Dataset::new(
            4,
            3,
            vec![
                GroupBehavior::new(0, 0, vec![1, 2]), // success (t=1)
                GroupBehavior::new(0, 1, vec![]),     // failed
                GroupBehavior::new(3, 2, vec![1]),    // success
            ],
            vec![(0, 1), (0, 2), (3, 1)],
            vec![1, 1, 1],
        )
    }

    #[test]
    fn initiator_only_drops_participants() {
        let pairs = to_pairs(&dataset(), InteractionKind::InitiatorOnly);
        assert_eq!(pairs, vec![(0, 0), (0, 1), (3, 2)]);
    }

    #[test]
    fn both_roles_includes_participants() {
        let pairs = to_pairs(&dataset(), InteractionKind::BothRoles);
        assert_eq!(pairs, vec![(0, 0), (0, 1), (1, 0), (1, 2), (2, 0), (3, 2)]);
    }

    #[test]
    fn groups_are_cobuyer_sets() {
        let g = to_groups(&dataset());
        assert_eq!(g.members[0], vec![0, 1, 2]);
        assert_eq!(g.members[1], vec![0, 1, 3]); // co-bought with 0 and 3
        assert_eq!(g.members[2], vec![0, 2]);
        assert_eq!(g.members[3], vec![1, 3]);
    }

    #[test]
    fn group_activities_come_from_successful_behaviors_only() {
        let g = to_groups(&dataset());
        assert_eq!(g.group_items, vec![(0, 0), (3, 2)]); // failed (0,1) excluded
    }

    #[test]
    fn singleton_group_for_isolated_user() {
        let d = Dataset::new(
            2,
            1,
            vec![GroupBehavior::new(0, 0, vec![])],
            vec![],
            vec![1],
        );
        let g = to_groups(&d);
        assert_eq!(g.members[1], vec![1]);
        assert!(g.group_items.is_empty());
    }
}
