//! Table II-style dataset statistics.

use crate::dataset::Dataset;
use std::fmt;

/// Summary statistics of a group-buying dataset, mirroring Table II of the
/// paper plus a few shape diagnostics used to validate the synthetic
/// generator against the Beibei proportions.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetStats {
    /// Number of users `P`.
    pub n_users: usize,
    /// Number of items `Q`.
    pub n_items: usize,
    /// Number of undirected social relations.
    pub n_social: usize,
    /// Total group-buying behaviors `|B|`.
    pub n_behaviors: usize,
    /// Successful behaviors `|B+|`.
    pub n_successful: usize,
    /// Failed behaviors `|B-|`.
    pub n_failed: usize,
    /// Mean friends per user.
    pub mean_friends: f64,
    /// Mean behaviors per user.
    pub behaviors_per_user: f64,
    /// Mean participants per behavior.
    pub mean_participants: f64,
    /// Mean participants of successful behaviors.
    pub mean_participants_successful: f64,
}

impl DatasetStats {
    /// Computes the statistics of `d`.
    pub fn compute(d: &Dataset) -> Self {
        let n_behaviors = d.behaviors().len();
        let n_successful = d.successful().count();
        let total_parts: usize = d.behaviors().iter().map(|b| b.participants.len()).sum();
        let succ_parts: usize = d.successful().map(|b| b.participants.len()).sum();
        Self {
            n_users: d.n_users(),
            n_items: d.n_items(),
            n_social: d.social().n_friendships(),
            n_behaviors,
            n_successful,
            n_failed: n_behaviors - n_successful,
            mean_friends: 2.0 * d.social().n_friendships() as f64 / d.n_users().max(1) as f64,
            behaviors_per_user: n_behaviors as f64 / d.n_users().max(1) as f64,
            mean_participants: total_parts as f64 / n_behaviors.max(1) as f64,
            mean_participants_successful: succ_parts as f64 / n_successful.max(1) as f64,
        }
    }

    /// Fraction of behaviors that clinched.
    pub fn success_ratio(&self) -> f64 {
        if self.n_behaviors == 0 {
            0.0
        } else {
            self.n_successful as f64 / self.n_behaviors as f64
        }
    }
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "#Users                  {}", self.n_users)?;
        writeln!(f, "#Items                  {}", self.n_items)?;
        writeln!(f, "#Social Interactions    {}", self.n_social)?;
        writeln!(
            f,
            "#Group-buying Behaviors {}   #Successful {}   #Failed {}",
            self.n_behaviors, self.n_successful, self.n_failed
        )?;
        writeln!(f, "success ratio           {:.3}", self.success_ratio())?;
        writeln!(f, "mean friends/user       {:.2}", self.mean_friends)?;
        writeln!(f, "behaviors/user          {:.2}", self.behaviors_per_user)?;
        write!(
            f,
            "participants/behavior   {:.2} (successful: {:.2})",
            self.mean_participants, self.mean_participants_successful
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::GroupBehavior;

    fn dataset() -> Dataset {
        Dataset::new(
            4,
            2,
            vec![
                GroupBehavior::new(0, 0, vec![1]),
                GroupBehavior::new(0, 1, vec![]),
                GroupBehavior::new(2, 0, vec![1, 3]),
            ],
            vec![(0, 1), (2, 1), (2, 3)],
            vec![1, 1],
        )
    }

    #[test]
    fn counts_are_exact() {
        let s = dataset().stats();
        assert_eq!(s.n_users, 4);
        assert_eq!(s.n_items, 2);
        assert_eq!(s.n_social, 3);
        assert_eq!(s.n_behaviors, 3);
        assert_eq!(s.n_successful, 2);
        assert_eq!(s.n_failed, 1);
        assert!((s.success_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.mean_friends - 1.5).abs() < 1e-12);
        assert!((s.mean_participants - 1.0).abs() < 1e-12);
        assert!((s.mean_participants_successful - 1.5).abs() < 1e-12);
    }

    #[test]
    fn display_contains_table2_fields() {
        let text = dataset().stats().to_string();
        assert!(text.contains("#Users"));
        assert!(text.contains("#Group-buying Behaviors"));
        assert!(text.contains("#Successful"));
        assert!(text.contains("#Failed"));
    }
}
