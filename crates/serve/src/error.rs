//! Typed serving errors and poison-tolerant lock helpers.
//!
//! Every fallible serving API (`try_recommend` / `try_recommend_batch`
//! on [`QueryEngine`](crate::engine::QueryEngine),
//! [`ShardedEngine`](crate::router::ShardedEngine), and
//! [`RecommendService`](crate::service::RecommendService)) returns a
//! [`ServeError`] instead of panicking or hanging. The infallible APIs
//! from earlier PRs are preserved as thin wrappers that panic on the
//! same conditions they always did — existing callers and tests see no
//! behavioral change; new callers opt into the typed contract.
//!
//! ## Which error means what
//!
//! | variant              | raised by                          | caller's move            |
//! |----------------------|------------------------------------|--------------------------|
//! | `Overloaded`         | admission control (queue watermark)| back off / retry later   |
//! | `DeadlineExceeded`   | worker-side expiry check           | request is stale; re-issue if still wanted |
//! | `ShardFailed`        | scatter after retries, strict policy| retry; page the operator |
//! | `Poisoned`           | a caught panic during scoring      | retry; the service survived |
//! | `InvalidRequest`     | request validation (bad user id)   | fix the request          |

use std::fmt;
use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

/// A typed serving failure. `Clone` because one coalesced worker group
/// fans a single failure out to every caller in the group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control shed this request: the queue depth was at or
    /// above the configured watermark (or the bounded queue itself was
    /// full). The request was never enqueued and never scored.
    Overloaded {
        /// Queue depth observed at admission.
        depth: usize,
        /// The configured shed watermark.
        watermark: usize,
    },
    /// The request's enqueue-stamped budget ran out before a worker
    /// reached it; it was dropped *before* scoring (scoring work is
    /// never wasted on an answer nobody is waiting for).
    DeadlineExceeded {
        /// The budget the request carried.
        budget: Duration,
    },
    /// One or more shards failed a scatter (after the configured
    /// retries) under the strict policy, or every shard failed under
    /// the degraded policy.
    ShardFailed {
        /// The shards that produced no answer, ascending.
        shards: Vec<usize>,
    },
    /// Scoring panicked and the panic was caught by worker supervision;
    /// the worker — and the service — survived.
    Poisoned {
        /// The panic payload, when it was a string (the common case).
        reason: String,
    },
    /// The request failed validation (e.g. a user id outside the served
    /// universe) and was rejected before any work happened.
    InvalidRequest {
        /// What was wrong with it.
        reason: String,
    },
}

impl ServeError {
    /// A [`ServeError::Poisoned`] from a caught panic payload,
    /// extracting the message when the payload is a string.
    pub fn poisoned(payload: &(dyn std::any::Any + Send), context: &str) -> Self {
        let reason = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        Self::Poisoned {
            reason: format!("{context}: {reason}"),
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Overloaded { depth, watermark } => write!(
                f,
                "overloaded: queue depth {depth} at/above shed watermark {watermark}"
            ),
            Self::DeadlineExceeded { budget } => {
                write!(f, "deadline exceeded: {budget:?} budget expired in queue")
            }
            Self::ShardFailed { shards } => {
                write!(f, "shard(s) {shards:?} failed the scatter after retries")
            }
            Self::Poisoned { reason } => write!(f, "scoring panicked (caught): {reason}"),
            Self::InvalidRequest { reason } => write!(f, "invalid request: {reason}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Locks a mutex, recovering from poisoning instead of propagating the
/// panic to every subsequent request.
///
/// Safe here because every serving-path critical section completes its
/// structural mutation before any operation that can panic (scoring,
/// and injected faults, run *outside* these locks), so a poisoned lock
/// only means "a panic happened elsewhere while someone held this" —
/// the guarded data is still valid. Callers that cannot argue that
/// (none today) must not use this helper.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // lint:allow(no-bare-locks): this is the recover helper itself
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`lock_recover`] for `RwLock` reads.
pub(crate) fn read_recover<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    // lint:allow(no-bare-locks): this is the recover helper itself
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// [`lock_recover`] for `RwLock` writes.
pub(crate) fn write_recover<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    // lint:allow(no-bare-locks): this is the recover helper itself
    l.write().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let cases: Vec<(ServeError, &str)> = vec![
            (
                ServeError::Overloaded {
                    depth: 9,
                    watermark: 8,
                },
                "overloaded",
            ),
            (
                ServeError::DeadlineExceeded {
                    budget: Duration::from_millis(5),
                },
                "deadline exceeded",
            ),
            (ServeError::ShardFailed { shards: vec![1, 3] }, "shard"),
            (
                ServeError::Poisoned {
                    reason: "boom".into(),
                },
                "panicked",
            ),
            (
                ServeError::InvalidRequest {
                    reason: "user 7 out of range".into(),
                },
                "invalid request",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn poisoned_extracts_string_payloads() {
        let payload: Box<dyn std::any::Any + Send> = Box::new("shard 2 exploded".to_string());
        let err = ServeError::poisoned(payload.as_ref(), "scatter");
        assert_eq!(
            err,
            ServeError::Poisoned {
                reason: "scatter: shard 2 exploded".into()
            }
        );
        let opaque: Box<dyn std::any::Any + Send> = Box::new(42usize);
        let err = ServeError::poisoned(opaque.as_ref(), "scoring");
        assert!(matches!(err, ServeError::Poisoned { reason } if reason.contains("non-string")));
    }

    #[test]
    fn recover_helpers_serve_through_a_poisoned_lock() {
        let m = std::sync::Arc::new(Mutex::new(7u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().expect("first lock");
            panic!("poison it");
        })
        .join();
        assert!(m.lock().is_err(), "lock really is poisoned");
        assert_eq!(*lock_recover(&m), 7, "data survives the poison");
        let l = std::sync::Arc::new(RwLock::new(3u32));
        let l2 = std::sync::Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _guard = l2.write().expect("first write");
            panic!("poison it");
        })
        .join();
        assert_eq!(*read_recover(&l), 3);
        *write_recover(&l) = 4;
        assert_eq!(*read_recover(&l), 4);
    }
}
