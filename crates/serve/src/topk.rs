//! Bounded top-K accumulation.
//!
//! The eval path materializes all candidate scores and sorts them —
//! `O(n log n)` time and `O(n)` memory per query. The serving engine
//! instead streams scores through a size-`k` binary min-heap: `O(n log k)`
//! worst case, and in practice most candidates fail the "beats the
//! current k-th best" check and cost a single comparison.

use gb_eval::topk::ranks_before;

/// One ranked recommendation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoredItem {
    /// The item id.
    pub item: u32,
    /// The model score (higher = better).
    pub score: f32,
}

/// A bounded min-heap keeping the `k` best `(item, score)` pairs seen so
/// far under the workspace ranking order (descending score, ascending
/// item id on ties — see [`gb_eval::topk::ranks_before`]).
#[derive(Clone, Debug)]
pub struct TopK {
    k: usize,
    /// Binary heap ordered worst-first: `heap[0]` is the weakest kept pair.
    heap: Vec<(u32, f32)>,
}

impl TopK {
    /// An empty accumulator for the `k` best entries.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            heap: Vec::with_capacity(k.min(4096)),
        }
    }

    /// Number of entries currently held (`<= k`).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no entries are held.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The weakest currently-kept entry, if the heap is full.
    #[inline]
    pub fn threshold(&self) -> Option<(u32, f32)> {
        if self.heap.len() == self.k {
            self.heap.first().copied()
        } else {
            None
        }
    }

    /// Offers one candidate; keeps it iff it ranks among the best `k`.
    ///
    /// Non-finite scores are rejected outright: `total_cmp` ranks a
    /// positive NaN above `+∞`, so without this guard a diverged snapshot
    /// would serve NaN-scored items at rank 1. Serving never ranks what it
    /// cannot compare meaningfully.
    #[inline]
    pub fn push(&mut self, item: u32, score: f32) {
        if self.k == 0 || !score.is_finite() {
            return;
        }
        let entry = (item, score);
        if self.heap.len() < self.k {
            self.heap.push(entry);
            self.sift_up(self.heap.len() - 1);
        } else if ranks_before(entry, self.heap[0]) {
            self.heap[0] = entry;
            self.sift_down(0);
        }
    }

    /// Consumes the accumulator, returning kept entries best-first.
    pub fn into_sorted(mut self) -> Vec<ScoredItem> {
        // Repeatedly pop the heap root (the worst kept entry) to the back.
        let mut out = vec![
            ScoredItem {
                item: 0,
                score: 0.0
            };
            self.heap.len()
        ];
        for slot in (0..out.len()).rev() {
            let (item, score) = self.heap.swap_remove(0);
            if !self.heap.is_empty() {
                self.sift_down(0);
            }
            out[slot] = ScoredItem { item, score };
        }
        out
    }

    /// Whether `a` is ranked *worse* than `b` (heap order is worst-first).
    #[inline]
    fn weaker(a: (u32, f32), b: (u32, f32)) -> bool {
        ranks_before(b, a)
    }

    fn sift_up(&mut self, mut at: usize) {
        while at > 0 {
            let parent = (at - 1) / 2;
            if Self::weaker(self.heap[at], self.heap[parent]) {
                self.heap.swap(at, parent);
                at = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut at: usize) {
        let n = self.heap.len();
        loop {
            let (l, r) = (2 * at + 1, 2 * at + 2);
            let mut weakest = at;
            if l < n && Self::weaker(self.heap[l], self.heap[weakest]) {
                weakest = l;
            }
            if r < n && Self::weaker(self.heap[r], self.heap[weakest]) {
                weakest = r;
            }
            if weakest == at {
                break;
            }
            self.heap.swap(at, weakest);
            at = weakest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(pairs: &[(u32, f32)], k: usize) -> Vec<(u32, f32)> {
        let mut topk = TopK::new(k);
        for &(i, s) in pairs {
            topk.push(i, s);
        }
        topk.into_sorted()
            .into_iter()
            .map(|e| (e.item, e.score))
            .collect()
    }

    #[test]
    fn keeps_the_best_k_in_order() {
        let pairs: Vec<(u32, f32)> = (0..100u32).map(|i| (i, ((i * 37) % 100) as f32)).collect();
        let got = collect(&pairs, 5);
        let mut expect = pairs.clone();
        expect.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        expect.truncate(5);
        assert_eq!(got, expect);
    }

    #[test]
    fn ties_break_by_item_id() {
        let got = collect(&[(9, 1.0), (2, 1.0), (5, 1.0), (0, 0.5)], 2);
        assert_eq!(got, vec![(2, 1.0), (5, 1.0)]);
    }

    #[test]
    fn fewer_candidates_than_k() {
        let got = collect(&[(3, 0.1), (1, 0.9)], 10);
        assert_eq!(got, vec![(1, 0.9), (3, 0.1)]);
    }

    #[test]
    fn k_zero_keeps_nothing() {
        assert!(collect(&[(1, 1.0)], 0).is_empty());
    }

    #[test]
    fn threshold_exposes_current_floor() {
        let mut t = TopK::new(2);
        assert_eq!(t.threshold(), None);
        t.push(1, 5.0);
        assert_eq!(t.threshold(), None, "not full yet");
        t.push(2, 7.0);
        assert_eq!(t.threshold(), Some((1, 5.0)));
        t.push(3, 6.0);
        assert_eq!(t.threshold(), Some((3, 6.0)));
    }

    #[test]
    fn non_finite_scores_never_ranked() {
        // A NaN would beat +inf under total_cmp; the heap must drop it at
        // the door, along with both infinities.
        let got = collect(
            &[
                (0, f32::NAN),
                (1, 2.0),
                (2, f32::INFINITY),
                (3, 1.0),
                (4, f32::NEG_INFINITY),
                (5, -f32::NAN),
            ],
            3,
        );
        assert_eq!(got, vec![(1, 2.0), (3, 1.0)]);
        // All-NaN input yields an empty ranking, not a NaN at rank 1.
        assert!(collect(&[(7, f32::NAN), (8, f32::NAN)], 2).is_empty());
    }

    #[test]
    fn matches_reference_topk_on_random_input() {
        use gb_eval::topk::reference_topk;
        use gb_eval::Scorer;
        struct Hash;
        impl Scorer for Hash {
            fn score_items(&self, _u: u32, items: &[u32]) -> Vec<f32> {
                items
                    .iter()
                    .map(|&i| ((i.wrapping_mul(2654435761) >> 7) % 1000) as f32 * 0.001)
                    .collect()
            }
        }
        let candidates: Vec<u32> = (0..500).collect();
        let scores = Hash.score_items(0, &candidates);
        let mut topk = TopK::new(25);
        for (&i, &s) in candidates.iter().zip(&scores) {
            topk.push(i, s);
        }
        let got: Vec<(u32, f32)> = topk
            .into_sorted()
            .into_iter()
            .map(|e| (e.item, e.score))
            .collect();
        assert_eq!(got, reference_topk(&Hash, 0, &candidates, 25));
    }
}
