//! Zero-copy snapshot loading via `mmap(2)`.
//!
//! [`snapshot_io`](crate::snapshot_io) (layout v1) *streams* a snapshot:
//! every float is read through a buffer, parsed, and copied into freshly
//! allocated tables — load time and peak RSS both scale with the
//! catalogue, and N processes serving one snapshot hold N copies. This
//! module adds layout **v2**, designed to be *mapped* instead of read:
//!
//! ```text
//! offset   0  magic    [u8; 4] = b"GBSN"
//! offset   4  version  u32     = 2
//! offset   8  alpha    f32     (raw bits)
//! offset  12  pad      u32     = 0
//! offset  16  4 x section descriptor (32 bytes each):
//!               rows     u64
//!               cols     u64
//!               offset   u64   (from file start, 64-byte aligned)
//!               reserved u64   = 0
//! offset 144  (zero padding to the first section offset)
//! offset 192  section data: rows*cols x f32 raw little-endian bits,
//!             row-major; sections in table order (user_own, item_own,
//!             user_social, item_social), each 64-byte aligned
//! ```
//!
//! Because every section is 64-byte aligned and stores raw `f32` bits,
//! [`open_mmap_snapshot`] maps the file `PROT_READ`/`MAP_PRIVATE` and
//! hands the kernel's pages *directly* to the scoring kernels through
//! [`Matrix::from_raw_shared`] — no parse pass, no copy, O(1) work and
//! O(1) resident memory at open time (pages fault in lazily as queries
//! touch them), and processes mapping the same file share one page-cache
//! copy. The mapping is owned by the returned snapshot's tables (an
//! `Arc` keep-alive), so it outlives every clone, slice, and cached
//! response derived from it, and is unmapped when the last user drops.
//!
//! The syscalls are issued directly (`mmap`/`munmap` via inline asm on
//! x86_64 and aarch64 Linux) so the crate stays dependency-free; other
//! targets — and any mapping failure — transparently fall back to a
//! heap read that produces a bit-identical snapshot through the same
//! validation path.
//!
//! ## Validation and trust
//!
//! Opening validates *structure* eagerly in O(1): magic, version, alpha
//! range, descriptor arithmetic (overflow-checked), section alignment,
//! ordering, and that every section lies inside the file — a truncated
//! or bit-flipped file yields `Err`, never a panic or an out-of-bounds
//! map access. It deliberately does **not** scan the payload for
//! non-finite values (that would fault in every page and defeat the
//! zero-copy open): the serving heap already drops non-finite scores at
//! [`TopK::push`](crate::topk::TopK::push), so a NaN smuggled into a
//! mapped table degrades to an omitted candidate, exactly like a score
//! overflow. Use the v1 streaming loader when eager full validation
//! matters more than load time.
//!
//! v1 readers reject v2 files by version (and vice versa), so the two
//! layouts can coexist on disk without misparsing.
//!
//! [`Matrix::from_raw_shared`]: gb_tensor::Matrix::from_raw_shared

use crate::snapshot_io::MAGIC;
use gb_models::EmbeddingSnapshot;
use gb_tensor::Matrix;
use std::any::Any;
use std::io::{Error, ErrorKind, Result, Write};
use std::path::Path;
use std::sync::Arc;

// Raw f32 bits in the file are reinterpreted in place; that is only the
// native representation on little-endian targets (the only ones this
// workspace builds for).
#[cfg(target_endian = "big")]
compile_error!("the v2 snapshot layout assumes a little-endian host");

/// Layout version written and required by this module.
pub const MMAP_VERSION: u32 = 2;

/// Header size: magic + version + alpha + pad + 4 descriptors.
const HEADER_BYTES: usize = 16 + 4 * DESC_BYTES;

/// Bytes per section descriptor.
const DESC_BYTES: usize = 32;

/// Section alignment (cache-line; a multiple of `align_of::<f32>()`).
const SECTION_ALIGN: usize = 64;

fn invalid(msg: impl Into<String>) -> Error {
    Error::new(ErrorKind::InvalidData, msg.into())
}

fn align_up(offset: usize) -> usize {
    offset.div_ceil(SECTION_ALIGN) * SECTION_ALIGN
}

// ---------------------------------------------------------------------
// Raw mmap/munmap syscalls (no libc dependency).
// ---------------------------------------------------------------------

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    use std::arch::asm;

    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;

    /// Maps `len` bytes of `fd` read-only/private from offset 0.
    /// Returns the kernel's raw result: a page-aligned address, or a
    /// negated errno in `[-4095, -1]`.
    ///
    /// # Safety
    /// `fd` must be a live, readable file descriptor and `len` nonzero
    /// (zero-length mmap is EINVAL). The caller owns the returned
    /// mapping: it must treat a `[-4095, -1]` result as an error, never
    /// dereference past `len`, and pass exactly this address/length
    /// pair to [`munmap`] exactly once.
    pub unsafe fn mmap(len: usize, fd: i32) -> isize {
        let ret: isize;
        #[cfg(target_arch = "x86_64")]
        asm!(
            "syscall",
            inlateout("rax") 9isize => ret, // SYS_mmap
            in("rdi") 0usize,
            in("rsi") len,
            in("rdx") PROT_READ,
            in("r10") MAP_PRIVATE,
            in("r8") fd as isize,
            in("r9") 0usize,
            out("rcx") _,
            out("r11") _,
            options(nostack)
        );
        #[cfg(target_arch = "aarch64")]
        asm!(
            "svc 0",
            in("x8") 222usize, // SYS_mmap
            inlateout("x0") 0usize => ret,
            in("x1") len,
            in("x2") PROT_READ,
            in("x3") MAP_PRIVATE,
            in("x4") fd as isize,
            in("x5") 0usize,
            options(nostack)
        );
        ret
    }

    /// Unmaps a region returned by [`mmap`].
    ///
    /// # Safety
    /// `ptr`/`len` must be exactly what a successful [`mmap`] returned,
    /// unmapped at most once, with no live references into the region.
    pub unsafe fn munmap(ptr: *const u8, len: usize) {
        let _ret: isize;
        #[cfg(target_arch = "x86_64")]
        asm!(
            "syscall",
            inlateout("rax") 11isize => _ret, // SYS_munmap
            in("rdi") ptr,
            in("rsi") len,
            out("rcx") _,
            out("r11") _,
            options(nostack)
        );
        #[cfg(target_arch = "aarch64")]
        asm!(
            "svc 0",
            in("x8") 215usize, // SYS_munmap
            inlateout("x0") ptr => _ret,
            in("x1") len,
            options(nostack)
        );
    }
}

/// A read-only private file mapping, unmapped on drop.
///
/// The pages are immutable for the mapping's lifetime (`PROT_READ`,
/// `MAP_PRIVATE` — writers to the underlying file cannot mutate them in
/// place from this process's view of a private mapping), which is what
/// makes handing `&[f32]` views of them across threads sound.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
struct MmapRegion {
    ptr: *const u8,
    len: usize,
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
// SAFETY: the region is read-only for its whole lifetime; sharing
// immutable bytes across threads is sound.
unsafe impl Send for MmapRegion {}
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
// SAFETY: as above.
unsafe impl Sync for MmapRegion {}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
impl MmapRegion {
    /// Maps `file` whole; `None` if the kernel refuses (then the caller
    /// falls back to the heap path).
    fn map(file: &std::fs::File, len: usize) -> Option<Self> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            return None; // zero-length mmap is EINVAL
        }
        // SAFETY: `file` is a live readable descriptor for the whole
        // call and `len > 0` was checked above; error results are
        // rejected below and a success is owned by the returned region,
        // which unmaps it exactly once in `Drop`.
        let ret = unsafe { sys::mmap(len, file.as_raw_fd()) };
        if (-4095..0).contains(&ret) {
            return None;
        }
        Some(Self {
            ptr: ret as *const u8,
            len,
        })
    }

    fn bytes(&self) -> &[u8] {
        // SAFETY: ptr/len describe a live mapping owned by self.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
impl Drop for MmapRegion {
    fn drop(&mut self) {
        // SAFETY: ptr/len came from a successful mmap and are unmapped
        // exactly once.
        unsafe { sys::munmap(self.ptr, self.len) };
    }
}

/// What keeps a loaded snapshot's bytes alive: either the mapping itself
/// or a heap buffer (fallback path). `f32`-aligned in both cases — mmap
/// returns page-aligned addresses, and the heap buffer is backed by a
/// `Vec<f32>` — so with the 64-byte-aligned section offsets every
/// section pointer is valid for `&[f32]` reinterpretation.
enum Backing {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    Mapped(MmapRegion),
    Heap {
        words: Vec<f32>,
        len: usize,
    },
}

impl Backing {
    fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Backing::Mapped(region) => region.bytes(),
            Backing::Heap { words, len } => {
                // SAFETY: words owns >= len bytes of initialized data
                // (read_heap fills the f32 buffer from the file).
                unsafe { std::slice::from_raw_parts(words.as_ptr() as *const u8, *len) }
            }
        }
    }
}

/// Writes `snapshot` in the mappable v2 layout at `path`.
pub fn save_mmap_snapshot(snapshot: &EmbeddingSnapshot, path: impl AsRef<Path>) -> Result<()> {
    let tables = [
        snapshot.user_own(),
        snapshot.item_own(),
        snapshot.user_social(),
        snapshot.item_social(),
    ];
    // Lay out the sections first so the header can point at them.
    let mut offsets = [0usize; 4];
    let mut cursor = HEADER_BYTES;
    for (slot, m) in offsets.iter_mut().zip(tables) {
        cursor = align_up(cursor);
        *slot = cursor;
        cursor += m.len() * 4;
    }
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    w.write_all(&MAGIC)?;
    w.write_all(&MMAP_VERSION.to_le_bytes())?;
    w.write_all(&snapshot.alpha().to_le_bytes())?;
    w.write_all(&0u32.to_le_bytes())?;
    for (m, &offset) in tables.iter().zip(&offsets) {
        w.write_all(&(m.rows() as u64).to_le_bytes())?;
        w.write_all(&(m.cols() as u64).to_le_bytes())?;
        w.write_all(&(offset as u64).to_le_bytes())?;
        w.write_all(&0u64.to_le_bytes())?;
    }
    let mut pos = HEADER_BYTES;
    let mut buf = Vec::with_capacity(64 * 1024);
    for (m, &offset) in tables.iter().zip(&offsets) {
        buf.resize(buf.len() + (offset - pos), 0u8); // alignment padding
        for v in m.as_slice() {
            buf.extend_from_slice(&v.to_le_bytes());
            if buf.len() >= 64 * 1024 {
                w.write_all(&buf)?;
                buf.clear();
            }
        }
        pos = offset + m.len() * 4;
    }
    w.write_all(&buf)?;
    w.flush()
}

/// Opens a v2 snapshot file zero-copy: the file is mapped and the
/// returned snapshot's tables are views straight into the mapping (held
/// alive by the tables themselves — drop order is free). Falls back to
/// a bit-identical heap load on targets without the raw syscalls or if
/// the kernel refuses the mapping.
///
/// Structural corruption and truncation yield `Err` — see the module
/// docs for the validation contract.
pub fn open_mmap_snapshot(path: impl AsRef<Path>) -> Result<EmbeddingSnapshot> {
    let file = std::fs::File::open(&path)?;
    let len = file.metadata()?.len();
    let len = usize::try_from(len).map_err(|_| invalid("file too large to map"))?;
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    if let Some(region) = MmapRegion::map(&file, len) {
        return parse(Arc::new(Backing::Mapped(region)));
    }
    drop(file);
    open_mmap_snapshot_heap(path)
}

/// [`open_mmap_snapshot`] behind a fault plan: a scripted open failure
/// ([`FaultPlan::fail_opens`](crate::faults::FaultPlan::fail_opens))
/// surfaces as the same `Err` shape a real I/O failure would, so soaks
/// can exercise the caller's recovery path without touching the disk.
/// With no failure scheduled this is exactly `open_mmap_snapshot`.
pub fn open_mmap_snapshot_faulted(
    path: impl AsRef<Path>,
    faults: &crate::faults::FaultPlan,
) -> Result<EmbeddingSnapshot> {
    if faults.fail_next_open() {
        return Err(Error::other(
            "fault injection: scripted snapshot open failure",
        ));
    }
    open_mmap_snapshot(path)
}

/// Opens a v2 snapshot through the heap fallback path unconditionally:
/// one read into an `f32`-aligned buffer, then the same validation and
/// pointer wiring as the mapped path. Bit-identical to
/// [`open_mmap_snapshot`]; useful for tests and for callers that must
/// not hold a file mapping (e.g. the file will be truncated in place).
pub fn open_mmap_snapshot_heap(path: impl AsRef<Path>) -> Result<EmbeddingSnapshot> {
    use std::io::Read;
    let mut file = std::fs::File::open(path)?;
    let len = usize::try_from(file.metadata()?.len()).map_err(|_| invalid("file too large"))?;
    // An f32 buffer (not Vec<u8>) so section pointers are 4-aligned.
    let mut words = vec![0f32; len.div_ceil(4)];
    // SAFETY: the buffer owns len.div_ceil(4)*4 >= len initialized bytes.
    let bytes =
        unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut u8, words.len() * 4) };
    file.read_exact(&mut bytes[..len])?;
    parse(Arc::new(Backing::Heap { words, len }))
}

/// Validates the header and wires the four tables as zero-copy views
/// into `keep`'s bytes. Every check that the snapshot constructor would
/// `assert!` is performed here first and reported as `Err`, so corrupt
/// input can never panic.
fn parse(keep: Arc<Backing>) -> Result<EmbeddingSnapshot> {
    let bytes = keep.bytes();
    if bytes.len() < HEADER_BYTES {
        return Err(invalid(format!(
            "file too short for v2 header ({} < {HEADER_BYTES} bytes)",
            bytes.len()
        )));
    }
    if bytes[..4] != MAGIC {
        return Err(invalid(format!(
            "bad magic {:?}, expected {MAGIC:?}",
            &bytes[..4]
        )));
    }
    // invariant: the header-length check above guarantees every fixed-width
    // field slice below is exactly 4 or 8 bytes, so `try_into` cannot fail.
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != MMAP_VERSION {
        return Err(invalid(format!(
            "unsupported snapshot version {version} (mmap reader supports {MMAP_VERSION})"
        )));
    }
    // invariant: same header-length check — `bytes[8..12]` is exactly 4 bytes.
    let alpha = f32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if !alpha.is_finite() || !(0.0..=1.0).contains(&alpha) {
        return Err(invalid(format!("alpha {alpha} outside [0, 1]")));
    }
    let mut descs = [(0usize, 0usize, 0usize); 4];
    let mut prev_end = HEADER_BYTES;
    for (i, desc) in descs.iter_mut().enumerate() {
        let at = 16 + i * DESC_BYTES;
        // invariant: descriptor offsets stay inside the length-checked
        // header, so the 8-byte slice always exists.
        let read_u64 =
            |off: usize| u64::from_le_bytes(bytes[at + off..at + off + 8].try_into().unwrap());
        let rows = usize::try_from(read_u64(0)).map_err(|_| invalid("rows overflow"))?;
        let cols = usize::try_from(read_u64(8)).map_err(|_| invalid("cols overflow"))?;
        let offset = usize::try_from(read_u64(16)).map_err(|_| invalid("offset overflow"))?;
        let data_len = rows
            .checked_mul(cols)
            .and_then(|n| n.checked_mul(4))
            .ok_or_else(|| invalid(format!("section {i} dimensions overflow")))?;
        if offset % SECTION_ALIGN != 0 {
            return Err(invalid(format!("section {i} offset {offset} unaligned")));
        }
        if offset < prev_end {
            return Err(invalid(format!(
                "section {i} offset {offset} overlaps preceding data (< {prev_end})"
            )));
        }
        let end = offset
            .checked_add(data_len)
            .ok_or_else(|| invalid(format!("section {i} extent overflows")))?;
        if end > bytes.len() {
            return Err(invalid(format!(
                "section {i} [{offset}, {end}) past end of file ({} bytes) — truncated?",
                bytes.len()
            )));
        }
        prev_end = end;
        *desc = (rows, cols, offset);
    }
    let [user_own, item_own, user_social, item_social] = descs;
    if user_own.0 != user_social.0 {
        return Err(invalid("user table row mismatch"));
    }
    if item_own.0 != item_social.0 {
        return Err(invalid("item table row mismatch"));
    }
    if user_own.1 != item_own.1 {
        return Err(invalid("own embedding width mismatch"));
    }
    if user_social.1 != item_social.1 {
        return Err(invalid("social embedding width mismatch"));
    }
    let base = bytes.as_ptr();
    let table = |(rows, cols, offset): (usize, usize, usize)| {
        let keep: Arc<dyn Any + Send + Sync> = Arc::clone(&keep) as _;
        // SAFETY: [offset, offset + rows*cols*4) was bounds-checked
        // against the backing above, offset is 64-byte (hence f32-)
        // aligned into an f32-aligned backing, the bytes are immutable
        // for the backing's lifetime, and `keep` keeps them alive for
        // the matrix's lifetime.
        unsafe { Matrix::from_raw_shared(rows, cols, base.add(offset) as *const f32, keep) }
    };
    // `new_trusted` skips the non-finite scan by design (see module
    // docs); its shape/alpha asserts were all re-checked above.
    Ok(EmbeddingSnapshot::new_trusted(
        alpha,
        table(user_own),
        table(item_own),
        table(user_social),
        table(item_social),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> EmbeddingSnapshot {
        EmbeddingSnapshot::new(
            0.375,
            Matrix::from_fn(5, 3, |r, c| (r as f32 + 1.0) / (c as f32 + 2.0)),
            Matrix::from_fn(9, 3, |r, c| ((r * 3 + c) as f32 * 0.77).sin()),
            Matrix::from_fn(5, 4, |r, c| (r as f32 - c as f32) * 1e-3),
            Matrix::from_fn(9, 4, |r, c| (r as f32 * c as f32).sqrt()),
        )
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("gb_serve_mmap_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn mapped_roundtrip_is_bit_identical_and_zero_copy() {
        let snap = snapshot();
        let path = tmp("roundtrip.gbsn2");
        save_mmap_snapshot(&snap, &path).unwrap();
        let mapped = open_mmap_snapshot(&path).unwrap();
        assert_eq!(mapped, snap);
        assert!(
            mapped.user_own().is_shared(),
            "mapped tables are views, not copies"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn heap_fallback_matches_mapped_loader() {
        let snap = snapshot();
        let path = tmp("heap.gbsn2");
        save_mmap_snapshot(&snap, &path).unwrap();
        let mapped = open_mmap_snapshot(&path).unwrap();
        let heaped = open_mmap_snapshot_heap(&path).unwrap();
        assert_eq!(mapped, heaped);
        assert_eq!(heaped, snap);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_social_tables_roundtrip() {
        let snap = EmbeddingSnapshot::without_social(
            Matrix::from_fn(4, 2, |r, c| (r + c) as f32),
            Matrix::from_fn(6, 2, |r, c| (r * c) as f32),
        );
        let path = tmp("social_free.gbsn2");
        save_mmap_snapshot(&snap, &path).unwrap();
        assert_eq!(open_mmap_snapshot(&path).unwrap(), snap);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapping_outlives_slices_and_clones() {
        let path = tmp("keepalive.gbsn2");
        save_mmap_snapshot(&snapshot(), &path).unwrap();
        let view = {
            let mapped = open_mmap_snapshot(&path).unwrap();
            mapped.slice_items(2, 4)
        };
        // The original snapshot is gone; the slice still reads mapped
        // pages through its keep-alive.
        assert_eq!(view.n_items(), 4);
        assert_eq!(
            view.item_own().get(0, 0),
            snapshot().item_own().get(2, 0),
            "slice reads live mapped data"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_and_v2_readers_reject_each_other() {
        let snap = snapshot();
        let v1 = tmp("v1.gbsn");
        let v2 = tmp("v2.gbsn2");
        crate::snapshot_io::save_to_path(&snap, &v1).unwrap();
        save_mmap_snapshot(&snap, &v2).unwrap();
        let err = open_mmap_snapshot(&v1).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        let err = crate::snapshot_io::load_from_path(&v2).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        std::fs::remove_file(&v1).ok();
        std::fs::remove_file(&v2).ok();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let snap = snapshot();
        let path = tmp("truncated.gbsn2");
        save_mmap_snapshot(&snap, &path).unwrap();
        let full = std::fs::read(&path).unwrap();
        for keep in [0, 3, 8, 100, full.len() - 1] {
            std::fs::write(&path, &full[..keep]).unwrap();
            assert!(
                open_mmap_snapshot(&path).is_err(),
                "truncation to {keep} bytes must be rejected"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_headers_error_cleanly() {
        let snap = snapshot();
        let path = tmp("corrupt.gbsn2");
        save_mmap_snapshot(&snap, &path).unwrap();
        let good = std::fs::read(&path).unwrap();
        // (byte offset, value): magic, alpha sign, descriptor rows,
        // descriptor offset (unaligned), descriptor offset (past EOF).
        for (at, val) in [
            (0usize, b'X'),
            (11, 0xFFu8),
            (16, 0xEE),
            (32 + 1, 0x01),
            (32 + 3, 0x7F),
        ] {
            let mut bad = good.clone();
            bad[at] = val;
            std::fs::write(&path, &bad).unwrap();
            if let Ok(loaded) = open_mmap_snapshot(&path) {
                // A flip that keeps the structure valid must still obey
                // every snapshot invariant (no panic happened already).
                assert!(loaded.n_users() > 0);
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn alpha_out_of_range_rejected() {
        let snap = snapshot();
        let path = tmp("alpha.gbsn2");
        save_mmap_snapshot(&snap, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&2.5f32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = open_mmap_snapshot(&path).unwrap_err();
        assert!(err.to_string().contains("alpha"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn nan_payload_loads_but_never_serves() {
        // The v2 loader skips the payload scan by contract; TopK is the
        // NaN firewall. Check the end-to-end behavior.
        let snap = snapshot();
        let path = tmp("nan.gbsn2");
        save_mmap_snapshot(&snap, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // First float of item_own: descriptor 1's offset field.
        let off = u64::from_le_bytes(
            bytes[16 + DESC_BYTES + 16..16 + DESC_BYTES + 24]
                .try_into()
                .unwrap(),
        ) as usize;
        bytes[off..off + 4].copy_from_slice(&f32::NAN.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let loaded = open_mmap_snapshot(&path).unwrap();
        let engine = crate::engine::QueryEngine::new(loaded);
        let top = engine.recommend(0, 9);
        assert_eq!(top.len(), 8, "the poisoned item is dropped, not ranked");
        assert!(top.iter().all(|e| e.item != 0 && e.score.is_finite()));
        std::fs::remove_file(&path).ok();
    }
}
