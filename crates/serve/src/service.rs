//! The concurrent query front: a std-thread worker pool over a bounded
//! request queue.
//!
//! [`RecommendService`] owns an `Arc` of any [`ServeEngine`] — a single
//! [`QueryEngine`] or a [`ShardedEngine`](crate::router::ShardedEngine)
//! behind the same queue — and `n` worker threads draining a bounded
//! channel. Callers block on a per-request reply channel — classic
//! request/response over `std::sync::mpsc`, no async runtime required.
//!
//! ## Adaptive query coalescing
//!
//! The catalogue pass is memory-bound on the item tables, so a worker
//! that pops a query also drains more *compatible* queued queries (same
//! `k`; one engine call pins one snapshot version for all of them) and
//! answers the whole group through [`ServeEngine::recommend_many`] — one
//! catalogue pass per `user_block` users instead of one per request.
//!
//! How greedily a worker drains is sized from the live queue depth
//! ([`coalesce_limit`]): an idle service groups at most `user_block`
//! (grabbing more would only add queue wait for work that saves
//! nothing), while under backlog the group grows toward
//! `ServiceConfig::coalesce_cap` so one dequeue amortizes lock and
//! dispatch overhead across a burst — the engine still walks the
//! catalogue in `user_block`-sized chunks internally, so a large group
//! costs the same passes, just fewer handoffs. Coalescing never changes
//! any response: per-user results are bit-identical to sequential
//! serving, only the latency distribution moves.
//!
//! ## Latency semantics
//!
//! Every request is stamped when it is *enqueued*, and its recorded
//! latency is enqueue→reply — queue wait included. (Stamping at dequeue,
//! as this service once did, silently under-reports tail latency exactly
//! when it matters: under backlog.) Samples drain into a
//! [`gb_eval::timing::Stopwatch`] for the efficiency tables;
//! [`RecommendService::requests_served`] is a separate monotone counter
//! that draining does not reset.
//!
//! ## Failure semantics
//!
//! The `try_*` APIs return typed [`ServeError`]s; the legacy infallible
//! APIs are thin wrappers that panic with the same messages they always
//! did. Three failure paths, three counters, one rule — **only served
//! requests feed the latency percentiles** (the same exclusion the
//! warm-up traffic already gets):
//!
//! * **Shedding** ([`ServiceConfig::shed_watermark`]): a request that
//!   arrives while the queue depth is at/above the watermark is refused
//!   with [`ServeError::Overloaded`] *before* it is enqueued — bounded
//!   queue wait for everyone already admitted, a cheap typed error for
//!   the flash crowd. Counted in [`RecommendService::requests_shed`].
//! * **Deadlines** ([`ServiceConfig::deadline`]): each admitted request
//!   carries an enqueue-stamped budget; a worker drops it *before*
//!   scoring if the budget has already expired — no catalogue pass is
//!   wasted on an answer nobody is waiting for. The caller gets
//!   [`ServeError::DeadlineExceeded`]; counted in
//!   [`RecommendService::requests_expired`].
//! * **Supervision**: workers score through
//!   [`ServeEngine::try_recommend_many`], whose `catch_unwind` boundary
//!   turns a scoring panic into [`ServeError::Poisoned`] for every
//!   caller in the coalesced group — the worker survives, the service
//!   keeps serving, and [`RecommendService::worker_panics`] records it.

use crate::engine::{QueryEngine, ServeEngine};
use crate::error::{lock_recover, ServeError};
use crate::topk::ScoredItem;
use gb_eval::timing::Stopwatch;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`RecommendService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads draining the request queue.
    pub workers: usize,
    /// Bounded queue depth (backpressure: senders block when full).
    pub queue_depth: usize,
    /// `k` used by [`RecommendService::warm`] to pre-populate the cache.
    pub warm_k: usize,
    /// Upper bound on one coalesced group. The effective per-dequeue
    /// limit adapts between the engine's `user_block` and this cap with
    /// the live queue depth (see [`coalesce_limit`]).
    pub coalesce_cap: usize,
    /// Queue depth at/above which admission control sheds new `try_*`
    /// requests with [`ServeError::Overloaded`] instead of queueing
    /// them. The default (`usize::MAX`) never sheds — the bounded
    /// queue's blocking backpressure applies, exactly as before this
    /// knob existed. Warm-ups are never shed (they are the cheapest
    /// work to do late).
    pub shed_watermark: usize,
    /// Per-request queue budget: a request still queued this long after
    /// enqueue is dropped by the dequeuing worker *before* scoring and
    /// its caller gets [`ServeError::DeadlineExceeded`]. `None` (the
    /// default) never expires.
    pub deadline: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_depth: 256,
            warm_k: 10,
            coalesce_cap: 64,
            shed_watermark: usize::MAX,
            deadline: None,
        }
    }
}

/// The group-size limit for one dequeue, given the engine's preferred
/// block, the queue depth observed at dequeue time, and the configured
/// cap: `max(user_block, min(depth, cap))`.
///
/// Empty-ish queue → `user_block` (the engine's sweet spot; waiting for
/// more arrivals is not worth the added queue time). Deep queue → up to
/// `cap`, so one worker pass drains a burst. Pure so it can be tested
/// deterministically apart from the live queue.
pub fn coalesce_limit(user_block: usize, depth: usize, cap: usize) -> usize {
    user_block.max(depth.min(cap)).max(1)
}

/// One reply: the request tag plus either `(snapshot version, ranked
/// items)` or the typed error that refused it.
type Reply = (usize, Result<(u64, Arc<Vec<ScoredItem>>), ServeError>);

/// A queued query, stamped at enqueue time so the recorded latency is
/// enqueue→reply (queue wait included), not dequeue→reply — and so the
/// deadline budget measures true queue wait.
struct QueryJob {
    user: u32,
    k: usize,
    reply: SyncSender<Reply>,
    tag: usize,
    enqueued: Instant,
    /// Queue budget; a worker drops the job unscored once
    /// `enqueued.elapsed() > budget`. `None` never expires.
    budget: Option<Duration>,
}

enum Job {
    Query(QueryJob),
    /// Fire-and-forget cache warm-up. No caller is waiting, so warm jobs
    /// carry no enqueue stamp and never feed the latency samples.
    Warm {
        user: u32,
        k: usize,
    },
}

/// Shared worker-side state: samples and counters every worker feeds.
struct Stats {
    latencies: Mutex<Vec<Duration>>,
    /// Monotone count of *caller-facing* queries completed — deliberately
    /// separate from `latencies`, which
    /// [`RecommendService::latency_stopwatch`] drains. Warm-ups are
    /// counted in `warmed` instead: folding fire-and-forget cache fills
    /// into `served` would skew the `served / batches` mean-group-size
    /// metric, just as recording their latency would skew the percentiles.
    served: AtomicU64,
    /// Monotone count of warm-up jobs completed.
    warmed: AtomicU64,
    /// Engine calls made for query groups (coalescing efficiency:
    /// `served / batches` is the mean group size).
    batches: AtomicU64,
    /// Largest coalesced group seen so far.
    largest_group: AtomicUsize,
    /// Jobs currently enqueued (inc at send, dec at dequeue) — the
    /// signal [`coalesce_limit`] adapts on, and the one admission
    /// control sheds on.
    depth: AtomicUsize,
    /// Requests refused at admission (never enqueued, never scored).
    shed: AtomicU64,
    /// Requests dropped unscored because their queue budget expired.
    expired: AtomicU64,
    /// Scoring panics caught by worker supervision.
    panics: AtomicU64,
}

/// A running recommendation service over any [`ServeEngine`].
///
/// Dropping the service closes the queue and joins all workers.
pub struct RecommendService<E: ServeEngine = QueryEngine> {
    engine: Arc<E>,
    queue: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<Stats>,
    warm_k: usize,
    shed_watermark: usize,
    deadline: Option<Duration>,
}

impl<E: ServeEngine> RecommendService<E> {
    /// Starts workers over `engine` with default tuning.
    pub fn start(engine: E) -> Self {
        Self::with_config(engine, ServiceConfig::default())
    }

    /// Starts workers with explicit tuning.
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn with_config(engine: E, cfg: ServiceConfig) -> Self {
        assert!(cfg.workers > 0, "need at least one worker");
        let engine = Arc::new(engine);
        let stats = Arc::new(Stats {
            latencies: Mutex::new(Vec::new()),
            served: AtomicU64::new(0),
            warmed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            largest_group: AtomicUsize::new(0),
            depth: AtomicUsize::new(0),
            shed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            panics: AtomicU64::new(0),
        });
        let coalesce_cap = cfg.coalesce_cap.max(1);
        let (tx, rx) = sync_channel::<Job>(cfg.queue_depth.max(1));
        let shared_rx = Arc::new(Mutex::new(rx));
        let workers = (0..cfg.workers)
            .map(|i| {
                let engine = Arc::clone(&engine);
                let rx = Arc::clone(&shared_rx);
                let stats = Arc::clone(&stats);
                std::thread::Builder::new()
                    .name(format!("gb-serve-{i}"))
                    .spawn(move || worker_loop(engine.as_ref(), &rx, &stats, coalesce_cap))
                    // invariant: Builder::spawn errs only on OS thread
                    // exhaustion — nothing to serve with in that state.
                    .expect("spawn worker thread")
            })
            .collect();
        Self {
            engine,
            queue: Some(tx),
            workers,
            stats,
            warm_k: cfg.warm_k.max(1),
            shed_watermark: cfg.shed_watermark,
            deadline: cfg.deadline,
        }
    }

    /// The engine being served (for snapshot/cache introspection).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// The engine's candidate-generation mode, passed through untouched:
    /// the service layer (queueing, coalescing, latency capture) is
    /// identical for exact and IVF serving, sharded or not — retrieval
    /// is configured once on the engine and every worker serves with it.
    pub fn retrieval(&self) -> crate::engine::Retrieval {
        self.engine.retrieval()
    }

    /// Top-`k` items for one user, computed on a worker thread.
    ///
    /// # Panics
    /// Panics if `user` is out of range for the served snapshot.
    pub fn recommend(&self, user: u32, k: usize) -> Arc<Vec<ScoredItem>> {
        self.recommend_versioned(user, k).1
    }

    /// Like [`RecommendService::recommend`], also reporting which
    /// published snapshot version produced the response — the whole
    /// answer is consistent with exactly that version even if the trainer
    /// publishes concurrently.
    ///
    /// # Panics
    /// Panics if `user` is out of range for the served snapshot, or on
    /// a typed serving failure (shed, expired, or poisoned — see
    /// [`RecommendService::try_recommend_versioned`] for the fallible
    /// contract).
    pub fn recommend_versioned(&self, user: u32, k: usize) -> (u64, Arc<Vec<ScoredItem>>) {
        self.check_user(user);
        match self.try_recommend_versioned(user, k) {
            Ok(r) => r,
            // invariant: the documented contract of this infallible
            // wrapper — callers wanting typed errors use the try_ form.
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`RecommendService::recommend`]: admission control, the
    /// queue deadline, and worker supervision all report as typed
    /// [`ServeError`]s instead of blocking forever or panicking. See
    /// the module docs for the full failure contract.
    pub fn try_recommend(&self, user: u32, k: usize) -> Result<Arc<Vec<ScoredItem>>, ServeError> {
        self.try_recommend_versioned(user, k).map(|(_, r)| r)
    }

    /// [`RecommendService::try_recommend`] reporting the snapshot
    /// version the response was computed from.
    pub fn try_recommend_versioned(
        &self,
        user: u32,
        k: usize,
    ) -> Result<(u64, Arc<Vec<ScoredItem>>), ServeError> {
        let n_users = self.engine.n_users();
        if user as usize >= n_users {
            return Err(ServeError::InvalidRequest {
                reason: format!("user {user} out of range ({n_users} users)"),
            });
        }
        let (reply_tx, reply_rx) = sync_channel(1);
        self.try_send(Job::Query(QueryJob {
            user,
            k,
            reply: reply_tx,
            tag: 0,
            enqueued: Instant::now(),
            budget: self.deadline,
        }))?;
        match reply_rx.recv() {
            Ok((_, result)) => result,
            // invariant: workers reply to every dequeued job (success,
            // expiry, and caught panic all send) — the channel can only
            // drop if the pool is torn down mid-request.
            Err(_) => Err(ServeError::Poisoned {
                reason: "worker pool shut down before replying".into(),
            }),
        }
    }

    /// Top-`k` items for a batch of users.
    ///
    /// Requests fan out across the worker pool (where adjacent queued
    /// requests with the same `k` coalesce into shared catalogue passes)
    /// and results return in input order; answers are bit-identical to
    /// issuing [`Self::recommend`] per user sequentially.
    ///
    /// # Panics
    /// Panics if any user is out of range for the served snapshot, or
    /// on any per-request typed failure (see
    /// [`RecommendService::try_recommend_batch`]).
    pub fn recommend_batch(&self, users: &[u32], k: usize) -> Vec<Arc<Vec<ScoredItem>>> {
        users.iter().for_each(|&u| self.check_user(u));
        self.try_recommend_batch(users, k)
            .into_iter()
            // invariant: the documented contract of this infallible
            // wrapper — callers wanting typed errors use the try_ form.
            .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
            .collect()
    }

    /// Fallible [`RecommendService::recommend_batch`]: one outcome per
    /// input slot, in input order. Slots fail independently — a shed or
    /// expired request costs its own slot an error while the rest of
    /// the batch serves normally, so one flash crowd cannot turn a
    /// whole batch into wasted work.
    pub fn try_recommend_batch(
        &self,
        users: &[u32],
        k: usize,
    ) -> Vec<Result<Arc<Vec<ScoredItem>>, ServeError>> {
        let n_users = self.engine.n_users();
        let (reply_tx, reply_rx): (SyncSender<Reply>, Receiver<Reply>) =
            sync_channel(users.len().max(1));
        let mut out: Vec<Option<Result<Arc<Vec<ScoredItem>>, ServeError>>> =
            vec![None; users.len()];
        let mut waiting = 0usize;
        for (tag, &user) in users.iter().enumerate() {
            if user as usize >= n_users {
                out[tag] = Some(Err(ServeError::InvalidRequest {
                    reason: format!("user {user} out of range ({n_users} users)"),
                }));
                continue;
            }
            match self.try_send(Job::Query(QueryJob {
                user,
                k,
                reply: reply_tx.clone(),
                tag,
                enqueued: Instant::now(),
                budget: self.deadline,
            })) {
                Ok(()) => waiting += 1,
                Err(e) => out[tag] = Some(Err(e)),
            }
        }
        drop(reply_tx);
        for _ in 0..waiting {
            match reply_rx.recv() {
                Ok((tag, result)) => out[tag] = Some(result.map(|(_, r)| r)),
                Err(_) => break, // pool torn down; leftovers filled below
            }
        }
        out.into_iter()
            .map(|r| {
                r.unwrap_or(Err(ServeError::Poisoned {
                    reason: "worker pool shut down before replying".into(),
                }))
            })
            .collect()
    }

    /// Enqueues fire-and-forget queries that populate the response cache
    /// for `users` (at the configured `warm_k`), without blocking on the
    /// results. A no-op when the engine has no response cache — there
    /// would be nothing to warm, only discarded work.
    ///
    /// # Panics
    /// Panics if any user is out of range for the served snapshot.
    pub fn warm(&self, users: &[u32]) {
        if !self.engine.has_cache() {
            return;
        }
        for &user in users {
            self.check_user(user);
            self.send(Job::Warm {
                user,
                k: self.warm_k,
            });
        }
    }

    /// Rejects out-of-range users on the caller's thread, before the job
    /// is enqueued — an invalid id must not kill a worker.
    fn check_user(&self, user: u32) {
        let n_users = self.engine.n_users();
        assert!(
            (user as usize) < n_users,
            "user {user} out of range ({n_users} users)"
        );
    }

    /// Drains all recorded enqueue→reply latencies into a [`Stopwatch`].
    ///
    /// Draining does not affect [`RecommendService::requests_served`].
    pub fn latency_stopwatch(&self) -> Stopwatch {
        let mut sw = Stopwatch::new();
        let mut samples = lock_recover(&self.stats.latencies);
        for d in samples.drain(..) {
            sw.record(d);
        }
        sw
    }

    /// Number of caller-facing requests served so far — a monotone
    /// counter, unaffected by draining the latency samples. Warm-ups are
    /// excluded (see [`RecommendService::warmups_served`]): they are not
    /// requests anyone waited on, and counting them here would inflate
    /// the `requests_served / batches_served` mean-group-size metric.
    pub fn requests_served(&self) -> usize {
        self.stats.served.load(Ordering::Relaxed) as usize
    }

    /// Number of fire-and-forget cache warm-ups completed — tracked apart
    /// from [`RecommendService::requests_served`] so warm traffic never
    /// contaminates the serving metrics or latency percentiles.
    pub fn warmups_served(&self) -> usize {
        self.stats.warmed.load(Ordering::Relaxed) as usize
    }

    /// Number of engine calls made for (possibly coalesced) query groups.
    /// `requests_served / batches_served` approximates the mean group
    /// size the coalescer achieved.
    pub fn batches_served(&self) -> usize {
        self.stats.batches.load(Ordering::Relaxed) as usize
    }

    /// The largest coalesced group any worker has served.
    pub fn largest_group(&self) -> usize {
        self.stats.largest_group.load(Ordering::Relaxed)
    }

    /// Requests refused at admission with [`ServeError::Overloaded`] —
    /// never enqueued, never scored, never in the latency percentiles.
    pub fn requests_shed(&self) -> usize {
        self.stats.shed.load(Ordering::Relaxed) as usize
    }

    /// Requests dropped unscored because their queue budget expired
    /// ([`ServeError::DeadlineExceeded`]). Excluded from
    /// [`RecommendService::requests_served`] and the percentiles.
    pub fn requests_expired(&self) -> usize {
        self.stats.expired.load(Ordering::Relaxed) as usize
    }

    /// Scoring panics caught by worker supervision — each one returned
    /// [`ServeError::Poisoned`] to its coalesced group's callers while
    /// the worker survived.
    pub fn worker_panics(&self) -> usize {
        self.stats.panics.load(Ordering::Relaxed) as usize
    }

    /// Admission control for caller-facing requests: shed at/above the
    /// watermark, otherwise enqueue (blocking on a full bounded queue,
    /// the pre-watermark backpressure semantics).
    fn try_send(&self, job: Job) -> Result<(), ServeError> {
        let depth = self.stats.depth.load(Ordering::Relaxed);
        if depth >= self.shed_watermark {
            self.stats.shed.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded {
                depth,
                watermark: self.shed_watermark,
            });
        }
        self.send(job);
        Ok(())
    }

    fn send(&self, job: Job) {
        // Count before sending: a worker may dequeue (and decrement)
        // the instant the job lands.
        self.stats.depth.fetch_add(1, Ordering::Relaxed);
        let sent = self
            .queue
            .as_ref()
            // invariant: `send` is only reachable while `&self` exists,
            // and the queue sender lives until `Drop` takes it.
            .expect("service is running")
            .send(job)
            .is_ok();
        // invariant: workers only exit when the sender side is dropped,
        // and `&self` holds the sender — supervision guarantees no
        // worker dies to a scoring panic.
        assert!(sent, "worker pool is alive");
    }
}

impl<E: ServeEngine> Drop for RecommendService<E> {
    fn drop(&mut self) {
        // Close the queue; workers exit when it drains.
        self.queue.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop<E: ServeEngine>(
    engine: &E,
    rx: &Mutex<Receiver<Job>>,
    stats: &Stats,
    coalesce_cap: usize,
) {
    // A job popped while coalescing that could not join the group; it is
    // processed first on the next iteration, never dropped. Its depth
    // decrement already happened when it was popped.
    let mut carry: Option<Job> = None;
    loop {
        let job = match carry.take() {
            Some(job) => job,
            // Hold the queue lock only while popping, never while scoring.
            None => match lock_recover(rx).recv() {
                Ok(job) => {
                    stats.depth.fetch_sub(1, Ordering::Relaxed);
                    job
                }
                Err(_) => return, // queue closed
            },
        };
        match job {
            Job::Query(first) => {
                // Coalesce: opportunistically drain queued queries with the
                // same `k` (all are answered from the one snapshot version
                // recommend_many pins) into one shared catalogue pass, up
                // to a limit sized from the backlog at this instant.
                // `try_lock`, not `lock`: an idle peer worker parks *inside*
                // `recv()` while holding the queue mutex, so blocking here
                // would deadlock against a caller that waits for this very
                // reply before enqueueing anything else. A contended lock
                // just means someone else is watching the queue — serve the
                // group we already have.
                let mut group = vec![first];
                let limit = coalesce_limit(
                    engine.user_block(),
                    stats.depth.load(Ordering::Relaxed),
                    coalesce_cap,
                );
                if limit > 1 {
                    if let Ok(queue) = rx.try_lock() {
                        while group.len() < limit {
                            match queue.try_recv() {
                                Ok(job) => {
                                    stats.depth.fetch_sub(1, Ordering::Relaxed);
                                    match job {
                                        Job::Query(job) if job.k == group[0].k => group.push(job),
                                        other => {
                                            carry = Some(other);
                                            break;
                                        }
                                    }
                                }
                                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                            }
                        }
                    }
                }
                // Deadline check at the last instant before scoring: a
                // job whose budget expired in the queue is dropped here,
                // its caller notified, and no catalogue pass spent on it.
                // Expired jobs never touch `served` or the percentiles.
                let now = Instant::now();
                let mut live = Vec::with_capacity(group.len());
                for job in group {
                    match job.budget {
                        Some(budget) if now.duration_since(job.enqueued) > budget => {
                            stats.expired.fetch_add(1, Ordering::Relaxed);
                            let _ = job
                                .reply
                                .send((job.tag, Err(ServeError::DeadlineExceeded { budget })));
                        }
                        _ => live.push(job),
                    }
                }
                if live.is_empty() {
                    continue;
                }
                let users: Vec<u32> = live.iter().map(|j| j.user).collect();
                // Supervised scoring: a panic anywhere in the engine is
                // caught at this boundary and fanned out as one typed
                // error to every caller in the group — the worker (and
                // the service) outlives any single poisonous query.
                match engine.try_recommend_many(&users, live[0].k) {
                    Ok((version, results)) => {
                        stats.batches.fetch_add(1, Ordering::Relaxed);
                        stats.largest_group.fetch_max(live.len(), Ordering::Relaxed);
                        for (job, result) in live.into_iter().zip(results) {
                            // Record before replying: once the caller has
                            // the answer, the request is in the counters.
                            lock_recover(&stats.latencies).push(job.enqueued.elapsed());
                            stats.served.fetch_add(1, Ordering::Relaxed);
                            // The caller may have given up; ignore.
                            let _ = job.reply.send((job.tag, Ok((version, result))));
                        }
                    }
                    Err(e) => {
                        if matches!(e, ServeError::Poisoned { .. }) {
                            stats.panics.fetch_add(1, Ordering::Relaxed);
                        }
                        // Failed requests are not served: no latency
                        // sample, no `served` tick — errors must never
                        // flatter the percentiles.
                        for job in live {
                            let _ = job.reply.send((job.tag, Err(e.clone())));
                        }
                    }
                }
            }
            Job::Warm { user, k } => {
                // Populate the cache, but keep the serving metrics clean:
                // no caller waited on this, so its wall clock belongs in
                // neither the latency percentiles nor `served`. Warm-ups
                // score through the supervised path too — a poisonous
                // warm-up must not kill the worker (nobody would even
                // notice the hang it would cause).
                match engine.try_recommend_many(&[user], k) {
                    Ok(_) => {
                        stats.warmed.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => {
                        if matches!(e, ServeError::Poisoned { .. }) {
                            stats.panics.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesce_limit_adapts_between_block_and_cap() {
        // Idle queue: the engine's preferred block wins.
        assert_eq!(coalesce_limit(8, 0, 64), 8);
        assert_eq!(coalesce_limit(8, 3, 64), 8);
        // Backlog: grow with depth...
        assert_eq!(coalesce_limit(8, 20, 64), 20);
        // ...but never past the cap.
        assert_eq!(coalesce_limit(8, 500, 64), 64);
        // The cap never shrinks a group below the engine's block.
        assert_eq!(coalesce_limit(8, 500, 4), 8);
        // Degenerate configs still serve one job at a time.
        assert_eq!(coalesce_limit(0, 0, 0), 1);
    }
}
