//! The concurrent query front: a std-thread worker pool over a bounded
//! request queue.
//!
//! [`RecommendService`] owns an [`Arc<QueryEngine>`] (snapshot, filter,
//! and cache are all shared, read-mostly state) and `n` worker threads
//! draining a bounded channel. Callers block on a per-request reply
//! channel — classic request/response over `std::sync::mpsc`, no async
//! runtime required.
//!
//! ## Query coalescing
//!
//! The catalogue pass is memory-bound on the item tables, so a worker
//! that pops a query also drains up to `user_block - 1` more *compatible*
//! queued queries (same `k`; one engine call pins one snapshot version
//! for all of them) and answers the whole group through
//! [`QueryEngine::recommend_many`] — one catalogue pass per group instead
//! of one per request. Coalescing never changes any response: per-user
//! results are bit-identical to sequential serving, only the latency
//! distribution moves.
//!
//! ## Latency semantics
//!
//! Every request is stamped when it is *enqueued*, and its recorded
//! latency is enqueue→reply — queue wait included. (Stamping at dequeue,
//! as this service once did, silently under-reports tail latency exactly
//! when it matters: under backlog.) Samples drain into a
//! [`gb_eval::timing::Stopwatch`] for the efficiency tables;
//! [`RecommendService::requests_served`] is a separate monotone counter
//! that draining does not reset.

use crate::engine::QueryEngine;
use crate::topk::ScoredItem;
use gb_eval::timing::Stopwatch;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`RecommendService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads draining the request queue.
    pub workers: usize,
    /// Bounded queue depth (backpressure: senders block when full).
    pub queue_depth: usize,
    /// `k` used by [`RecommendService::warm`] to pre-populate the cache.
    pub warm_k: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_depth: 256,
            warm_k: 10,
        }
    }
}

/// One reply: `(request tag, snapshot version, ranked items)`.
type Reply = (usize, u64, Arc<Vec<ScoredItem>>);

/// A queued query, stamped at enqueue time so the recorded latency is
/// enqueue→reply (queue wait included), not dequeue→reply.
struct QueryJob {
    user: u32,
    k: usize,
    reply: SyncSender<Reply>,
    tag: usize,
    enqueued: Instant,
}

enum Job {
    Query(QueryJob),
    /// Fire-and-forget cache warm-up.
    Warm {
        user: u32,
        k: usize,
        enqueued: Instant,
    },
}

/// A running recommendation service.
///
/// Dropping the service closes the queue and joins all workers.
pub struct RecommendService {
    engine: Arc<QueryEngine>,
    queue: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    latencies: Arc<Mutex<Vec<Duration>>>,
    /// Monotone count of jobs completed — deliberately separate from
    /// `latencies`, which [`RecommendService::latency_stopwatch`] drains.
    served: Arc<AtomicU64>,
    warm_k: usize,
}

impl RecommendService {
    /// Starts workers over `engine` with default tuning.
    pub fn start(engine: QueryEngine) -> Self {
        Self::with_config(engine, ServiceConfig::default())
    }

    /// Starts workers with explicit tuning.
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn with_config(engine: QueryEngine, cfg: ServiceConfig) -> Self {
        assert!(cfg.workers > 0, "need at least one worker");
        let engine = Arc::new(engine);
        let latencies = Arc::new(Mutex::new(Vec::new()));
        let served = Arc::new(AtomicU64::new(0));
        let (tx, rx) = sync_channel::<Job>(cfg.queue_depth.max(1));
        let shared_rx = Arc::new(Mutex::new(rx));
        let workers = (0..cfg.workers)
            .map(|i| {
                let engine = Arc::clone(&engine);
                let rx = Arc::clone(&shared_rx);
                let latencies = Arc::clone(&latencies);
                let served = Arc::clone(&served);
                std::thread::Builder::new()
                    .name(format!("gb-serve-{i}"))
                    .spawn(move || worker_loop(&engine, &rx, &latencies, &served))
                    .expect("spawn worker thread")
            })
            .collect();
        Self {
            engine,
            queue: Some(tx),
            workers,
            latencies,
            served,
            warm_k: cfg.warm_k.max(1),
        }
    }

    /// The engine being served (for snapshot/cache introspection).
    pub fn engine(&self) -> &QueryEngine {
        &self.engine
    }

    /// The engine's candidate-generation mode, passed through untouched:
    /// the service layer (queueing, coalescing, latency capture) is
    /// identical for exact and IVF serving — retrieval is configured once
    /// on the [`QueryEngine`] via `EngineConfig::retrieval` and every
    /// worker serves with it.
    pub fn retrieval(&self) -> crate::engine::Retrieval {
        self.engine.retrieval()
    }

    /// Top-`k` items for one user, computed on a worker thread.
    ///
    /// # Panics
    /// Panics if `user` is out of range for the served snapshot.
    pub fn recommend(&self, user: u32, k: usize) -> Arc<Vec<ScoredItem>> {
        self.recommend_versioned(user, k).1
    }

    /// Like [`RecommendService::recommend`], also reporting which
    /// published snapshot version produced the response — the whole
    /// answer is consistent with exactly that version even if the trainer
    /// publishes concurrently.
    ///
    /// # Panics
    /// Panics if `user` is out of range for the served snapshot.
    pub fn recommend_versioned(&self, user: u32, k: usize) -> (u64, Arc<Vec<ScoredItem>>) {
        self.check_user(user);
        let (reply_tx, reply_rx) = sync_channel(1);
        self.send(Job::Query(QueryJob {
            user,
            k,
            reply: reply_tx,
            tag: 0,
            enqueued: Instant::now(),
        }));
        let (_, version, result) = reply_rx.recv().expect("worker dropped reply channel");
        (version, result)
    }

    /// Top-`k` items for a batch of users.
    ///
    /// Requests fan out across the worker pool (where adjacent queued
    /// requests with the same `k` coalesce into shared catalogue passes)
    /// and results return in input order; answers are bit-identical to
    /// issuing [`Self::recommend`] per user sequentially.
    ///
    /// # Panics
    /// Panics if any user is out of range for the served snapshot.
    pub fn recommend_batch(&self, users: &[u32], k: usize) -> Vec<Arc<Vec<ScoredItem>>> {
        users.iter().for_each(|&u| self.check_user(u));
        let (reply_tx, reply_rx): (SyncSender<Reply>, Receiver<Reply>) =
            sync_channel(users.len().max(1));
        for (tag, &user) in users.iter().enumerate() {
            self.send(Job::Query(QueryJob {
                user,
                k,
                reply: reply_tx.clone(),
                tag,
                enqueued: Instant::now(),
            }));
        }
        drop(reply_tx);
        let mut out: Vec<Option<Arc<Vec<ScoredItem>>>> = vec![None; users.len()];
        for _ in 0..users.len() {
            let (tag, _, result) = reply_rx.recv().expect("worker dropped reply channel");
            out[tag] = Some(result);
        }
        out.into_iter()
            .map(|r| r.expect("every tag answered"))
            .collect()
    }

    /// Enqueues fire-and-forget queries that populate the response cache
    /// for `users` (at the configured `warm_k`), without blocking on the
    /// results. A no-op when the engine has no response cache — there
    /// would be nothing to warm, only discarded work.
    ///
    /// # Panics
    /// Panics if any user is out of range for the served snapshot.
    pub fn warm(&self, users: &[u32]) {
        if !self.engine.has_cache() {
            return;
        }
        for &user in users {
            self.check_user(user);
            self.send(Job::Warm {
                user,
                k: self.warm_k,
                enqueued: Instant::now(),
            });
        }
    }

    /// Rejects out-of-range users on the caller's thread, before the job
    /// is enqueued — an invalid id must not kill a worker.
    fn check_user(&self, user: u32) {
        let n_users = self.engine.n_users();
        assert!(
            (user as usize) < n_users,
            "user {user} out of range ({n_users} users)"
        );
    }

    /// Drains all recorded enqueue→reply latencies into a [`Stopwatch`].
    ///
    /// Draining does not affect [`RecommendService::requests_served`].
    pub fn latency_stopwatch(&self) -> Stopwatch {
        let mut sw = Stopwatch::new();
        let mut samples = self.latencies.lock().expect("latency lock");
        for d in samples.drain(..) {
            sw.record(d);
        }
        sw
    }

    /// Number of requests served so far (including warm-ups) — a monotone
    /// counter, unaffected by draining the latency samples.
    pub fn requests_served(&self) -> usize {
        self.served.load(Ordering::Relaxed) as usize
    }

    fn send(&self, job: Job) {
        self.queue
            .as_ref()
            .expect("service is running")
            .send(job)
            .expect("worker pool is alive");
    }
}

impl Drop for RecommendService {
    fn drop(&mut self) {
        // Close the queue; workers exit when it drains.
        self.queue.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(
    engine: &QueryEngine,
    rx: &Mutex<Receiver<Job>>,
    latencies: &Mutex<Vec<Duration>>,
    served: &AtomicU64,
) {
    // A job popped while coalescing that could not join the group; it is
    // processed first on the next iteration, never dropped.
    let mut carry: Option<Job> = None;
    loop {
        let job = match carry.take() {
            Some(job) => job,
            // Hold the queue lock only while popping, never while scoring.
            None => match rx.lock().expect("queue lock").recv() {
                Ok(job) => job,
                Err(_) => return, // queue closed
            },
        };
        match job {
            Job::Query(first) => {
                // Coalesce: opportunistically drain queued queries with the
                // same `k` (all are answered from the one snapshot version
                // recommend_many pins) into one shared catalogue pass.
                // `try_lock`, not `lock`: an idle peer worker parks *inside*
                // `recv()` while holding the queue mutex, so blocking here
                // would deadlock against a caller that waits for this very
                // reply before enqueueing anything else. A contended lock
                // just means someone else is watching the queue — serve the
                // group we already have.
                let mut group = vec![first];
                let user_block = engine.user_block();
                if user_block > 1 {
                    if let Ok(queue) = rx.try_lock() {
                        while group.len() < user_block {
                            match queue.try_recv() {
                                Ok(Job::Query(job)) if job.k == group[0].k => group.push(job),
                                Ok(other) => {
                                    carry = Some(other);
                                    break;
                                }
                                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                            }
                        }
                    }
                }
                let users: Vec<u32> = group.iter().map(|j| j.user).collect();
                let (version, results) = engine.recommend_many(&users, group[0].k);
                for (job, result) in group.into_iter().zip(results) {
                    // Record before replying: once the caller has the
                    // answer, the request is visible in the counters.
                    latencies
                        .lock()
                        .expect("latency lock")
                        .push(job.enqueued.elapsed());
                    served.fetch_add(1, Ordering::Relaxed);
                    // The caller may have given up (e.g. panicked); ignore.
                    let _ = job.reply.send((job.tag, version, result));
                }
            }
            Job::Warm { user, k, enqueued } => {
                let _ = engine.recommend(user, k);
                latencies
                    .lock()
                    .expect("latency lock")
                    .push(enqueued.elapsed());
                served.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}
