//! The top-K query engine over a hot-swappable snapshot.
//!
//! One query loads the currently-published snapshot from a
//! [`SnapshotHandle`] (an `Arc` clone — the tables can never change
//! underneath a running query), then walks the catalogue in cache-sized
//! blocks: the blocked kernel scores `block_size` items at a time (both
//! item tables are streamed once, row-major), the per-user seen-bitset
//! drops already interacted items with one word-probe each, and
//! survivors feed a bounded min-heap. Memory per query is
//! `O(block_size + k)` regardless of catalogue size — no full score
//! vector is ever materialized.
//!
//! ## Cache invalidation rule
//!
//! Responses are cached under the key `(snapshot version, user, k)`.
//! A publish therefore invalidates every older response *by key*: a
//! query against version `v+1` can never observe a response computed
//! from version `v`, with no flush or epoch bookkeeping. Entries for
//! retired versions age out of the fixed-capacity LRU on their own.

use crate::cache::LruCache;
use crate::topk::{ScoredItem, TopK};
use gb_graph::BitMatrix;
use gb_models::{EmbeddingSnapshot, SnapshotHandle, VersionedSnapshot};
use std::sync::Arc;
use std::sync::Mutex;

/// Tuning knobs for [`QueryEngine`].
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Items scored per kernel call. 512 rows of a 64-wide f32 table is
    /// 128 KiB — L2-resident on anything modern. Rounded up to a multiple
    /// of `gb_tensor::kernels::DOT_LANES` at engine construction — the
    /// block-size granularity the kernel layer publishes (a multiple of
    /// its item-tile width), so non-tail blocks decompose into full
    /// register tiles with no scalar per-block item tail. The SIMD lanes
    /// themselves run over the embedding dimension, not the item axis;
    /// block size never changes scores, only how the catalogue walk is
    /// chunked.
    pub block_size: usize,
    /// Response cache capacity in `(version, user, k)` entries; 0
    /// disables caching.
    pub cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            block_size: 512,
            cache_capacity: 0,
        }
    }
}

/// Cached responses, keyed by `(snapshot version, user, k)`.
type ResponseCache = LruCache<(u64, u32, usize), Arc<Vec<ScoredItem>>>;

/// Scores one user against the full catalogue and keeps the top K.
pub struct QueryEngine {
    handle: SnapshotHandle,
    /// Seen-item bitset: bit `(u, n)` set ⇒ never recommend `n` to `u`.
    filter: Option<BitMatrix>,
    cache: Option<Mutex<ResponseCache>>,
    block_size: usize,
}

impl QueryEngine {
    /// Engine over a fixed `snapshot` with default tuning, no filter, no
    /// cache.
    pub fn new(snapshot: EmbeddingSnapshot) -> Self {
        Self::with_config(snapshot, EngineConfig::default())
    }

    /// Engine over a fixed `snapshot` with explicit tuning.
    pub fn with_config(snapshot: EmbeddingSnapshot, cfg: EngineConfig) -> Self {
        Self::with_handle(SnapshotHandle::new(snapshot), cfg)
    }

    /// Engine over a shared [`SnapshotHandle`]: snapshots published to
    /// the handle (e.g. by a trainer mid-run) are served by the very next
    /// query, no restart needed.
    pub fn with_handle(handle: SnapshotHandle, cfg: EngineConfig) -> Self {
        let cache = if cfg.cache_capacity > 0 {
            Some(Mutex::new(LruCache::new(cfg.cache_capacity)))
        } else {
            None
        };
        Self {
            handle,
            filter: None,
            cache,
            block_size: cfg
                .block_size
                .max(1)
                .next_multiple_of(gb_tensor::kernels::DOT_LANES),
        }
    }

    /// Installs a seen-item filter; filtered items never appear in
    /// results. Any responses already cached are discarded — they were
    /// computed without the filter and could leak seen items.
    ///
    /// # Panics
    /// Panics if the bitset shape disagrees with the served snapshot
    /// (publishes never resize the universe, so the check holds for
    /// every later snapshot too).
    pub fn with_seen_filter(mut self, filter: BitMatrix) -> Self {
        let cur = self.handle.load();
        assert_eq!(
            filter.rows(),
            cur.snapshot().n_users(),
            "filter user count mismatch"
        );
        assert_eq!(
            filter.cols(),
            cur.snapshot().n_items(),
            "filter item count mismatch"
        );
        self.filter = Some(filter);
        if let Some(cache) = &self.cache {
            let mut cache = cache.lock().expect("cache lock");
            let capacity = cache.capacity();
            *cache = LruCache::new(capacity);
        }
        self
    }

    /// Whether this engine caches responses.
    pub fn has_cache(&self) -> bool {
        self.cache.is_some()
    }

    /// The handle the engine reads; publish to it to hot-swap the served
    /// snapshot.
    pub fn handle(&self) -> &SnapshotHandle {
        &self.handle
    }

    /// The currently-served `(version, snapshot)` pair.
    pub fn snapshot(&self) -> Arc<VersionedSnapshot> {
        self.handle.load()
    }

    /// Users in the served universe (fixed across publishes).
    pub fn n_users(&self) -> usize {
        self.handle.load().snapshot().n_users()
    }

    /// `(hits, misses)` of the response cache (zeros when disabled).
    pub fn cache_stats(&self) -> (u64, u64) {
        match &self.cache {
            Some(c) => c.lock().expect("cache lock").stats(),
            None => (0, 0),
        }
    }

    /// Top-`k` unseen items for `user`, best first.
    ///
    /// Results are shared `Arc`s so cache hits are allocation-free.
    ///
    /// # Panics
    /// Panics if `user` is out of range for the served snapshot.
    pub fn recommend(&self, user: u32, k: usize) -> Arc<Vec<ScoredItem>> {
        self.recommend_versioned(user, k).1
    }

    /// Like [`QueryEngine::recommend`], also reporting which published
    /// snapshot version produced the response. The whole response is
    /// computed from (or was cached under) exactly that version — never a
    /// blend across a concurrent publish.
    pub fn recommend_versioned(&self, user: u32, k: usize) -> (u64, Arc<Vec<ScoredItem>>) {
        let cur = self.handle.load();
        assert!(
            (user as usize) < cur.snapshot().n_users(),
            "user {user} out of range ({} users)",
            cur.snapshot().n_users()
        );
        let key = (cur.version(), user, k);
        if let Some(cache) = &self.cache {
            if let Some(hit) = cache.lock().expect("cache lock").get(&key) {
                return (cur.version(), Arc::clone(hit));
            }
        }
        let result = Arc::new(self.rank(cur.snapshot(), user, k));
        if let Some(cache) = &self.cache {
            cache
                .lock()
                .expect("cache lock")
                .insert(key, Arc::clone(&result));
        }
        (cur.version(), result)
    }

    /// The uncached scoring path over one pinned snapshot.
    fn rank(&self, snapshot: &EmbeddingSnapshot, user: u32, k: usize) -> Vec<ScoredItem> {
        let n_items = snapshot.n_items();
        let mut topk = TopK::new(k);
        let mut block = vec![0.0f32; self.block_size.min(n_items.max(1))];
        let seen = self.filter.as_ref().map(|f| f.row_words(user as usize));
        let mut start = 0usize;
        while start < n_items {
            let len = self.block_size.min(n_items - start);
            let out = &mut block[..len];
            snapshot.score_block(user, start, out);
            match seen {
                Some(words) => {
                    for (j, &score) in out.iter().enumerate() {
                        let item = start + j;
                        if words[item / 64] >> (item % 64) & 1 == 0 {
                            topk.push(item as u32, score);
                        }
                    }
                }
                None => {
                    for (j, &score) in out.iter().enumerate() {
                        topk.push((start + j) as u32, score);
                    }
                }
            }
            start += len;
        }
        topk.into_sorted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_eval::topk::reference_topk;
    use gb_eval::Scorer;
    use gb_tensor::Matrix;

    fn snapshot(n_users: usize, n_items: usize, d: usize) -> EmbeddingSnapshot {
        EmbeddingSnapshot::new(
            0.4,
            Matrix::from_fn(n_users, d, |r, c| ((r * 7 + c * 3) as f32 * 0.17).sin()),
            Matrix::from_fn(n_items, d, |r, c| ((r * 5 + c) as f32 * 0.31).cos()),
            Matrix::from_fn(n_users, d, |r, c| ((r + c * 11) as f32 * 0.13).sin()),
            Matrix::from_fn(n_items, d, |r, c| ((r * 3 + c * 2) as f32 * 0.23).cos()),
        )
    }

    #[test]
    fn unfiltered_topk_matches_reference_ranking() {
        let snap = snapshot(6, 333, 8);
        // Deliberately non-dividing block size to cover the tail block.
        let engine = QueryEngine::with_config(
            snap.clone(),
            EngineConfig {
                block_size: 64,
                ..Default::default()
            },
        );
        let candidates: Vec<u32> = (0..333).collect();
        for user in 0..6u32 {
            let got: Vec<(u32, f32)> = engine
                .recommend(user, 10)
                .iter()
                .map(|e| (e.item, e.score))
                .collect();
            assert_eq!(
                got,
                reference_topk(&snap, user, &candidates, 10),
                "user {user}"
            );
        }
    }

    #[test]
    fn filtered_items_never_returned() {
        let snap = snapshot(4, 200, 8);
        let mut seen = gb_graph::BitMatrix::zeros(4, 200);
        for item in (0..200).step_by(3) {
            seen.set(1, item);
        }
        let engine = QueryEngine::new(snap).with_seen_filter(seen);
        let rec = engine.recommend(1, 200);
        assert_eq!(rec.len(), 200 - 67, "67 items filtered");
        assert!(rec.iter().all(|e| e.item % 3 != 0), "a seen item leaked");
        // Other users are unaffected.
        assert_eq!(engine.recommend(0, 200).len(), 200);
    }

    #[test]
    fn filtered_ranking_matches_reference_over_unseen() {
        let snap = snapshot(3, 150, 4);
        let mut seen = gb_graph::BitMatrix::zeros(3, 150);
        for item in [0usize, 5, 64, 65, 128, 149] {
            seen.set(2, item);
        }
        let engine = QueryEngine::with_config(
            snap.clone(),
            EngineConfig {
                block_size: 32,
                ..Default::default()
            },
        )
        .with_seen_filter(seen);
        let unseen: Vec<u32> = (0..150u32)
            .filter(|i| ![0u32, 5, 64, 65, 128, 149].contains(i))
            .collect();
        let got: Vec<(u32, f32)> = engine
            .recommend(2, 7)
            .iter()
            .map(|e| (e.item, e.score))
            .collect();
        assert_eq!(got, reference_topk(&snap, 2, &unseen, 7));
    }

    #[test]
    fn cache_returns_identical_results_and_counts_hits() {
        let snap = snapshot(5, 100, 8);
        let engine = QueryEngine::with_config(
            snap,
            EngineConfig {
                cache_capacity: 8,
                ..Default::default()
            },
        );
        let first = engine.recommend(3, 5);
        let second = engine.recommend(3, 5);
        assert!(
            Arc::ptr_eq(&first, &second),
            "second query should be a cache hit"
        );
        assert_eq!(engine.cache_stats(), (1, 1));
        // Different k is a different cache entry with consistent content.
        let shorter = engine.recommend(3, 3);
        assert_eq!(&first[..3], &shorter[..]);
    }

    #[test]
    fn k_larger_than_catalogue_returns_everything_ranked() {
        let snap = snapshot(2, 40, 4);
        let engine = QueryEngine::new(snap.clone());
        let rec = engine.recommend(0, 1000);
        assert_eq!(rec.len(), 40);
        let scores = snap.score_items(0, &(0..40u32).collect::<Vec<_>>());
        for pair in rec.windows(2) {
            assert!(
                pair[0].score > pair[1].score
                    || (pair[0].score == pair[1].score && pair[0].item < pair[1].item)
            );
        }
        for e in rec.iter() {
            assert_eq!(e.score, scores[e.item as usize]);
        }
    }

    #[test]
    fn installing_filter_discards_stale_cached_responses() {
        let snap = snapshot(3, 100, 4);
        let engine = QueryEngine::with_config(
            snap,
            EngineConfig {
                cache_capacity: 8,
                ..Default::default()
            },
        );
        // Populate the cache pre-filter, then install a filter that
        // bans everything the cached answer contained.
        let before = engine.recommend(0, 10);
        let mut seen = gb_graph::BitMatrix::zeros(3, 100);
        for e in before.iter() {
            seen.set(0, e.item as usize);
        }
        let engine = engine.with_seen_filter(seen);
        let after = engine.recommend(0, 10);
        for e in after.iter() {
            assert!(
                !before.iter().any(|b| b.item == e.item),
                "stale cached item {} served past the filter",
                e.item
            );
        }
    }

    #[test]
    fn publish_hot_swaps_the_served_snapshot() {
        let old = snapshot(4, 60, 8);
        let new = snapshot(4, 60, 4); // different tables, same universe
        let engine = QueryEngine::new(old.clone());
        let before: Vec<(u32, f32)> = engine
            .recommend(1, 60)
            .iter()
            .map(|e| (e.item, e.score))
            .collect();
        let candidates: Vec<u32> = (0..60).collect();
        assert_eq!(before, reference_topk(&old, 1, &candidates, 60));

        let v = engine.handle().publish(new.clone());
        assert_eq!(v, 2);
        let (ver, after) = engine.recommend_versioned(1, 60);
        assert_eq!(ver, 2);
        let after: Vec<(u32, f32)> = after.iter().map(|e| (e.item, e.score)).collect();
        assert_eq!(
            after,
            reference_topk(&new, 1, &candidates, 60),
            "post-publish ranking must come from the new tables"
        );
    }

    #[test]
    fn cached_responses_never_cross_a_version_boundary() {
        let v1 = snapshot(3, 80, 4);
        let v2 = snapshot(3, 80, 8);
        let engine = QueryEngine::with_config(
            v1.clone(),
            EngineConfig {
                cache_capacity: 16,
                ..Default::default()
            },
        );
        let (ver1, first) = engine.recommend_versioned(2, 10);
        assert_eq!(ver1, 1);
        engine.handle().publish(v2.clone());
        let (ver2, fresh) = engine.recommend_versioned(2, 10);
        assert_eq!(ver2, 2);
        assert!(
            !Arc::ptr_eq(&first, &fresh),
            "the v1 response must not be served for v2"
        );
        let candidates: Vec<u32> = (0..80).collect();
        let fresh: Vec<(u32, f32)> = fresh.iter().map(|e| (e.item, e.score)).collect();
        assert_eq!(fresh, reference_topk(&v2, 2, &candidates, 10));
        // The recompute was a miss, not a stale hit: 0 hits, 2 misses.
        assert_eq!(engine.cache_stats(), (0, 2));
        // Re-querying v2 is a genuine hit.
        let again = engine.recommend_versioned(2, 10);
        assert_eq!(again.0, 2);
        assert_eq!(engine.cache_stats(), (1, 2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_user_panics() {
        let engine = QueryEngine::new(snapshot(2, 10, 4));
        engine.recommend(2, 1);
    }
}
