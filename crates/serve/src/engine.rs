//! The single-threaded top-K query engine.
//!
//! One query walks the catalogue in cache-sized blocks: the blocked
//! kernel scores `block_size` items at a time (both item tables are
//! streamed once, row-major), the per-user seen-bitset drops already
//! interacted items with one word-probe each, and survivors feed a
//! bounded min-heap. Memory per query is `O(block_size + k)` regardless
//! of catalogue size — no full score vector is ever materialized.

use crate::cache::LruCache;
use crate::topk::{ScoredItem, TopK};
use gb_graph::BitMatrix;
use gb_models::EmbeddingSnapshot;
use std::sync::Arc;
use std::sync::Mutex;

/// Tuning knobs for [`QueryEngine`].
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Items scored per kernel call. 512 rows of a 64-wide f32 table is
    /// 128 KiB — L2-resident on anything modern.
    pub block_size: usize,
    /// Response cache capacity in `(user, k)` entries; 0 disables caching.
    pub cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            block_size: 512,
            cache_capacity: 0,
        }
    }
}

/// Cached responses, keyed by `(user, k)`.
type ResponseCache = LruCache<(u32, usize), Arc<Vec<ScoredItem>>>;

/// Scores one user against the full catalogue and keeps the top K.
pub struct QueryEngine {
    snapshot: EmbeddingSnapshot,
    /// Seen-item bitset: bit `(u, n)` set ⇒ never recommend `n` to `u`.
    filter: Option<BitMatrix>,
    cache: Option<Mutex<ResponseCache>>,
    block_size: usize,
}

impl QueryEngine {
    /// Engine over `snapshot` with default tuning, no filter, no cache.
    pub fn new(snapshot: EmbeddingSnapshot) -> Self {
        Self::with_config(snapshot, EngineConfig::default())
    }

    /// Engine with explicit tuning.
    pub fn with_config(snapshot: EmbeddingSnapshot, cfg: EngineConfig) -> Self {
        let cache = if cfg.cache_capacity > 0 {
            Some(Mutex::new(LruCache::new(cfg.cache_capacity)))
        } else {
            None
        };
        Self {
            snapshot,
            filter: None,
            cache,
            block_size: cfg.block_size.max(1),
        }
    }

    /// Installs a seen-item filter; filtered items never appear in
    /// results. Any responses already cached are discarded — they were
    /// computed without the filter and could leak seen items.
    ///
    /// # Panics
    /// Panics if the bitset shape disagrees with the snapshot.
    pub fn with_seen_filter(mut self, filter: BitMatrix) -> Self {
        assert_eq!(
            filter.rows(),
            self.snapshot.n_users(),
            "filter user count mismatch"
        );
        assert_eq!(
            filter.cols(),
            self.snapshot.n_items(),
            "filter item count mismatch"
        );
        self.filter = Some(filter);
        if let Some(cache) = &self.cache {
            let mut cache = cache.lock().expect("cache lock");
            let capacity = cache.capacity();
            *cache = LruCache::new(capacity);
        }
        self
    }

    /// Whether this engine caches responses.
    pub fn has_cache(&self) -> bool {
        self.cache.is_some()
    }

    /// The snapshot being served.
    pub fn snapshot(&self) -> &EmbeddingSnapshot {
        &self.snapshot
    }

    /// `(hits, misses)` of the response cache (zeros when disabled).
    pub fn cache_stats(&self) -> (u64, u64) {
        match &self.cache {
            Some(c) => c.lock().expect("cache lock").stats(),
            None => (0, 0),
        }
    }

    /// Top-`k` unseen items for `user`, best first.
    ///
    /// Results are shared `Arc`s so cache hits are allocation-free.
    ///
    /// # Panics
    /// Panics if `user` is out of range for the snapshot.
    pub fn recommend(&self, user: u32, k: usize) -> Arc<Vec<ScoredItem>> {
        assert!(
            (user as usize) < self.snapshot.n_users(),
            "user {user} out of range ({} users)",
            self.snapshot.n_users()
        );
        if let Some(cache) = &self.cache {
            if let Some(hit) = cache.lock().expect("cache lock").get(&(user, k)) {
                return Arc::clone(hit);
            }
        }
        let result = Arc::new(self.rank(user, k));
        if let Some(cache) = &self.cache {
            cache
                .lock()
                .expect("cache lock")
                .insert((user, k), Arc::clone(&result));
        }
        result
    }

    /// The uncached scoring path.
    fn rank(&self, user: u32, k: usize) -> Vec<ScoredItem> {
        let n_items = self.snapshot.n_items();
        let mut topk = TopK::new(k);
        let mut block = vec![0.0f32; self.block_size.min(n_items.max(1))];
        let seen = self.filter.as_ref().map(|f| f.row_words(user as usize));
        let mut start = 0usize;
        while start < n_items {
            let len = self.block_size.min(n_items - start);
            let out = &mut block[..len];
            self.snapshot.score_block(user, start, out);
            match seen {
                Some(words) => {
                    for (j, &score) in out.iter().enumerate() {
                        let item = start + j;
                        if words[item / 64] >> (item % 64) & 1 == 0 {
                            topk.push(item as u32, score);
                        }
                    }
                }
                None => {
                    for (j, &score) in out.iter().enumerate() {
                        topk.push((start + j) as u32, score);
                    }
                }
            }
            start += len;
        }
        topk.into_sorted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_eval::topk::reference_topk;
    use gb_eval::Scorer;
    use gb_tensor::Matrix;

    fn snapshot(n_users: usize, n_items: usize, d: usize) -> EmbeddingSnapshot {
        EmbeddingSnapshot::new(
            0.4,
            Matrix::from_fn(n_users, d, |r, c| ((r * 7 + c * 3) as f32 * 0.17).sin()),
            Matrix::from_fn(n_items, d, |r, c| ((r * 5 + c) as f32 * 0.31).cos()),
            Matrix::from_fn(n_users, d, |r, c| ((r + c * 11) as f32 * 0.13).sin()),
            Matrix::from_fn(n_items, d, |r, c| ((r * 3 + c * 2) as f32 * 0.23).cos()),
        )
    }

    #[test]
    fn unfiltered_topk_matches_reference_ranking() {
        let snap = snapshot(6, 333, 8);
        // Deliberately non-dividing block size to cover the tail block.
        let engine = QueryEngine::with_config(
            snap.clone(),
            EngineConfig {
                block_size: 64,
                ..Default::default()
            },
        );
        let candidates: Vec<u32> = (0..333).collect();
        for user in 0..6u32 {
            let got: Vec<(u32, f32)> = engine
                .recommend(user, 10)
                .iter()
                .map(|e| (e.item, e.score))
                .collect();
            assert_eq!(
                got,
                reference_topk(&snap, user, &candidates, 10),
                "user {user}"
            );
        }
    }

    #[test]
    fn filtered_items_never_returned() {
        let snap = snapshot(4, 200, 8);
        let mut seen = gb_graph::BitMatrix::zeros(4, 200);
        for item in (0..200).step_by(3) {
            seen.set(1, item);
        }
        let engine = QueryEngine::new(snap).with_seen_filter(seen);
        let rec = engine.recommend(1, 200);
        assert_eq!(rec.len(), 200 - 67, "67 items filtered");
        assert!(rec.iter().all(|e| e.item % 3 != 0), "a seen item leaked");
        // Other users are unaffected.
        assert_eq!(engine.recommend(0, 200).len(), 200);
    }

    #[test]
    fn filtered_ranking_matches_reference_over_unseen() {
        let snap = snapshot(3, 150, 4);
        let mut seen = gb_graph::BitMatrix::zeros(3, 150);
        for item in [0usize, 5, 64, 65, 128, 149] {
            seen.set(2, item);
        }
        let engine = QueryEngine::with_config(
            snap.clone(),
            EngineConfig {
                block_size: 32,
                ..Default::default()
            },
        )
        .with_seen_filter(seen);
        let unseen: Vec<u32> = (0..150u32)
            .filter(|i| ![0u32, 5, 64, 65, 128, 149].contains(i))
            .collect();
        let got: Vec<(u32, f32)> = engine
            .recommend(2, 7)
            .iter()
            .map(|e| (e.item, e.score))
            .collect();
        assert_eq!(got, reference_topk(&snap, 2, &unseen, 7));
    }

    #[test]
    fn cache_returns_identical_results_and_counts_hits() {
        let snap = snapshot(5, 100, 8);
        let engine = QueryEngine::with_config(
            snap,
            EngineConfig {
                cache_capacity: 8,
                ..Default::default()
            },
        );
        let first = engine.recommend(3, 5);
        let second = engine.recommend(3, 5);
        assert!(
            Arc::ptr_eq(&first, &second),
            "second query should be a cache hit"
        );
        assert_eq!(engine.cache_stats(), (1, 1));
        // Different k is a different cache entry with consistent content.
        let shorter = engine.recommend(3, 3);
        assert_eq!(&first[..3], &shorter[..]);
    }

    #[test]
    fn k_larger_than_catalogue_returns_everything_ranked() {
        let snap = snapshot(2, 40, 4);
        let engine = QueryEngine::new(snap.clone());
        let rec = engine.recommend(0, 1000);
        assert_eq!(rec.len(), 40);
        let scores = snap.score_items(0, &(0..40u32).collect::<Vec<_>>());
        for pair in rec.windows(2) {
            assert!(
                pair[0].score > pair[1].score
                    || (pair[0].score == pair[1].score && pair[0].item < pair[1].item)
            );
        }
        for e in rec.iter() {
            assert_eq!(e.score, scores[e.item as usize]);
        }
    }

    #[test]
    fn installing_filter_discards_stale_cached_responses() {
        let snap = snapshot(3, 100, 4);
        let engine = QueryEngine::with_config(
            snap,
            EngineConfig {
                cache_capacity: 8,
                ..Default::default()
            },
        );
        // Populate the cache pre-filter, then install a filter that
        // bans everything the cached answer contained.
        let before = engine.recommend(0, 10);
        let mut seen = gb_graph::BitMatrix::zeros(3, 100);
        for e in before.iter() {
            seen.set(0, e.item as usize);
        }
        let engine = engine.with_seen_filter(seen);
        let after = engine.recommend(0, 10);
        for e in after.iter() {
            assert!(
                !before.iter().any(|b| b.item == e.item),
                "stale cached item {} served past the filter",
                e.item
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_user_panics() {
        let engine = QueryEngine::new(snapshot(2, 10, 4));
        engine.recommend(2, 1);
    }
}
