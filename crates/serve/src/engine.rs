//! The top-K query engine over a hot-swappable snapshot.
//!
//! One query loads the currently-published snapshot from a
//! [`SnapshotHandle`] (an `Arc` clone — the tables can never change
//! underneath a running query), then walks the catalogue in cache-sized
//! blocks: the blocked kernel scores `block_size` items at a time (both
//! item tables are streamed once, row-major), the per-user seen-bitset
//! drops already interacted items with one word-probe each, and
//! survivors feed a bounded min-heap. Memory per query is
//! `O(block_size + k)` regardless of catalogue size — no full score
//! vector is ever materialized.
//!
//! ## Retrieval modes
//!
//! The exhaustive walk is [`Retrieval::Exact`]. Catalogues that outgrow
//! it can serve with [`Retrieval::Ivf`]: an [`IvfIndex`] clusters the
//! items offline and a query scores only its `n_probe` best cells —
//! sublinear work per query, with `n_probe = n_clusters` provably
//! bit-identical to exact serving. The index is tagged with the snapshot
//! version it was built from and rebuilt when a query observes a newer
//! publish, so approximate results never blend across a publish (the
//! same guarantee the response cache gets from version-keyed entries).
//!
//! ## Cache invalidation rule
//!
//! Responses are cached under the key `(snapshot version, deal-filter
//! generation, user, k)`. A publish — or a deal-filter swap — therefore
//! invalidates every older response *by key*: a query against version
//! `v+1` (or filter generation `g+1`) can never observe a response
//! computed under `v` (or `g`), with no flush or epoch bookkeeping.
//! Entries for retired versions and generations age out of the
//! fixed-capacity LRU on their own.

use crate::cache::LruCache;
use crate::error::{lock_recover, read_recover, write_recover, ServeError};
use crate::faults::FaultPlan;
use crate::ivf::IvfIndex;
use crate::topk::{ScoredItem, TopK};
use gb_graph::BitMatrix;
use gb_models::{EmbeddingSnapshot, SnapshotHandle, VersionedSnapshot};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::sync::{Mutex, RwLock};

/// Seed of the engine's IVF k-means builds. A fixed constant: two engines
/// over the same published snapshot build bit-identical indexes, so
/// approximate rankings are reproducible across processes and restarts.
const IVF_SEED: u64 = 0x1BF5_2026;

/// How the engine generates candidates for a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Retrieval {
    /// Exhaustive: every query scores the full catalogue in blocks. Work
    /// per query is linear in the catalogue size; results are exact by
    /// construction.
    Exact,
    /// Approximate inverted-file retrieval: items are clustered into
    /// `n_clusters` cells over the concatenated embedding space
    /// ([`IvfIndex`]); a query scores only the members of its `n_probe`
    /// best cells. Work per query is roughly `n_probe / n_clusters` of a
    /// catalogue pass plus the `n_clusters` routing dots — sublinear in
    /// the catalogue for fixed cell occupancy.
    ///
    /// `n_probe = n_clusters` probes every cell and is **bit-identical**
    /// to [`Retrieval::Exact`] (property-tested): the candidate set
    /// becomes the full ascending catalogue and survivor scores come
    /// from the same lane-blocked dot as the exhaustive pass. Both knobs
    /// are clamped to at least 1.
    Ivf {
        /// Cells the catalogue is partitioned into (clamped to the
        /// catalogue size at build time).
        n_clusters: usize,
        /// Cells probed per query.
        n_probe: usize,
    },
}

/// Tuning knobs for [`QueryEngine`].
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Items scored per kernel call. 512 rows of a 64-wide f32 table is
    /// 128 KiB — L2-resident on anything modern. Rounded up to a multiple
    /// of `gb_tensor::kernels::DOT_LANES` at engine construction — the
    /// block-size granularity the kernel layer publishes (a multiple of
    /// its item-tile width), so non-tail blocks decompose into full
    /// register tiles with no scalar per-block item tail. The SIMD lanes
    /// themselves run over the embedding dimension, not the item axis;
    /// block size never changes scores, only how the catalogue walk is
    /// chunked.
    pub block_size: usize,
    /// Response cache capacity in `(version, deal generation, user, k)`
    /// entries; 0 disables caching.
    pub cache_capacity: usize,
    /// Users scored per catalogue pass on the batched path
    /// ([`QueryEngine::recommend_many`], and the service-side query
    /// coalescer). The catalogue pass is memory-bound on the item tables;
    /// streaming them once per user *block* amortizes that traffic across
    /// up to `user_block` requests. Like `block_size`, this is purely a
    /// scheduling knob: per-user scores (and therefore rankings) are
    /// bit-identical for every block size. Clamped to at least 1.
    pub user_block: usize,
    /// Candidate generation mode: exhaustive catalogue scans
    /// ([`Retrieval::Exact`], the default) or approximate inverted-file
    /// retrieval ([`Retrieval::Ivf`]). The IVF index is built lazily from
    /// the served snapshot and rebuilt whenever a new version is
    /// published, so approximate results never blend across a publish.
    pub retrieval: Retrieval,
    /// Whether IVF builds pack per-cell item tables (`true`, the
    /// default: one extra copy of the item tables bought for sequential
    /// cell streaming) or score cells in place against the snapshot
    /// tables (`false`: zero extra item-table memory — the right call
    /// when many shard engines share one box). Purely a layout knob:
    /// rankings are bit-identical either way. Ignored in exact mode.
    pub ivf_packed: bool,
    /// Whether a delta publish ([`SnapshotHandle::publish_delta`])
    /// updates the IVF index incrementally (`true`: keep the previous
    /// version's centroids, re-route only the changed and appended items
    /// by nearest centroid — [`IvfIndex::update`]) instead of re-running
    /// the full k-means build (`false`, the default). Requires the
    /// previous version's index to still be cached; otherwise, and for
    /// full publishes, the full rebuild runs as before. Version-tagging
    /// semantics are unchanged either way: a response never blends an
    /// index from one publish with tables from another.
    pub ivf_incremental: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            block_size: 512,
            cache_capacity: 0,
            user_block: 8,
            retrieval: Retrieval::Exact,
            ivf_packed: true,
            ivf_incremental: false,
        }
    }
}

/// Cached responses, keyed by
/// `(snapshot version, deal-filter generation, user, k)`.
type ResponseCache = LruCache<(u64, u64, u32, usize), Arc<Vec<ScoredItem>>>;

/// What a fallible batched scoring call resolves to: the snapshot
/// version the whole batch was pinned to plus one shared top-`k` list
/// per requested user — or the typed error that refused the batch.
pub type VersionedBatchResult = Result<(u64, Vec<Arc<Vec<ScoredItem>>>), ServeError>;

/// The installed deal-state filter plus its generation counter. Read
/// together under one lock so a query's cache key and probe words always
/// agree — a filter swapped in mid-query can at worst make an in-flight
/// insert land under the retired generation's (dead) key, never serve a
/// response computed under one filter from a key claiming another.
struct DealSlot {
    generation: u64,
    filter: Option<Arc<BitMatrix>>,
}

/// Whether `item`'s bit is set in a filter row. Bounds-checked: items
/// past the row's words — appended by a grow-only publish after the
/// filter was built — read as unset, i.e. unseen/allowed.
#[inline]
fn bit_set(words: &[u64], item: usize) -> bool {
    words
        .get(item / 64)
        .is_some_and(|w| w >> (item % 64) & 1 == 1)
}

/// The composed candidate gate: an item is blocked when its per-user
/// seen bit *or* its catalogue-wide deal-state bit is set.
#[inline]
fn blocked(seen: Option<&[u64]>, deal: Option<&[u64]>, item: usize) -> bool {
    seen.is_some_and(|w| bit_set(w, item)) || deal.is_some_and(|w| bit_set(w, item))
}

/// Scores one user against the full catalogue and keeps the top K.
pub struct QueryEngine {
    handle: SnapshotHandle,
    /// Seen-item bitset: bit `(u, n)` set ⇒ never recommend `n` to `u`.
    filter: Option<BitMatrix>,
    /// Deal-state filter (one row of item bits, bit set ⇒ blocked) plus
    /// its generation, swappable at runtime as deal lifecycles progress;
    /// composes with the per-user seen filter at every rank site.
    deal: RwLock<DealSlot>,
    cache: Option<Mutex<ResponseCache>>,
    block_size: usize,
    user_block: usize,
    retrieval: Retrieval,
    ivf_packed: bool,
    ivf_incremental: bool,
    /// IVF indexes by snapshot version, newest last; at most the two
    /// most recent versions are kept. Two, not one: around a publish,
    /// in-flight queries still pinned to the old version coexist with
    /// queries on the new one, and a single slot would make them evict
    /// each other's index — a full k-means rebuild per eviction. Built
    /// lazily on the first IVF-mode query per version; unused in exact
    /// mode.
    ivf: RwLock<Vec<Arc<IvfIndex>>>,
    /// Serializes IVF index *builds* (not lookups): after a publish,
    /// every worker misses the cache for the new version at once, and
    /// without this gate each would run its own identical full-catalogue
    /// k-means. Late arrivals block here, then hit the cache on re-check.
    ivf_build: Mutex<()>,
    /// Scripted fault schedule (tests/soaks only): consulted at every
    /// uncached scoring dispatch. `None` in production — one branch.
    faults: Option<Arc<FaultPlan>>,
}

impl QueryEngine {
    /// Engine over a fixed `snapshot` with default tuning, no filter, no
    /// cache.
    pub fn new(snapshot: EmbeddingSnapshot) -> Self {
        Self::with_config(snapshot, EngineConfig::default())
    }

    /// Engine over a fixed `snapshot` with explicit tuning.
    pub fn with_config(snapshot: EmbeddingSnapshot, cfg: EngineConfig) -> Self {
        Self::with_handle(SnapshotHandle::new(snapshot), cfg)
    }

    /// Engine over a shared [`SnapshotHandle`]: snapshots published to
    /// the handle (e.g. by a trainer mid-run) are served by the very next
    /// query, no restart needed.
    pub fn with_handle(handle: SnapshotHandle, cfg: EngineConfig) -> Self {
        let cache = if cfg.cache_capacity > 0 {
            Some(Mutex::new(LruCache::new(cfg.cache_capacity)))
        } else {
            None
        };
        let retrieval = match cfg.retrieval {
            Retrieval::Exact => Retrieval::Exact,
            Retrieval::Ivf {
                n_clusters,
                n_probe,
            } => Retrieval::Ivf {
                n_clusters: n_clusters.max(1),
                n_probe: n_probe.max(1),
            },
        };
        Self {
            handle,
            filter: None,
            deal: RwLock::new(DealSlot {
                generation: 0,
                filter: None,
            }),
            cache,
            block_size: cfg
                .block_size
                .max(1)
                .next_multiple_of(gb_tensor::kernels::DOT_LANES),
            user_block: cfg.user_block.max(1),
            retrieval,
            ivf_packed: cfg.ivf_packed,
            ivf_incremental: cfg.ivf_incremental,
            ivf: RwLock::new(Vec::new()),
            ivf_build: Mutex::new(()),
            faults: None,
        }
    }

    /// Attaches a scripted [`FaultPlan`] (tests and soaks): the engine
    /// consults it at every uncached scoring dispatch, where an injected
    /// panic lands exactly where a real scoring bug would — outside any
    /// engine lock, inside the supervision boundary of the `try_*` APIs
    /// and the service workers.
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Installs a seen-item filter; filtered items never appear in
    /// results. Any responses already cached are discarded — they were
    /// computed without the filter and could leak seen items.
    ///
    /// # Panics
    /// Panics if the bitset shape disagrees with the served snapshot.
    /// The universe is grow-only: later publishes may append items past
    /// the filter's columns, and those items probe as unseen.
    pub fn with_seen_filter(mut self, filter: BitMatrix) -> Self {
        let cur = self.handle.load();
        assert_eq!(
            filter.rows(),
            cur.snapshot().n_users(),
            "filter user count mismatch"
        );
        assert_eq!(
            filter.cols(),
            cur.snapshot().n_items(),
            "filter item count mismatch"
        );
        self.filter = Some(filter);
        if let Some(cache) = &self.cache {
            // Flush entries, keep hit/miss counters and the slab
            // allocation — invalidation is not amnesia.
            lock_recover(cache).clear();
        }
        self
    }

    /// Installs (or replaces) the deal-state candidate filter: one row of
    /// item bits, bit `n` set ⇒ item `n` is blocked for *every* user —
    /// e.g. `gb_data::EventLog::blocked_items_at` masking items whose
    /// most recent deal is not in an allowed phase (live / expiring /
    /// full). Composes with the per-user seen filter: a candidate
    /// survives only if both gates pass.
    ///
    /// Takes effect for every subsequent query (in-flight queries keep
    /// the filter they started with). Cached responses computed under the
    /// previous filter are invalidated *by key*: the cache key carries
    /// the filter generation, so stale entries become unreachable and age
    /// out of the LRU — same rule a publish applies via the version.
    ///
    /// Items past the filter's columns (appended by a later grow-only
    /// publish) probe as allowed.
    ///
    /// # Panics
    /// Panics unless the filter is exactly one row.
    pub fn set_deal_filter(&self, filter: BitMatrix) {
        assert_eq!(filter.rows(), 1, "deal filter is one row of item bits");
        let mut slot = write_recover(&self.deal);
        slot.generation += 1;
        slot.filter = Some(Arc::new(filter));
    }

    /// Removes the deal-state filter; subsequent queries gate candidates
    /// on the seen filter alone. Bumps the filter generation like
    /// [`QueryEngine::set_deal_filter`].
    pub fn clear_deal_filter(&self) {
        let mut slot = write_recover(&self.deal);
        slot.generation += 1;
        slot.filter = None;
    }

    /// How many times the deal-state filter has been installed, replaced,
    /// or cleared — the cache-key component that retires responses
    /// computed under an earlier filter.
    pub fn deal_generation(&self) -> u64 {
        read_recover(&self.deal).generation
    }

    /// One consistent `(generation, filter)` read for a whole query.
    fn deal_slot(&self) -> (u64, Option<Arc<BitMatrix>>) {
        let slot = read_recover(&self.deal);
        (slot.generation, slot.filter.clone())
    }

    /// Whether this engine caches responses.
    pub fn has_cache(&self) -> bool {
        self.cache.is_some()
    }

    /// Users scored per catalogue pass on the batched path (≥ 1).
    pub fn user_block(&self) -> usize {
        self.user_block
    }

    /// The candidate-generation mode this engine serves with.
    pub fn retrieval(&self) -> Retrieval {
        self.retrieval
    }

    /// The newest snapshot version an IVF index has been built for
    /// (`None` before the first IVF-mode query, or in exact mode). After
    /// any IVF-mode query this is at least the version that query
    /// reported — the rebuild-on-publish observability hook.
    pub fn ivf_index_version(&self) -> Option<u64> {
        read_recover(&self.ivf).last().map(|idx| idx.version())
    }

    /// The IVF index for the snapshot `cur`, building it if no cached
    /// index matches that version. Each query scores against the index
    /// matching *its* pinned snapshot, so a response can never blend an
    /// index from one publish with tables from another.
    ///
    /// The build runs under the `ivf_build` gate but *outside* the
    /// cache's `RwLock` write lock — a k-means over the whole catalogue
    /// must not stall queries already holding an index for a different
    /// version, and the gate ensures a thundering herd of post-publish
    /// misses runs the expensive build exactly once (everyone else waits
    /// at the gate and then hits the cache on re-check).
    fn ivf_for(&self, cur: &VersionedSnapshot, n_clusters: usize) -> Arc<IvfIndex> {
        let lookup = |cached: &[Arc<IvfIndex>]| {
            cached
                .iter()
                .find(|idx| idx.version() == cur.version())
                .map(Arc::clone)
        };
        if let Some(idx) = lookup(&read_recover(&self.ivf)) {
            return idx;
        }
        let _building = lock_recover(&self.ivf_build);
        if let Some(idx) = lookup(&read_recover(&self.ivf)) {
            return idx; // a peer built it while we waited at the gate
        }
        let built = Arc::new(self.build_ivf(cur, n_clusters));
        let mut cached = write_recover(&self.ivf);
        cached.push(Arc::clone(&built));
        // Newest last; keep the two most recent versions so queries
        // pinned across a publish never evict each other's index.
        cached.sort_by_key(|idx| idx.version());
        if cached.len() > 2 {
            cached.remove(0);
        }
        built
    }

    /// One IVF index for `cur`, by whichever path applies: when
    /// incremental maintenance is enabled and `cur` is a delta publish
    /// whose predecessor's index is still cached, the predecessor is
    /// updated in place of a rebuild — only the changed and appended
    /// items are re-routed to their nearest existing centroid
    /// ([`IvfIndex::update`]). Everything else (full publishes, a missing
    /// predecessor index, an empty predecessor catalogue, incremental
    /// off) runs the full seeded k-means build, exactly as before.
    fn build_ivf(&self, cur: &VersionedSnapshot, n_clusters: usize) -> IvfIndex {
        if self.ivf_incremental {
            if let Some(stamp) = cur.delta() {
                let prev = read_recover(&self.ivf)
                    .iter()
                    .find(|idx| idx.version() == stamp.prev_version())
                    .map(Arc::clone);
                if let Some(prev) = prev {
                    if prev.n_clusters() > 0 {
                        return prev.update(
                            cur.snapshot(),
                            cur.version(),
                            stamp.changed_items(),
                            stamp.n_appended(),
                        );
                    }
                }
            }
        }
        IvfIndex::build(
            cur.snapshot(),
            cur.version(),
            n_clusters,
            IVF_SEED,
            self.ivf_packed,
        )
    }

    /// The handle the engine reads; publish to it to hot-swap the served
    /// snapshot.
    pub fn handle(&self) -> &SnapshotHandle {
        &self.handle
    }

    /// The currently-served `(version, snapshot)` pair.
    pub fn snapshot(&self) -> Arc<VersionedSnapshot> {
        self.handle.load()
    }

    /// Users in the served universe (fixed across publishes).
    pub fn n_users(&self) -> usize {
        self.handle.load().snapshot().n_users()
    }

    /// `(hits, misses)` of the response cache (zeros when disabled).
    pub fn cache_stats(&self) -> (u64, u64) {
        match &self.cache {
            Some(c) => lock_recover(c).stats(),
            None => (0, 0),
        }
    }

    /// Top-`k` unseen items for `user`, best first.
    ///
    /// Results are shared `Arc`s so cache hits are allocation-free.
    ///
    /// # Panics
    /// Panics if `user` is out of range for the served snapshot.
    pub fn recommend(&self, user: u32, k: usize) -> Arc<Vec<ScoredItem>> {
        self.recommend_versioned(user, k).1
    }

    /// Like [`QueryEngine::recommend`], also reporting which published
    /// snapshot version produced the response. The whole response is
    /// computed from (or was cached under) exactly that version — never a
    /// blend across a concurrent publish.
    pub fn recommend_versioned(&self, user: u32, k: usize) -> (u64, Arc<Vec<ScoredItem>>) {
        let cur = self.handle.load();
        (cur.version(), self.recommend_at(&cur, user, k))
    }

    /// Fallible [`QueryEngine::recommend`]: a bad user id comes back as
    /// [`ServeError::InvalidRequest`] and a scoring panic is caught at
    /// this boundary and returned as [`ServeError::Poisoned`] — the
    /// engine survives (its locks are poison-tolerant and no critical
    /// section can be interrupted mid-mutation; see `crate::error`).
    pub fn try_recommend(&self, user: u32, k: usize) -> Result<Arc<Vec<ScoredItem>>, ServeError> {
        self.try_recommend_versioned(user, k).map(|(_, r)| r)
    }

    /// [`QueryEngine::try_recommend`] reporting the snapshot version the
    /// response was computed from.
    pub fn try_recommend_versioned(
        &self,
        user: u32,
        k: usize,
    ) -> Result<(u64, Arc<Vec<ScoredItem>>), ServeError> {
        let cur = self.handle.load();
        let n_users = cur.snapshot().n_users();
        if user as usize >= n_users {
            return Err(ServeError::InvalidRequest {
                reason: format!("user {user} out of range ({n_users} users)"),
            });
        }
        let version = cur.version();
        catch_unwind(AssertUnwindSafe(|| self.recommend_at(&cur, user, k)))
            .map(|r| (version, r))
            .map_err(|p| ServeError::poisoned(p.as_ref(), "scoring"))
    }

    /// Fallible [`QueryEngine::recommend_many`]: the whole batch is
    /// validated up front (any out-of-range user rejects it with
    /// [`ServeError::InvalidRequest`] before work happens), and a panic
    /// anywhere in the batched scoring pass is caught and returned as
    /// one [`ServeError::Poisoned`] for the batch — per-user partial
    /// results are never fabricated from an interrupted pass.
    pub fn try_recommend_batch(&self, users: &[u32], k: usize) -> VersionedBatchResult {
        let cur = self.handle.load();
        let n_users = cur.snapshot().n_users();
        if let Some(&user) = users.iter().find(|&&u| u as usize >= n_users) {
            return Err(ServeError::InvalidRequest {
                reason: format!("user {user} out of range ({n_users} users)"),
            });
        }
        let version = cur.version();
        catch_unwind(AssertUnwindSafe(|| self.recommend_many_at(&cur, users, k)))
            .map(|r| (version, r))
            .map_err(|p| ServeError::poisoned(p.as_ref(), "batched scoring"))
    }

    /// [`QueryEngine::recommend`] against an explicitly pinned
    /// `(version, snapshot)` pair instead of whatever the engine's handle
    /// currently serves.
    ///
    /// This is the scatter primitive of the sharded tier: a
    /// `ShardedEngine` pins *one* globally published snapshot, slices
    /// it, and queries every shard engine against its slice of that same
    /// version — even if the global handle moves mid-scatter, no shard
    /// can answer from a different publish. Caching still works (the key
    /// carries `cur`'s version), as does IVF (the index is built for
    /// `cur`'s version on miss).
    ///
    /// # Panics
    /// Panics if `user` is out of range for `cur`'s snapshot.
    pub fn recommend_at(
        &self,
        cur: &VersionedSnapshot,
        user: u32,
        k: usize,
    ) -> Arc<Vec<ScoredItem>> {
        let (deal_gen, deal) = self.deal_slot();
        self.recommend_at_with_deal(cur, deal_gen, deal.as_deref(), user, k)
    }

    /// [`QueryEngine::recommend_at`] under an explicitly pinned
    /// `(generation, filter)` deal slot instead of this engine's own.
    /// The sharded tier reads its *router-level* slot once per query and
    /// pins every shard to it — the mechanism that makes a cross-shard
    /// filter install atomic from any single query's point of view.
    /// Cache keys carry the caller's generation, so the invalidation
    /// rule is unchanged.
    ///
    /// # Panics
    /// Panics if `user` is out of range for `cur`'s snapshot.
    pub(crate) fn recommend_at_with_deal(
        &self,
        cur: &VersionedSnapshot,
        deal_gen: u64,
        deal: Option<&BitMatrix>,
        user: u32,
        k: usize,
    ) -> Arc<Vec<ScoredItem>> {
        assert!(
            (user as usize) < cur.snapshot().n_users(),
            "user {user} out of range ({} users)",
            cur.snapshot().n_users()
        );
        let key = (cur.version(), deal_gen, user, k);
        if let Some(cache) = &self.cache {
            if let Some(hit) = lock_recover(cache).get(&key) {
                return Arc::clone(hit);
            }
        }
        let result = Arc::new(self.rank(cur, deal, user, k));
        if let Some(cache) = &self.cache {
            lock_recover(cache).insert(key, Arc::clone(&result));
        }
        result
    }

    /// Top-`k` unseen items for each of `users`, all answered from *one*
    /// pinned snapshot version, which is returned alongside the results.
    ///
    /// The batched serving path: uncached users are scored in blocks of
    /// up to [`EngineConfig::user_block`], each block walking the
    /// catalogue *once* (the item tables stream from memory once per
    /// block instead of once per user). Per-user seen-filters and top-K
    /// heaps run in parallel over the shared score block, and each
    /// computed response fills the cache on the way out.
    ///
    /// Every per-user result is bit-identical to what a sequential
    /// [`QueryEngine::recommend`] against the same snapshot version
    /// returns — batching and block sizes are scheduling choices, never
    /// numeric ones. Duplicate users are computed once and share one
    /// `Arc`.
    ///
    /// # Panics
    /// Panics if any user is out of range for the served snapshot.
    pub fn recommend_many(&self, users: &[u32], k: usize) -> (u64, Vec<Arc<Vec<ScoredItem>>>) {
        let cur = self.handle.load();
        (cur.version(), self.recommend_many_at(&cur, users, k))
    }

    /// [`QueryEngine::recommend_many`] against an explicitly pinned
    /// `(version, snapshot)` pair — the batched scatter primitive of the
    /// sharded tier (see [`QueryEngine::recommend_at`]). Results are in
    /// input order and bit-identical to per-user [`Self::recommend_at`]
    /// calls against the same pair.
    ///
    /// # Panics
    /// Panics if any user is out of range for `cur`'s snapshot.
    pub fn recommend_many_at(
        &self,
        cur: &VersionedSnapshot,
        users: &[u32],
        k: usize,
    ) -> Vec<Arc<Vec<ScoredItem>>> {
        let (deal_gen, deal) = self.deal_slot();
        self.recommend_many_at_with_deal(cur, deal_gen, deal.as_deref(), users, k)
    }

    /// [`QueryEngine::recommend_many_at`] under an explicitly pinned
    /// deal slot — see [`QueryEngine::recommend_at_with_deal`].
    ///
    /// # Panics
    /// Panics if any user is out of range for `cur`'s snapshot.
    pub(crate) fn recommend_many_at_with_deal(
        &self,
        cur: &VersionedSnapshot,
        deal_gen: u64,
        deal: Option<&BitMatrix>,
        users: &[u32],
        k: usize,
    ) -> Vec<Arc<Vec<ScoredItem>>> {
        let snapshot = cur.snapshot();
        let n_users = snapshot.n_users();
        for &user in users {
            assert!(
                (user as usize) < n_users,
                "user {user} out of range ({n_users} users)"
            );
        }
        let version = cur.version();
        let mut out: Vec<Option<Arc<Vec<ScoredItem>>>> = vec![None; users.len()];

        // Probe the cache once per *distinct* user, exactly as a
        // sequential caller would on its first query — duplicate slots
        // are resolved afterwards so they count as the hits they would
        // have been sequentially, not as extra misses. Each distinct
        // user's first slot is recorded up front, so duplicate detection
        // and the per-ranked-user fill below are O(1) per slot instead of
        // an O(users) rescan each (this path sits under IVF-batched wide
        // serving and must not go quadratic in the batch width).
        // lint:allow(no-hash-iteration): lookup-only map, never iterated — order cannot leak
        let mut first_slot: HashMap<u32, usize> = HashMap::with_capacity(users.len());
        let mut pending: Vec<(u32, usize)> = Vec::new();
        let mut duplicates: Vec<usize> = Vec::new();
        for (slot, &user) in users.iter().enumerate() {
            if first_slot.contains_key(&user) {
                duplicates.push(slot);
                continue;
            }
            first_slot.insert(user, slot);
            if let Some(cache) = &self.cache {
                if let Some(hit) = lock_recover(cache).get(&(version, deal_gen, user, k)) {
                    out[slot] = Some(Arc::clone(hit));
                    continue;
                }
            }
            pending.push((user, slot));
        }

        for block in pending.chunks(self.user_block) {
            let block_users: Vec<u32> = block.iter().map(|&(user, _)| user).collect();
            let ranked = self.rank_many(cur, deal, &block_users, k);
            for (&(user, slot), result) in block.iter().zip(ranked) {
                let result = Arc::new(result);
                if let Some(cache) = &self.cache {
                    lock_recover(cache).insert((version, deal_gen, user, k), Arc::clone(&result));
                }
                out[slot] = Some(result);
            }
        }

        // Duplicate slots: a sequential caller's repeat query is a cache
        // hit, so route it through the cache (recording the hit and the
        // LRU touch). If the entry was already evicted — tiny cache, wide
        // batch — reuse the first occurrence's result (bit-identical by
        // determinism; a sequential caller would recompute exactly it)
        // and reinsert, mirroring the sequential recompute-and-insert.
        for slot in duplicates {
            let user = users[slot];
            let first = first_slot[&user];
            // invariant: the first occurrence of every user was either a
            // cache hit or ranked in the pending loop above.
            let result = Arc::clone(out[first].as_ref().expect("first occurrence answered"));
            out[slot] = Some(match &self.cache {
                Some(cache) => {
                    let mut cache = lock_recover(cache);
                    match cache.get(&(version, deal_gen, user, k)) {
                        Some(hit) => Arc::clone(hit),
                        None => {
                            cache.insert((version, deal_gen, user, k), Arc::clone(&result));
                            result
                        }
                    }
                }
                None => result,
            });
        }

        // invariant: every slot is a hit, a ranked pending entry, or a
        // duplicate resolved above — no fourth kind of slot exists.
        out.into_iter()
            .map(|r| r.expect("every user answered"))
            .collect()
    }

    /// Uncached scoring dispatch for one user against one pinned
    /// `(version, snapshot)` pair, under one pinned deal filter.
    fn rank(
        &self,
        cur: &VersionedSnapshot,
        deal: Option<&BitMatrix>,
        user: u32,
        k: usize,
    ) -> Vec<ScoredItem> {
        if let Some(plan) = &self.faults {
            plan.at_score();
        }
        match self.retrieval {
            Retrieval::Exact => self.rank_exact(cur.snapshot(), deal, user, k),
            Retrieval::Ivf {
                n_clusters,
                n_probe,
            } => {
                let index = self.ivf_for(cur, n_clusters);
                self.rank_ivf(cur.snapshot(), &index, deal, user, k, n_probe)
            }
        }
    }

    /// Uncached batched scoring dispatch. Exact mode shares one catalogue
    /// walk across the block; IVF mode ranks each user over its own
    /// probed candidate set (candidate sets are per-user, so there is no
    /// shared pass to amortize — the win is scoring far fewer items).
    /// Either way every per-user result is bit-identical to [`Self::rank`]
    /// for that user.
    fn rank_many(
        &self,
        cur: &VersionedSnapshot,
        deal: Option<&BitMatrix>,
        users: &[u32],
        k: usize,
    ) -> Vec<Vec<ScoredItem>> {
        if let Some(plan) = &self.faults {
            plan.at_score();
        }
        match self.retrieval {
            Retrieval::Exact => self.rank_many_exact(cur.snapshot(), deal, users, k),
            Retrieval::Ivf {
                n_clusters,
                n_probe,
            } => {
                // Route once per distinct query vector across the block
                // (queued duplicates are common under coalesced bursty
                // traffic), then score each user over its shared route.
                let index = self.ivf_for(cur, n_clusters);
                let routes = index.probe_cells_block(cur.snapshot(), users, n_probe);
                users
                    .iter()
                    .zip(&routes)
                    .map(|(&user, cells)| {
                        self.rank_ivf_cells(cur.snapshot(), &index, deal, user, k, cells)
                    })
                    .collect()
            }
        }
    }

    /// The IVF scoring path: route to the user's best `n_probe` cells,
    /// then score only their members (each cell's *packed* item tables
    /// streamed in `block_size` chunks through [`IvfIndex::score_cell`])
    /// with the same seen-filter probe and heap as the exhaustive walk.
    /// Best cell first, so the heap's threshold fills with strong
    /// candidates early and most later offers fail one comparison.
    ///
    /// Scores are bit-identical to the exhaustive pass per surviving
    /// item, and the heap selects under a strict total order — its
    /// output depends only on the candidate *set*, not arrival order —
    /// so probing every cell reproduces [`Self::rank_exact`]
    /// bit-for-bit.
    fn rank_ivf(
        &self,
        snapshot: &EmbeddingSnapshot,
        index: &IvfIndex,
        deal: Option<&BitMatrix>,
        user: u32,
        k: usize,
        n_probe: usize,
    ) -> Vec<ScoredItem> {
        let cells = index.probe_cells(snapshot, user, n_probe);
        self.rank_ivf_cells(snapshot, index, deal, user, k, &cells)
    }

    /// [`Self::rank_ivf`] over a precomputed cell route — the batched
    /// path computes routes once per distinct query vector
    /// ([`IvfIndex::probe_cells_block`]) and feeds them here.
    fn rank_ivf_cells(
        &self,
        snapshot: &EmbeddingSnapshot,
        index: &IvfIndex,
        deal: Option<&BitMatrix>,
        user: u32,
        k: usize,
        cells: &[usize],
    ) -> Vec<ScoredItem> {
        let mut topk = TopK::new(k);
        let seen = self.filter.as_ref().map(|f| f.row_words(user as usize));
        let deal = deal.map(|f| f.row_words(0));
        let mut scores = vec![0.0f32; self.block_size.min(snapshot.n_items().max(1))];
        for &cell in cells {
            let list = index.list(cell);
            let mut start = 0usize;
            while start < list.len() {
                let len = self.block_size.min(list.len() - start);
                let out = &mut scores[..len];
                index.score_cell(snapshot, user, cell, start, out);
                let chunk = &list[start..start + len];
                if seen.is_none() && deal.is_none() {
                    for (&item, &score) in chunk.iter().zip(out.iter()) {
                        topk.push(item, score);
                    }
                } else {
                    for (&item, &score) in chunk.iter().zip(out.iter()) {
                        if !blocked(seen, deal, item as usize) {
                            topk.push(item, score);
                        }
                    }
                }
                start += len;
            }
        }
        topk.into_sorted()
    }

    /// The uncached batched scoring path: one catalogue walk scores every
    /// user in `users` (one [`EngineConfig::user_block`]-sized block),
    /// maintaining a per-user seen-filter probe and top-K heap over the
    /// shared score block.
    fn rank_many_exact(
        &self,
        snapshot: &EmbeddingSnapshot,
        deal: Option<&BitMatrix>,
        users: &[u32],
        k: usize,
    ) -> Vec<Vec<ScoredItem>> {
        let n_items = snapshot.n_items();
        let mut topks: Vec<TopK> = users.iter().map(|_| TopK::new(k)).collect();
        let seens: Vec<Option<&[u64]>> = users
            .iter()
            .map(|&u| self.filter.as_ref().map(|f| f.row_words(u as usize)))
            .collect();
        let deal = deal.map(|f| f.row_words(0));
        let len_cap = self.block_size.min(n_items.max(1));
        let mut block = vec![0.0f32; users.len() * len_cap];
        let mut start = 0usize;
        while start < n_items {
            let len = self.block_size.min(n_items - start);
            let out = &mut block[..users.len() * len];
            snapshot.score_block_multi(users, start, len, out);
            for (u, topk) in topks.iter_mut().enumerate() {
                let scores = &out[u * len..(u + 1) * len];
                if seens[u].is_none() && deal.is_none() {
                    for (j, &score) in scores.iter().enumerate() {
                        topk.push((start + j) as u32, score);
                    }
                } else {
                    for (j, &score) in scores.iter().enumerate() {
                        let item = start + j;
                        if !blocked(seens[u], deal, item) {
                            topk.push(item as u32, score);
                        }
                    }
                }
            }
            start += len;
        }
        topks.into_iter().map(TopK::into_sorted).collect()
    }

    /// The exhaustive uncached scoring path over one pinned snapshot.
    fn rank_exact(
        &self,
        snapshot: &EmbeddingSnapshot,
        deal: Option<&BitMatrix>,
        user: u32,
        k: usize,
    ) -> Vec<ScoredItem> {
        let n_items = snapshot.n_items();
        let mut topk = TopK::new(k);
        let mut block = vec![0.0f32; self.block_size.min(n_items.max(1))];
        let seen = self.filter.as_ref().map(|f| f.row_words(user as usize));
        let deal = deal.map(|f| f.row_words(0));
        let mut start = 0usize;
        while start < n_items {
            let len = self.block_size.min(n_items - start);
            let out = &mut block[..len];
            snapshot.score_block(user, start, out);
            if seen.is_none() && deal.is_none() {
                for (j, &score) in out.iter().enumerate() {
                    topk.push((start + j) as u32, score);
                }
            } else {
                for (j, &score) in out.iter().enumerate() {
                    let item = start + j;
                    if !blocked(seen, deal, item) {
                        topk.push(item as u32, score);
                    }
                }
            }
            start += len;
        }
        topk.into_sorted()
    }
}

/// What the serving front ([`crate::service::RecommendService`]) needs
/// from an engine — implemented by the single-catalogue [`QueryEngine`]
/// and by the scatter-gather [`crate::router::ShardedEngine`], so one
/// worker-pool/coalescing/latency layer fronts both.
///
/// The contract every implementation upholds: `recommend_many` results
/// are in input order, each per-user result is bit-identical to a solo
/// `recommend` against the same snapshot version, and the reported
/// version is the one *every* returned ranking was computed from.
pub trait ServeEngine: Send + Sync + 'static {
    /// Users in the served universe (fixed across publishes).
    fn n_users(&self) -> usize;

    /// Users scored per catalogue pass on the batched path (≥ 1) — the
    /// service coalescer's lower bound for group sizing.
    fn user_block(&self) -> usize;

    /// Whether responses are cached (drives [`RecommendService::warm`]'s
    /// no-op shortcut).
    ///
    /// [`RecommendService::warm`]: crate::service::RecommendService::warm
    fn has_cache(&self) -> bool;

    /// The candidate-generation mode served with.
    fn retrieval(&self) -> Retrieval;

    /// Top-`k` for one user plus the snapshot version that produced it.
    fn recommend_versioned(&self, user: u32, k: usize) -> (u64, Arc<Vec<ScoredItem>>);

    /// Top-`k` per user, all pinned to one version (returned alongside).
    fn recommend_many(&self, users: &[u32], k: usize) -> (u64, Vec<Arc<Vec<ScoredItem>>>);

    /// Fallible [`ServeEngine::recommend_many`]: validation failures and
    /// caught scoring panics come back as typed [`ServeError`]s instead
    /// of panicking the caller — the supervision boundary the service's
    /// workers score through. The default wraps the infallible path in
    /// `catch_unwind`; implementations with richer failure structure
    /// (the sharded router's degraded scatter) override it.
    fn try_recommend_many(&self, users: &[u32], k: usize) -> VersionedBatchResult {
        let n_users = self.n_users();
        if let Some(&user) = users.iter().find(|&&u| u as usize >= n_users) {
            return Err(ServeError::InvalidRequest {
                reason: format!("user {user} out of range ({n_users} users)"),
            });
        }
        catch_unwind(AssertUnwindSafe(|| self.recommend_many(users, k)))
            .map_err(|p| ServeError::poisoned(p.as_ref(), "batched scoring"))
    }

    /// Top-`k` for one user (version discarded).
    fn recommend(&self, user: u32, k: usize) -> Arc<Vec<ScoredItem>> {
        self.recommend_versioned(user, k).1
    }
}

impl ServeEngine for QueryEngine {
    fn n_users(&self) -> usize {
        QueryEngine::n_users(self)
    }

    fn user_block(&self) -> usize {
        QueryEngine::user_block(self)
    }

    fn has_cache(&self) -> bool {
        QueryEngine::has_cache(self)
    }

    fn retrieval(&self) -> Retrieval {
        QueryEngine::retrieval(self)
    }

    fn recommend_versioned(&self, user: u32, k: usize) -> (u64, Arc<Vec<ScoredItem>>) {
        QueryEngine::recommend_versioned(self, user, k)
    }

    fn recommend_many(&self, users: &[u32], k: usize) -> (u64, Vec<Arc<Vec<ScoredItem>>>) {
        QueryEngine::recommend_many(self, users, k)
    }

    fn try_recommend_many(&self, users: &[u32], k: usize) -> VersionedBatchResult {
        QueryEngine::try_recommend_batch(self, users, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_eval::topk::reference_topk;
    use gb_eval::Scorer;
    use gb_tensor::Matrix;

    fn snapshot(n_users: usize, n_items: usize, d: usize) -> EmbeddingSnapshot {
        EmbeddingSnapshot::new(
            0.4,
            Matrix::from_fn(n_users, d, |r, c| ((r * 7 + c * 3) as f32 * 0.17).sin()),
            Matrix::from_fn(n_items, d, |r, c| ((r * 5 + c) as f32 * 0.31).cos()),
            Matrix::from_fn(n_users, d, |r, c| ((r + c * 11) as f32 * 0.13).sin()),
            Matrix::from_fn(n_items, d, |r, c| ((r * 3 + c * 2) as f32 * 0.23).cos()),
        )
    }

    #[test]
    fn unfiltered_topk_matches_reference_ranking() {
        let snap = snapshot(6, 333, 8);
        // Deliberately non-dividing block size to cover the tail block.
        let engine = QueryEngine::with_config(
            snap.clone(),
            EngineConfig {
                block_size: 64,
                ..Default::default()
            },
        );
        let candidates: Vec<u32> = (0..333).collect();
        for user in 0..6u32 {
            let got: Vec<(u32, f32)> = engine
                .recommend(user, 10)
                .iter()
                .map(|e| (e.item, e.score))
                .collect();
            assert_eq!(
                got,
                reference_topk(&snap, user, &candidates, 10),
                "user {user}"
            );
        }
    }

    #[test]
    fn filtered_items_never_returned() {
        let snap = snapshot(4, 200, 8);
        let mut seen = gb_graph::BitMatrix::zeros(4, 200);
        for item in (0..200).step_by(3) {
            seen.set(1, item);
        }
        let engine = QueryEngine::new(snap).with_seen_filter(seen);
        let rec = engine.recommend(1, 200);
        assert_eq!(rec.len(), 200 - 67, "67 items filtered");
        assert!(rec.iter().all(|e| e.item % 3 != 0), "a seen item leaked");
        // Other users are unaffected.
        assert_eq!(engine.recommend(0, 200).len(), 200);
    }

    #[test]
    fn filtered_ranking_matches_reference_over_unseen() {
        let snap = snapshot(3, 150, 4);
        let mut seen = gb_graph::BitMatrix::zeros(3, 150);
        for item in [0usize, 5, 64, 65, 128, 149] {
            seen.set(2, item);
        }
        let engine = QueryEngine::with_config(
            snap.clone(),
            EngineConfig {
                block_size: 32,
                ..Default::default()
            },
        )
        .with_seen_filter(seen);
        let unseen: Vec<u32> = (0..150u32)
            .filter(|i| ![0u32, 5, 64, 65, 128, 149].contains(i))
            .collect();
        let got: Vec<(u32, f32)> = engine
            .recommend(2, 7)
            .iter()
            .map(|e| (e.item, e.score))
            .collect();
        assert_eq!(got, reference_topk(&snap, 2, &unseen, 7));
    }

    #[test]
    fn cache_returns_identical_results_and_counts_hits() {
        let snap = snapshot(5, 100, 8);
        let engine = QueryEngine::with_config(
            snap,
            EngineConfig {
                cache_capacity: 8,
                ..Default::default()
            },
        );
        let first = engine.recommend(3, 5);
        let second = engine.recommend(3, 5);
        assert!(
            Arc::ptr_eq(&first, &second),
            "second query should be a cache hit"
        );
        assert_eq!(engine.cache_stats(), (1, 1));
        // Different k is a different cache entry with consistent content.
        let shorter = engine.recommend(3, 3);
        assert_eq!(&first[..3], &shorter[..]);
    }

    #[test]
    fn k_larger_than_catalogue_returns_everything_ranked() {
        let snap = snapshot(2, 40, 4);
        let engine = QueryEngine::new(snap.clone());
        let rec = engine.recommend(0, 1000);
        assert_eq!(rec.len(), 40);
        let scores = snap.score_items(0, &(0..40u32).collect::<Vec<_>>());
        for pair in rec.windows(2) {
            assert!(
                pair[0].score > pair[1].score
                    || (pair[0].score == pair[1].score && pair[0].item < pair[1].item)
            );
        }
        for e in rec.iter() {
            assert_eq!(e.score, scores[e.item as usize]);
        }
    }

    #[test]
    fn installing_filter_discards_stale_cached_responses() {
        let snap = snapshot(3, 100, 4);
        let engine = QueryEngine::with_config(
            snap,
            EngineConfig {
                cache_capacity: 8,
                ..Default::default()
            },
        );
        // Populate the cache pre-filter, then install a filter that
        // bans everything the cached answer contained.
        let before = engine.recommend(0, 10);
        let mut seen = gb_graph::BitMatrix::zeros(3, 100);
        for e in before.iter() {
            seen.set(0, e.item as usize);
        }
        let engine = engine.with_seen_filter(seen);
        let after = engine.recommend(0, 10);
        for e in after.iter() {
            assert!(
                !before.iter().any(|b| b.item == e.item),
                "stale cached item {} served past the filter",
                e.item
            );
        }
    }

    #[test]
    fn publish_hot_swaps_the_served_snapshot() {
        let old = snapshot(4, 60, 8);
        let new = snapshot(4, 60, 4); // different tables, same universe
        let engine = QueryEngine::new(old.clone());
        let before: Vec<(u32, f32)> = engine
            .recommend(1, 60)
            .iter()
            .map(|e| (e.item, e.score))
            .collect();
        let candidates: Vec<u32> = (0..60).collect();
        assert_eq!(before, reference_topk(&old, 1, &candidates, 60));

        let v = engine.handle().publish(new.clone());
        assert_eq!(v, 2);
        let (ver, after) = engine.recommend_versioned(1, 60);
        assert_eq!(ver, 2);
        let after: Vec<(u32, f32)> = after.iter().map(|e| (e.item, e.score)).collect();
        assert_eq!(
            after,
            reference_topk(&new, 1, &candidates, 60),
            "post-publish ranking must come from the new tables"
        );
    }

    #[test]
    fn cached_responses_never_cross_a_version_boundary() {
        let v1 = snapshot(3, 80, 4);
        let v2 = snapshot(3, 80, 8);
        let engine = QueryEngine::with_config(
            v1.clone(),
            EngineConfig {
                cache_capacity: 16,
                ..Default::default()
            },
        );
        let (ver1, first) = engine.recommend_versioned(2, 10);
        assert_eq!(ver1, 1);
        engine.handle().publish(v2.clone());
        let (ver2, fresh) = engine.recommend_versioned(2, 10);
        assert_eq!(ver2, 2);
        assert!(
            !Arc::ptr_eq(&first, &fresh),
            "the v1 response must not be served for v2"
        );
        let candidates: Vec<u32> = (0..80).collect();
        let fresh: Vec<(u32, f32)> = fresh.iter().map(|e| (e.item, e.score)).collect();
        assert_eq!(fresh, reference_topk(&v2, 2, &candidates, 10));
        // The recompute was a miss, not a stale hit: 0 hits, 2 misses.
        assert_eq!(engine.cache_stats(), (0, 2));
        // Re-querying v2 is a genuine hit.
        let again = engine.recommend_versioned(2, 10);
        assert_eq!(again.0, 2);
        assert_eq!(engine.cache_stats(), (1, 2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_user_panics() {
        let engine = QueryEngine::new(snapshot(2, 10, 4));
        engine.recommend(2, 1);
    }

    fn ivf_engine(snap: EmbeddingSnapshot, n_clusters: usize, n_probe: usize) -> QueryEngine {
        QueryEngine::with_config(
            snap,
            EngineConfig {
                block_size: 64,
                retrieval: Retrieval::Ivf {
                    n_clusters,
                    n_probe,
                },
                ..Default::default()
            },
        )
    }

    #[test]
    fn ivf_full_probe_matches_exact_bitwise() {
        let snap = snapshot(6, 333, 8);
        let exact = QueryEngine::new(snap.clone());
        let ivf = ivf_engine(snap, 7, 7);
        for user in 0..6u32 {
            let e = exact.recommend(user, 10);
            let a = ivf.recommend(user, 10);
            assert_eq!(e.len(), a.len(), "user {user}");
            for (x, y) in e.iter().zip(a.iter()) {
                assert_eq!(x.item, y.item, "user {user}");
                assert_eq!(x.score.to_bits(), y.score.to_bits(), "user {user}");
            }
        }
    }

    #[test]
    fn ivf_partial_probe_scores_match_exact_per_item() {
        // A pruned ranking may miss items, but every item it *does*
        // return carries the exact pass's bit-identical score and the
        // returned order is consistent with the exact full ranking.
        let snap = snapshot(4, 200, 8);
        let exact = QueryEngine::new(snap.clone());
        let ivf = ivf_engine(snap, 10, 3);
        let full = exact.recommend(1, 200); // the entire exact ranking
        let approx = ivf.recommend(1, 20);
        assert!(!approx.is_empty());
        let mut last_pos = 0usize;
        for e in approx.iter() {
            let pos = full
                .iter()
                .position(|f| f.item == e.item)
                .expect("approx item exists in the exact ranking");
            assert_eq!(e.score.to_bits(), full[pos].score.to_bits());
            assert!(pos >= last_pos, "approx order must follow exact order");
            last_pos = pos;
        }
    }

    #[test]
    fn ivf_index_rebuilds_on_publish() {
        let old = snapshot(4, 120, 8);
        let new = snapshot(4, 120, 4);
        let engine = ivf_engine(old.clone(), 5, 5);
        assert_eq!(engine.ivf_index_version(), None, "lazy until first query");
        engine.recommend(0, 5);
        assert_eq!(engine.ivf_index_version(), Some(1));

        engine.handle().publish(new.clone());
        // The stale index survives until a query observes the publish...
        assert_eq!(engine.ivf_index_version(), Some(1));
        let (version, got) = engine.recommend_versioned(2, 120);
        assert_eq!(version, 2);
        assert_eq!(engine.ivf_index_version(), Some(2), "rebuilt on publish");
        // ...and the post-publish response comes entirely from the new
        // tables (full probe ⇒ must equal exact serving of `new`).
        let candidates: Vec<u32> = (0..120).collect();
        let got: Vec<(u32, f32)> = got.iter().map(|e| (e.item, e.score)).collect();
        assert_eq!(got, reference_topk(&new, 2, &candidates, 120));
    }

    #[test]
    fn ivf_respects_seen_filter() {
        let snap = snapshot(4, 200, 8);
        let mut seen = gb_graph::BitMatrix::zeros(4, 200);
        for item in (0..200).step_by(3) {
            seen.set(1, item);
        }
        let engine = ivf_engine(snap, 8, 8).with_seen_filter(seen);
        let rec = engine.recommend(1, 200);
        assert_eq!(rec.len(), 200 - 67);
        assert!(rec.iter().all(|e| e.item % 3 != 0), "a seen item leaked");
    }

    #[test]
    fn ivf_knobs_are_clamped() {
        let engine = ivf_engine(snapshot(2, 30, 4), 0, 0);
        assert_eq!(
            engine.retrieval(),
            Retrieval::Ivf {
                n_clusters: 1,
                n_probe: 1
            }
        );
        // One cluster, one probe = the whole catalogue through the IVF
        // path.
        assert_eq!(engine.recommend(0, 30).len(), 30);
    }

    #[test]
    fn recommend_many_matches_sequential_bitwise() {
        let snap = snapshot(7, 333, 8);
        for user_block in [1usize, 2, 3, 8] {
            let engine = QueryEngine::with_config(
                snap.clone(),
                EngineConfig {
                    block_size: 64, // non-dividing: covers the tail block
                    user_block,
                    ..Default::default()
                },
            );
            let users: Vec<u32> = vec![3, 0, 6, 1, 3, 5, 2, 4, 0]; // dups included
            let (version, many) = engine.recommend_many(&users, 10);
            assert_eq!(version, 1);
            assert_eq!(many.len(), users.len());
            for (slot, &user) in users.iter().enumerate() {
                let solo = engine.recommend(user, 10);
                assert_eq!(solo.len(), many[slot].len());
                for (a, b) in many[slot].iter().zip(solo.iter()) {
                    assert_eq!(a.item, b.item, "user_block {user_block} user {user}");
                    assert_eq!(
                        a.score.to_bits(),
                        b.score.to_bits(),
                        "user_block {user_block} user {user}"
                    );
                }
            }
        }
    }

    #[test]
    fn recommend_many_respects_filter_and_fills_cache() {
        let snap = snapshot(4, 200, 8);
        let mut seen = gb_graph::BitMatrix::zeros(4, 200);
        for item in (0..200).step_by(3) {
            seen.set(1, item);
        }
        let engine = QueryEngine::with_config(
            snap,
            EngineConfig {
                cache_capacity: 16,
                user_block: 4,
                ..Default::default()
            },
        )
        .with_seen_filter(seen);
        let (_, many) = engine.recommend_many(&[0, 1, 2], 200);
        assert_eq!(
            many[1].len(),
            200 - 67,
            "user 1 sees the filtered catalogue"
        );
        assert!(many[1].iter().all(|e| e.item % 3 != 0));
        assert_eq!(many[0].len(), 200);
        // The batch filled the cache: sequential queries are pointer hits.
        for (slot, &user) in [0u32, 1, 2].iter().enumerate() {
            let again = engine.recommend(user, 200);
            assert!(
                Arc::ptr_eq(&again, &many[slot]),
                "user {user} should hit the batch-filled cache"
            );
        }
    }

    #[test]
    fn recommend_many_cache_stats_match_sequential_semantics() {
        // [5, 5, 2] on an empty cache must count like the sequential
        // stream recommend(5), recommend(5), recommend(2): two misses
        // (first touches) and one hit (the duplicate), not three misses.
        let snap = snapshot(6, 60, 4);
        let engine = QueryEngine::with_config(
            snap,
            EngineConfig {
                cache_capacity: 8,
                ..Default::default()
            },
        );
        let (_, many) = engine.recommend_many(&[5, 5, 2], 7);
        assert_eq!(engine.cache_stats(), (1, 2));
        assert!(Arc::ptr_eq(&many[0], &many[1]));
        // And the entries really are cached: re-querying is all hits.
        engine.recommend(5, 7);
        engine.recommend(2, 7);
        assert_eq!(engine.cache_stats(), (3, 2));
    }

    #[test]
    fn recommend_many_shares_one_arc_across_duplicates() {
        let engine = QueryEngine::new(snapshot(3, 50, 4));
        let (_, many) = engine.recommend_many(&[2, 2, 2], 5);
        assert!(Arc::ptr_eq(&many[0], &many[1]));
        assert!(Arc::ptr_eq(&many[1], &many[2]));
    }

    #[test]
    fn recommend_many_empty_users_is_a_noop() {
        let engine = QueryEngine::new(snapshot(2, 10, 4));
        let (version, many) = engine.recommend_many(&[], 5);
        assert_eq!(version, 1);
        assert!(many.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn recommend_many_rejects_out_of_range_users() {
        let engine = QueryEngine::new(snapshot(2, 10, 4));
        engine.recommend_many(&[0, 2], 1);
    }

    /// A deal filter blocking every item `% 5 == 0`.
    fn deal_filter(n_items: usize) -> gb_graph::BitMatrix {
        let mut f = gb_graph::BitMatrix::zeros(1, n_items);
        for item in (0..n_items).step_by(5) {
            f.set(0, item);
        }
        f
    }

    #[test]
    fn deal_filter_blocks_items_for_every_user() {
        let engine = QueryEngine::new(snapshot(4, 200, 8));
        engine.set_deal_filter(deal_filter(200));
        for user in 0..4u32 {
            let rec = engine.recommend(user, 200);
            assert_eq!(rec.len(), 160, "user {user}: 40 items blocked");
            assert!(rec.iter().all(|e| e.item % 5 != 0), "a blocked item leaked");
        }
        engine.clear_deal_filter();
        assert_eq!(engine.recommend(0, 200).len(), 200);
    }

    #[test]
    fn deal_filter_composes_with_seen_filter() {
        let snap = snapshot(3, 150, 8);
        let mut seen = gb_graph::BitMatrix::zeros(3, 150);
        for item in (0..150).step_by(3) {
            seen.set(1, item);
        }
        let engine = QueryEngine::new(snap.clone()).with_seen_filter(seen);
        engine.set_deal_filter(deal_filter(150));
        let allowed: Vec<u32> = (0..150u32).filter(|i| i % 3 != 0 && i % 5 != 0).collect();
        let got: Vec<(u32, f32)> = engine
            .recommend(1, 150)
            .iter()
            .map(|e| (e.item, e.score))
            .collect();
        assert_eq!(got, reference_topk(&snap, 1, &allowed, 150));
        // A user with no seen bits is gated by the deal filter alone.
        assert_eq!(engine.recommend(0, 150).len(), 120);
    }

    #[test]
    fn deal_filter_swap_retires_cached_responses_by_generation() {
        let engine = QueryEngine::with_config(
            snapshot(3, 100, 4),
            EngineConfig {
                cache_capacity: 8,
                ..Default::default()
            },
        );
        assert_eq!(engine.deal_generation(), 0);
        let unfiltered = engine.recommend(0, 100);
        assert_eq!(unfiltered.len(), 100);
        engine.set_deal_filter(deal_filter(100));
        assert_eq!(engine.deal_generation(), 1);
        let filtered = engine.recommend(0, 100);
        assert_eq!(filtered.len(), 80, "the pre-filter entry must not serve");
        // Clearing is a new generation, not a return to the old key.
        engine.clear_deal_filter();
        assert_eq!(engine.deal_generation(), 2);
        assert_eq!(engine.recommend(0, 100).len(), 100);
        // All three were misses; re-query under the current generation hits.
        assert_eq!(engine.cache_stats(), (0, 3));
        engine.recommend(0, 100);
        assert_eq!(engine.cache_stats(), (1, 3));
    }

    #[test]
    fn grown_publish_serves_appended_items_past_old_filters() {
        // Filters installed for the 60-item catalogue; a grow-only
        // publish appends 20 items. Appended ids probe as unseen/allowed
        // on both filters instead of indexing out of bounds.
        let old = snapshot(3, 60, 4);
        let mut seen = gb_graph::BitMatrix::zeros(3, 60);
        seen.set(0, 10);
        let engine = QueryEngine::new(old).with_seen_filter(seen);
        engine.set_deal_filter(deal_filter(60));
        let new = snapshot(3, 80, 4);
        engine.handle().publish(new.clone());
        let rec = engine.recommend(0, 80);
        let expect: Vec<u32> = (0..80u32)
            .filter(|&i| i != 10 && (i >= 60 || i % 5 != 0))
            .collect();
        assert_eq!(rec.len(), expect.len());
        let got: Vec<(u32, f32)> = rec.iter().map(|e| (e.item, e.score)).collect();
        assert_eq!(got, reference_topk(&new, 0, &expect, 80));
    }

    #[test]
    fn ivf_deal_filter_matches_exact_bitwise() {
        let snap = snapshot(4, 200, 8);
        let exact = QueryEngine::new(snap.clone());
        exact.set_deal_filter(deal_filter(200));
        let ivf = ivf_engine(snap, 8, 8);
        ivf.set_deal_filter(deal_filter(200));
        for user in 0..4u32 {
            let e = exact.recommend(user, 200);
            let a = ivf.recommend(user, 200);
            assert_eq!(e.len(), a.len(), "user {user}");
            for (x, y) in e.iter().zip(a.iter()) {
                assert_eq!((x.item, x.score.to_bits()), (y.item, y.score.to_bits()));
            }
        }
    }

    fn delta_for(snap: &EmbeddingSnapshot) -> gb_models::SnapshotDelta {
        let d = snap.own_dim();
        gb_models::SnapshotDelta::new()
            .set_item(7, vec![0.3; d], vec![-0.2; d])
            .set_item(40, vec![-0.8; d], vec![0.5; d])
            .append_item(vec![0.6; d], vec![0.4; d])
            .append_item(vec![-0.1; d], vec![0.9; d])
    }

    #[test]
    fn incremental_ivf_update_matches_exact_after_delta_publish() {
        let snap = snapshot(5, 120, 8);
        let engine = QueryEngine::with_config(
            snap.clone(),
            EngineConfig {
                block_size: 64,
                retrieval: Retrieval::Ivf {
                    n_clusters: 6,
                    n_probe: 6,
                },
                ivf_incremental: true,
                ..Default::default()
            },
        );
        engine.recommend(0, 5); // build the v1 index
        assert_eq!(engine.ivf_index_version(), Some(1));
        let delta = delta_for(&snap);
        engine.handle().publish_delta(&delta);
        let cur = engine.snapshot();
        let exact = QueryEngine::new(cur.snapshot().clone());
        for user in 0..5u32 {
            let (version, got) = engine.recommend_versioned(user, 122);
            assert_eq!(version, 2);
            let want = exact.recommend(user, 122);
            assert_eq!(got.len(), want.len(), "user {user}");
            for (a, b) in got.iter().zip(want.iter()) {
                assert_eq!(
                    (a.item, a.score.to_bits()),
                    (b.item, b.score.to_bits()),
                    "user {user}: incremental full-probe must stay exact"
                );
            }
        }
        assert_eq!(engine.ivf_index_version(), Some(2), "updated on publish");
    }

    #[test]
    fn incremental_ivf_never_blends_across_a_publish() {
        // Partial probe after a delta publish: every returned score must
        // come from the *new* tables — a stale packed cell or list would
        // surface an old-version bit pattern.
        let snap = snapshot(4, 150, 8);
        let engine = QueryEngine::with_config(
            snap.clone(),
            EngineConfig {
                block_size: 32,
                retrieval: Retrieval::Ivf {
                    n_clusters: 10,
                    n_probe: 3,
                },
                ivf_incremental: true,
                ..Default::default()
            },
        );
        engine.recommend(0, 5);
        engine.handle().publish_delta(&delta_for(&snap));
        let cur = engine.snapshot();
        for user in 0..4u32 {
            let (version, got) = engine.recommend_versioned(user, 20);
            assert_eq!(version, 2);
            assert!(!got.is_empty());
            for e in got.iter() {
                let fresh = cur.snapshot().score_items(user, &[e.item])[0];
                assert_eq!(
                    e.score.to_bits(),
                    fresh.to_bits(),
                    "user {user} item {}: served score blends a stale row",
                    e.item
                );
            }
        }
    }

    #[test]
    fn incremental_ivf_falls_back_to_rebuild_without_a_cached_predecessor() {
        let snap = snapshot(3, 90, 8);
        let engine = QueryEngine::with_config(
            snap.clone(),
            EngineConfig {
                retrieval: Retrieval::Ivf {
                    n_clusters: 5,
                    n_probe: 5,
                },
                ivf_incremental: true,
                ..Default::default()
            },
        );
        // Delta-publish *before* any query: no v1 index exists, so the
        // v2 index must come from a full build — and still serve exactly.
        engine.handle().publish_delta(&delta_for(&snap));
        let cur = engine.snapshot();
        let exact = QueryEngine::new(cur.snapshot().clone());
        let got = engine.recommend(1, 92);
        let want = exact.recommend(1, 92);
        assert_eq!(got.len(), want.len());
        for (a, b) in got.iter().zip(want.iter()) {
            assert_eq!((a.item, a.score.to_bits()), (b.item, b.score.to_bits()));
        }
        assert_eq!(engine.ivf_index_version(), Some(2));
    }
}
