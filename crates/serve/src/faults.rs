//! Deterministic fault injection for serving-tier robustness tests.
//!
//! A [`FaultPlan`] is a scripted, seeded schedule of failures that the
//! serving hot paths consult at fixed *fault sites*:
//!
//! | site                    | consulted by                                  | faults available            |
//! |-------------------------|-----------------------------------------------|-----------------------------|
//! | scoring call            | `QueryEngine::rank`/`rank_many` dispatch      | panic the Nth call, panic every Nth, delay |
//! | shard scatter           | `ShardedEngine` scatter, per shard, per query | delay a shard, fail (panic) a shard N times or every Nth |
//! | deal-filter install     | `ShardedEngine::set_deal_filter`, between prepare and install | delay (widens the race window the two-phase install must close) |
//! | snapshot open           | [`crate::mmap::open_mmap_snapshot_faulted`]   | fail the next N opens       |
//!
//! Plans are **per-instance**, not global: an engine only consults the
//! plan it was built with ([`QueryEngine::with_faults`],
//! [`ShardedEngine::with_faults`]), so parallel tests in one process
//! can never leak panics into each other, and production engines —
//! built without a plan — pay one `Option` check per site.
//!
//! All schedules are counter-based and therefore deterministic for a
//! deterministic call sequence (single-threaded tests get exact
//! "panic the 3rd query" semantics); under concurrency the counters
//! still fire exactly the scripted *number* of faults, just on
//! whichever thread reaches the count. Injected panics carry the
//! `"fault injection:"` prefix so a soak can tell a scripted failure
//! from a real one.
//!
//! [`corrupt_file`] complements the scripted open failures with *real*
//! corruption: a seeded, reproducible byte flip for exercising the
//! loaders' validation paths in soaks.
//!
//! [`QueryEngine::with_faults`]: crate::engine::QueryEngine::with_faults
//! [`ShardedEngine::with_faults`]: crate::router::ShardedEngine::with_faults

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A scripted failure schedule. Build one with the chainable
/// constructors, wrap it in an `Arc`, and hand clones to the engines
/// under test; the counters inside are shared, so "panic the 3rd
/// scoring call" means the 3rd call across every holder of the plan.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Sorted 1-based scoring-call indices that panic.
    panic_calls: Vec<u64>,
    /// Panic every Nth scoring call (0 = off) — the soak workhorse.
    panic_every: u64,
    /// Sleep before every scoring call (holds workers busy so overload
    /// tests can fill the queue deterministically).
    score_delay: Option<Duration>,
    /// Scoring calls observed so far.
    score_calls: AtomicU64,
    /// `(shard, delay)` — sleep before that shard scores a scatter.
    shard_delays: Vec<(usize, Duration)>,
    /// Per-shard scripted failures.
    shard_fails: Vec<ShardFail>,
    /// Sleep inside `set_deal_filter` between preparing the per-shard
    /// slices and installing them.
    install_delay: Option<Duration>,
    /// Remaining scripted snapshot-open failures.
    open_fails: AtomicU64,
}

/// Scripted failures for one shard: the first `remaining` scatters
/// panic, and/or every `every`th scatter panics.
#[derive(Debug)]
struct ShardFail {
    shard: usize,
    remaining: AtomicU64,
    every: u64,
    calls: AtomicU64,
}

impl FaultPlan {
    /// An empty plan (no faults fire until scripted).
    pub fn new() -> Self {
        Self::default()
    }

    /// Panic the `n`th scoring call (1-based). Chainable and repeatable.
    pub fn panic_on_call(mut self, n: u64) -> Self {
        self.panic_calls.push(n.max(1));
        self.panic_calls.sort_unstable();
        self
    }

    /// Panic every `n`th scoring call (soak mode). `0` disables.
    pub fn panic_every(mut self, n: u64) -> Self {
        self.panic_every = n;
        self
    }

    /// Sleep `delay` before every scoring call.
    pub fn delay_scoring(mut self, delay: Duration) -> Self {
        self.score_delay = Some(delay);
        self
    }

    /// Sleep `delay` before shard `shard` scores each scatter.
    pub fn delay_shard(mut self, shard: usize, delay: Duration) -> Self {
        self.shard_delays.push((shard, delay));
        self
    }

    /// Panic shard `shard`'s next `times` scatters (then heal — a
    /// retried scatter against a healed shard succeeds).
    pub fn fail_shard(self, shard: usize, times: u64) -> Self {
        self.shard_fault(shard, times, 0)
    }

    /// Panic every `every`th scatter that reaches shard `shard`.
    pub fn fail_shard_every(self, shard: usize, every: u64) -> Self {
        self.shard_fault(shard, 0, every)
    }

    fn shard_fault(mut self, shard: usize, times: u64, every: u64) -> Self {
        self.shard_fails.push(ShardFail {
            shard,
            remaining: AtomicU64::new(times),
            every,
            calls: AtomicU64::new(0),
        });
        self
    }

    /// Sleep `delay` inside `set_deal_filter` between the prepare and
    /// install phases, widening the window a racing scatter must never
    /// observe a mixed mask in.
    pub fn delay_filter_install(mut self, delay: Duration) -> Self {
        self.install_delay = Some(delay);
        self
    }

    /// Fail the next `times` faulted snapshot opens
    /// ([`crate::mmap::open_mmap_snapshot_faulted`]).
    pub fn fail_opens(mut self, times: u64) -> Self {
        self.open_fails = AtomicU64::new(times);
        self
    }

    /// Scoring calls observed so far (test assertion hook).
    pub fn scoring_calls(&self) -> u64 {
        self.score_calls.load(Ordering::Relaxed)
    }

    /// Fault site: one engine scoring call (exact or IVF, single or
    /// batched — one count per uncached rank dispatch).
    ///
    /// # Panics
    /// Panics when the call count hits a scripted index — that is the
    /// injected fault, expected to be caught by worker supervision.
    pub fn at_score(&self) {
        let call = self.score_calls.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(d) = self.score_delay {
            std::thread::sleep(d);
        }
        if self.panic_calls.binary_search(&call).is_ok()
            || (self.panic_every > 0 && call.is_multiple_of(self.panic_every))
        {
            // invariant: this panic IS the product — the scripted fault
            // that worker supervision must catch and convert to a typed
            // error; it never fires without an explicit fault plan.
            panic!("fault injection: scripted panic at scoring call {call}");
        }
    }

    /// Fault site: shard `shard` about to score one scatter.
    ///
    /// # Panics
    /// Panics when this shard has a scripted failure due — expected to
    /// be caught by the router's degraded scatter.
    pub fn at_shard(&self, shard: usize) {
        if let Some(&(_, d)) = self.shard_delays.iter().find(|&&(s, _)| s == shard) {
            std::thread::sleep(d);
        }
        for fail in self.shard_fails.iter().filter(|f| f.shard == shard) {
            let call = fail.calls.fetch_add(1, Ordering::Relaxed) + 1;
            let budgeted = fail
                .remaining
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok();
            if budgeted || (fail.every > 0 && call.is_multiple_of(fail.every)) {
                // invariant: this panic IS the product — the scripted
                // shard failure the degraded scatter must absorb; it
                // never fires without an explicit fault plan.
                panic!("fault injection: scripted failure of shard {shard} (scatter {call})");
            }
        }
    }

    /// Fault site: between preparing and installing a sharded deal
    /// filter.
    pub fn at_filter_install(&self) {
        if let Some(d) = self.install_delay {
            std::thread::sleep(d);
        }
    }

    /// Fault site: one faulted snapshot open. Returns `true` when the
    /// open should fail (consuming one scripted failure).
    pub fn fail_next_open(&self) -> bool {
        self.open_fails
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok()
    }
}

/// Flips one seeded, reproducible bit of the file at `path`, returning
/// `(byte offset, bit)` so a test can log or undo it. Same seed + same
/// file length = same flip. Bytes 0..4 (the magic) are fair game too —
/// loaders must reject any corruption without panicking.
pub fn corrupt_file(path: impl AsRef<std::path::Path>, seed: u64) -> std::io::Result<(u64, u8)> {
    let mut bytes = std::fs::read(&path)?;
    if bytes.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "cannot corrupt an empty file",
        ));
    }
    // SplitMix64 — the workspace's seeded-stream idiom.
    let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = || {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let offset = (next() % bytes.len() as u64) as usize;
    let bit = (next() % 8) as u8;
    bytes[offset] ^= 1 << bit;
    std::fs::write(&path, &bytes)?;
    Ok((offset as u64, bit))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_scoring_panics_fire_on_exact_calls() {
        let plan = FaultPlan::new().panic_on_call(2).panic_on_call(4);
        plan.at_score(); // call 1: fine
        for expect in [2u64, 4] {
            while plan.scoring_calls() + 1 < expect {
                plan.at_score();
            }
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| plan.at_score()))
                .expect_err("scripted call must panic");
            let msg = err.downcast_ref::<String>().expect("string payload");
            assert!(msg.contains("fault injection"), "{msg}");
            assert!(msg.contains(&format!("call {expect}")), "{msg}");
        }
        plan.at_score(); // call 5: healed
        assert_eq!(plan.scoring_calls(), 5);
    }

    #[test]
    fn panic_every_fires_periodically() {
        let plan = FaultPlan::new().panic_every(3);
        let mut panics = 0;
        for _ in 0..9 {
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| plan.at_score())).is_err() {
                panics += 1;
            }
        }
        assert_eq!(panics, 3, "calls 3, 6, 9");
    }

    #[test]
    fn shard_failures_heal_after_the_budget() {
        let plan = FaultPlan::new().fail_shard(1, 2);
        plan.at_shard(0); // other shards untouched
        for _ in 0..2 {
            assert!(
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| plan.at_shard(1)))
                    .is_err()
            );
        }
        plan.at_shard(1); // budget spent: healed
    }

    #[test]
    fn open_failures_consume_their_budget() {
        let plan = FaultPlan::new().fail_opens(2);
        assert!(plan.fail_next_open());
        assert!(plan.fail_next_open());
        assert!(!plan.fail_next_open());
    }

    #[test]
    fn corrupt_file_is_seeded_and_reproducible() {
        let dir = std::env::temp_dir().join("gb_serve_faults_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt_me.bin");
        let original: Vec<u8> = (0u8..=255).collect();
        std::fs::write(&path, &original).unwrap();
        let (offset, bit) = corrupt_file(&path, 42).unwrap();
        let flipped = std::fs::read(&path).unwrap();
        assert_eq!(flipped.len(), original.len());
        let diff: Vec<usize> = (0..original.len())
            .filter(|&i| original[i] != flipped[i])
            .collect();
        assert_eq!(diff, vec![offset as usize], "exactly one byte changed");
        assert_eq!(
            original[offset as usize] ^ (1 << bit),
            flipped[offset as usize]
        );
        // Same seed on the restored file flips the same bit.
        std::fs::write(&path, &original).unwrap();
        assert_eq!(corrupt_file(&path, 42).unwrap(), (offset, bit));
        std::fs::remove_file(&path).ok();
    }
}
