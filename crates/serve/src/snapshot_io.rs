//! Versioned binary persistence for [`EmbeddingSnapshot`].
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   [u8; 4]  = b"GBSN"
//! version u32      = 1
//! alpha   f32      (raw bits)
//! 4 x matrix:      user_own, item_own, user_social, item_social
//!   rows  u64
//!   cols  u64
//!   data  rows*cols x f32 (raw bits, row-major)
//! ```
//!
//! Floats are stored as raw bits, so save → load round-trips
//! bit-identically — a served snapshot scores exactly like the model that
//! exported it. The version field gates forward compatibility: readers
//! reject snapshots written by a newer layout instead of misparsing them.

use gb_models::EmbeddingSnapshot;
use gb_tensor::Matrix;
use std::io::{Error, ErrorKind, Read, Result, Write};
use std::path::Path;

/// File magic identifying a gb-serve snapshot.
pub const MAGIC: [u8; 4] = *b"GBSN";

/// Current layout version.
pub const VERSION: u32 = 1;

/// Writes `snapshot` in the versioned binary format.
pub fn save_snapshot<W: Write>(snapshot: &EmbeddingSnapshot, mut w: W) -> Result<()> {
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&snapshot.alpha().to_le_bytes())?;
    for m in [
        snapshot.user_own(),
        snapshot.item_own(),
        snapshot.user_social(),
        snapshot.item_social(),
    ] {
        write_matrix(&mut w, m)?;
    }
    Ok(())
}

/// Reads a snapshot written by [`save_snapshot`].
///
/// Rejects wrong magic, unknown versions, and structurally inconsistent
/// tables (the [`EmbeddingSnapshot`] constructor re-validates shapes).
pub fn load_snapshot<R: Read>(mut r: R) -> Result<EmbeddingSnapshot> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(invalid(format!("bad magic {magic:?}, expected {MAGIC:?}")));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(invalid(format!(
            "unsupported snapshot version {version} (reader supports {VERSION})"
        )));
    }
    let alpha = f32::from_le_bytes(read_array(&mut r)?);
    if !alpha.is_finite() || !(0.0..=1.0).contains(&alpha) {
        return Err(invalid(format!("alpha {alpha} outside [0, 1]")));
    }
    let user_own = read_matrix(&mut r)?;
    let item_own = read_matrix(&mut r)?;
    let user_social = read_matrix(&mut r)?;
    let item_social = read_matrix(&mut r)?;
    if user_own.rows() != user_social.rows()
        || item_own.rows() != item_social.rows()
        || user_own.cols() != item_own.cols()
        || user_social.cols() != item_social.cols()
    {
        return Err(invalid("inconsistent table shapes in snapshot"));
    }
    if [&user_own, &item_own, &user_social, &item_social]
        .iter()
        .any(|m| m.has_non_finite())
    {
        return Err(invalid("snapshot holds non-finite values"));
    }
    Ok(EmbeddingSnapshot::new(
        alpha,
        user_own,
        item_own,
        user_social,
        item_social,
    ))
}

/// Saves a snapshot to a file at `path`.
pub fn save_to_path(snapshot: &EmbeddingSnapshot, path: impl AsRef<Path>) -> Result<()> {
    let file = std::fs::File::create(path)?;
    save_snapshot(snapshot, std::io::BufWriter::new(file))
}

/// Loads a snapshot from a file at `path`.
pub fn load_from_path(path: impl AsRef<Path>) -> Result<EmbeddingSnapshot> {
    let file = std::fs::File::open(path)?;
    load_snapshot(std::io::BufReader::new(file))
}

fn invalid(msg: impl Into<String>) -> Error {
    Error::new(ErrorKind::InvalidData, msg.into())
}

fn write_matrix<W: Write>(w: &mut W, m: &Matrix) -> Result<()> {
    w.write_all(&(m.rows() as u64).to_le_bytes())?;
    w.write_all(&(m.cols() as u64).to_le_bytes())?;
    // Write row-major data in 64 KiB chunks to amortize syscalls without
    // materializing the whole byte image.
    let mut buf = Vec::with_capacity(64 * 1024);
    for v in m.as_slice() {
        buf.extend_from_slice(&v.to_le_bytes());
        if buf.len() >= 64 * 1024 {
            w.write_all(&buf)?;
            buf.clear();
        }
    }
    w.write_all(&buf)
}

fn read_matrix<R: Read>(r: &mut R) -> Result<Matrix> {
    let rows = read_u64(r)? as usize;
    let cols = read_u64(r)? as usize;
    let len = rows
        .checked_mul(cols)
        .and_then(|n| n.checked_mul(4))
        .ok_or_else(|| invalid("matrix dimensions overflow"))?
        / 4;
    // Stream in bounded chunks so a corrupt header can't drive one giant
    // up-front allocation: memory grows only as real data arrives, and a
    // truncated file errors out at the first short chunk.
    const CHUNK_BYTES: usize = 4 << 20;
    let mut data = Vec::with_capacity(len.min(CHUNK_BYTES / 4));
    let mut buf = vec![0u8; CHUNK_BYTES.min(len.max(1) * 4)];
    let mut remaining = len * 4;
    while remaining > 0 {
        let take = remaining.min(buf.len());
        r.read_exact(&mut buf[..take])?;
        data.extend(
            buf[..take]
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])),
        );
        remaining -= take;
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32> {
    Ok(u32::from_le_bytes(read_array(r)?))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64> {
    Ok(u64::from_le_bytes(read_array(r)?))
}

fn read_array<R: Read, const N: usize>(r: &mut R) -> Result<[u8; N]> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> EmbeddingSnapshot {
        EmbeddingSnapshot::new(
            0.375,
            Matrix::from_fn(5, 3, |r, c| (r as f32 + 1.0) / (c as f32 + 2.0)),
            Matrix::from_fn(9, 3, |r, c| ((r * 3 + c) as f32 * 0.77).sin()),
            Matrix::from_fn(5, 4, |r, c| (r as f32 - c as f32) * 1e-3),
            Matrix::from_fn(9, 4, |r, c| (r as f32 * c as f32).sqrt()),
        )
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let snap = snapshot();
        let mut buf = Vec::new();
        save_snapshot(&snap, &mut buf).unwrap();
        let back = load_snapshot(buf.as_slice()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn social_free_snapshot_roundtrips() {
        let snap = EmbeddingSnapshot::without_social(
            Matrix::from_fn(4, 2, |r, c| (r + c) as f32),
            Matrix::from_fn(6, 2, |r, c| (r * c) as f32),
        );
        let mut buf = Vec::new();
        save_snapshot(&snap, &mut buf).unwrap();
        assert_eq!(load_snapshot(buf.as_slice()).unwrap(), snap);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        save_snapshot(&snapshot(), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(load_snapshot(buf.as_slice()).is_err());
    }

    #[test]
    fn future_version_rejected() {
        let mut buf = Vec::new();
        save_snapshot(&snapshot(), &mut buf).unwrap();
        buf[4..8].copy_from_slice(&99u32.to_le_bytes());
        let err = load_snapshot(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn non_finite_values_rejected_at_load() {
        let mut buf = Vec::new();
        save_snapshot(&snapshot(), &mut buf).unwrap();
        // Overwrite the first f32 of user_own (header: 4 magic + 4
        // version + 4 alpha + 16 shape) with NaN.
        buf[28..32].copy_from_slice(&f32::NAN.to_le_bytes());
        let err = load_snapshot(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
    }

    #[test]
    fn large_tables_roundtrip_through_chunked_io() {
        // Spans several 4 MiB read chunks (2M rows x 2 cols = 16 MiB).
        let snap = EmbeddingSnapshot::without_social(
            Matrix::from_fn(4, 2, |r, c| (r + c) as f32),
            Matrix::from_fn(2_000_000, 2, |r, c| ((r * 2 + c) % 971) as f32 * 0.125),
        );
        let mut buf = Vec::new();
        save_snapshot(&snap, &mut buf).unwrap();
        assert_eq!(load_snapshot(buf.as_slice()).unwrap(), snap);
    }

    #[test]
    fn truncation_rejected() {
        let mut buf = Vec::new();
        save_snapshot(&snapshot(), &mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(load_snapshot(buf.as_slice()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let snap = snapshot();
        let dir = std::env::temp_dir().join("gb_serve_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.gbsn");
        save_to_path(&snap, &path).unwrap();
        let back = load_from_path(&path).unwrap();
        assert_eq!(back, snap);
        std::fs::remove_file(&path).ok();
    }
}
