//! Fixed-capacity LRU response cache.
//!
//! Serving traffic is heavily skewed — a small set of active users issues
//! most queries — so a small `(user, k) → top-K` cache absorbs a large
//! fraction of the scoring work. Implemented as a hash map into a slab of
//! doubly-linked entries (indices, not pointers): `O(1)` get/insert, no
//! unsafe, no allocation churn after warm-up.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A least-recently-used cache with fixed capacity.
pub struct LruCache<K: Eq + Hash + Clone, V> {
    capacity: usize,
    map: HashMap<K, usize>,
    slab: Vec<Entry<K, V>>,
    /// Most recently used entry, `NIL` when empty.
    head: usize,
    /// Least recently used entry, `NIL` when empty.
    tail: usize,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LruCache capacity must be positive");
        Self {
            capacity,
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Drops every cached entry while keeping the hit/miss counters and
    /// the slab allocation (the next warm-up refills the same capacity
    /// without reallocating). Invalidation must not zero observability:
    /// callers that flush — e.g. installing a seen-filter — still want
    /// lifetime hit rates.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(at) => {
                self.hits += 1;
                self.move_to_front(at);
                Some(&self.slab[at].value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or replaces) `key`, evicting the least recently used
    /// entry when at capacity.
    pub fn insert(&mut self, key: K, value: V) {
        if let Some(&at) = self.map.get(&key) {
            self.slab[at].value = value;
            self.move_to_front(at);
            return;
        }
        let at = if self.map.len() == self.capacity {
            // Reuse the LRU slot.
            let at = self.tail;
            self.detach(at);
            let evicted = std::mem::replace(&mut self.slab[at].key, key.clone());
            self.map.remove(&evicted);
            self.slab[at].value = value;
            at
        } else {
            self.slab.push(Entry {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.slab.len() - 1
        };
        self.map.insert(key, at);
        self.attach_front(at);
    }

    fn detach(&mut self, at: usize) {
        let (prev, next) = (self.slab[at].prev, self.slab[at].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slab[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slab[next].prev = prev;
        }
        self.slab[at].prev = NIL;
        self.slab[at].next = NIL;
    }

    fn attach_front(&mut self, at: usize) {
        self.slab[at].prev = NIL;
        self.slab[at].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = at;
        }
        self.head = at;
        if self.tail == NIL {
            self.tail = at;
        }
    }

    fn move_to_front(&mut self, at: usize) {
        if self.head != at {
            self.detach(at);
            self.attach_front(at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_returns_inserted_values() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"b"), Some(&2));
        assert_eq!(c.get(&"missing"), None);
        assert_eq!(c.stats(), (2, 1));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.get(&"a"); // refresh a; b becomes LRU
        c.insert("c", 3);
        assert_eq!(c.get(&"b"), None, "b should have been evicted");
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_updates_value_and_recency() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10); // refresh + replace
        c.insert("c", 3); // evicts b
        assert_eq!(c.get(&"a"), Some(&10));
        assert_eq!(c.get(&"b"), None);
    }

    #[test]
    fn capacity_one_works() {
        let mut c = LruCache::new(1);
        c.insert(1u32, "x");
        c.insert(2u32, "y");
        assert_eq!(c.get(&1), None);
        assert_eq!(c.get(&2), Some(&"y"));
    }

    #[test]
    fn heavy_churn_keeps_structure_consistent() {
        let mut c = LruCache::new(8);
        for i in 0..1000u32 {
            c.insert(i % 13, i);
            let _ = c.get(&(i % 7));
            assert!(c.len() <= 8);
        }
        // The 8 most recently touched keys are retrievable.
        let mut present = 0;
        for k in 0..13u32 {
            if c.get(&k).is_some() {
                present += 1;
            }
        }
        assert_eq!(present, 8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = LruCache::<u32, ()>::new(0);
    }

    #[test]
    fn clear_keeps_counters_and_capacity() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"zzz"), None);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 2);
        assert_eq!(c.stats(), (1, 1), "clear must not reset the counters");
        assert_eq!(c.get(&"a"), None, "entries are gone");
        // The cache keeps working after a clear (fresh slab links).
        c.insert("c", 3);
        c.insert("d", 4);
        c.insert("e", 5); // evicts c
        assert_eq!(c.get(&"c"), None);
        assert_eq!(c.get(&"d"), Some(&4));
        assert_eq!(c.get(&"e"), Some(&5));
    }
}
