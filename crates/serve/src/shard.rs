//! Catalogue partitioning for the sharded serving tier.
//!
//! A [`ShardPlan`] splits the item catalogue `[0, n_items)` into N
//! contiguous, balanced, non-overlapping ranges — shard `s` owns global
//! items `[start_s, start_s + len_s)` and serves them under *local* ids
//! `0..len_s`. Contiguity is what makes the split free at serving time:
//! a contiguous item range of an [`EmbeddingSnapshot`] is a zero-copy
//! row-range view of its item tables
//! ([`EmbeddingSnapshot::slice_items`]), a contiguous column range of
//! the seen-filter is a word-shifted [`gb_graph::BitMatrix::slice_cols`],
//! and translating a shard's local result back to global ids is one
//! addition (`global = start_s + local`).
//!
//! The plan is deterministic in `(n_items, n_shards)`, so every replica
//! of a deployment partitions identically and a persisted per-shard
//! artifact (e.g. an IVF index) is valid on any process with the same
//! plan.
//!
//! [`EmbeddingSnapshot`]: gb_models::EmbeddingSnapshot
//! [`EmbeddingSnapshot::slice_items`]: gb_models::EmbeddingSnapshot::slice_items

/// A balanced contiguous partition of `[0, n_items)` into shards.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    n_items: usize,
    /// Per-shard `(start, len)`, starts ascending, lens summing to
    /// `n_items`.
    ranges: Vec<(usize, usize)>,
}

impl ShardPlan {
    /// Partitions `n_items` into `n_shards` contiguous ranges whose
    /// lengths differ by at most one (the first `n_items % n_shards`
    /// shards get the extra item). `n_shards` is clamped to at least 1;
    /// shards beyond the catalogue size simply receive empty ranges, so
    /// any shard count is valid for any catalogue (including an empty
    /// one).
    pub fn balanced(n_items: usize, n_shards: usize) -> Self {
        let n_shards = n_shards.max(1);
        let base = n_items / n_shards;
        let extra = n_items % n_shards;
        let mut ranges = Vec::with_capacity(n_shards);
        let mut start = 0usize;
        for s in 0..n_shards {
            let len = base + usize::from(s < extra);
            ranges.push((start, len));
            start += len;
        }
        Self { n_items, ranges }
    }

    /// Items in the partitioned catalogue.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.ranges.len()
    }

    /// The `(start, len)` global item range owned by shard `s`.
    ///
    /// # Panics
    /// Panics if `s` is out of range.
    pub fn range(&self, s: usize) -> (usize, usize) {
        self.ranges[s]
    }

    /// All `(start, len)` ranges, shard order.
    pub fn ranges(&self) -> &[(usize, usize)] {
        &self.ranges
    }

    /// The shard owning global item `item`.
    ///
    /// # Panics
    /// Panics if `item >= n_items`.
    pub fn shard_of(&self, item: u32) -> usize {
        let item = item as usize;
        assert!(
            item < self.n_items,
            "item {item} out of range ({} items)",
            self.n_items
        );
        // Lengths differ by at most one, so the owner is computable in
        // O(1): the first `extra` shards hold `base + 1` items each.
        let n_shards = self.ranges.len();
        let base = self.n_items / n_shards;
        let extra = self.n_items % n_shards;
        let boundary = extra * (base + 1);
        if item < boundary {
            item / (base + 1)
        } else {
            extra + (item - boundary) / base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_ranges_partition_the_catalogue() {
        for (n_items, n_shards) in [
            (0usize, 1usize),
            (0, 4),
            (1, 1),
            (1, 3),
            (7, 3),
            (8, 8),
            (8, 16),
            (100, 7),
            (1000, 1),
        ] {
            let plan = ShardPlan::balanced(n_items, n_shards);
            assert_eq!(plan.n_shards(), n_shards.max(1));
            assert_eq!(plan.n_items(), n_items);
            // Contiguous cover: starts chain, lengths sum.
            let mut next = 0usize;
            for s in 0..plan.n_shards() {
                let (start, len) = plan.range(s);
                assert_eq!(start, next, "shard {s} of {n_items}/{n_shards}");
                next = start + len;
            }
            assert_eq!(next, n_items);
            // Balance: lengths differ by at most one, larger first.
            let lens: Vec<usize> = plan.ranges().iter().map(|&(_, l)| l).collect();
            let (min, max) = (
                *lens.iter().min().unwrap_or(&0),
                *lens.iter().max().unwrap_or(&0),
            );
            assert!(max - min <= 1, "{n_items}/{n_shards}: {lens:?}");
            assert!(lens.windows(2).all(|w| w[0] >= w[1]), "larger shards first");
        }
    }

    #[test]
    fn shard_of_agrees_with_ranges() {
        for (n_items, n_shards) in [(7usize, 3usize), (64, 8), (100, 7), (5, 9), (1, 1)] {
            let plan = ShardPlan::balanced(n_items, n_shards);
            for item in 0..n_items as u32 {
                let s = plan.shard_of(item);
                let (start, len) = plan.range(s);
                assert!(
                    (start..start + len).contains(&(item as usize)),
                    "item {item} of {n_items}/{n_shards} -> shard {s} {start}+{len}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_of_checks_bounds() {
        ShardPlan::balanced(10, 2).shard_of(10);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let plan = ShardPlan::balanced(5, 0);
        assert_eq!(plan.n_shards(), 1);
        assert_eq!(plan.range(0), (0, 5));
    }

    #[test]
    fn deterministic_for_fixed_inputs() {
        assert_eq!(ShardPlan::balanced(101, 4), ShardPlan::balanced(101, 4));
        assert_eq!(
            ShardPlan::balanced(10, 4).ranges(),
            &[(0, 3), (3, 3), (6, 2), (8, 2)]
        );
    }
}
