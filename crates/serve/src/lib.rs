//! # gb-serve
//!
//! The online inference subsystem: turns any trained recommender into a
//! query-per-millisecond top-K service.
//!
//! The offline side of this workspace ends with a trained model whose
//! scoring reads cached final embeddings. Serving needs none of the
//! training machinery — no graphs, tapes, or parameter stores — so the
//! hand-off artifact is an [`EmbeddingSnapshot`] (re-exported from
//! `gb_models`): the four Eq. 9 tables plus `α`, exported via
//! [`SnapshotSource`] and persisted in a versioned binary format
//! ([`snapshot_io`]).
//!
//! ## Architecture
//!
//! ```text
//!  trained model ──export_snapshot()──▶ EmbeddingSnapshot ──save/load──▶ disk
//!       │ fit_parallel(.., refresh)            │
//!       └──────publish every N epochs──▶ SnapshotHandle  (versioned
//!                                            │            hot swap)
//!                                            ▼ load() per query
//!                        QueryEngine  (blocked scoring kernel,
//!                          │           batched multi-user catalogue
//!                          │           passes, seen-item + deal-state
//!                          │           BitMatrix filters, LRU cache
//!                          │           keyed by (version, deal
//!                          │             generation, user, k))
//!                          ▼
//!                   RecommendService  (bounded queue, N std-thread
//!                          │           workers, multi-user query
//!                          │           coalescing, enqueue→reply
//!                          ▼           latency into gb_eval::timing)
//!        recommend / recommend_versioned / recommend_batch / warm
//! ```
//!
//! A trainer publishing to the engine's [`SnapshotHandle`] hot-swaps the
//! served embeddings without restart: each query pins one
//! `(version, tables)` pair for its whole lifetime, and cached responses
//! are keyed by that version, so a response can never mix snapshots or
//! outlive the version it was computed from. Publishes come in two
//! flavours with identical serving semantics: a full
//! `SnapshotHandle::publish` replaces every table, while
//! `publish_delta` ships only the changed/appended rows and
//! copy-on-writes them over the previous version's shared storage —
//! bitwise the same result, at cost proportional to the delta. The
//! item universe is grow-only across publishes (appended items simply
//! probe as unseen in any shorter filter).
//!
//! * [`topk::TopK`] — bounded min-heap partial sort: `O(n log k)` per
//!   query instead of the eval path's materialize-and-sort
//!   `O(n log n)`, with `O(k)` extra memory.
//! * [`engine::QueryEngine`] — walks the catalogue in cache-sized blocks
//!   through `gb_tensor::kernels::blend_dot_block`, filters seen items
//!   and deal-blocked items (a hot-swappable one-row deal-state mask,
//!   e.g. from `gb_data::EventLog::blocked_items_at`) with one
//!   bit-probe each ([`gb_graph::BitMatrix`]), and optionally
//!   caches `(user, k)` responses in an LRU ([`cache::LruCache`]).
//!   `recommend_many` scores up to `EngineConfig::user_block` users per
//!   catalogue pass (`blend_dot_block_multi` streams the item tables
//!   once per block), with per-user results bit-identical to sequential
//!   `recommend`.
//! * [`ivf::IvfIndex`] — approximate retrieval for catalogues that
//!   outgrow exhaustive scans ([`engine::Retrieval::Ivf`]): a seeded
//!   deterministic k-means over the concatenated item embeddings routes
//!   each query to its `n_probe` best cells, and only those members are
//!   scored (with the exact kernels — survivor scores are bit-identical,
//!   and probing every cell reproduces exact serving bit-for-bit). The
//!   index is version-tagged and rebuilt on publish; with
//!   [`EngineConfig::ivf_incremental`] a delta publish instead reuses
//!   the previous version's centroids and re-routes only the
//!   changed/appended items ([`IvfIndex::update`]), aliasing every
//!   untouched packed cell.
//! * [`router::ShardedEngine`] — the scale-out tier: partitions the
//!   catalogue across N shard engines along a [`shard::ShardPlan`]
//!   (contiguous zero-copy snapshot/filter slices, per-shard IVF),
//!   scatters each query to every shard, and merges the gathered
//!   per-shard top-k under the same strict total order — bitwise
//!   identical to a single engine at any shard count, with per-shard +
//!   merge stage timing for tail attribution.
//! * [`mmap`] — a mappable v2 snapshot layout: 64-byte-aligned raw-f32
//!   sections behind a fixed header, validated in `O(1)` and served
//!   straight from the page cache (raw-syscall `mmap` with a heap
//!   fallback), so a multi-GB shard opens in microseconds instead of a
//!   streaming parse.
//! * [`service::RecommendService`] — a std-thread worker pool consuming
//!   a bounded request queue; workers coalesce queued same-`k` queries
//!   into shared catalogue passes, sized adaptively from the live queue
//!   depth ([`service::coalesce_limit`]). Generic over [`ServeEngine`],
//!   so a [`router::ShardedEngine`] drops in behind the same queue.
//!   Per-request *enqueue→reply* latency (queue wait included) feeds
//!   [`gb_eval::timing::Stopwatch`]; non-finite scores are dropped by
//!   [`topk::TopK::push`] so a diverged snapshot can never serve a NaN
//!   ranking.
//! * [`error::ServeError`] / [`faults::FaultPlan`] — the failure story:
//!   every tier exposes fallible `try_*` APIs returning typed errors
//!   (overload shedding, queue deadlines, caught scoring panics,
//!   degraded partial scatters), and a deterministic seeded
//!   fault-injection harness drives those paths in proptests and CI
//!   soaks. See the README's "Failure semantics" section for the
//!   contract.
//!
//! Served rankings are *provably consistent* with offline evaluation:
//! the blocked kernel accumulates in the same order as the
//! `gb_eval::Scorer` implementations, and both sides share the
//! tie-break of [`gb_eval::topk::ranks_before`], so a served top-K
//! equals [`gb_eval::topk::reference_topk`] element-for-element (the
//! integration tests assert exactly that). One deliberate exception:
//! the serving heap drops non-finite scores ([`topk::TopK::push`]),
//! while `reference_topk` ranks them wherever `total_cmp` puts them —
//! for any snapshot [`EmbeddingSnapshot::new`] accepts (finite tables;
//! a score can still overflow to `±∞` in the dot product) serving
//! prefers omitting an item to ranking an incomparable score.

pub mod cache;
pub mod engine;
pub mod error;
pub mod faults;
pub mod ivf;
pub mod mmap;
pub mod router;
pub mod service;
pub mod shard;
pub mod snapshot_io;
pub mod topk;

pub use cache::LruCache;
pub use engine::{EngineConfig, QueryEngine, Retrieval, ServeEngine, VersionedBatchResult};
pub use error::ServeError;
pub use faults::{corrupt_file, FaultPlan};
pub use gb_models::{EmbeddingSnapshot, SnapshotHandle, SnapshotSource, VersionedSnapshot};
pub use ivf::IvfIndex;
pub use mmap::{open_mmap_snapshot, open_mmap_snapshot_heap, save_mmap_snapshot};
pub use router::{DegradedBatch, DegradedResponse, ShardedConfig, ShardedEngine};
pub use service::{RecommendService, ServiceConfig};
pub use shard::ShardPlan;
pub use snapshot_io::{load_from_path, load_snapshot, save_snapshot, save_to_path};
pub use topk::{ScoredItem, TopK};

use gb_graph::{BitMatrix, HeteroGraphs};

/// Builds the seen-item filter for a training corpus: bit `(u, n)` is set
/// iff user `u` interacted with item `n` in *either* role (initiated a
/// group for it or participated in one) — the same any-role exclusion the
/// evaluation protocol applies to its candidate sets.
pub fn seen_filter(graphs: &HeteroGraphs) -> BitMatrix {
    let n_items = graphs.n_items();
    let mut bits = BitMatrix::from_csr(graphs.initiator.user_to_item(), n_items);
    let participant = graphs.participant.user_to_item();
    for u in 0..participant.n_nodes() {
        for &item in participant.neighbors(u as u32) {
            bits.set(u, item as usize);
        }
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_graph::HeteroBuilder;

    #[test]
    fn seen_filter_covers_both_roles() {
        let mut b = HeteroBuilder::new(4, 5);
        b.add_behavior(0, 2, &[1, 3]); // 0 initiated item 2; 1 and 3 joined
        b.add_behavior(1, 4, &[]);
        let g = b.build();
        let f = seen_filter(&g);
        assert!(f.contains(0, 2), "initiator role");
        assert!(f.contains(1, 2) && f.contains(3, 2), "participant role");
        assert!(f.contains(1, 4));
        assert!(!f.contains(2, 2) && !f.contains(0, 4));
        assert_eq!(f.rows(), 4);
        assert_eq!(f.cols(), 5);
    }
}
