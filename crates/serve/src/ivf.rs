//! IVF (inverted-file) approximate retrieval over the item catalogue.
//!
//! Past a certain catalogue size, even the blocked multi-user pass is
//! linear work per query — every query touches every item. IVF makes the
//! per-query work sublinear: partition the items into `n_clusters` cells
//! offline, and per query score only the cells whose centroids look best
//! for this user.
//!
//! ## Why one k-means fits the blended score
//!
//! The serving score is `(1-α)·u_own·v_own + α·u_social·v_social` — two
//! dot products. But that is exactly *one* dot product in the
//! concatenated embedding space:
//!
//! ```text
//! q_u = [ w_own · u_own ; α · u_social ]     (the query vector)
//! x_i = [ v_own[i]      ; v_social[i]  ]     (the item vector)
//! q_u · x_i = blended score,  w_own = 1 when α = 0, else (1-α)
//! ```
//!
//! so a single deterministic k-means over the per-item concatenated
//! vectors `{x_i}` ([`gb_tensor::kmeans`]) yields centroids + inverted
//! lists that route *any* user query, whatever its α-blend: rank
//! centroids by `q_u · c_j`, probe the best `n_probe` lists, and score
//! only the survivors with the exact kernels.
//!
//! ## Packed vs. in-place cell scoring
//!
//! A cell's members are scattered across the catalogue tables, and a
//! strided gather defeats the hardware prefetcher. The index therefore
//! *packs* each cell's item rows into contiguous per-cell tables at build
//! time — probing streams sequentially through the same blocked kernel as
//! the exhaustive walk — at the cost of one full extra copy of the item
//! tables. That trade is wrong for memory-tight deployments (e.g. many
//! shards on one box), so packing is now a build-time choice: an unpacked
//! index scores cell members through the gathered kernel
//! ([`gb_tensor::kernels::blend_dot_indexed`]) directly against the
//! snapshot tables — zero extra item-table memory, bit-identical scores
//! (both kernels run the same per-row lane-blocked dot), just a slower
//! stream. [`IvfIndex::size_bytes`] reports the honest total either way:
//! centroids + inverted lists + packed tables (if any).
//!
//! ## Exactness envelope
//!
//! Probing is the only approximation. Survivor scores come from the same
//! lane-blocked dot as the exhaustive pass, and the serving heap
//! selects under a *strict total order* (descending score, ascending
//! item id) — so its kept set and output order depend only on the set of
//! `(item, score)` pairs offered, never on the order they arrive. With
//! `n_probe = n_clusters` every list is probed, the candidate set is the
//! full catalogue, and the served ranking is **bit-identical** to exact
//! serving — property-tested in `ivf_proptests.rs`.
//!
//! ## Version tagging
//!
//! An index is built from one [`EmbeddingSnapshot`] and stamped with that
//! snapshot's published version. The query engine rebuilds the index
//! whenever the served version moves, so approximate results can never
//! blend centroids from one publish with item tables from another.

use gb_models::EmbeddingSnapshot;
use gb_tensor::{kernels, kmeans, Matrix};
use std::collections::HashMap;
use std::sync::Arc;

/// Lloyd iterations used for index builds. Routing quality saturates
/// quickly — the index only has to rank cells, not place centroids
/// optimally — and build cost is linear in this.
const KMEANS_ITERS: usize = 5;

/// Contiguous per-cell copies of the item tables, rows in list order.
/// Each cell's tables sit behind an `Arc` so an incremental update
/// ([`IvfIndex::update`]) can alias the cells a delta never touched
/// instead of re-gathering them.
#[derive(Clone, Debug)]
struct PackedCells {
    own: Vec<Arc<Matrix>>,
    social: Vec<Arc<Matrix>>,
}

/// An inverted-file index over one snapshot's item catalogue.
///
/// Immutable once built; the engine shares it across queries behind an
/// `Arc` and replaces it wholesale when a new snapshot version is
/// published.
#[derive(Clone, Debug)]
pub struct IvfIndex {
    /// The snapshot version the index was built from.
    version: u64,
    /// Own-embedding width, to split query vectors the same way the item
    /// vectors were concatenated.
    own_dim: usize,
    /// `n_clusters × (own_dim + social_dim)` cell centroids.
    centroids: Matrix,
    /// Per-centroid item ids, each list ascending (items are assigned in
    /// ascending id order).
    lists: Vec<Vec<u32>>,
    /// Packed per-cell item tables when the build opted into the
    /// memory-for-bandwidth trade; `None` scores cells in place through
    /// the gathered kernel.
    packed: Option<PackedCells>,
}

impl IvfIndex {
    /// Clusters `snapshot`'s concatenated item vectors into `n_clusters`
    /// cells (clamped to the catalogue size) with a seeded deterministic
    /// k-means, and tags the index with `version`. `packed` chooses the
    /// cell-scoring layout (see the module docs): `true` copies each
    /// cell's item rows into contiguous tables for sequential streaming,
    /// `false` keeps only the inverted lists and scores against the
    /// snapshot tables in place. Rankings are bit-identical either way.
    pub fn build(
        snapshot: &EmbeddingSnapshot,
        version: u64,
        n_clusters: usize,
        seed: u64,
        packed: bool,
    ) -> Self {
        let n = snapshot.n_items();
        let od = snapshot.own_dim();
        let sd = snapshot.social_dim();
        let item_own = snapshot.item_own();
        let item_social = snapshot.item_social();
        let concat = Matrix::from_fn(n, od + sd, |r, c| {
            if c < od {
                item_own.get(r, c)
            } else {
                item_social.get(r, c - od)
            }
        });
        let km = kmeans::kmeans(&concat, n_clusters.max(1), KMEANS_ITERS, seed);
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); km.centroids.rows()];
        for (item, &cell) in km.assignments.iter().enumerate() {
            lists[cell as usize].push(item as u32);
        }
        let packed = packed.then(|| PackedCells {
            own: lists
                .iter()
                .map(|list| Arc::new(kernels::gather_rows(item_own, list)))
                .collect(),
            social: lists
                .iter()
                .map(|list| Arc::new(kernels::gather_rows(item_social, list)))
                .collect(),
        });
        Self {
            version,
            own_dim: od,
            centroids: km.centroids,
            lists,
            packed,
        }
    }

    /// Derives the index for a *delta* successor of the snapshot this
    /// index was built from, without re-running k-means.
    ///
    /// The delta contract (see `gb_models::DeltaStamp`) guarantees that
    /// between the two versions only the rows in `changed` moved and
    /// `n_appended` rows appeared past the old catalogue end — every
    /// other item row is byte-identical. So the centroids are kept as-is,
    /// only the changed + appended items are re-routed to their nearest
    /// existing cell ([`kmeans::assign`] — the same argmin the full
    /// build's final pass uses), and only the cells that gained or lost a
    /// member are re-packed; untouched cells alias the previous packed
    /// tables outright. Cost is `O(moved · n_clusters · d)` routing plus
    /// the affected-cell repack, versus the full build's
    /// `O(n · n_clusters · d · iters)` k-means over the whole catalogue.
    ///
    /// The derived index still partitions the catalogue, so full-probe
    /// serving through it stays bit-identical to exact serving of the new
    /// snapshot. Cell *boundaries* are those of the original build
    /// (centroids are not re-fit), so partial-probe routing quality
    /// degrades gracefully over long delta chains — a periodic full
    /// rebuild re-fits them.
    ///
    /// # Panics
    /// Panics if the index has no cells (nothing to assign into), if
    /// `snapshot`'s widths disagree with the index, if `changed` contains
    /// ids outside the previous catalogue, or if the previous catalogue
    /// size implied by `snapshot.n_items() - n_appended` disagrees with
    /// the index's lists.
    pub fn update(
        &self,
        snapshot: &EmbeddingSnapshot,
        version: u64,
        changed: &[u32],
        n_appended: usize,
    ) -> Self {
        let n = snapshot.n_items();
        assert!(n >= n_appended, "update: more appended items than items");
        let prev_n = n - n_appended;
        let od = snapshot.own_dim();
        let sd = snapshot.social_dim();
        assert!(!self.lists.is_empty(), "update: index has no cells");
        assert_eq!(od, self.own_dim, "update: own-embedding width mismatch");
        assert_eq!(
            od + sd,
            self.centroids.cols(),
            "update: concat width disagrees with the IVF centroids"
        );
        assert_eq!(
            prev_n,
            self.lists.iter().map(Vec::len).sum::<usize>(),
            "update: previous catalogue size disagrees with the index"
        );
        for &item in changed {
            assert!(
                (item as usize) < prev_n,
                "update: changed item {item} outside the previous catalogue ({prev_n} items)"
            );
        }
        assert!(
            changed.windows(2).all(|w| w[0] < w[1]),
            "update: changed ids must be ascending and unique"
        );
        // The moved set: replaced rows plus the appended tail.
        let moved: Vec<u32> = changed
            .iter()
            .copied()
            .chain(prev_n as u32..n as u32)
            .collect();
        let item_own = snapshot.item_own();
        let item_social = snapshot.item_social();
        let concat = Matrix::from_fn(moved.len(), od + sd, |r, c| {
            let item = moved[r] as usize;
            if c < od {
                item_own.get(item, c)
            } else {
                item_social.get(item, c - od)
            }
        });
        let cells = kmeans::assign(&concat, &self.centroids);

        let mut lists = self.lists.clone();
        let mut affected = vec![false; lists.len()];
        for (cell, list) in lists.iter_mut().enumerate() {
            let before = list.len();
            list.retain(|i| changed.binary_search(i).is_err());
            if list.len() != before {
                affected[cell] = true;
            }
        }
        for (&item, &cell) in moved.iter().zip(&cells) {
            let list = &mut lists[cell as usize];
            let pos = list
                .binary_search(&item)
                .expect_err("moved item already present in its target cell");
            list.insert(pos, item);
            affected[cell as usize] = true;
        }

        // Re-pack only the cells whose membership (or member rows)
        // changed; every member of an untouched cell is an unchanged item
        // whose row is byte-equal across the two versions, so aliasing
        // the old packed tables serves identical bits.
        let packed = self.packed.as_ref().map(|old| PackedCells {
            own: lists
                .iter()
                .enumerate()
                .map(|(c, list)| {
                    if affected[c] {
                        Arc::new(kernels::gather_rows(item_own, list))
                    } else {
                        Arc::clone(&old.own[c])
                    }
                })
                .collect(),
            social: lists
                .iter()
                .enumerate()
                .map(|(c, list)| {
                    if affected[c] {
                        Arc::new(kernels::gather_rows(item_social, list))
                    } else {
                        Arc::clone(&old.social[c])
                    }
                })
                .collect(),
        });
        Self {
            version,
            own_dim: od,
            centroids: self.centroids.clone(),
            lists,
            packed,
        }
    }

    /// The snapshot version this index was built from.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Whether this index carries packed per-cell item tables.
    pub fn is_packed(&self) -> bool {
        self.packed.is_some()
    }

    /// Number of cells (≤ the requested `n_clusters` only when the
    /// catalogue itself is smaller).
    pub fn n_clusters(&self) -> usize {
        self.lists.len()
    }

    /// The items of one cell, ascending.
    pub fn list(&self, cell: usize) -> &[u32] {
        &self.lists[cell]
    }

    /// Scores the members `[start, start + out.len())` of one cell's
    /// list for `user` into `out` — `out[j]` is the (bit-identical)
    /// served score of item `self.list(cell)[start + j]`.
    ///
    /// A packed index streams the cell's contiguous item tables through
    /// the blocked kernel of the exhaustive walk; an unpacked index
    /// gathers the same rows from the snapshot tables through the
    /// indexed kernel. Both run the identical per-row lane-blocked dot,
    /// so every score is bit-identical across layouts.
    ///
    /// # Panics
    /// Panics if `user` is out of range, the range exceeds the cell, or
    /// `snapshot` disagrees with the index on embedding widths.
    pub fn score_cell(
        &self,
        snapshot: &EmbeddingSnapshot,
        user: u32,
        cell: usize,
        start: usize,
        out: &mut [f32],
    ) {
        match &self.packed {
            Some(packed) => kernels::blend_dot_block(
                snapshot.user_own().row(user as usize),
                &packed.own[cell],
                snapshot.user_social().row(user as usize),
                &packed.social[cell],
                snapshot.alpha(),
                start,
                out,
            ),
            None => kernels::blend_dot_indexed(
                snapshot.user_own().row(user as usize),
                snapshot.item_own(),
                snapshot.user_social().row(user as usize),
                snapshot.item_social(),
                snapshot.alpha(),
                &self.lists[cell][start..start + out.len()],
                out,
            ),
        }
    }

    /// Honest heap footprint of the index in bytes: centroids, inverted
    /// lists, and — only when built packed — the per-cell item-table
    /// copies. (An earlier revision reported the packed tables alone,
    /// understating unpacked indexes as free and omitting routing state.)
    pub fn size_bytes(&self) -> usize {
        let centroids = 4 * self.centroids.len();
        let lists = 4 * self.lists.iter().map(Vec::len).sum::<usize>();
        let packed = match &self.packed {
            Some(p) => {
                4 * (p.own.iter().chain(p.social.iter()))
                    .map(|m| m.len())
                    .sum::<usize>()
            }
            None => 0,
        };
        centroids + lists + packed
    }

    /// The user's routing vector in the concatenated item space:
    /// `[w_own · u_own ; α · u_social]` with `w_own = 1` when `α = 0`
    /// (the blend leaves the own product unweighted there), else `1-α` —
    /// so `query · x_i` is exactly the served blend score.
    fn query_vector(&self, snapshot: &EmbeddingSnapshot, user: u32) -> Vec<f32> {
        let alpha = snapshot.alpha();
        let own_w = if alpha == 0.0 { 1.0 } else { 1.0 - alpha };
        let own = snapshot.user_own().row(user as usize);
        let social = snapshot.user_social().row(user as usize);
        debug_assert_eq!(own.len(), self.own_dim);
        own.iter()
            .map(|&v| own_w * v)
            .chain(social.iter().map(|&v| alpha * v))
            .collect()
    }

    /// Ranks every cell against one routing vector, best first (ties
    /// toward the lower cell index), truncated to `n_probe`.
    fn route(&self, query: &[f32], n_probe: usize) -> Vec<usize> {
        let k = self.lists.len();
        assert_eq!(
            query.len(),
            self.centroids.cols(),
            "snapshot embedding widths disagree with the IVF index"
        );
        let mut ranked: Vec<(usize, f32)> = (0..k)
            .map(|j| (j, kernels::dot(query, self.centroids.row(j))))
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(n_probe.max(1).min(k));
        ranked.into_iter().map(|(j, _)| j).collect()
    }

    /// The `n_probe` cell indices whose centroids score best against the
    /// user's routing vector, best first (ties toward the lower cell
    /// index). This is the per-query routing step — `n_clusters` dots
    /// plus a small sort, independent of catalogue size. The engine
    /// scores the returned cells' lists directly, best cell first, so
    /// the heap's threshold fills with strong candidates early.
    ///
    /// # Panics
    /// Panics if `user` is out of range for `snapshot`, or `snapshot`
    /// disagrees with the index on embedding widths.
    pub fn probe_cells(
        &self,
        snapshot: &EmbeddingSnapshot,
        user: u32,
        n_probe: usize,
    ) -> Vec<usize> {
        if self.lists.is_empty() {
            return Vec::new();
        }
        self.route(&self.query_vector(snapshot, user), n_probe)
    }

    /// [`IvfIndex::probe_cells`] for a coalesced user block: routing is
    /// computed once per *distinct* routing vector and shared across
    /// duplicates (queued duplicate users are common under bursty
    /// coalesced serving, and routing costs `n_clusters` dots each). The
    /// returned slot `i` holds exactly what `probe_cells(snapshot,
    /// users[i], n_probe)` returns — deduplication keys on the routing
    /// vector's raw bits, so only provably identical routes are shared.
    ///
    /// # Panics
    /// Panics if any user is out of range for `snapshot`, or `snapshot`
    /// disagrees with the index on embedding widths.
    pub fn probe_cells_block(
        &self,
        snapshot: &EmbeddingSnapshot,
        users: &[u32],
        n_probe: usize,
    ) -> Vec<Arc<Vec<usize>>> {
        if self.lists.is_empty() {
            return users.iter().map(|_| Arc::new(Vec::new())).collect();
        }
        // lint:allow(no-hash-iteration): lookup-only memo, never iterated — order cannot leak
        let mut memo: HashMap<Vec<u32>, Arc<Vec<usize>>> = HashMap::new();
        users
            .iter()
            .map(|&user| {
                let query = self.query_vector(snapshot, user);
                let key: Vec<u32> = query.iter().map(|v| v.to_bits()).collect();
                Arc::clone(
                    memo.entry(key)
                        .or_insert_with(|| Arc::new(self.route(&query, n_probe))),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test-side candidate materialization: the members of the `n_probe`
    /// best cells, merged ascending (the engine walks the cells
    /// directly; tests want the flat set to assert coverage).
    fn probe(index: &IvfIndex, snap: &EmbeddingSnapshot, user: u32, n_probe: usize) -> Vec<u32> {
        let mut out: Vec<u32> = index
            .probe_cells(snap, user, n_probe)
            .into_iter()
            .flat_map(|c| index.list(c).to_vec())
            .collect();
        out.sort_unstable();
        out
    }

    fn snapshot(n_items: usize) -> EmbeddingSnapshot {
        EmbeddingSnapshot::new(
            0.4,
            Matrix::from_fn(5, 6, |r, c| ((r * 7 + c * 3) as f32 * 0.17).sin()),
            Matrix::from_fn(n_items, 6, |r, c| ((r * 5 + c) as f32 * 0.31).cos()),
            Matrix::from_fn(5, 4, |r, c| ((r + c * 11) as f32 * 0.13).sin()),
            Matrix::from_fn(n_items, 4, |r, c| ((r * 3 + c * 2) as f32 * 0.23).cos()),
        )
    }

    #[test]
    fn lists_partition_the_catalogue() {
        let snap = snapshot(97);
        let index = IvfIndex::build(&snap, 1, 8, 0, true);
        assert_eq!(index.version(), 1);
        let mut all: Vec<u32> = (0..index.n_clusters())
            .flat_map(|c| index.list(c).to_vec())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..97u32).collect::<Vec<_>>());
        // Each list is ascending by construction.
        for c in 0..index.n_clusters() {
            assert!(index.list(c).windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn full_probe_returns_the_whole_catalogue_ascending() {
        let snap = snapshot(60);
        let index = IvfIndex::build(&snap, 1, 6, 0, true);
        for user in 0..5u32 {
            let cands = probe(&index, &snap, user, index.n_clusters());
            assert_eq!(cands, (0..60u32).collect::<Vec<_>>(), "user {user}");
            // Over-probing clamps to every list.
            assert_eq!(probe(&index, &snap, user, 1000), cands);
        }
    }

    #[test]
    fn partial_probe_is_a_sorted_subset_of_cells() {
        let snap = snapshot(80);
        let index = IvfIndex::build(&snap, 1, 8, 0, true);
        let cands = probe(&index, &snap, 2, 3);
        assert!(cands.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
        assert!(cands.len() < 80, "a partial probe prunes something");
        // Every candidate belongs to some cell (sanity on membership).
        for &i in &cands {
            assert!((0..index.n_clusters()).any(|c| index.list(c).contains(&i)));
        }
    }

    #[test]
    fn same_seed_builds_identical_indexes() {
        let snap = snapshot(50);
        let a = IvfIndex::build(&snap, 3, 5, 99, true);
        let b = IvfIndex::build(&snap, 3, 5, 99, true);
        assert_eq!(a.n_clusters(), b.n_clusters());
        for c in 0..a.n_clusters() {
            assert_eq!(a.list(c), b.list(c), "cell {c}");
        }
    }

    #[test]
    fn clusters_clamp_to_catalogue_size() {
        let snap = snapshot(3);
        let index = IvfIndex::build(&snap, 1, 16, 0, true);
        assert_eq!(index.n_clusters(), 3);
    }

    #[test]
    fn empty_catalogue_probes_empty() {
        let snap = snapshot(0);
        let index = IvfIndex::build(&snap, 1, 4, 0, true);
        assert_eq!(index.n_clusters(), 0);
        assert!(probe(&index, &snap, 0, 4).is_empty());
        // The block router handles the empty index too.
        let routes = index.probe_cells_block(&snap, &[0, 1], 4);
        assert!(routes.iter().all(|r| r.is_empty()));
    }

    #[test]
    fn unpacked_scores_match_packed_bitwise() {
        let snap = snapshot(73);
        let packed = IvfIndex::build(&snap, 1, 6, 0, true);
        let unpacked = IvfIndex::build(&snap, 1, 6, 0, false);
        assert!(packed.is_packed() && !unpacked.is_packed());
        for c in 0..packed.n_clusters() {
            assert_eq!(packed.list(c), unpacked.list(c), "same clustering");
            let n = packed.list(c).len();
            // Score in misaligned sub-ranges to cover start offsets.
            for (start, take) in [(0usize, n), (1, n.saturating_sub(1)), (n / 2, n - n / 2)] {
                for user in 0..3u32 {
                    let mut a = vec![0.0f32; take];
                    let mut b = vec![0.0f32; take];
                    packed.score_cell(&snap, user, c, start, &mut a);
                    unpacked.score_cell(&snap, user, c, start, &mut b);
                    for (x, y) in a.iter().zip(&b) {
                        assert_eq!(x.to_bits(), y.to_bits(), "cell {c} user {user}");
                    }
                }
            }
        }
    }

    #[test]
    fn size_bytes_reports_the_layout_difference() {
        let snap = snapshot(100);
        let packed = IvfIndex::build(&snap, 1, 5, 0, true);
        let unpacked = IvfIndex::build(&snap, 1, 5, 0, false);
        // Both count centroids + lists; packed adds one full copy of the
        // item tables (100 items × (6 own + 4 social) × 4 bytes).
        assert_eq!(packed.size_bytes(), unpacked.size_bytes() + 100 * 10 * 4);
        assert!(unpacked.size_bytes() > 0, "routing state is not free");
    }

    #[test]
    fn block_routing_matches_single_routing_and_shares_duplicates() {
        let snap = snapshot(90);
        let index = IvfIndex::build(&snap, 1, 9, 0, true);
        let users = [3u32, 0, 3, 1, 3, 0];
        let routes = index.probe_cells_block(&snap, &users, 3);
        assert_eq!(routes.len(), users.len());
        for (slot, &user) in users.iter().enumerate() {
            assert_eq!(
                *routes[slot],
                index.probe_cells(&snap, user, 3),
                "slot {slot}"
            );
        }
        // Duplicate users share one routing allocation.
        assert!(Arc::ptr_eq(&routes[0], &routes[2]));
        assert!(Arc::ptr_eq(&routes[2], &routes[4]));
        assert!(Arc::ptr_eq(&routes[1], &routes[5]));
        assert!(!Arc::ptr_eq(&routes[0], &routes[1]));
    }

    /// A delta successor of `snapshot(n)`: item 3's rows replaced, two
    /// items appended past the old end.
    fn delta_successor(prev: &EmbeddingSnapshot) -> (EmbeddingSnapshot, Vec<u32>, usize) {
        let delta = gb_models::SnapshotDelta::new()
            .set_item(3, vec![0.9; 6], vec![-0.4; 4])
            .append_item(vec![0.2; 6], vec![0.7; 4])
            .append_item(vec![-0.6; 6], vec![0.1; 4]);
        (
            delta.apply(prev),
            delta.changed_item_ids(),
            delta.n_appended(),
        )
    }

    #[test]
    fn update_partitions_the_grown_catalogue() {
        let prev = snapshot(50);
        let index = IvfIndex::build(&prev, 1, 6, 0, true);
        let (next, changed, appended) = delta_successor(&prev);
        let updated = index.update(&next, 2, &changed, appended);
        assert_eq!(updated.version(), 2);
        assert_eq!(updated.n_clusters(), index.n_clusters());
        let mut all: Vec<u32> = (0..updated.n_clusters())
            .flat_map(|c| updated.list(c).to_vec())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..52u32).collect::<Vec<_>>());
        for c in 0..updated.n_clusters() {
            assert!(updated.list(c).windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn update_scores_match_a_fresh_gather_bitwise() {
        // Packed and unpacked updates must agree with each other (the
        // unpacked side always reads the new snapshot tables directly, so
        // agreement proves the aliased/repacked cells hold the new bits).
        let prev = snapshot(41);
        let packed = IvfIndex::build(&prev, 1, 5, 0, true);
        let unpacked = IvfIndex::build(&prev, 1, 5, 0, false);
        let (next, changed, appended) = delta_successor(&prev);
        let up = packed.update(&next, 2, &changed, appended);
        let uu = unpacked.update(&next, 2, &changed, appended);
        assert!(up.is_packed() && !uu.is_packed());
        for c in 0..up.n_clusters() {
            assert_eq!(up.list(c), uu.list(c), "same re-routing");
            let n = up.list(c).len();
            let mut a = vec![0.0f32; n];
            let mut b = vec![0.0f32; n];
            for user in 0..3u32 {
                up.score_cell(&next, user, c, 0, &mut a);
                uu.score_cell(&next, user, c, 0, &mut b);
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.to_bits(), y.to_bits(), "cell {c} user {user}");
                }
            }
        }
    }

    #[test]
    fn update_reroutes_like_a_final_assignment_pass() {
        // Every moved item must land in the cell a nearest-centroid pass
        // over the *old* centroids picks — i.e. exactly where the full
        // build's final assignment would put that vector.
        let prev = snapshot(37);
        let index = IvfIndex::build(&prev, 1, 4, 0, true);
        let (next, changed, appended) = delta_successor(&prev);
        let updated = index.update(&next, 2, &changed, appended);
        // Unchanged items keep their cell.
        for c in 0..index.n_clusters() {
            for &item in index.list(c) {
                if changed.contains(&item) {
                    continue;
                }
                assert!(updated.list(c).contains(&item), "item {item} moved cells");
            }
        }
    }

    #[test]
    fn update_with_empty_delta_aliases_every_packed_cell() {
        let prev = snapshot(30);
        let index = IvfIndex::build(&prev, 1, 4, 0, true);
        let updated = index.update(&prev, 2, &[], 0);
        assert_eq!(updated.version(), 2);
        let (old, new) = (
            index.packed.as_ref().unwrap(),
            updated.packed.as_ref().unwrap(),
        );
        for c in 0..index.n_clusters() {
            assert_eq!(index.list(c), updated.list(c));
            assert!(
                Arc::ptr_eq(&old.own[c], &new.own[c]),
                "cell {c} re-gathered"
            );
            assert!(Arc::ptr_eq(&old.social[c], &new.social[c]));
        }
    }

    #[test]
    #[should_panic(expected = "catalogue size disagrees")]
    fn update_rejects_a_non_successor_snapshot() {
        let prev = snapshot(30);
        let index = IvfIndex::build(&prev, 1, 4, 0, true);
        index.update(&snapshot(33), 2, &[], 0); // 3 new items, not stamped
    }
}
