//! Scatter-gather serving over a sharded catalogue.
//!
//! One [`QueryEngine`] owns the whole item catalogue — which caps a
//! deployment at whatever one snapshot, one seen-filter, and one IVF
//! build fit in RAM. [`ShardedEngine`] lifts that cap: a [`ShardPlan`]
//! splits the catalogue into N contiguous ranges, each range is served
//! by its own `QueryEngine` (zero-copy snapshot slice, word-shifted
//! seen-filter slice, independently built IVF index), and a query
//! *scatters* to every shard, *gathers* the per-shard top-K, and merges.
//!
//! ## Why the merge is provably bit-identical
//!
//! Three facts compose into the identity the proptests pin down
//! (`shard_proptests.rs`):
//!
//! 1. **Per-item scores are position-independent.** A score is a pure
//!    function of `(user row, item row, α)`; the blocked kernel's
//!    accumulation order never depends on where in a table the item row
//!    sits, so shard-local scores are bit-identical to single-engine
//!    scores for the same global item.
//! 2. **Per-shard top-k is a superset of the global top-k's members in
//!    that shard's range.** Every member of the global top-k that lives
//!    in shard `s` would also make shard `s`'s local top-k (the local
//!    candidate set is a subset, so local competition is weaker).
//! 3. **The heap's output depends only on the offered set.**
//!    [`TopK`] selects under a strict total order (descending score,
//!    ascending item id; non-finite scores dropped at the door on both
//!    paths), so re-offering the gathered, id-translated candidates to
//!    a fresh `TopK` reproduces the single-engine selection exactly —
//!    arrival order, shard count, and shard boundaries all cancel out.
//!
//! (IVF caveat: with *partial* probing, a sharded deployment clusters
//! each shard independently, so its candidate sets differ from a
//! single-engine build's — identity holds for exact retrieval and for
//! full-probe IVF, which is exact by construction.)
//!
//! ## One version, every shard
//!
//! All shards hang off *one* global [`SnapshotHandle`]. A query loads
//! the current `Arc<VersionedSnapshot>` once, resolves the per-shard
//! slice set for exactly that version ([`ShardedEngine`] keeps a
//! two-slot version cache of slice sets, mirroring the engine's IVF
//! cache), and scatters with explicit
//! [`QueryEngine::recommend_at`]-style calls — so a publish landing
//! mid-scatter can never tear a response across versions: every shard
//! answers from the same publish, and the merged response reports that
//! version. Publishing through [`ShardedEngine::publish`] shares the
//! tables first ([`EmbeddingSnapshot::to_shared`]), so the N slices of
//! a version alias one copy of the catalogue.

use crate::engine::{EngineConfig, QueryEngine, Retrieval, ServeEngine};
use crate::shard::ShardPlan;
use crate::topk::{ScoredItem, TopK};
use gb_eval::timing::LatencyBreakdown;
use gb_graph::BitMatrix;
use gb_models::{DeltaStamp, EmbeddingSnapshot, SnapshotDelta, SnapshotHandle, VersionedSnapshot};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Tuning knobs for [`ShardedEngine`].
#[derive(Clone, Debug)]
pub struct ShardedConfig {
    /// Number of catalogue shards (clamped to at least 1).
    pub n_shards: usize,
    /// Scatter to shards on spawned scoped threads (`true`) or serve
    /// them sequentially on the caller's thread (`false`, the default —
    /// on a single-core host the threaded scatter only adds switch
    /// overhead; flip it on when shards get their own cores).
    pub parallel_scatter: bool,
    /// Per-shard engine tuning. `cache_capacity` and `user_block` apply
    /// per shard; `retrieval: Ivf` builds one independent index per
    /// shard (each clustering only its own item range — build cost per
    /// shard shrinks superlinearly with the slice).
    pub engine: EngineConfig,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        Self {
            n_shards: 4,
            parallel_scatter: false,
            engine: EngineConfig::default(),
        }
    }
}

/// The per-shard slice set of one published version: slice `s` is the
/// sub-snapshot of shard `s`'s item range, tagged with the *global*
/// version so shard engines cache/build against it.
struct ShardSet {
    version: u64,
    slices: Vec<Arc<VersionedSnapshot>>,
}

/// N shard engines behind one handle, merged under the single-engine
/// total order — bit-identical to an unsharded [`QueryEngine`] at any
/// shard count (see the module docs for the argument, and
/// `shard_proptests.rs` for the property tests).
pub struct ShardedEngine {
    handle: SnapshotHandle,
    plan: ShardPlan,
    shards: Vec<QueryEngine>,
    /// Slice sets by version, newest last; the two most recent versions
    /// are kept so queries pinned across a publish don't thrash slice
    /// rebuilds (same shape as the engine's IVF two-slot cache).
    sets: RwLock<Vec<Arc<ShardSet>>>,
    /// Serializes slice-set *builds* so a post-publish thundering herd
    /// shares one build instead of racing N identical ones.
    set_build: Mutex<()>,
    parallel: bool,
    /// Per-shard scatter latency plus the merge stage, for tail
    /// attribution ("which shard drags p99?").
    timing: Mutex<LatencyBreakdown>,
}

impl ShardedEngine {
    /// A sharded engine over `snapshot` with `n_shards` shards and
    /// default per-shard tuning.
    pub fn new(snapshot: EmbeddingSnapshot, n_shards: usize) -> Self {
        Self::with_config(
            snapshot,
            ShardedConfig {
                n_shards,
                ..Default::default()
            },
        )
    }

    /// A sharded engine with explicit tuning. The snapshot's tables are
    /// shared once up front so the per-shard slices are zero-copy views.
    pub fn with_config(snapshot: EmbeddingSnapshot, cfg: ShardedConfig) -> Self {
        Self::with_handle(SnapshotHandle::new(snapshot.to_shared()), cfg)
    }

    /// A sharded engine over a shared [`SnapshotHandle`] — snapshots
    /// published to the handle (e.g. by a trainer mid-run) are served by
    /// the very next query, every shard switching atomically to the new
    /// version. Prefer publishing via [`ShardedEngine::publish`], which
    /// shares the tables before they reach the handle; an owned snapshot
    /// published directly costs one sharing copy at first query.
    pub fn with_handle(handle: SnapshotHandle, cfg: ShardedConfig) -> Self {
        let cur = handle.load();
        let plan = ShardPlan::balanced(cur.snapshot().n_items(), cfg.n_shards);
        let shared = cur.snapshot().to_shared();
        let shards: Vec<QueryEngine> = plan
            .ranges()
            .iter()
            .map(|&(start, len)| {
                QueryEngine::with_config(shared.slice_items(start, len), cfg.engine.clone())
            })
            .collect();
        let slices = plan
            .ranges()
            .iter()
            .map(|&(start, len)| {
                Arc::new(VersionedSnapshot::new(
                    cur.version(),
                    shared.slice_items(start, len),
                ))
            })
            .collect();
        let labels: Vec<String> = (0..plan.n_shards())
            .map(|s| format!("shard{s}"))
            .chain(std::iter::once("merge".to_string()))
            .collect();
        Self {
            handle,
            plan,
            shards,
            sets: RwLock::new(vec![Arc::new(ShardSet {
                version: cur.version(),
                slices,
            })]),
            set_build: Mutex::new(()),
            parallel: cfg.parallel_scatter,
            timing: Mutex::new(LatencyBreakdown::new(labels)),
        }
    }

    /// Installs a seen-item filter, sliced per shard: shard `s` receives
    /// the columns of its item range ([`BitMatrix::slice_cols`]), so its
    /// local word-probes test exactly the global bits of its items.
    /// Filtered items never appear in merged results. Items appended by
    /// later grow-only publishes land past the filter's columns and probe
    /// as unseen, globally and on every shard.
    ///
    /// # Panics
    /// Panics if the bitset shape disagrees with the served snapshot.
    pub fn with_seen_filter(mut self, filter: BitMatrix) -> Self {
        let cur = self.handle.load();
        assert_eq!(
            filter.rows(),
            cur.snapshot().n_users(),
            "filter user count mismatch"
        );
        assert_eq!(
            filter.cols(),
            cur.snapshot().n_items(),
            "filter item count mismatch"
        );
        let ranges = self.effective_ranges(filter.cols());
        self.shards = self
            .shards
            .into_iter()
            .zip(&ranges)
            .map(|(engine, &(start, len))| engine.with_seen_filter(filter.slice_cols(start, len)))
            .collect();
        self
    }

    /// Installs (or replaces) the deal-state candidate filter on every
    /// shard: one global row of item bits (bit set ⇒ blocked for every
    /// user — see `gb_data::EventLog::blocked_items_at`), sliced so each
    /// shard probes exactly the global bits of its served item range.
    /// Composes with the per-shard seen filters, and each shard's
    /// response cache retires its old entries by generation, exactly as
    /// on a single engine. Items past the filter's columns (appended by
    /// later grow-only publishes) probe as allowed.
    ///
    /// The install is atomic per shard, not across shards: a query
    /// scattering concurrently with the install may gather some shards
    /// under the old filter and some under the new (each internally
    /// consistent). Queries issued after the install returns see the new
    /// filter everywhere.
    ///
    /// # Panics
    /// Panics unless the filter is one row covering at least the planned
    /// catalogue.
    pub fn set_deal_filter(&self, filter: BitMatrix) {
        assert_eq!(filter.rows(), 1, "deal filter is one row of item bits");
        assert!(
            filter.cols() >= self.plan.n_items(),
            "deal filter covers {} items but the shard plan serves {}",
            filter.cols(),
            self.plan.n_items()
        );
        let ranges = self.effective_ranges(filter.cols());
        for (shard, &(start, len)) in self.shards.iter().zip(&ranges) {
            shard.set_deal_filter(filter.slice_cols(start, len));
        }
    }

    /// Removes the deal-state filter from every shard; see
    /// [`QueryEngine::clear_deal_filter`].
    pub fn clear_deal_filter(&self) {
        for shard in &self.shards {
            shard.clear_deal_filter();
        }
    }

    /// The global handle every shard serves from; publish to it (or via
    /// [`ShardedEngine::publish`]) to hot-swap all shards atomically.
    pub fn handle(&self) -> &SnapshotHandle {
        &self.handle
    }

    /// Publishes a new snapshot to every shard at once, returning its
    /// version. The tables are shared before they reach the handle, so
    /// the per-shard slices built at first query alias one copy.
    pub fn publish(&self, snapshot: EmbeddingSnapshot) -> u64 {
        self.handle.publish(snapshot.to_shared())
    }

    /// Publishes a delta successor of the current snapshot to every
    /// shard at once ([`SnapshotHandle::publish_delta`]), returning its
    /// version. The next query's slice set carries the delta stamp
    /// translated to each shard's local ids, so shard engines running
    /// incremental IVF maintenance keep the incremental path across the
    /// scatter boundary.
    pub fn publish_delta(&self, delta: &SnapshotDelta) -> u64 {
        self.handle.publish_delta(delta)
    }

    /// The partition being served.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard engines, plan order (read-only introspection).
    pub fn shards(&self) -> &[QueryEngine] {
        &self.shards
    }

    /// A point-in-time copy of the per-shard/merge latency attribution:
    /// stages `shard0..shardN-1` record each shard's scatter service
    /// time per query, stage `merge` the gather-merge. Under
    /// `parallel_scatter` the per-shard stages still record true
    /// per-shard durations (measured on the shard's thread).
    pub fn latency_breakdown(&self) -> LatencyBreakdown {
        self.timing.lock().expect("timing lock").clone()
    }

    /// Users in the served universe (fixed across publishes).
    pub fn n_users(&self) -> usize {
        self.handle.load().snapshot().n_users()
    }

    /// Top-`k` unseen items for `user` across the whole catalogue, best
    /// first — bit-identical to a single-engine run at any shard count.
    ///
    /// # Panics
    /// Panics if `user` is out of range for the served snapshot.
    pub fn recommend(&self, user: u32, k: usize) -> Arc<Vec<ScoredItem>> {
        self.recommend_versioned(user, k).1
    }

    /// Like [`ShardedEngine::recommend`], also reporting the snapshot
    /// version that produced the response. Every shard contribution is
    /// pinned to exactly that version, even across a concurrent publish.
    pub fn recommend_versioned(&self, user: u32, k: usize) -> (u64, Arc<Vec<ScoredItem>>) {
        let cur = self.handle.load();
        self.check_user(&cur, user);
        let set = self.set_for(&cur);
        let (locals, shard_times) =
            self.scatter(&set, |shard, slice| shard.recommend_at(slice, user, k));
        let merge_start = Instant::now();
        let mut topk = TopK::new(k);
        self.offer_locals(&mut topk, locals.iter().map(|l| l.as_slice()));
        let merged = Arc::new(topk.into_sorted());
        self.record_query(&shard_times, merge_start.elapsed());
        (cur.version(), merged)
    }

    /// Top-`k` per user, all pinned to one snapshot version: each shard
    /// answers the whole (deduplicated) block through its batched path,
    /// then per-user gathers merge under the global order. Results are
    /// in input order; duplicates share one `Arc`; every per-user result
    /// is bit-identical to solo [`ShardedEngine::recommend`] — and to a
    /// single unsharded engine.
    ///
    /// # Panics
    /// Panics if any user is out of range for the served snapshot.
    pub fn recommend_many(&self, users: &[u32], k: usize) -> (u64, Vec<Arc<Vec<ScoredItem>>>) {
        let cur = self.handle.load();
        for &user in users {
            self.check_user(&cur, user);
        }
        if users.is_empty() {
            return (cur.version(), Vec::new());
        }
        let set = self.set_for(&cur);
        // Scatter only distinct users; duplicate slots share the merge.
        let mut first_of: HashMap<u32, usize> = HashMap::with_capacity(users.len());
        let mut distinct: Vec<u32> = Vec::new();
        for &user in users {
            first_of.entry(user).or_insert_with(|| {
                distinct.push(user);
                distinct.len() - 1
            });
        }
        let (per_shard, shard_times) = self.scatter(&set, |shard, slice| {
            shard.recommend_many_at(slice, &distinct, k)
        });
        let merge_start = Instant::now();
        let merged: Vec<Arc<Vec<ScoredItem>>> = (0..distinct.len())
            .map(|i| {
                let mut topk = TopK::new(k);
                self.offer_locals(&mut topk, per_shard.iter().map(|rows| rows[i].as_slice()));
                Arc::new(topk.into_sorted())
            })
            .collect();
        let out = users
            .iter()
            .map(|user| Arc::clone(&merged[first_of[user]]))
            .collect();
        self.record_query(&shard_times, merge_start.elapsed());
        (cur.version(), out)
    }

    /// Rejects out-of-range users against the pinned snapshot.
    fn check_user(&self, cur: &VersionedSnapshot, user: u32) {
        let n_users = cur.snapshot().n_users();
        assert!(
            (user as usize) < n_users,
            "user {user} out of range ({n_users} users)"
        );
    }

    /// The served per-shard ranges for a catalogue of `n_items`: the
    /// construction-time plan, with the grow-only tail
    /// `[plan.n_items(), n_items)` appended to the last shard. Range
    /// *starts* never shift, so global-id translation, installed filter
    /// slices, and earlier versions' shard sets all stay valid as the
    /// catalogue grows.
    fn effective_ranges(&self, n_items: usize) -> Vec<(usize, usize)> {
        assert!(
            n_items >= self.plan.n_items(),
            "served catalogue shrank below the shard plan ({} -> {n_items})",
            self.plan.n_items()
        );
        let mut ranges = self.plan.ranges().to_vec();
        let grown = n_items - self.plan.n_items();
        if grown > 0 {
            let last = ranges.len() - 1;
            ranges[last].1 += grown;
        }
        ranges
    }

    /// The per-shard slice set for the pinned snapshot `cur`, building
    /// (and caching, two versions deep) on first sight of a version.
    /// Mirrors `QueryEngine::ivf_for`: lookups take a read lock, builds
    /// serialize on a gate and re-check, so a post-publish herd builds
    /// the N slices once.
    fn set_for(&self, cur: &Arc<VersionedSnapshot>) -> Arc<ShardSet> {
        let lookup = |sets: &[Arc<ShardSet>]| {
            sets.iter()
                .find(|s| s.version == cur.version())
                .map(Arc::clone)
        };
        if let Some(set) = lookup(&self.sets.read().expect("set lock")) {
            return set;
        }
        let _building = self.set_build.lock().expect("set build lock");
        if let Some(set) = lookup(&self.sets.read().expect("set lock")) {
            return set;
        }
        // Share once per version (O(1) if the publisher already shared),
        // then slice zero-copy. Grow-only publishes extend the last
        // shard's range; a delta publish is re-stamped per shard with the
        // change set translated to local ids, so shard engines keep the
        // incremental IVF path.
        let shared = cur.snapshot().to_shared();
        let ranges = self.effective_ranges(cur.snapshot().n_items());
        let prev_ranges = cur
            .delta()
            .map(|stamp| self.effective_ranges(cur.snapshot().n_items() - stamp.n_appended()));
        let slices = ranges
            .iter()
            .enumerate()
            .map(|(s, &(start, len))| {
                let slice = shared.slice_items(start, len);
                match (cur.delta(), &prev_ranges) {
                    (Some(stamp), Some(prev)) => {
                        let (_, prev_len) = prev[s];
                        let local_changed: Vec<u32> = stamp
                            .changed_items()
                            .iter()
                            .filter(|&&g| (start..start + prev_len).contains(&(g as usize)))
                            .map(|&g| g - start as u32)
                            .collect();
                        Arc::new(VersionedSnapshot::with_delta(
                            cur.version(),
                            slice,
                            DeltaStamp::new(stamp.prev_version(), local_changed, len - prev_len),
                        ))
                    }
                    _ => Arc::new(VersionedSnapshot::new(cur.version(), slice)),
                }
            })
            .collect();
        let built = Arc::new(ShardSet {
            version: cur.version(),
            slices,
        });
        let mut sets = self.sets.write().expect("set lock");
        sets.push(Arc::clone(&built));
        sets.sort_by_key(|s| s.version);
        if sets.len() > 2 {
            sets.remove(0);
        }
        built
    }

    /// Runs `f` once per shard against that shard's slice of `set`,
    /// returning per-shard results and service times in plan order.
    /// With `parallel_scatter`, shards 1.. run on scoped threads while
    /// shard 0 runs on the caller's thread; durations are measured on
    /// the executing thread either way, so the attribution stays honest.
    fn scatter<T: Send>(
        &self,
        set: &ShardSet,
        f: impl Fn(&QueryEngine, &VersionedSnapshot) -> T + Sync,
    ) -> (Vec<T>, Vec<Duration>) {
        let run = |s: usize| {
            let start = Instant::now();
            let out = f(&self.shards[s], &set.slices[s]);
            (out, start.elapsed())
        };
        let results: Vec<(T, Duration)> = if self.parallel && self.shards.len() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (1..self.shards.len())
                    .map(|s| scope.spawn(move || run(s)))
                    .collect();
                let mut all = Vec::with_capacity(self.shards.len());
                all.push(run(0));
                for handle in handles {
                    all.push(handle.join().expect("shard scatter thread"));
                }
                all
            })
        } else {
            (0..self.shards.len()).map(run).collect()
        };
        results.into_iter().unzip()
    }

    /// Offers every gathered local result to `topk`, translating each
    /// shard's local item ids back to global ids (`global = shard range
    /// start + local`). The heap's strict total order makes the offer
    /// order irrelevant — this *is* the merge.
    fn offer_locals<'a>(&self, topk: &mut TopK, locals: impl Iterator<Item = &'a [ScoredItem]>) {
        for ((start, _), local) in self.plan.ranges().iter().zip(locals) {
            let offset = *start as u32;
            for entry in local {
                topk.push(offset + entry.item, entry.score);
            }
        }
    }

    /// Records one query's per-shard and merge durations.
    fn record_query(&self, shard_times: &[Duration], merge: Duration) {
        let mut timing = self.timing.lock().expect("timing lock");
        for (s, &d) in shard_times.iter().enumerate() {
            timing.record(s, d);
        }
        timing.record(shard_times.len(), merge);
    }
}

impl ServeEngine for ShardedEngine {
    fn n_users(&self) -> usize {
        ShardedEngine::n_users(self)
    }

    fn user_block(&self) -> usize {
        // Uniform across shards (they share one EngineConfig).
        self.shards[0].user_block()
    }

    fn has_cache(&self) -> bool {
        self.shards[0].has_cache()
    }

    fn retrieval(&self) -> Retrieval {
        self.shards[0].retrieval()
    }

    fn recommend_versioned(&self, user: u32, k: usize) -> (u64, Arc<Vec<ScoredItem>>) {
        ShardedEngine::recommend_versioned(self, user, k)
    }

    fn recommend_many(&self, users: &[u32], k: usize) -> (u64, Vec<Arc<Vec<ScoredItem>>>) {
        ShardedEngine::recommend_many(self, users, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_tensor::Matrix;

    fn snapshot(n_users: usize, n_items: usize, d: usize) -> EmbeddingSnapshot {
        EmbeddingSnapshot::new(
            0.4,
            Matrix::from_fn(n_users, d, |r, c| ((r * 7 + c * 3) as f32 * 0.17).sin()),
            Matrix::from_fn(n_items, d, |r, c| ((r * 5 + c) as f32 * 0.31).cos()),
            Matrix::from_fn(n_users, d, |r, c| ((r + c * 11) as f32 * 0.13).sin()),
            Matrix::from_fn(n_items, d, |r, c| ((r * 3 + c * 2) as f32 * 0.23).cos()),
        )
    }

    fn pairs(items: &[ScoredItem]) -> Vec<(u32, u32)> {
        items.iter().map(|e| (e.item, e.score.to_bits())).collect()
    }

    #[test]
    fn sharded_matches_single_engine_bitwise() {
        let snap = snapshot(5, 157, 8);
        let single = QueryEngine::new(snap.clone());
        for n_shards in [1usize, 2, 3, 5, 8] {
            let sharded = ShardedEngine::new(snap.clone(), n_shards);
            for user in 0..5u32 {
                assert_eq!(
                    pairs(&sharded.recommend(user, 10)),
                    pairs(&single.recommend(user, 10)),
                    "user {user} at {n_shards} shards"
                );
            }
        }
    }

    #[test]
    fn sharded_filter_slices_match_global_filter() {
        let snap = snapshot(4, 130, 6);
        let mut seen = BitMatrix::zeros(4, 130);
        for item in (0..130).step_by(3) {
            seen.set(1, item);
        }
        seen.set(2, 63);
        seen.set(2, 64);
        let single = QueryEngine::new(snap.clone()).with_seen_filter(seen.clone());
        let sharded = ShardedEngine::new(snap, 3).with_seen_filter(seen);
        for user in 0..4u32 {
            assert_eq!(
                pairs(&sharded.recommend(user, 130)),
                pairs(&single.recommend(user, 130)),
                "user {user}"
            );
        }
    }

    #[test]
    fn publish_swaps_every_shard_to_the_new_version() {
        let old = snapshot(4, 90, 8);
        let new = snapshot(4, 90, 4);
        let single = QueryEngine::new(new.clone());
        let sharded = ShardedEngine::new(old, 4);
        let (v1, _) = sharded.recommend_versioned(0, 5);
        assert_eq!(v1, 1);
        assert_eq!(sharded.publish(new), 2);
        let (v2, got) = sharded.recommend_versioned(0, 90);
        assert_eq!(v2, 2);
        assert_eq!(pairs(&got), pairs(&single.recommend(0, 90)));
    }

    #[test]
    fn recommend_many_merges_like_solo_queries() {
        let snap = snapshot(6, 101, 8);
        let sharded = ShardedEngine::new(snap, 4);
        let users = [3u32, 0, 3, 5, 1, 3];
        let (_, many) = ShardedEngine::recommend_many(&sharded, &users, 7);
        assert_eq!(many.len(), users.len());
        for (slot, &user) in users.iter().enumerate() {
            assert_eq!(pairs(&many[slot]), pairs(&sharded.recommend(user, 7)));
        }
        // Duplicates share one Arc.
        assert!(Arc::ptr_eq(&many[0], &many[2]));
        assert!(Arc::ptr_eq(&many[2], &many[5]));
    }

    #[test]
    fn parallel_scatter_is_bitwise_identical_to_sequential() {
        let snap = snapshot(4, 200, 8);
        let sequential = ShardedEngine::new(snap.clone(), 4);
        let parallel = ShardedEngine::with_config(
            snap,
            ShardedConfig {
                n_shards: 4,
                parallel_scatter: true,
                ..Default::default()
            },
        );
        for user in 0..4u32 {
            assert_eq!(
                pairs(&parallel.recommend(user, 20)),
                pairs(&sequential.recommend(user, 20))
            );
        }
    }

    #[test]
    fn latency_breakdown_attributes_per_shard_and_merge() {
        let sharded = ShardedEngine::new(snapshot(3, 60, 4), 3);
        sharded.recommend(0, 5);
        ShardedEngine::recommend_many(&sharded, &[1, 2], 5);
        let breakdown = sharded.latency_breakdown();
        assert_eq!(breakdown.n_stages(), 4, "3 shards + merge");
        assert_eq!(breakdown.label(3), "merge");
        for stage in 0..4 {
            assert_eq!(
                breakdown.stage(stage).n_samples(),
                2,
                "each query records every stage"
            );
        }
    }

    #[test]
    fn more_shards_than_items_serves_empty_tail_shards() {
        let snap = snapshot(3, 5, 4);
        let single = QueryEngine::new(snap.clone());
        let sharded = ShardedEngine::new(snap, 8);
        assert_eq!(sharded.n_shards(), 8);
        assert_eq!(
            pairs(&sharded.recommend(1, 5)),
            pairs(&single.recommend(1, 5))
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_user_panics() {
        ShardedEngine::new(snapshot(2, 10, 4), 2).recommend(2, 1);
    }

    fn deal_filter(n_items: usize) -> BitMatrix {
        let mut f = BitMatrix::zeros(1, n_items);
        for item in (0..n_items).step_by(4) {
            f.set(0, item);
        }
        f
    }

    #[test]
    fn sharded_deal_filter_matches_single_engine_bitwise() {
        let snap = snapshot(4, 130, 6);
        let mut seen = BitMatrix::zeros(4, 130);
        for item in (0..130).step_by(3) {
            seen.set(1, item);
        }
        let single = QueryEngine::new(snap.clone()).with_seen_filter(seen.clone());
        single.set_deal_filter(deal_filter(130));
        for n_shards in [1usize, 3, 5] {
            let sharded = ShardedEngine::new(snap.clone(), n_shards).with_seen_filter(seen.clone());
            sharded.set_deal_filter(deal_filter(130));
            for user in 0..4u32 {
                assert_eq!(
                    pairs(&sharded.recommend(user, 130)),
                    pairs(&single.recommend(user, 130)),
                    "user {user} at {n_shards} shards"
                );
            }
        }
    }

    #[test]
    fn clearing_the_deal_filter_restores_the_full_candidate_set() {
        let sharded = ShardedEngine::new(snapshot(3, 64, 4), 4);
        sharded.set_deal_filter(deal_filter(64));
        assert_eq!(sharded.recommend(0, 64).len(), 48);
        sharded.clear_deal_filter();
        assert_eq!(sharded.recommend(0, 64).len(), 64);
    }

    #[test]
    fn grown_publish_extends_the_last_shard() {
        // The plan was cut for 90 items; a grow-only publish appends 17.
        // The tail lands on the last shard, and the merged ranking stays
        // bit-identical to a single engine over the grown catalogue.
        let old = snapshot(4, 90, 6);
        let new = snapshot(4, 107, 6);
        let sharded = ShardedEngine::new(old, 3);
        sharded.recommend(0, 5); // build the v1 slice set first
        assert_eq!(sharded.publish(new.clone()), 2);
        let single = QueryEngine::new(new);
        for user in 0..4u32 {
            let (version, got) = sharded.recommend_versioned(user, 107);
            assert_eq!(version, 2);
            assert_eq!(
                pairs(&got),
                pairs(&single.recommend(user, 107)),
                "user {user}"
            );
        }
    }

    #[test]
    fn delta_publish_is_restamped_per_shard() {
        let snap = snapshot(3, 80, 4);
        let sharded = ShardedEngine::new(snap.clone(), 3);
        sharded.recommend(0, 3);
        let delta = SnapshotDelta::new()
            .set_item(5, vec![0.5; 4], vec![-0.5; 4])
            .set_item(60, vec![0.1; 4], vec![0.2; 4])
            .append_item(vec![0.9; 4], vec![0.3; 4]);
        assert_eq!(sharded.publish_delta(&delta), 2);
        let cur = sharded.handle().load();
        let set = sharded.set_for(&cur);
        // 80 items over 3 shards: ranges (0,27) (27,27) (54,26); the
        // appended item extends the last to (54,27).
        let stamps: Vec<_> = set
            .slices
            .iter()
            .map(|s| s.delta().expect("every slice re-stamped"))
            .collect();
        assert_eq!(stamps[0].changed_items(), &[5]);
        assert_eq!(stamps[0].n_appended(), 0);
        assert!(stamps[1].changed_items().is_empty());
        assert_eq!(stamps[2].changed_items(), &[60 - 54]);
        assert_eq!(stamps[2].n_appended(), 1);
        assert_eq!(set.slices[2].snapshot().n_items(), 27);
        // And the served merge equals a single engine over the new tables.
        let single = QueryEngine::new(cur.snapshot().clone());
        for user in 0..3u32 {
            assert_eq!(
                pairs(&sharded.recommend(user, 81)),
                pairs(&single.recommend(user, 81)),
                "user {user}"
            );
        }
    }
}
