//! Scatter-gather serving over a sharded catalogue.
//!
//! One [`QueryEngine`] owns the whole item catalogue — which caps a
//! deployment at whatever one snapshot, one seen-filter, and one IVF
//! build fit in RAM. [`ShardedEngine`] lifts that cap: a [`ShardPlan`]
//! splits the catalogue into N contiguous ranges, each range is served
//! by its own `QueryEngine` (zero-copy snapshot slice, word-shifted
//! seen-filter slice, independently built IVF index), and a query
//! *scatters* to every shard, *gathers* the per-shard top-K, and merges.
//!
//! ## Why the merge is provably bit-identical
//!
//! Three facts compose into the identity the proptests pin down
//! (`shard_proptests.rs`):
//!
//! 1. **Per-item scores are position-independent.** A score is a pure
//!    function of `(user row, item row, α)`; the blocked kernel's
//!    accumulation order never depends on where in a table the item row
//!    sits, so shard-local scores are bit-identical to single-engine
//!    scores for the same global item.
//! 2. **Per-shard top-k is a superset of the global top-k's members in
//!    that shard's range.** Every member of the global top-k that lives
//!    in shard `s` would also make shard `s`'s local top-k (the local
//!    candidate set is a subset, so local competition is weaker).
//! 3. **The heap's output depends only on the offered set.**
//!    [`TopK`] selects under a strict total order (descending score,
//!    ascending item id; non-finite scores dropped at the door on both
//!    paths), so re-offering the gathered, id-translated candidates to
//!    a fresh `TopK` reproduces the single-engine selection exactly —
//!    arrival order, shard count, and shard boundaries all cancel out.
//!
//! (IVF caveat: with *partial* probing, a sharded deployment clusters
//! each shard independently, so its candidate sets differ from a
//! single-engine build's — identity holds for exact retrieval and for
//! full-probe IVF, which is exact by construction.)
//!
//! ## One version, every shard
//!
//! All shards hang off *one* global [`SnapshotHandle`]. A query loads
//! the current `Arc<VersionedSnapshot>` once, resolves the per-shard
//! slice set for exactly that version ([`ShardedEngine`] keeps a
//! two-slot version cache of slice sets, mirroring the engine's IVF
//! cache), and scatters with explicit
//! [`QueryEngine::recommend_at`]-style calls — so a publish landing
//! mid-scatter can never tear a response across versions: every shard
//! answers from the same publish, and the merged response reports that
//! version. Publishing through [`ShardedEngine::publish`] shares the
//! tables first ([`EmbeddingSnapshot::to_shared`]), so the N slices of
//! a version alias one copy of the catalogue.

use crate::engine::{EngineConfig, QueryEngine, Retrieval, ServeEngine, VersionedBatchResult};
use crate::error::{lock_recover, read_recover, write_recover, ServeError};
use crate::faults::FaultPlan;
use crate::shard::ShardPlan;
use crate::topk::{ScoredItem, TopK};
use gb_eval::timing::LatencyBreakdown;
use gb_graph::BitMatrix;
use gb_models::{DeltaStamp, EmbeddingSnapshot, SnapshotDelta, SnapshotHandle, VersionedSnapshot};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Tuning knobs for [`ShardedEngine`].
#[derive(Clone, Debug)]
pub struct ShardedConfig {
    /// Number of catalogue shards (clamped to at least 1).
    pub n_shards: usize,
    /// Scatter to shards on spawned scoped threads (`true`) or serve
    /// them sequentially on the caller's thread (`false`, the default —
    /// on a single-core host the threaded scatter only adds switch
    /// overhead; flip it on when shards get their own cores).
    pub parallel_scatter: bool,
    /// How many times a failed (panicked) shard scatter is retried
    /// before the shard counts as missing for that query. Retries hit
    /// the same shard engine — its state is valid after a caught panic
    /// (see `crate::error`) — so a transient failure heals in-query.
    pub scatter_retries: usize,
    /// Degraded-response policy when shards are still missing after
    /// retries: `true` serves the merge of the surviving shards, with
    /// the missing shards listed on the response
    /// ([`DegradedResponse::missing_shards`]); `false` (the default)
    /// fails the query with [`ServeError::ShardFailed`]. Either way a
    /// query where *every* shard failed is an error, and infallible
    /// callers observe a panic, never a silently incomplete ranking.
    pub allow_partial: bool,
    /// Per-shard engine tuning. `cache_capacity` and `user_block` apply
    /// per shard; `retrieval: Ivf` builds one independent index per
    /// shard (each clustering only its own item range — build cost per
    /// shard shrinks superlinearly with the slice).
    pub engine: EngineConfig,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        Self {
            n_shards: 4,
            parallel_scatter: false,
            scatter_retries: 1,
            allow_partial: false,
            engine: EngineConfig::default(),
        }
    }
}

/// A scatter-gather response that may be missing shards, under the
/// [`ShardedConfig::allow_partial`] policy. `missing_shards` empty means
/// the response is complete — bit-identical to the infallible path;
/// non-empty means the ranking was merged from the surviving shards
/// only, and items homed on the listed shards are absent.
#[derive(Clone, Debug)]
pub struct DegradedResponse {
    /// The snapshot version every surviving contribution was pinned to.
    pub version: u64,
    /// The merged ranking (complete, or partial per `missing_shards`).
    pub items: Arc<Vec<ScoredItem>>,
    /// Shards (plan order indices, ascending) that produced no answer
    /// after retries. Empty ⇔ complete.
    pub missing_shards: Vec<usize>,
}

/// The batched counterpart of [`DegradedResponse`]: per-user merged
/// rankings in input order, all pinned to one version, with one shared
/// `missing_shards` list (a shard fails the whole scattered block, so
/// every user in the batch is missing the same shards).
#[derive(Clone, Debug)]
pub struct DegradedBatch {
    /// The snapshot version every surviving contribution was pinned to.
    pub version: u64,
    /// Per-user merged rankings, input order; duplicates share an `Arc`.
    pub results: Vec<Arc<Vec<ScoredItem>>>,
    /// Shards that produced no answer after retries. Empty ⇔ complete.
    pub missing_shards: Vec<usize>,
}

/// The per-shard slice set of one published version: slice `s` is the
/// sub-snapshot of shard `s`'s item range, tagged with the *global*
/// version so shard engines cache/build against it.
struct ShardSet {
    version: u64,
    slices: Vec<Arc<VersionedSnapshot>>,
}

/// The router-level deal-filter slot: one generation counter and the
/// per-shard filter slices, installed together under one write lock.
/// A query reads the slot once and pins every shard of its scatter to
/// that `(generation, slices)` pair — the whole atomic-install fix:
/// there is no instant at which a scatter can pair shard 0's slice of
/// filter A with shard 1's slice of filter B, because slices of A and B
/// never coexist in the slot (per-shard slicing happens *before* the
/// swap, in the prepare phase).
struct RouterDealSlot {
    generation: u64,
    slices: Option<Arc<Vec<BitMatrix>>>,
}

/// N shard engines behind one handle, merged under the single-engine
/// total order — bit-identical to an unsharded [`QueryEngine`] at any
/// shard count (see the module docs for the argument, and
/// `shard_proptests.rs` for the property tests).
pub struct ShardedEngine {
    handle: SnapshotHandle,
    plan: ShardPlan,
    shards: Vec<QueryEngine>,
    /// Slice sets by version, newest last; the two most recent versions
    /// are kept so queries pinned across a publish don't thrash slice
    /// rebuilds (same shape as the engine's IVF two-slot cache).
    sets: RwLock<Vec<Arc<ShardSet>>>,
    /// Serializes slice-set *builds* so a post-publish thundering herd
    /// shares one build instead of racing N identical ones.
    set_build: Mutex<()>,
    /// The cross-shard-atomic deal-filter slot (see [`RouterDealSlot`]).
    /// Shard engines' own slots are bypassed entirely on this tier —
    /// scatters pass the router's `(generation, slice)` down explicitly.
    deal: RwLock<RouterDealSlot>,
    parallel: bool,
    /// Failed scatter attempts after which the shard counts as missing.
    retries: usize,
    /// Serve partial merges (flagged) instead of failing the query.
    allow_partial: bool,
    /// Caught scatter panics per shard (each failed attempt counts).
    shard_failures: Vec<AtomicU64>,
    /// Queries served with at least one shard missing.
    degraded: AtomicU64,
    /// Scripted fault schedule (tests/soaks): consulted per shard per
    /// scatter and inside `set_deal_filter`'s install window.
    faults: Option<Arc<FaultPlan>>,
    /// Per-shard scatter latency plus the merge stage, for tail
    /// attribution ("which shard drags p99?").
    timing: Mutex<LatencyBreakdown>,
}

impl ShardedEngine {
    /// A sharded engine over `snapshot` with `n_shards` shards and
    /// default per-shard tuning.
    pub fn new(snapshot: EmbeddingSnapshot, n_shards: usize) -> Self {
        Self::with_config(
            snapshot,
            ShardedConfig {
                n_shards,
                ..Default::default()
            },
        )
    }

    /// A sharded engine with explicit tuning. The snapshot's tables are
    /// shared once up front so the per-shard slices are zero-copy views.
    pub fn with_config(snapshot: EmbeddingSnapshot, cfg: ShardedConfig) -> Self {
        Self::with_handle(SnapshotHandle::new(snapshot.to_shared()), cfg)
    }

    /// A sharded engine over a shared [`SnapshotHandle`] — snapshots
    /// published to the handle (e.g. by a trainer mid-run) are served by
    /// the very next query, every shard switching atomically to the new
    /// version. Prefer publishing via [`ShardedEngine::publish`], which
    /// shares the tables before they reach the handle; an owned snapshot
    /// published directly costs one sharing copy at first query.
    pub fn with_handle(handle: SnapshotHandle, cfg: ShardedConfig) -> Self {
        let cur = handle.load();
        let plan = ShardPlan::balanced(cur.snapshot().n_items(), cfg.n_shards);
        let shared = cur.snapshot().to_shared();
        let shards: Vec<QueryEngine> = plan
            .ranges()
            .iter()
            .map(|&(start, len)| {
                QueryEngine::with_config(shared.slice_items(start, len), cfg.engine.clone())
            })
            .collect();
        let slices = plan
            .ranges()
            .iter()
            .map(|&(start, len)| {
                Arc::new(VersionedSnapshot::new(
                    cur.version(),
                    shared.slice_items(start, len),
                ))
            })
            .collect();
        let labels: Vec<String> = (0..plan.n_shards())
            .map(|s| format!("shard{s}"))
            .chain(std::iter::once("merge".to_string()))
            .collect();
        let shard_failures = (0..plan.n_shards()).map(|_| AtomicU64::new(0)).collect();
        Self {
            handle,
            plan,
            shards,
            sets: RwLock::new(vec![Arc::new(ShardSet {
                version: cur.version(),
                slices,
            })]),
            set_build: Mutex::new(()),
            deal: RwLock::new(RouterDealSlot {
                generation: 0,
                slices: None,
            }),
            parallel: cfg.parallel_scatter,
            retries: cfg.scatter_retries,
            allow_partial: cfg.allow_partial,
            shard_failures,
            degraded: AtomicU64::new(0),
            faults: None,
            timing: Mutex::new(LatencyBreakdown::new(labels)),
        }
    }

    /// Attaches a scripted [`FaultPlan`] (tests and soaks): consulted
    /// once per shard per scatter (where an injected panic exercises the
    /// degraded gather) and inside `set_deal_filter`'s prepare→install
    /// window (where an injected delay widens the race the atomic
    /// install must win). Production routers carry `None`.
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Installs a seen-item filter, sliced per shard: shard `s` receives
    /// the columns of its item range ([`BitMatrix::slice_cols`]), so its
    /// local word-probes test exactly the global bits of its items.
    /// Filtered items never appear in merged results. Items appended by
    /// later grow-only publishes land past the filter's columns and probe
    /// as unseen, globally and on every shard.
    ///
    /// # Panics
    /// Panics if the bitset shape disagrees with the served snapshot.
    pub fn with_seen_filter(mut self, filter: BitMatrix) -> Self {
        let cur = self.handle.load();
        assert_eq!(
            filter.rows(),
            cur.snapshot().n_users(),
            "filter user count mismatch"
        );
        assert_eq!(
            filter.cols(),
            cur.snapshot().n_items(),
            "filter item count mismatch"
        );
        let ranges = self.effective_ranges(filter.cols());
        self.shards = self
            .shards
            .into_iter()
            .zip(&ranges)
            .map(|(engine, &(start, len))| engine.with_seen_filter(filter.slice_cols(start, len)))
            .collect();
        self
    }

    /// Installs (or replaces) the deal-state candidate filter on every
    /// shard: one global row of item bits (bit set ⇒ blocked for every
    /// user — see `gb_data::EventLog::blocked_items_at`), sliced so each
    /// shard probes exactly the global bits of its served item range.
    /// Composes with the per-shard seen filters, and each shard's
    /// response cache retires its old entries by generation, exactly as
    /// on a single engine. Items past the filter's columns (appended by
    /// later grow-only publishes) probe as allowed.
    ///
    /// The install is **atomic across shards**: the per-shard slices are
    /// prepared first, then the whole `(generation, slices)` pair is
    /// swapped into the router's deal slot under one write lock. Every
    /// query reads that slot exactly once and pins all of its shard
    /// scatters to the pair it read — so a scatter racing the install
    /// serves either the old filter on *every* shard or the new filter
    /// on *every* shard, never a mix (property-tested in
    /// `fault_proptests.rs`). Queries issued after the install returns
    /// see the new filter everywhere. Per-shard response caches retire
    /// their old entries by the router generation, exactly as a single
    /// engine does by its own.
    ///
    /// # Panics
    /// Panics unless the filter is one row covering at least the planned
    /// catalogue.
    pub fn set_deal_filter(&self, filter: BitMatrix) {
        assert_eq!(filter.rows(), 1, "deal filter is one row of item bits");
        assert!(
            filter.cols() >= self.plan.n_items(),
            "deal filter covers {} items but the shard plan serves {}",
            filter.cols(),
            self.plan.n_items()
        );
        // Phase 1 — prepare: slice per shard with no lock held.
        let ranges = self.effective_ranges(filter.cols());
        let slices: Vec<BitMatrix> = ranges
            .iter()
            .map(|&(start, len)| filter.slice_cols(start, len))
            .collect();
        if let Some(plan) = &self.faults {
            plan.at_filter_install();
        }
        // Phase 2 — install: one pointer-sized swap under the write lock.
        let mut slot = write_recover(&self.deal);
        slot.generation += 1;
        slot.slices = Some(Arc::new(slices));
    }

    /// Removes the deal-state filter from every shard, through the same
    /// atomic slot swap as [`ShardedEngine::set_deal_filter`]; bumps the
    /// generation so cached responses computed under the cleared filter
    /// retire by key.
    pub fn clear_deal_filter(&self) {
        if let Some(plan) = &self.faults {
            plan.at_filter_install();
        }
        let mut slot = write_recover(&self.deal);
        slot.generation += 1;
        slot.slices = None;
    }

    /// How many times the deal-state filter has been installed, replaced,
    /// or cleared on this router.
    pub fn deal_generation(&self) -> u64 {
        read_recover(&self.deal).generation
    }

    /// One consistent `(generation, per-shard slices)` read for a whole
    /// query — the read side of the atomic install.
    fn deal_slot(&self) -> (u64, Option<Arc<Vec<BitMatrix>>>) {
        let slot = read_recover(&self.deal);
        (slot.generation, slot.slices.clone())
    }

    /// The global handle every shard serves from; publish to it (or via
    /// [`ShardedEngine::publish`]) to hot-swap all shards atomically.
    pub fn handle(&self) -> &SnapshotHandle {
        &self.handle
    }

    /// Publishes a new snapshot to every shard at once, returning its
    /// version. The tables are shared before they reach the handle, so
    /// the per-shard slices built at first query alias one copy.
    pub fn publish(&self, snapshot: EmbeddingSnapshot) -> u64 {
        self.handle.publish(snapshot.to_shared())
    }

    /// Publishes a delta successor of the current snapshot to every
    /// shard at once ([`SnapshotHandle::publish_delta`]), returning its
    /// version. The next query's slice set carries the delta stamp
    /// translated to each shard's local ids, so shard engines running
    /// incremental IVF maintenance keep the incremental path across the
    /// scatter boundary.
    pub fn publish_delta(&self, delta: &SnapshotDelta) -> u64 {
        self.handle.publish_delta(delta)
    }

    /// The partition being served.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard engines, plan order (read-only introspection).
    pub fn shards(&self) -> &[QueryEngine] {
        &self.shards
    }

    /// A point-in-time copy of the per-shard/merge latency attribution:
    /// stages `shard0..shardN-1` record each shard's scatter service
    /// time per query, stage `merge` the gather-merge. Under
    /// `parallel_scatter` the per-shard stages still record true
    /// per-shard durations (measured on the shard's thread).
    pub fn latency_breakdown(&self) -> LatencyBreakdown {
        lock_recover(&self.timing).clone()
    }

    /// Caught scatter panics per shard, plan order — every failed
    /// attempt counts, including ones a retry then healed.
    pub fn shard_failures(&self) -> Vec<u64> {
        self.shard_failures
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Queries served with at least one shard missing (only possible
    /// under [`ShardedConfig::allow_partial`]).
    pub fn degraded_served(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Users in the served universe (fixed across publishes).
    pub fn n_users(&self) -> usize {
        self.handle.load().snapshot().n_users()
    }

    /// Top-`k` unseen items for `user` across the whole catalogue, best
    /// first — bit-identical to a single-engine run at any shard count.
    ///
    /// # Panics
    /// Panics if `user` is out of range for the served snapshot.
    pub fn recommend(&self, user: u32, k: usize) -> Arc<Vec<ScoredItem>> {
        self.recommend_versioned(user, k).1
    }

    /// Like [`ShardedEngine::recommend`], also reporting the snapshot
    /// version that produced the response. Every shard contribution is
    /// pinned to exactly that version, even across a concurrent publish.
    ///
    /// # Panics
    /// Panics if `user` is out of range, or on a typed serving failure
    /// ([`ShardedEngine::try_recommend`] reports those as errors).
    pub fn recommend_versioned(&self, user: u32, k: usize) -> (u64, Arc<Vec<ScoredItem>>) {
        let cur = self.handle.load();
        self.check_user(&cur, user);
        match self.try_recommend(user, k) {
            Ok(r) => (r.version, r.items),
            // invariant: the documented contract of this infallible
            // wrapper — callers wanting typed errors use try_recommend.
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`ShardedEngine::recommend`]: a bad user id comes back
    /// as [`ServeError::InvalidRequest`], and shards still missing after
    /// [`ShardedConfig::scatter_retries`] either fail the query with
    /// [`ServeError::ShardFailed`] (strict policy, the default) or are
    /// listed on the returned [`DegradedResponse`] while the surviving
    /// shards' merge is served ([`ShardedConfig::allow_partial`]). A
    /// query where every shard failed is an error under either policy.
    pub fn try_recommend(&self, user: u32, k: usize) -> Result<DegradedResponse, ServeError> {
        let cur = self.handle.load();
        let n_users = cur.snapshot().n_users();
        if user as usize >= n_users {
            return Err(ServeError::InvalidRequest {
                reason: format!("user {user} out of range ({n_users} users)"),
            });
        }
        let set = self.set_for(&cur);
        let (deal_gen, deal) = self.deal_slot();
        let (locals, shard_times) = self.scatter(&set, |s, shard, slice| {
            shard.recommend_at_with_deal(slice, deal_gen, deal.as_ref().map(|d| &d[s]), user, k)
        });
        let missing = self.check_missing(&locals)?;
        let merge_start = Instant::now();
        let mut topk = TopK::new(k);
        self.offer_locals(
            &mut topk,
            locals.iter().map(|l| l.as_ref().map(|v| v.as_slice())),
        );
        let merged = Arc::new(topk.into_sorted());
        self.record_query(&shard_times, merge_start.elapsed());
        Ok(DegradedResponse {
            version: cur.version(),
            items: merged,
            missing_shards: missing,
        })
    }

    /// Top-`k` per user, all pinned to one snapshot version: each shard
    /// answers the whole (deduplicated) block through its batched path,
    /// then per-user gathers merge under the global order. Results are
    /// in input order; duplicates share one `Arc`; every per-user result
    /// is bit-identical to solo [`ShardedEngine::recommend`] — and to a
    /// single unsharded engine.
    ///
    /// # Panics
    /// Panics if any user is out of range, or on a typed serving failure
    /// ([`ShardedEngine::try_recommend_batch`] reports those as errors).
    pub fn recommend_many(&self, users: &[u32], k: usize) -> (u64, Vec<Arc<Vec<ScoredItem>>>) {
        let cur = self.handle.load();
        for &user in users {
            self.check_user(&cur, user);
        }
        match self.try_recommend_batch(users, k) {
            Ok(b) => (b.version, b.results),
            // invariant: the documented contract of this infallible
            // wrapper — callers wanting typed errors use the try_ form.
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`ShardedEngine::recommend_many`] under the same policy
    /// as [`ShardedEngine::try_recommend`]: the whole batch is validated
    /// up front, a shard fails (or survives) for the whole scattered
    /// block at once, and the merged per-user rankings come back with
    /// one shared `missing_shards` list.
    pub fn try_recommend_batch(
        &self,
        users: &[u32],
        k: usize,
    ) -> Result<DegradedBatch, ServeError> {
        let cur = self.handle.load();
        let n_users = cur.snapshot().n_users();
        if let Some(&user) = users.iter().find(|&&u| u as usize >= n_users) {
            return Err(ServeError::InvalidRequest {
                reason: format!("user {user} out of range ({n_users} users)"),
            });
        }
        if users.is_empty() {
            return Ok(DegradedBatch {
                version: cur.version(),
                results: Vec::new(),
                missing_shards: Vec::new(),
            });
        }
        let set = self.set_for(&cur);
        let (deal_gen, deal) = self.deal_slot();
        // Scatter only distinct users; duplicate slots share the merge.
        let mut first_of: HashMap<u32, usize> = HashMap::with_capacity(users.len());
        let mut distinct: Vec<u32> = Vec::new();
        for &user in users {
            first_of.entry(user).or_insert_with(|| {
                distinct.push(user);
                distinct.len() - 1
            });
        }
        let (per_shard, shard_times) = self.scatter(&set, |s, shard, slice| {
            shard.recommend_many_at_with_deal(
                slice,
                deal_gen,
                deal.as_ref().map(|d| &d[s]),
                &distinct,
                k,
            )
        });
        let missing = self.check_missing(&per_shard)?;
        let merge_start = Instant::now();
        let merged: Vec<Arc<Vec<ScoredItem>>> = (0..distinct.len())
            .map(|i| {
                let mut topk = TopK::new(k);
                self.offer_locals(
                    &mut topk,
                    per_shard
                        .iter()
                        .map(|rows| rows.as_ref().map(|r| r[i].as_slice())),
                );
                Arc::new(topk.into_sorted())
            })
            .collect();
        let out = users
            .iter()
            .map(|user| Arc::clone(&merged[first_of[user]]))
            .collect();
        self.record_query(&shard_times, merge_start.elapsed());
        Ok(DegradedBatch {
            version: cur.version(),
            results: out,
            missing_shards: missing,
        })
    }

    /// Applies the degraded-gather policy to one scatter's results:
    /// returns the (possibly empty) missing-shard list when the query
    /// may be served, or the error that refuses it. Serving a degraded
    /// query bumps the counter here so every serve site agrees.
    fn check_missing<T>(&self, locals: &[Option<T>]) -> Result<Vec<usize>, ServeError> {
        let missing: Vec<usize> = locals
            .iter()
            .enumerate()
            .filter_map(|(s, l)| l.is_none().then_some(s))
            .collect();
        if missing.is_empty() {
            return Ok(missing);
        }
        if !self.allow_partial || missing.len() == self.shards.len() {
            return Err(ServeError::ShardFailed { shards: missing });
        }
        self.degraded.fetch_add(1, Ordering::Relaxed);
        Ok(missing)
    }

    /// Rejects out-of-range users against the pinned snapshot.
    fn check_user(&self, cur: &VersionedSnapshot, user: u32) {
        let n_users = cur.snapshot().n_users();
        assert!(
            (user as usize) < n_users,
            "user {user} out of range ({n_users} users)"
        );
    }

    /// The served per-shard ranges for a catalogue of `n_items`: the
    /// construction-time plan, with the grow-only tail
    /// `[plan.n_items(), n_items)` appended to the last shard. Range
    /// *starts* never shift, so global-id translation, installed filter
    /// slices, and earlier versions' shard sets all stay valid as the
    /// catalogue grows.
    fn effective_ranges(&self, n_items: usize) -> Vec<(usize, usize)> {
        assert!(
            n_items >= self.plan.n_items(),
            "served catalogue shrank below the shard plan ({} -> {n_items})",
            self.plan.n_items()
        );
        let mut ranges = self.plan.ranges().to_vec();
        let grown = n_items - self.plan.n_items();
        if grown > 0 {
            let last = ranges.len() - 1;
            ranges[last].1 += grown;
        }
        ranges
    }

    /// The per-shard slice set for the pinned snapshot `cur`, building
    /// (and caching, two versions deep) on first sight of a version.
    /// Mirrors `QueryEngine::ivf_for`: lookups take a read lock, builds
    /// serialize on a gate and re-check, so a post-publish herd builds
    /// the N slices once.
    fn set_for(&self, cur: &Arc<VersionedSnapshot>) -> Arc<ShardSet> {
        let lookup = |sets: &[Arc<ShardSet>]| {
            sets.iter()
                .find(|s| s.version == cur.version())
                .map(Arc::clone)
        };
        if let Some(set) = lookup(&read_recover(&self.sets)) {
            return set;
        }
        let _building = lock_recover(&self.set_build);
        if let Some(set) = lookup(&read_recover(&self.sets)) {
            return set;
        }
        // Share once per version (O(1) if the publisher already shared),
        // then slice zero-copy. Grow-only publishes extend the last
        // shard's range; a delta publish is re-stamped per shard with the
        // change set translated to local ids, so shard engines keep the
        // incremental IVF path.
        let shared = cur.snapshot().to_shared();
        let ranges = self.effective_ranges(cur.snapshot().n_items());
        let prev_ranges = cur
            .delta()
            .map(|stamp| self.effective_ranges(cur.snapshot().n_items() - stamp.n_appended()));
        let slices = ranges
            .iter()
            .enumerate()
            .map(|(s, &(start, len))| {
                let slice = shared.slice_items(start, len);
                match (cur.delta(), &prev_ranges) {
                    (Some(stamp), Some(prev)) => {
                        let (_, prev_len) = prev[s];
                        let local_changed: Vec<u32> = stamp
                            .changed_items()
                            .iter()
                            .filter(|&&g| (start..start + prev_len).contains(&(g as usize)))
                            .map(|&g| g - start as u32)
                            .collect();
                        Arc::new(VersionedSnapshot::with_delta(
                            cur.version(),
                            slice,
                            DeltaStamp::new(stamp.prev_version(), local_changed, len - prev_len),
                        ))
                    }
                    _ => Arc::new(VersionedSnapshot::new(cur.version(), slice)),
                }
            })
            .collect();
        let built = Arc::new(ShardSet {
            version: cur.version(),
            slices,
        });
        let mut sets = write_recover(&self.sets);
        sets.push(Arc::clone(&built));
        sets.sort_by_key(|s| s.version);
        if sets.len() > 2 {
            sets.remove(0);
        }
        built
    }

    /// Runs `f` once per shard against that shard's slice of `set`,
    /// returning per-shard results and service times in plan order.
    /// With `parallel_scatter`, shards 1.. run on scoped threads while
    /// shard 0 runs on the caller's thread; durations are measured on
    /// the executing thread either way, so the attribution stays honest.
    ///
    /// Each per-shard call is supervised: a panic (real or injected via
    /// the fault plan's shard site) is caught, counted against that
    /// shard, and retried up to [`ShardedConfig::scatter_retries`]
    /// times; a shard still failing after its retries yields `None` in
    /// its slot. The duration covers all attempts — a flapping shard's
    /// retries show up in its own latency stage, where tail attribution
    /// will find them.
    fn scatter<T: Send>(
        &self,
        set: &ShardSet,
        f: impl Fn(usize, &QueryEngine, &VersionedSnapshot) -> T + Sync,
    ) -> (Vec<Option<T>>, Vec<Duration>) {
        let run = |s: usize| {
            let start = Instant::now();
            let mut out = None;
            for _attempt in 0..=self.retries {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    if let Some(plan) = &self.faults {
                        plan.at_shard(s);
                    }
                    f(s, &self.shards[s], &set.slices[s])
                }));
                match result {
                    Ok(v) => {
                        out = Some(v);
                        break;
                    }
                    Err(_) => {
                        self.shard_failures[s].fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            (out, start.elapsed())
        };
        let results: Vec<(Option<T>, Duration)> = if self.parallel && self.shards.len() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (1..self.shards.len())
                    .map(|s| scope.spawn(move || run(s)))
                    .collect();
                let mut all = Vec::with_capacity(self.shards.len());
                all.push(run(0));
                for handle in handles {
                    // invariant: `run` catches every panic `f` can raise,
                    // so a scatter thread can only die on its own stack
                    // unwinding machinery failing.
                    all.push(handle.join().expect("shard scatter thread"));
                }
                all
            })
        } else {
            (0..self.shards.len()).map(run).collect()
        };
        results.into_iter().unzip()
    }

    /// Offers every gathered local result to `topk`, translating each
    /// shard's local item ids back to global ids (`global = shard range
    /// start + local`). The heap's strict total order makes the offer
    /// order irrelevant — this *is* the merge. Missing shards (`None`,
    /// failed after retries under the degraded policy) contribute
    /// nothing.
    fn offer_locals<'a>(
        &self,
        topk: &mut TopK,
        locals: impl Iterator<Item = Option<&'a [ScoredItem]>>,
    ) {
        for ((start, _), local) in self.plan.ranges().iter().zip(locals) {
            let Some(local) = local else { continue };
            let offset = *start as u32;
            for entry in local {
                topk.push(offset + entry.item, entry.score);
            }
        }
    }

    /// Records one query's per-shard and merge durations. Only *served*
    /// queries get here (complete or degraded) — refused queries never
    /// pollute the latency percentiles.
    fn record_query(&self, shard_times: &[Duration], merge: Duration) {
        let mut timing = lock_recover(&self.timing);
        for (s, &d) in shard_times.iter().enumerate() {
            timing.record(s, d);
        }
        timing.record(shard_times.len(), merge);
    }
}

impl ServeEngine for ShardedEngine {
    fn n_users(&self) -> usize {
        ShardedEngine::n_users(self)
    }

    fn user_block(&self) -> usize {
        // Uniform across shards (they share one EngineConfig).
        self.shards[0].user_block()
    }

    fn has_cache(&self) -> bool {
        self.shards[0].has_cache()
    }

    fn retrieval(&self) -> Retrieval {
        self.shards[0].retrieval()
    }

    fn recommend_versioned(&self, user: u32, k: usize) -> (u64, Arc<Vec<ScoredItem>>) {
        ShardedEngine::recommend_versioned(self, user, k)
    }

    fn recommend_many(&self, users: &[u32], k: usize) -> (u64, Vec<Arc<Vec<ScoredItem>>>) {
        ShardedEngine::recommend_many(self, users, k)
    }

    fn try_recommend_many(&self, users: &[u32], k: usize) -> VersionedBatchResult {
        // Degraded detail (which shards were missing) is available on the
        // inherent API; through the service trait a permitted partial
        // batch serves like a complete one.
        ShardedEngine::try_recommend_batch(self, users, k).map(|b| (b.version, b.results))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_tensor::Matrix;

    fn snapshot(n_users: usize, n_items: usize, d: usize) -> EmbeddingSnapshot {
        EmbeddingSnapshot::new(
            0.4,
            Matrix::from_fn(n_users, d, |r, c| ((r * 7 + c * 3) as f32 * 0.17).sin()),
            Matrix::from_fn(n_items, d, |r, c| ((r * 5 + c) as f32 * 0.31).cos()),
            Matrix::from_fn(n_users, d, |r, c| ((r + c * 11) as f32 * 0.13).sin()),
            Matrix::from_fn(n_items, d, |r, c| ((r * 3 + c * 2) as f32 * 0.23).cos()),
        )
    }

    fn pairs(items: &[ScoredItem]) -> Vec<(u32, u32)> {
        items.iter().map(|e| (e.item, e.score.to_bits())).collect()
    }

    #[test]
    fn sharded_matches_single_engine_bitwise() {
        let snap = snapshot(5, 157, 8);
        let single = QueryEngine::new(snap.clone());
        for n_shards in [1usize, 2, 3, 5, 8] {
            let sharded = ShardedEngine::new(snap.clone(), n_shards);
            for user in 0..5u32 {
                assert_eq!(
                    pairs(&sharded.recommend(user, 10)),
                    pairs(&single.recommend(user, 10)),
                    "user {user} at {n_shards} shards"
                );
            }
        }
    }

    #[test]
    fn sharded_filter_slices_match_global_filter() {
        let snap = snapshot(4, 130, 6);
        let mut seen = BitMatrix::zeros(4, 130);
        for item in (0..130).step_by(3) {
            seen.set(1, item);
        }
        seen.set(2, 63);
        seen.set(2, 64);
        let single = QueryEngine::new(snap.clone()).with_seen_filter(seen.clone());
        let sharded = ShardedEngine::new(snap, 3).with_seen_filter(seen);
        for user in 0..4u32 {
            assert_eq!(
                pairs(&sharded.recommend(user, 130)),
                pairs(&single.recommend(user, 130)),
                "user {user}"
            );
        }
    }

    #[test]
    fn publish_swaps_every_shard_to_the_new_version() {
        let old = snapshot(4, 90, 8);
        let new = snapshot(4, 90, 4);
        let single = QueryEngine::new(new.clone());
        let sharded = ShardedEngine::new(old, 4);
        let (v1, _) = sharded.recommend_versioned(0, 5);
        assert_eq!(v1, 1);
        assert_eq!(sharded.publish(new), 2);
        let (v2, got) = sharded.recommend_versioned(0, 90);
        assert_eq!(v2, 2);
        assert_eq!(pairs(&got), pairs(&single.recommend(0, 90)));
    }

    #[test]
    fn recommend_many_merges_like_solo_queries() {
        let snap = snapshot(6, 101, 8);
        let sharded = ShardedEngine::new(snap, 4);
        let users = [3u32, 0, 3, 5, 1, 3];
        let (_, many) = ShardedEngine::recommend_many(&sharded, &users, 7);
        assert_eq!(many.len(), users.len());
        for (slot, &user) in users.iter().enumerate() {
            assert_eq!(pairs(&many[slot]), pairs(&sharded.recommend(user, 7)));
        }
        // Duplicates share one Arc.
        assert!(Arc::ptr_eq(&many[0], &many[2]));
        assert!(Arc::ptr_eq(&many[2], &many[5]));
    }

    #[test]
    fn parallel_scatter_is_bitwise_identical_to_sequential() {
        let snap = snapshot(4, 200, 8);
        let sequential = ShardedEngine::new(snap.clone(), 4);
        let parallel = ShardedEngine::with_config(
            snap,
            ShardedConfig {
                n_shards: 4,
                parallel_scatter: true,
                ..Default::default()
            },
        );
        for user in 0..4u32 {
            assert_eq!(
                pairs(&parallel.recommend(user, 20)),
                pairs(&sequential.recommend(user, 20))
            );
        }
    }

    #[test]
    fn latency_breakdown_attributes_per_shard_and_merge() {
        let sharded = ShardedEngine::new(snapshot(3, 60, 4), 3);
        sharded.recommend(0, 5);
        ShardedEngine::recommend_many(&sharded, &[1, 2], 5);
        let breakdown = sharded.latency_breakdown();
        assert_eq!(breakdown.n_stages(), 4, "3 shards + merge");
        assert_eq!(breakdown.label(3), "merge");
        for stage in 0..4 {
            assert_eq!(
                breakdown.stage(stage).n_samples(),
                2,
                "each query records every stage"
            );
        }
    }

    #[test]
    fn more_shards_than_items_serves_empty_tail_shards() {
        let snap = snapshot(3, 5, 4);
        let single = QueryEngine::new(snap.clone());
        let sharded = ShardedEngine::new(snap, 8);
        assert_eq!(sharded.n_shards(), 8);
        assert_eq!(
            pairs(&sharded.recommend(1, 5)),
            pairs(&single.recommend(1, 5))
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_user_panics() {
        ShardedEngine::new(snapshot(2, 10, 4), 2).recommend(2, 1);
    }

    fn deal_filter(n_items: usize) -> BitMatrix {
        let mut f = BitMatrix::zeros(1, n_items);
        for item in (0..n_items).step_by(4) {
            f.set(0, item);
        }
        f
    }

    #[test]
    fn sharded_deal_filter_matches_single_engine_bitwise() {
        let snap = snapshot(4, 130, 6);
        let mut seen = BitMatrix::zeros(4, 130);
        for item in (0..130).step_by(3) {
            seen.set(1, item);
        }
        let single = QueryEngine::new(snap.clone()).with_seen_filter(seen.clone());
        single.set_deal_filter(deal_filter(130));
        for n_shards in [1usize, 3, 5] {
            let sharded = ShardedEngine::new(snap.clone(), n_shards).with_seen_filter(seen.clone());
            sharded.set_deal_filter(deal_filter(130));
            for user in 0..4u32 {
                assert_eq!(
                    pairs(&sharded.recommend(user, 130)),
                    pairs(&single.recommend(user, 130)),
                    "user {user} at {n_shards} shards"
                );
            }
        }
    }

    #[test]
    fn clearing_the_deal_filter_restores_the_full_candidate_set() {
        let sharded = ShardedEngine::new(snapshot(3, 64, 4), 4);
        sharded.set_deal_filter(deal_filter(64));
        assert_eq!(sharded.recommend(0, 64).len(), 48);
        sharded.clear_deal_filter();
        assert_eq!(sharded.recommend(0, 64).len(), 64);
    }

    #[test]
    fn grown_publish_extends_the_last_shard() {
        // The plan was cut for 90 items; a grow-only publish appends 17.
        // The tail lands on the last shard, and the merged ranking stays
        // bit-identical to a single engine over the grown catalogue.
        let old = snapshot(4, 90, 6);
        let new = snapshot(4, 107, 6);
        let sharded = ShardedEngine::new(old, 3);
        sharded.recommend(0, 5); // build the v1 slice set first
        assert_eq!(sharded.publish(new.clone()), 2);
        let single = QueryEngine::new(new);
        for user in 0..4u32 {
            let (version, got) = sharded.recommend_versioned(user, 107);
            assert_eq!(version, 2);
            assert_eq!(
                pairs(&got),
                pairs(&single.recommend(user, 107)),
                "user {user}"
            );
        }
    }

    #[test]
    fn delta_publish_is_restamped_per_shard() {
        let snap = snapshot(3, 80, 4);
        let sharded = ShardedEngine::new(snap.clone(), 3);
        sharded.recommend(0, 3);
        let delta = SnapshotDelta::new()
            .set_item(5, vec![0.5; 4], vec![-0.5; 4])
            .set_item(60, vec![0.1; 4], vec![0.2; 4])
            .append_item(vec![0.9; 4], vec![0.3; 4]);
        assert_eq!(sharded.publish_delta(&delta), 2);
        let cur = sharded.handle().load();
        let set = sharded.set_for(&cur);
        // 80 items over 3 shards: ranges (0,27) (27,27) (54,26); the
        // appended item extends the last to (54,27).
        let stamps: Vec<_> = set
            .slices
            .iter()
            .map(|s| s.delta().expect("every slice re-stamped"))
            .collect();
        assert_eq!(stamps[0].changed_items(), &[5]);
        assert_eq!(stamps[0].n_appended(), 0);
        assert!(stamps[1].changed_items().is_empty());
        assert_eq!(stamps[2].changed_items(), &[60 - 54]);
        assert_eq!(stamps[2].n_appended(), 1);
        assert_eq!(set.slices[2].snapshot().n_items(), 27);
        // And the served merge equals a single engine over the new tables.
        let single = QueryEngine::new(cur.snapshot().clone());
        for user in 0..3u32 {
            assert_eq!(
                pairs(&sharded.recommend(user, 81)),
                pairs(&single.recommend(user, 81)),
                "user {user}"
            );
        }
    }
}
