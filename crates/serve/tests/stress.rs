//! Concurrency stress: reader threads hammer a cached
//! [`RecommendService`] while a writer hot-swaps snapshots in a tight
//! loop. Every response must be internally consistent with exactly one
//! published snapshot version — no torn reads, no stale blends, no
//! panics.
//!
//! Ignored by default (it exists to soak the swap path, not to gate
//! every local `cargo test`); CI runs it explicitly with a timeout:
//!
//! ```text
//! cargo test -p gb-serve --test stress --release -- --ignored
//! ```

use gb_models::{EmbeddingSnapshot, SnapshotHandle};
use gb_serve::{EngineConfig, QueryEngine, RecommendService, ServiceConfig};
use gb_tensor::Matrix;
use std::sync::atomic::{AtomicBool, Ordering};

const N_USERS: usize = 32;
const N_ITEMS: usize = 200;
const N_READERS: usize = 4;
const QUERIES_PER_READER: usize = 1500;
const N_PUBLISHES: u64 = 400;

/// A version-stamped snapshot: `score(u, i) = v * (1 + i)`.
///
/// Every served score identifies the exact snapshot it was computed
/// from, so a response mixing tables from two publishes — or a cache
/// entry surviving a version boundary — shows up as a score that fails
/// the stamp equation. All factors are small integers, so the f32
/// products are exact.
fn stamped(v: u64) -> EmbeddingSnapshot {
    EmbeddingSnapshot::without_social(
        Matrix::full(N_USERS, 1, v as f32),
        Matrix::from_fn(N_ITEMS, 1, |r, _| 1.0 + r as f32),
    )
}

#[test]
#[ignore = "soak test; CI runs it explicitly with a timeout"]
fn swapping_under_reader_fire_never_tears_or_staleness() {
    let handle = SnapshotHandle::new(stamped(1));
    let service = RecommendService::with_config(
        QueryEngine::with_handle(
            handle.clone(),
            EngineConfig {
                cache_capacity: 128,
                ..Default::default()
            },
        ),
        ServiceConfig {
            workers: 4,
            queue_depth: 64,
            warm_k: 10,
            ..Default::default()
        },
    );
    let done_publishing = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let service = &service;
        let handle = &handle;
        let done = &done_publishing;

        // The writer: publish stamped snapshots back to back, yielding
        // between publishes so swaps interleave with live queries instead
        // of finishing before the readers ramp up.
        scope.spawn(move || {
            for v in 2..=N_PUBLISHES {
                assert_eq!(handle.publish(stamped(v)), v);
                std::thread::yield_now();
            }
            done.store(true, Ordering::Release);
        });

        for reader in 0..N_READERS {
            scope.spawn(move || {
                // Deterministic per-reader query stream.
                let mut x = 0x9E37_79B9u64.wrapping_mul(reader as u64 + 1);
                let mut last_version = 0u64;
                for q in 0..QUERIES_PER_READER {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let user = (x >> 33) as u32 % N_USERS as u32;
                    let k = 1 + (x >> 17) as usize % 20;
                    let (version, items) = service.recommend_versioned(user, k);

                    // Consistency with exactly one published version: the
                    // stamp equation holds for every entry.
                    assert!((1..=N_PUBLISHES).contains(&version));
                    assert_eq!(items.len(), k.min(N_ITEMS));
                    for e in items.iter() {
                        let expect = version as f32 * (1.0 + e.item as f32);
                        assert_eq!(
                            e.score.to_bits(),
                            expect.to_bits(),
                            "reader {reader} query {q}: item {} scored {} under \
                             version {version} — torn or stale response",
                            e.item,
                            e.score
                        );
                    }
                    // Ranking within the response is version-coherent too:
                    // higher item ids always win under the stamp tables.
                    for w in items.windows(2) {
                        assert!(w[0].item > w[1].item, "stamp ranking broken");
                    }
                    // Versions observed by one reader never go backwards.
                    assert!(
                        version >= last_version,
                        "reader {reader}: version went backwards \
                         ({last_version} -> {version})"
                    );
                    last_version = version;
                }
                // Soak the tail: after the writer finishes, responses must
                // settle on the final version.
                if done.load(Ordering::Acquire) {
                    let (version, _) = service.recommend_versioned(0, 5);
                    assert_eq!(version, N_PUBLISHES);
                }
            });
        }
    });

    assert_eq!(handle.version(), N_PUBLISHES);
    let (hits, misses) = service.engine().cache_stats();
    assert!(
        hits + misses >= (N_READERS * QUERIES_PER_READER) as u64,
        "every query went through the cache path"
    );
}

/// The batched path under fire: reader threads issue *bursts* of queries
/// (saturating the queue so workers coalesce multi-user groups) while the
/// writer hot-swaps snapshots back to back. Every reply in every burst
/// must satisfy the stamp equation for its reported version — a coalesced
/// group that mixed versions, tore a read, or cross-wired replies between
/// queued requests shows up immediately.
#[test]
#[ignore = "soak test; CI runs it explicitly with a timeout"]
fn coalesced_batches_under_publish_fire_stay_version_coherent() {
    const BURSTS_PER_READER: usize = 150;
    const BURST: usize = 24; // 3 user-blocks of coalescing per burst
    let handle = SnapshotHandle::new(stamped(1));
    let service = RecommendService::with_config(
        QueryEngine::with_handle(
            handle.clone(),
            EngineConfig {
                cache_capacity: 128,
                user_block: 8,
                ..Default::default()
            },
        ),
        ServiceConfig {
            workers: 4,
            queue_depth: 64,
            warm_k: 10,
            ..Default::default()
        },
    );

    std::thread::scope(|scope| {
        let service = &service;
        let handle = &handle;

        scope.spawn(move || {
            for v in 2..=N_PUBLISHES {
                assert_eq!(handle.publish(stamped(v)), v);
                std::thread::yield_now();
            }
        });

        for reader in 0..N_READERS {
            scope.spawn(move || {
                let mut x = 0xDEAD_BEEFu64.wrapping_mul(reader as u64 + 1);
                for burst in 0..BURSTS_PER_READER {
                    let users: Vec<u32> = (0..BURST)
                        .map(|_| {
                            x = x
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                            (x >> 33) as u32 % N_USERS as u32
                        })
                        .collect();
                    let k = 1 + (x >> 17) as usize % 20;
                    let answers = service.recommend_batch(&users, k);
                    assert_eq!(answers.len(), users.len());
                    for (slot, items) in answers.iter().enumerate() {
                        assert_eq!(items.len(), k.min(N_ITEMS));
                        // Recover the version from the top item's stamp;
                        // every other entry must agree with it exactly.
                        let top = &items[0];
                        let version = (top.score / (1.0 + top.item as f32)) as u64;
                        assert!(
                            (1..=N_PUBLISHES).contains(&version),
                            "reader {reader} burst {burst} slot {slot}: \
                             implausible version {version}"
                        );
                        for e in items.iter() {
                            let expect = version as f32 * (1.0 + e.item as f32);
                            assert_eq!(
                                e.score.to_bits(),
                                expect.to_bits(),
                                "reader {reader} burst {burst} slot {slot}: item {} \
                                 scored {} — coalesced response tore across versions",
                                e.item,
                                e.score
                            );
                        }
                        for w in items.windows(2) {
                            assert!(w[0].item > w[1].item, "stamp ranking broken");
                        }
                    }
                }
            });
        }
    });

    assert_eq!(handle.version(), N_PUBLISHES);
    assert_eq!(
        service.requests_served(),
        N_READERS * BURSTS_PER_READER * BURST,
        "monotone served counter covers every coalesced request"
    );
}
