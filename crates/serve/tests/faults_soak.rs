//! Fault-injection soaks: scripted panics, shard failures, deal-filter
//! churn, and snapshot corruption, all fired concurrently with live
//! queries and hot publishes. Every response must still be internally
//! consistent with exactly one published snapshot version and exactly
//! one installed deal filter — a typed error is always acceptable, a
//! torn or blended answer never is.
//!
//! Ignored by default (these exist to soak the failure paths, not to
//! gate every local `cargo test`); CI runs them explicitly with a
//! timeout:
//!
//! ```text
//! cargo test -p gb-serve --test faults_soak --release -- --ignored
//! ```

use gb_graph::BitMatrix;
use gb_models::{EmbeddingSnapshot, SnapshotHandle};
use gb_serve::{
    corrupt_file, mmap::open_mmap_snapshot_faulted, open_mmap_snapshot, save_mmap_snapshot,
    EngineConfig, FaultPlan, QueryEngine, RecommendService, ServeError, ServiceConfig, ShardPlan,
    ShardedConfig, ShardedEngine,
};
use gb_tensor::Matrix;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const N_USERS: usize = 24;
const N_ITEMS: usize = 120;

/// A version-stamped snapshot: `score(u, i) = v * (1 + i)`. Every
/// served score identifies the exact snapshot it was computed from
/// (see `stress.rs` for the argument); all factors are small integers,
/// so the f32 products are exact.
fn stamped(v: u64) -> EmbeddingSnapshot {
    EmbeddingSnapshot::without_social(
        Matrix::full(N_USERS, 1, v as f32),
        Matrix::from_fn(N_ITEMS, 1, |r, _| 1.0 + r as f32),
    )
}

/// Workers panic on a scripted cadence while a writer hot-swaps
/// snapshots: every caller gets either a stamp-consistent answer or
/// [`ServeError::Poisoned`] — never a hang, never a torn ranking — and
/// the worker pool survives to serve the next request.
#[test]
#[ignore = "soak test; CI runs it explicitly with a timeout"]
fn workers_survive_scripted_panics_under_publish_fire() {
    const N_READERS: usize = 4;
    const QUERIES_PER_READER: usize = 1200;
    const N_PUBLISHES: u64 = 150;

    let handle = SnapshotHandle::new(stamped(1));
    let plan = Arc::new(FaultPlan::new().panic_every(17));
    let service = RecommendService::with_config(
        QueryEngine::with_handle(
            handle.clone(),
            EngineConfig {
                cache_capacity: 64,
                ..Default::default()
            },
        )
        .with_faults(Arc::clone(&plan)),
        ServiceConfig {
            workers: 4,
            queue_depth: 64,
            ..Default::default()
        },
    );
    let done_publishing = AtomicBool::new(false);
    let total_ok = AtomicU64::new(0);
    let total_poisoned = AtomicU64::new(0);

    std::thread::scope(|scope| {
        let service = &service;
        let handle = &handle;
        let done = &done_publishing;
        let total_ok = &total_ok;
        let total_poisoned = &total_poisoned;

        scope.spawn(move || {
            for v in 2..=N_PUBLISHES {
                assert_eq!(handle.publish(stamped(v)), v);
                std::thread::yield_now();
            }
            done.store(true, Ordering::Release);
        });

        for reader in 0..N_READERS {
            scope.spawn(move || {
                let mut x = 0x9E37_79B9u64.wrapping_mul(reader as u64 + 1);
                for q in 0..QUERIES_PER_READER {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let user = (x >> 33) as u32 % N_USERS as u32;
                    let k = 1 + (x >> 17) as usize % 20;
                    match service.try_recommend_versioned(user, k) {
                        Ok((version, items)) => {
                            total_ok.fetch_add(1, Ordering::Relaxed);
                            assert!((1..=N_PUBLISHES).contains(&version));
                            assert_eq!(items.len(), k.min(N_ITEMS));
                            for e in items.iter() {
                                let expect = version as f32 * (1.0 + e.item as f32);
                                assert_eq!(
                                    e.score.to_bits(),
                                    expect.to_bits(),
                                    "reader {reader} query {q}: item {} scored {} under \
                                     version {version} — torn or stale response",
                                    e.item,
                                    e.score
                                );
                            }
                        }
                        Err(ServeError::Poisoned { reason }) => {
                            total_poisoned.fetch_add(1, Ordering::Relaxed);
                            assert!(
                                reason.contains("scripted panic"),
                                "unexpected poison: {reason}"
                            );
                        }
                        Err(other) => panic!("reader {reader} query {q}: {other}"),
                    }
                }
            });
        }
    });

    assert!(
        done_publishing.load(Ordering::Acquire),
        "publisher finished"
    );
    assert!(
        total_poisoned.load(Ordering::Relaxed) > 0,
        "the fault schedule never fired — the soak tested nothing"
    );
    assert!(service.worker_panics() > 0);
    // Only served requests feed the counters and the percentiles.
    assert_eq!(
        service.requests_served() as u64,
        total_ok.load(Ordering::Relaxed)
    );
    assert_eq!(
        service.latency_stopwatch().n_samples() as u64,
        total_ok.load(Ordering::Relaxed)
    );
    // The pool outlives every scripted panic.
    let healed = service
        .try_recommend(0, 5)
        .or_else(|_| service.try_recommend(0, 5))
        .expect("service serves after the soak");
    assert!(!healed.is_empty());
}

/// The sharded tier under simultaneous fire: a flaky shard (periodic
/// scripted failures), a slow shard (injected delay), hot snapshot
/// publishes, and a deal-filter installer flipping between parity
/// filters. With `k = N_ITEMS` the served set equals the allowed set
/// exactly, so every response must be one installed filter's candidate
/// set minus the ranges of exactly the shards it reports missing —
/// anything else is a mixed-generation mask or a torn merge.
#[test]
#[ignore = "soak test; CI runs it explicitly with a timeout"]
fn degraded_scatter_under_filter_churn_and_publishes_never_tears() {
    const N_SHARDS: usize = 4;
    const N_READERS: usize = 3;
    const QUERIES_PER_READER: usize = 500;
    const N_PUBLISHES: u64 = 80;
    const FLAKY_SHARD: usize = 1;

    let fault = FaultPlan::new()
        .fail_shard_every(FLAKY_SHARD, 13)
        .delay_shard(2, Duration::from_micros(200));
    let sharded = ShardedEngine::with_config(
        stamped(1),
        ShardedConfig {
            n_shards: N_SHARDS,
            parallel_scatter: true,
            scatter_retries: 0,
            allow_partial: true,
            engine: EngineConfig {
                cache_capacity: 0,
                ..Default::default()
            },
        },
    )
    .with_faults(Arc::new(fault));

    let mut block_evens = BitMatrix::zeros(1, N_ITEMS);
    let mut block_odds = BitMatrix::zeros(1, N_ITEMS);
    for i in 0..N_ITEMS {
        if i % 2 == 0 {
            block_evens.set(0, i);
        } else {
            block_odds.set(0, i);
        }
    }
    let ranges = ShardPlan::balanced(N_ITEMS, N_SHARDS).ranges().to_vec();
    // The three candidate sets an atomic install can expose.
    let all: Vec<u32> = (0..N_ITEMS as u32).collect();
    let odds: Vec<u32> = all.iter().copied().filter(|i| i % 2 == 1).collect();
    let evens: Vec<u32> = all.iter().copied().filter(|i| i % 2 == 0).collect();
    let candidate_sets = [all, odds, evens];

    let readers_done = AtomicBool::new(false);
    let degraded_seen = AtomicU64::new(0);

    std::thread::scope(|scope| {
        let sharded = &sharded;
        let done = &readers_done;
        let degraded_seen = &degraded_seen;
        let candidate_sets = &candidate_sets;
        let ranges = &ranges;
        let block_evens = &block_evens;
        let block_odds = &block_odds;

        scope.spawn(move || {
            for v in 2..=N_PUBLISHES {
                assert_eq!(sharded.publish(stamped(v)), v);
                std::thread::yield_now();
            }
        });
        scope.spawn(move || {
            let mut round = 0u64;
            while !done.load(Ordering::Acquire) {
                match round % 3 {
                    0 => sharded.set_deal_filter(block_evens.clone()),
                    1 => sharded.set_deal_filter(block_odds.clone()),
                    _ => sharded.clear_deal_filter(),
                }
                round += 1;
                std::thread::yield_now();
            }
        });

        let readers: Vec<_> = (0..N_READERS)
            .map(|reader| {
                scope.spawn(move || {
                    let mut x = 0xA076_1D64u64.wrapping_mul(reader as u64 + 1);
                    for q in 0..QUERIES_PER_READER {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let user = (x >> 33) as u32 % N_USERS as u32;
                        match sharded.try_recommend(user, N_ITEMS) {
                            Ok(got) => {
                                assert!((1..=N_PUBLISHES).contains(&got.version));
                                if !got.missing_shards.is_empty() {
                                    assert_eq!(got.missing_shards, vec![FLAKY_SHARD]);
                                    degraded_seen.fetch_add(1, Ordering::Relaxed);
                                }
                                for e in got.items.iter() {
                                    let expect = got.version as f32 * (1.0 + e.item as f32);
                                    assert_eq!(
                                        e.score.to_bits(),
                                        expect.to_bits(),
                                        "reader {reader} query {q}: torn score under \
                                         version {}",
                                        got.version
                                    );
                                }
                                let mut served: Vec<u32> =
                                    got.items.iter().map(|e| e.item).collect();
                                served.sort_unstable();
                                let matches_one_filter = candidate_sets.iter().any(|set| {
                                    let expected: Vec<u32> = set
                                        .iter()
                                        .copied()
                                        .filter(|&i| {
                                            !got.missing_shards.iter().any(|&s| {
                                                let (start, len) = ranges[s];
                                                (i as usize) >= start && (i as usize) < start + len
                                            })
                                        })
                                        .collect();
                                    expected == served
                                });
                                assert!(
                                    matches_one_filter,
                                    "reader {reader} query {q}: served set ({} items, \
                                     missing {:?}) matches no single installed filter — \
                                     mixed-generation mask or torn merge",
                                    served.len(),
                                    got.missing_shards
                                );
                            }
                            Err(ServeError::ShardFailed { shards }) => {
                                assert_eq!(shards, vec![FLAKY_SHARD]);
                            }
                            Err(other) => panic!("reader {reader} query {q}: {other}"),
                        }
                    }
                })
            })
            .collect();
        for r in readers {
            r.join().expect("reader panicked");
        }
        readers_done.store(true, Ordering::Release);
    });

    assert!(
        degraded_seen.load(Ordering::Relaxed) > 0,
        "the flaky shard never degraded a response — the soak tested nothing"
    );
    assert_eq!(
        sharded.degraded_served(),
        degraded_seen.load(Ordering::Relaxed)
    );
    assert!(sharded.shard_failures()[FLAKY_SHARD] > 0);
}

/// Seeded single-bit corruption over the whole mmap snapshot file: the
/// loader must reject or serve every corrupted image without panicking,
/// and flipping the same seeded bit back must restore a byte-identical
/// snapshot. Scripted open failures surface as `Err`, then heal.
#[test]
#[ignore = "soak test; CI runs it explicitly with a timeout"]
fn corrupted_snapshot_opens_never_panic_and_heal_bitwise() {
    let dir = std::env::temp_dir().join(format!("gb_faults_soak_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("soak.gbsnap2");
    let original = stamped(3);
    save_mmap_snapshot(&original, &path).expect("save");

    for seed in 0..200u64 {
        let (offset, bit) = corrupt_file(&path, seed).expect("corrupt");
        // Reject or serve — never panic. A flip in a table section or
        // padding can still parse; its dims must then be untouched.
        if let Ok(snap) = open_mmap_snapshot(&path) {
            assert_eq!(snap.n_users(), N_USERS);
            assert_eq!(snap.n_items(), N_ITEMS);
        }
        // Same seed, same flip: a second pass restores the bit.
        let restored = corrupt_file(&path, seed).expect("restore");
        assert_eq!((offset, bit), restored, "seeded flip is reproducible");
    }
    let healed = open_mmap_snapshot(&path).expect("restored file parses");
    for (u, i) in [(0u32, 0u32), (3, 7), (23, 119)] {
        assert_eq!(
            healed.score(u, i).to_bits(),
            original.score(u, i).to_bits(),
            "restored snapshot diverged at ({u}, {i})"
        );
    }

    // Scripted open failures: exactly `times` rejections, then healed.
    let plan = FaultPlan::new().fail_opens(2);
    assert!(open_mmap_snapshot_faulted(&path, &plan).is_err());
    assert!(open_mmap_snapshot_faulted(&path, &plan).is_err());
    assert!(open_mmap_snapshot_faulted(&path, &plan).is_ok());

    std::fs::remove_dir_all(&dir).ok();
}
