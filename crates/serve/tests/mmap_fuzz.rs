//! Fuzz/property tests for the mappable v2 snapshot layout:
//!
//! * save → [`open_mmap_snapshot`] round-trips bit-identically for
//!   arbitrary table shapes (including zero-dimension tables), and the
//!   heap fallback loader agrees with the mapped loader bit-for-bit.
//! * A sharded engine serving a *mapped* snapshot answers bitwise like a
//!   single engine serving the original in-memory snapshot — the whole
//!   PR 6 path (mmap → shared tables → slices → scatter-gather merge)
//!   composes without perturbing a single bit.
//! * Truncating a v2 file anywhere yields `Err`, never a panic or an
//!   out-of-bounds access; flipping any single byte yields `Ok` or
//!   `Err`, never a panic — and a structurally-valid-but-poisoned load
//!   still serves without panicking (non-finite scores are dropped at
//!   the heap, by contract).

use gb_models::EmbeddingSnapshot;
use gb_serve::{
    open_mmap_snapshot, open_mmap_snapshot_heap, save_mmap_snapshot, QueryEngine, ScoredItem,
    ShardedEngine,
};
use gb_tensor::Matrix;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn snapshot(
    tag: u64,
    n_users: usize,
    n_items: usize,
    d_own: usize,
    d_social: usize,
) -> EmbeddingSnapshot {
    let t = tag as f32;
    EmbeddingSnapshot::new(
        0.4,
        Matrix::from_fn(n_users, d_own, |r, c| {
            ((r * 7 + c * 3) as f32 * 0.17 + t).sin()
        }),
        Matrix::from_fn(n_items, d_own, |r, c| ((r * 5 + c) as f32 * 0.31 - t).cos()),
        Matrix::from_fn(n_users, d_social, |r, c| {
            ((r + c * 11) as f32 * 0.13 + t).sin()
        }),
        Matrix::from_fn(n_items, d_social, |r, c| {
            ((r * 3 + c * 2) as f32 * 0.23 + t).cos()
        }),
    )
}

/// A unique temp path per test case (proptest shrinks rerun cases; the
/// discriminator keeps reruns from racing each other's files).
fn tmp(name: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gb_serve_mmap_fuzz_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}_{case}.gbsn2"))
}

fn pairs(items: &Arc<Vec<ScoredItem>>) -> Vec<(u32, u32)> {
    items.iter().map(|e| (e.item, e.score.to_bits())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn roundtrip_and_heap_fallback_are_bit_identical(
        tag in 0u64..1000,
        n_users in 0usize..20,
        n_items in 0usize..60,
        d_own in 0usize..10,
        d_social in 0usize..10,
    ) {
        let snap = snapshot(tag, n_users, n_items, d_own, d_social);
        let path = tmp("roundtrip", tag * 1_000_000 + (n_users * 600 + n_items * 10 + d_own) as u64);
        save_mmap_snapshot(&snap, &path).unwrap();
        let mapped = open_mmap_snapshot(&path).unwrap();
        let heaped = open_mmap_snapshot_heap(&path).unwrap();
        prop_assert!(mapped == snap, "mapped load differs");
        prop_assert!(heaped == mapped, "heap fallback differs from mapped");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sharded_serving_from_a_mapped_snapshot_is_bitwise_exact(
        tag in 0u64..100,
        n_shards in 1usize..=6,
        k in 1usize..=12,
    ) {
        let snap = snapshot(tag, 9, 83, 8, 4);
        let path = tmp("serve", tag * 100 + (n_shards * 13 + k) as u64);
        save_mmap_snapshot(&snap, &path).unwrap();
        let single = QueryEngine::new(snap);
        let sharded = ShardedEngine::new(open_mmap_snapshot(&path).unwrap(), n_shards);
        for user in 0..9u32 {
            prop_assert_eq!(
                pairs(&sharded.recommend(user, k)),
                pairs(&single.recommend(user, k)),
                "user {} shards {}",
                user,
                n_shards
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_anywhere_errors_instead_of_panicking(
        tag in 0u64..100,
        cut_frac in 0.0f64..1.0,
    ) {
        let snap = snapshot(tag, 5, 23, 6, 3);
        let path = tmp("trunc", tag * 1000 + (cut_frac * 997.0) as u64);
        save_mmap_snapshot(&snap, &path).unwrap();
        let full = std::fs::read(&path).unwrap();
        let cut = ((full.len() as f64) * cut_frac) as usize; // always < len
        std::fs::write(&path, &full[..cut]).unwrap();
        prop_assert!(
            open_mmap_snapshot(&path).is_err(),
            "truncation to {} of {} bytes must be rejected",
            cut,
            full.len()
        );
        prop_assert!(open_mmap_snapshot_heap(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn single_byte_corruption_never_panics(
        tag in 0u64..100,
        at_frac in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let snap = snapshot(tag, 5, 23, 6, 3);
        let path = tmp("flip", tag * 100_000 + (at_frac * 9973.0) as u64 * 10 + xor as u64 % 10);
        save_mmap_snapshot(&snap, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let at = ((bytes.len() as f64) * at_frac) as usize;
        bytes[at] ^= xor;
        std::fs::write(&path, &bytes).unwrap();
        // Ok or Err, but never a panic or a wild read — and anything
        // that loads must also *serve* without panicking (a poisoned
        // payload degrades to dropped candidates at the TopK heap).
        if let Ok(loaded) = open_mmap_snapshot(&path) {
            if loaded.n_users() > 0 {
                let engine = QueryEngine::new(loaded);
                let top = engine.recommend(0, 5);
                prop_assert!(top.iter().all(|e| e.score.is_finite()));
            }
        }
        std::fs::remove_file(&path).ok();
    }
}
