//! Property tests for the streaming freshness path: delta snapshot
//! publishes, incremental IVF maintenance, and deal-state candidate
//! filtering.
//!
//! The contracts pinned here:
//!
//! * A chain of [`SnapshotDelta`] publishes serves **bitwise
//!   identically** to the equivalent chain of full publishes — through a
//!   single exact engine, through full-probe IVF with incremental index
//!   maintenance, and through the sharded scatter-gather tier at 1–8
//!   shards.
//! * The deal-state filter composes with the per-user seen filter
//!   exactly like brute-force candidate-set intersection.
//! * An incrementally updated IVF index never blends rows across a
//!   publish: every served score comes from the version the response
//!   reports, even at partial probe and under concurrent publishes.

use gb_eval::topk::reference_topk;
use gb_eval::Scorer;
use gb_graph::BitMatrix;
use gb_models::{EmbeddingSnapshot, SnapshotDelta};
use gb_serve::{
    EngineConfig, QueryEngine, Retrieval, ScoredItem, ShardedConfig, ShardedEngine, SnapshotHandle,
};
use gb_tensor::Matrix;
use proptest::prelude::*;
use std::sync::Arc;

/// A deterministic synthetic snapshot; `tag` varies the tables.
fn snapshot(tag: u64, n_users: usize, n_items: usize, d: usize) -> EmbeddingSnapshot {
    let t = tag as f32;
    EmbeddingSnapshot::new(
        0.4,
        Matrix::from_fn(n_users, d, |r, c| ((r * 7 + c * 3) as f32 * 0.17 + t).sin()),
        Matrix::from_fn(n_items, d, |r, c| ((r * 5 + c) as f32 * 0.31 - t).cos()),
        Matrix::from_fn(n_users, d, |r, c| ((r + c * 11) as f32 * 0.13 + t).sin()),
        Matrix::from_fn(n_items, d, |r, c| ((r * 3 + c * 2) as f32 * 0.23 + t).cos()),
    )
}

fn pairs(items: &Arc<Vec<ScoredItem>>) -> Vec<(u32, u32)> {
    items.iter().map(|e| (e.item, e.score.to_bits())).collect()
}

/// A deterministic delta against `prev`: `n_changed` replaced item rows,
/// one replaced user row, and `n_appended` items appended past the end —
/// all values seeded by `step` so every chain position differs.
fn delta_step(
    prev: &EmbeddingSnapshot,
    step: u64,
    n_changed: usize,
    n_appended: usize,
) -> SnapshotDelta {
    let (od, sd) = (prev.own_dim(), prev.social_dim());
    let n = prev.n_items();
    let row = |base: usize, w: usize, sign: f32| -> Vec<f32> {
        (0..w)
            .map(|c| ((base * 3 + c) as f32 * 0.21 + sign * step as f32).sin())
            .collect()
    };
    let mut delta = SnapshotDelta::new();
    for j in 0..n_changed.min(n) {
        let id = ((step as usize).wrapping_mul(31) + j * 17) % n;
        delta = delta.set_item(id as u32, row(id, od, 1.0), row(id + 1, sd, -1.0));
    }
    let user = (step as usize * 13) % prev.n_users();
    delta = delta.set_user(user as u32, row(user, od, -1.0), row(user + 2, sd, 1.0));
    for a in 0..n_appended {
        delta = delta.append_item(row(n + a, od, 1.0), row(n + a + 1, sd, -1.0));
    }
    delta
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One delta chain, three consumers — a delta-published sharded
    /// exact engine and a delta-published full-probe incremental-IVF
    /// engine must both serve bitwise what a full-publish exact single
    /// engine serves, at every link of the chain.
    #[test]
    fn delta_chain_matches_full_publishes_bitwise(
        tag in 0u64..5,
        n_shards in 1usize..=8,
        n_items in 20usize..=90,
        k in 1usize..=15,
        n_changed in 0usize..6,
        n_appended in 0usize..4,
    ) {
        let base = snapshot(tag, 8, n_items, 6);
        let sharded = ShardedEngine::new(base.clone(), n_shards);
        let ivf = QueryEngine::with_config(
            base.clone(),
            EngineConfig {
                retrieval: Retrieval::Ivf { n_clusters: 5, n_probe: 5 },
                ivf_incremental: true,
                ..Default::default()
            },
        );
        ivf.recommend(0, 1); // build the v1 index so updates can chain
        let full = QueryEngine::new(base.clone());
        let mut current = base;
        for step in 0..3u64 {
            let delta = delta_step(&current, tag * 10 + step, n_changed, n_appended);
            sharded.publish_delta(&delta);
            ivf.handle().publish_delta(&delta);
            current = delta.apply(&current);
            full.handle().publish(current.clone());
            for user in 0..8u32 {
                let want = full.recommend(user, k);
                prop_assert_eq!(
                    pairs(&sharded.recommend(user, k)),
                    pairs(&want),
                    "sharded: step {} user {} shards {}", step, user, n_shards
                );
                prop_assert_eq!(
                    pairs(&ivf.recommend(user, k)),
                    pairs(&want),
                    "incremental ivf: step {} user {}", step, user
                );
            }
        }
    }

    /// deal ∘ seen == brute-force candidate intersection, on the single
    /// engine and through the sharded tier.
    #[test]
    fn deal_and_seen_composition_matches_brute_force(
        tag in 0u64..5,
        n_shards in 1usize..=6,
        k in 1usize..=80,
        seen in proptest::collection::vec((0u32..6, 0usize..80), 0..40),
        blocked in proptest::collection::vec(0usize..80, 0..40),
    ) {
        let snap = snapshot(tag, 6, 80, 6);
        let mut seen_bits = BitMatrix::zeros(6, 80);
        for &(user, item) in &seen {
            seen_bits.set(user as usize, item);
        }
        let mut deal = BitMatrix::zeros(1, 80);
        for &item in &blocked {
            deal.set(0, item);
        }
        let single = QueryEngine::new(snap.clone()).with_seen_filter(seen_bits.clone());
        single.set_deal_filter(deal.clone());
        let sharded = ShardedEngine::new(snap.clone(), n_shards).with_seen_filter(seen_bits.clone());
        sharded.set_deal_filter(deal.clone());
        for user in 0..6u32 {
            let allowed: Vec<u32> = (0..80u32)
                .filter(|&i| !seen_bits.contains(user as usize, i as usize) && !deal.contains(0, i as usize))
                .collect();
            let want = reference_topk(&snap, user, &allowed, k);
            let got: Vec<(u32, f32)> = single
                .recommend(user, k)
                .iter()
                .map(|e| (e.item, e.score))
                .collect();
            prop_assert_eq!(got, want, "single: user {}", user);
            prop_assert_eq!(
                pairs(&sharded.recommend(user, k)),
                pairs(&single.recommend(user, k)),
                "sharded: user {} shards {}", user, n_shards
            );
        }
    }

    /// Partial-probe incremental IVF never serves a stale row: every
    /// returned score bit-matches a fresh scoring of the reported
    /// version's tables, at every link of a delta chain.
    #[test]
    fn incremental_ivf_chain_never_blends(
        tag in 0u64..5,
        n_changed in 0usize..8,
        n_appended in 0usize..4,
        n_probe in 1usize..=4,
    ) {
        let base = snapshot(tag, 6, 100, 6);
        let engine = QueryEngine::with_config(
            base.clone(),
            EngineConfig {
                retrieval: Retrieval::Ivf { n_clusters: 8, n_probe },
                ivf_incremental: true,
                ..Default::default()
            },
        );
        engine.recommend(0, 1);
        let mut current = base;
        for step in 0..4u64 {
            let delta = delta_step(&current, tag * 7 + step, n_changed, n_appended);
            engine.handle().publish_delta(&delta);
            current = delta.apply(&current);
            for user in 0..6u32 {
                let (version, got) = engine.recommend_versioned(user, 12);
                prop_assert_eq!(version, step + 2);
                prop_assert!(!got.is_empty());
                for e in got.iter() {
                    let fresh = current.score_items(user, &[e.item])[0];
                    prop_assert_eq!(
                        e.score.to_bits(),
                        fresh.to_bits(),
                        "step {} user {} item {}: stale row served", step, user, e.item
                    );
                }
            }
        }
    }
}

/// A publisher thread streams a chain of delta publishes while queries
/// race it through the sharded tier: every response must be bitwise
/// identical to a single-engine answer for *its* reported version.
#[test]
fn concurrent_delta_publishes_never_tear_a_response() {
    const STEPS: usize = 5;
    let base = snapshot(0, 10, 84, 6);
    let mut versions = vec![base.clone()];
    let mut deltas = Vec::new();
    for step in 0..STEPS as u64 {
        let delta = delta_step(versions.last().expect("nonempty"), step, 4, 2);
        versions.push(delta.apply(versions.last().expect("nonempty")));
        deltas.push(delta);
    }
    let solos: Vec<QueryEngine> = versions
        .iter()
        .map(|s| QueryEngine::new(s.clone()))
        .collect();
    let sharded = ShardedEngine::with_handle(
        SnapshotHandle::new(base),
        ShardedConfig {
            n_shards: 4,
            engine: EngineConfig {
                retrieval: Retrieval::Ivf {
                    n_clusters: 4,
                    n_probe: 4,
                },
                ivf_incremental: true,
                ..Default::default()
            },
            ..Default::default()
        },
    );

    std::thread::scope(|scope| {
        let (sharded, deltas) = (&sharded, &deltas);
        let publisher = scope.spawn(move || {
            for delta in deltas {
                std::thread::sleep(std::time::Duration::from_millis(2));
                sharded.publish_delta(delta);
            }
        });
        for round in 0..60u32 {
            let user = round % 10;
            let (version, got) = sharded.recommend_versioned(user, 9);
            let solo = solos[(version - 1) as usize].recommend(user, 9);
            assert_eq!(
                pairs(&got),
                pairs(&solo),
                "user {user} version {version} round {round}"
            );
            let users: Vec<u32> = (0..10).map(|i| (round + i) % 10).collect();
            let (version, many) = sharded.recommend_many(&users, 6);
            for (slot, &u) in users.iter().enumerate() {
                let solo = solos[(version - 1) as usize].recommend(u, 6);
                assert_eq!(
                    pairs(&many[slot]),
                    pairs(&solo),
                    "batched user {u} v{version}"
                );
            }
        }
        publisher.join().expect("publisher");
    });
    assert_eq!(sharded.handle().load().version() as usize, STEPS + 1);
}
