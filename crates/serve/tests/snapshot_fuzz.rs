//! Fuzz/roundtrip property tests for `snapshot_io`: generated snapshots
//! (including 0-user/0-item edges and awkward finite bit patterns)
//! survive write → read bit-identically, and truncated or corrupted byte
//! streams return errors — never panics, never unbounded allocations.

use gb_models::EmbeddingSnapshot;
use gb_serve::{load_snapshot, save_snapshot};
use gb_tensor::Matrix;
use proptest::prelude::*;

/// Deterministic "awkward finite f32" generator: an LCG stream spiked
/// with exactly-representable extremes (signed zeros, max/min magnitude,
/// subnormal neighborhood). NaN/Inf are excluded — `EmbeddingSnapshot`
/// rejects non-finite tables by contract.
fn awkward(seed: u64, k: usize) -> f32 {
    const SPIKES: [f32; 10] = [
        0.0,
        -0.0,
        1.0,
        -1.0,
        f32::MAX,
        f32::MIN,
        f32::MIN_POSITIVE,
        -f32::MIN_POSITIVE,
        1.1754942e-38, // largest subnormal
        -3.4e38,
    ];
    let x = seed
        .wrapping_add(k as u64)
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    if x.is_multiple_of(17) {
        SPIKES[(x >> 32) as usize % SPIKES.len()]
    } else {
        ((x >> 33) as i32 % 2_000_001) as f32 * 1e-3
    }
}

fn build(
    seed: u64,
    n_users: usize,
    n_items: usize,
    d_own: usize,
    d_soc: usize,
    alpha: f32,
) -> EmbeddingSnapshot {
    let mut k = 0usize;
    let mut next = |r: usize, c: usize| {
        let _ = (r, c);
        k += 1;
        awkward(seed, k)
    };
    EmbeddingSnapshot::new(
        alpha,
        Matrix::from_fn(n_users, d_own, &mut next),
        Matrix::from_fn(n_items, d_own, &mut next),
        Matrix::from_fn(n_users, d_soc, &mut next),
        Matrix::from_fn(n_items, d_soc, &mut next),
    )
}

fn table_bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_snapshots_roundtrip_bit_identically(
        seed in 0u64..1 << 48,
        alpha in 0.0f32..=1.0,
        dims in (0usize..=6, 0usize..=7, 0usize..=5, 0usize..=4),
    ) {
        let (n_users, n_items, d_own, d_soc) = dims;
        let snap = build(seed, n_users, n_items, d_own, d_soc, alpha);
        let mut buf = Vec::new();
        save_snapshot(&snap, &mut buf).unwrap();
        let back = load_snapshot(buf.as_slice()).unwrap();
        prop_assert_eq!(back.alpha().to_bits(), snap.alpha().to_bits());
        prop_assert_eq!(table_bits(back.user_own()), table_bits(snap.user_own()));
        prop_assert_eq!(table_bits(back.item_own()), table_bits(snap.item_own()));
        prop_assert_eq!(table_bits(back.user_social()), table_bits(snap.user_social()));
        prop_assert_eq!(table_bits(back.item_social()), table_bits(snap.item_social()));
        prop_assert_eq!(back.n_users(), n_users);
        prop_assert_eq!(back.n_items(), n_items);
    }

    #[test]
    fn truncated_streams_error_instead_of_panicking(
        seed in 0u64..1 << 48,
        cut_frac in 0.0f32..1.0,
    ) {
        let snap = build(seed, 3, 4, 3, 2, 0.5);
        let mut buf = Vec::new();
        save_snapshot(&snap, &mut buf).unwrap();
        let cut = ((buf.len() as f32 * cut_frac) as usize).min(buf.len() - 1);
        buf.truncate(cut);
        prop_assert!(
            load_snapshot(buf.as_slice()).is_err(),
            "truncation at {} of {} must be an error",
            cut,
            cut_frac
        );
    }

    #[test]
    fn corrupted_streams_never_panic(
        seed in 0u64..1 << 48,
        pos_frac in 0.0f32..1.0,
        flip in 1u8..=255,
    ) {
        let snap = build(seed, 3, 4, 3, 2, 0.25);
        let mut buf = Vec::new();
        save_snapshot(&snap, &mut buf).unwrap();
        let pos = ((buf.len() as f32 * pos_frac) as usize).min(buf.len() - 1);
        buf[pos] ^= flip;
        // A flipped byte may still decode to a valid snapshot (data-region
        // bits are arbitrary finite floats) — the contract is error-or-ok,
        // never a panic, and an Ok must be structurally sound.
        if let Ok(back) = load_snapshot(buf.as_slice()) {
            prop_assert_eq!(back.user_own().rows(), back.user_social().rows());
            prop_assert_eq!(back.item_own().rows(), back.item_social().rows());
        }
    }
}

/// Headers advertising near-overflow table shapes must be rejected (or
/// fail on EOF) without attempting the giant allocation they describe.
#[test]
fn near_overflow_dims_rejected_without_oom() {
    let snap = EmbeddingSnapshot::without_social(Matrix::zeros(2, 2), Matrix::zeros(3, 2));
    let mut buf = Vec::new();
    save_snapshot(&snap, &mut buf).unwrap();
    // user_own shape lives right after magic+version+alpha (12 bytes).
    for (rows, cols) in [
        (u64::MAX, u64::MAX),
        (u64::MAX, 3),
        (1 << 62, 1), // rows*cols*4 overflows u64/usize
        (1 << 40, 1), // representable but astronomically larger than the stream
        (u64::MAX / 4, 1_000_000),
    ] {
        let mut bad = buf.clone();
        bad[12..20].copy_from_slice(&rows.to_le_bytes());
        bad[20..28].copy_from_slice(&cols.to_le_bytes());
        let err = gb_serve::load_snapshot(bad.as_slice());
        assert!(err.is_err(), "rows {rows} cols {cols} must be rejected");
    }
}

/// The zero-user/zero-item universe is a legal snapshot and must survive
/// the full file-format path, not just the in-memory constructor.
#[test]
fn empty_universe_roundtrips() {
    let snap = EmbeddingSnapshot::without_social(Matrix::zeros(0, 3), Matrix::zeros(0, 3));
    let mut buf = Vec::new();
    save_snapshot(&snap, &mut buf).unwrap();
    let back = load_snapshot(buf.as_slice()).unwrap();
    assert_eq!(back.n_users(), 0);
    assert_eq!(back.n_items(), 0);
    assert_eq!(back, snap);
}
