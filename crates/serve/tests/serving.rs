//! End-to-end serving guarantees, exercised with genuinely trained
//! models: snapshot round-trips, offline/online ranking consistency,
//! seen-item filtering, and concurrent-vs-sequential equivalence.

use gb_core::{GbgcnConfig, GbgcnModel};
use gb_data::synth::{generate, SynthConfig};
use gb_data::{Dataset, NegativeSampler};
use gb_eval::topk::reference_topk;
use gb_eval::{EvalProtocol, Scorer};
use gb_models::{Gbmf, GbmfConfig, Recommender, SnapshotSource, TrainConfig};
use gb_serve::{
    load_snapshot, save_snapshot, seen_filter, EngineConfig, QueryEngine, RecommendService,
    ServiceConfig,
};

fn workload() -> Dataset {
    generate(&SynthConfig {
        n_users: 120,
        n_items: 80,
        ..SynthConfig::tiny()
    })
}

fn trained_gbgcn(data: &Dataset) -> GbgcnModel {
    let cfg = GbgcnConfig {
        pretrain_epochs: 3,
        finetune_epochs: 3,
        ..GbgcnConfig::test_config()
    };
    let mut m = GbgcnModel::new(cfg, data);
    m.fit(data);
    m
}

fn trained_gbmf(data: &Dataset) -> Gbmf {
    let cfg = GbmfConfig {
        base: TrainConfig {
            dim: 8,
            epochs: 5,
            batch_size: 128,
            ..Default::default()
        },
        alpha: 0.4,
    };
    let mut m = Gbmf::new(cfg);
    m.fit(data);
    m
}

#[test]
fn trained_snapshot_roundtrips_bit_identically() {
    let data = workload();
    for snap in [
        trained_gbgcn(&data).export_snapshot(),
        trained_gbmf(&data).export_snapshot(),
    ] {
        let mut buf = Vec::new();
        save_snapshot(&snap, &mut buf).unwrap();
        let back = load_snapshot(buf.as_slice()).unwrap();
        assert_eq!(back, snap, "round-trip must be exact");
        // And the reloaded snapshot scores identically.
        let items: Vec<u32> = (0..data.n_items() as u32).collect();
        for user in [0u32, 7, 119] {
            assert_eq!(
                snap.score_items(user, &items),
                back.score_items(user, &items)
            );
        }
    }
}

#[test]
fn served_topk_matches_offline_scorer_ranking() {
    let data = workload();
    let model = trained_gbgcn(&data);
    let snap = model.export_snapshot();
    let engine = QueryEngine::with_config(
        snap,
        EngineConfig {
            // Engine construction rounds block_size up to the kernel lane
            // width (17 → 24 here); 24 still doesn't divide the 80-item
            // catalogue, so the tail block stays exercised.
            block_size: 17,
            ..Default::default()
        },
    );
    let candidates: Vec<u32> = (0..data.n_items() as u32).collect();
    for user in 0..data.n_users() as u32 {
        let served: Vec<(u32, f32)> = engine
            .recommend(user, 10)
            .iter()
            .map(|e| (e.item, e.score))
            .collect();
        // The reference ranking is computed with the *model's own* Scorer
        // impl — this is the offline/online consistency guarantee.
        let offline = reference_topk(&model, user, &candidates, 10);
        assert_eq!(served, offline, "user {user}");
    }
}

#[test]
fn snapshot_scorer_reproduces_eval_protocol_metrics() {
    let data = workload();
    let split = gb_data::split::leave_one_out(&data, 11);
    let mut model = GbgcnModel::new(
        GbgcnConfig {
            pretrain_epochs: 3,
            finetune_epochs: 3,
            ..GbgcnConfig::test_config()
        },
        &split.train,
    );
    model.fit(&split.train);
    let snap = model.export_snapshot();

    let sampler = NegativeSampler::from_dataset(&split.train);
    let protocol = EvalProtocol::exhaustive();
    let from_model = protocol.evaluate(&model, &split.test, &sampler, data.n_items());
    let from_snapshot = protocol.evaluate(&snap, &split.test, &sampler, data.n_items());
    assert_eq!(from_model.per_user_recall, from_snapshot.per_user_recall);
    assert_eq!(from_model.per_user_ndcg, from_snapshot.per_user_ndcg);
}

#[test]
fn seen_items_never_served() {
    let data = workload();
    let model = trained_gbmf(&data);
    let engine = QueryEngine::new(model.export_snapshot())
        .with_seen_filter(seen_filter(&data.build_hetero()));
    let interacted = data.interacted_items();
    for user in 0..data.n_users() as u32 {
        let served = engine.recommend(user, data.n_items());
        for e in served.iter() {
            assert!(
                interacted[user as usize].binary_search(&e.item).is_err(),
                "user {user} was served seen item {}",
                e.item
            );
        }
        assert_eq!(
            served.len(),
            data.n_items() - interacted[user as usize].len(),
            "user {user} should be offered exactly the unseen catalogue"
        );
    }
}

#[test]
fn filtered_serving_matches_reference_over_unseen_candidates() {
    let data = workload();
    let model = trained_gbgcn(&data);
    let engine = QueryEngine::new(model.export_snapshot())
        .with_seen_filter(seen_filter(&data.build_hetero()));
    let interacted = data.interacted_items();
    for user in [0u32, 13, 60, 119] {
        let unseen: Vec<u32> = (0..data.n_items() as u32)
            .filter(|i| interacted[user as usize].binary_search(i).is_err())
            .collect();
        let served: Vec<(u32, f32)> = engine
            .recommend(user, 5)
            .iter()
            .map(|e| (e.item, e.score))
            .collect();
        assert_eq!(
            served,
            reference_topk(&model, user, &unseen, 5),
            "user {user}"
        );
    }
}

#[test]
fn concurrent_batches_equal_sequential_answers() {
    let data = workload();
    let model = trained_gbgcn(&data);
    let snap = model.export_snapshot();

    // Sequential ground truth from a private engine.
    let solo = QueryEngine::new(snap.clone());
    let users: Vec<u32> = (0..data.n_users() as u32).cycle().take(300).collect();
    let expected: Vec<Vec<(u32, f32)>> = users
        .iter()
        .map(|&u| {
            solo.recommend(u, 10)
                .iter()
                .map(|e| (e.item, e.score))
                .collect()
        })
        .collect();

    // Concurrent service with a shared cache: same answers, in order.
    let service = RecommendService::with_config(
        QueryEngine::with_config(
            snap,
            EngineConfig {
                cache_capacity: 32,
                ..Default::default()
            },
        ),
        ServiceConfig {
            workers: 4,
            queue_depth: 8,
            warm_k: 10,
            ..Default::default()
        },
    );
    service.warm(&users[..20]);
    let got = service.recommend_batch(&users, 10);
    for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
        let g: Vec<(u32, f32)> = g.iter().map(|x| (x.item, x.score)).collect();
        assert_eq!(&g, e, "request {i} (user {})", users[i]);
    }
    // Warm-ups must never leak into the serving metrics: only the 300
    // caller-facing batch requests count, and only they carry latency
    // samples (regression for the warm-job metric pollution bug).
    let served = service.requests_served();
    assert_eq!(served, 300, "exactly the batch requests are served");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while service.warmups_served() < 20 && std::time::Instant::now() < deadline {
        std::thread::yield_now();
    }
    assert_eq!(service.warmups_served(), 20, "warm-ups tracked separately");
    let sw = service.latency_stopwatch(); // drains the samples
    assert_eq!(sw.n_samples(), served);
    assert!(sw.mean_secs() >= 0.0);
    assert_eq!(
        service.requests_served(),
        served,
        "requests_served is monotone: draining latency samples must not reset it"
    );
    let sw2 = service.latency_stopwatch();
    assert_eq!(sw2.n_samples(), 0, "samples were drained exactly once");

    let (hits, misses) = service.engine().cache_stats();
    assert!(hits > 0, "cycled users must hit the cache");
    assert!(misses >= data.n_users() as u64 / 2);
}

#[test]
fn single_recommend_through_service_matches_engine() {
    let data = workload();
    let snap = trained_gbmf(&data).export_snapshot();
    let solo = QueryEngine::new(snap.clone());
    let service = RecommendService::start(QueryEngine::new(snap));
    for user in [0u32, 5, 42] {
        assert_eq!(*service.recommend(user, 7), *solo.recommend(user, 7));
    }
}

#[test]
fn warm_is_a_noop_without_a_response_cache() {
    let data = workload();
    let snap = trained_gbmf(&data).export_snapshot();
    // Default EngineConfig has no cache: warming would be discarded work.
    let service = RecommendService::start(QueryEngine::new(snap));
    service.warm(&[0, 1, 2, 3]);
    let answer = service.recommend(0, 5); // forces the queue to drain past warm
    assert_eq!(answer.len(), 5);
    assert_eq!(
        service.requests_served(),
        1,
        "only the real query should have hit the workers"
    );
}

#[test]
fn out_of_range_user_rejected_without_killing_workers() {
    let data = workload();
    let snap = trained_gbmf(&data).export_snapshot();
    let service = RecommendService::with_config(
        QueryEngine::new(snap),
        ServiceConfig {
            workers: 1,
            ..Default::default()
        },
    );
    let bad = data.n_users() as u32 + 3;
    let panicked =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| service.recommend(bad, 5)))
            .is_err();
    assert!(panicked, "out-of-range user must be rejected");
    // The rejection happened on the caller's thread: the single worker
    // is still alive and serving.
    assert_eq!(service.recommend(0, 5).len(), 5);
    let also_panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        service.recommend_batch(&[0, bad], 5)
    }))
    .is_err();
    assert!(also_panicked, "batch must validate every user up front");
    assert_eq!(service.recommend(1, 5).len(), 5);
}
