//! Integration: a trainer publishing mid-run snapshots into a live
//! service. The served top-K must follow the hot-swapped embeddings with
//! no restart and no stale-cache hits across the version boundary.

use gb_core::{GbgcnConfig, GbgcnModel, ParallelTrainConfig};
use gb_data::synth::{generate, SynthConfig};
use gb_data::Dataset;
use gb_eval::topk::reference_topk;
use gb_models::{SnapshotHandle, SnapshotSource};
use gb_serve::{EngineConfig, QueryEngine, RecommendService, ServiceConfig};

fn workload() -> Dataset {
    generate(&SynthConfig {
        n_users: 80,
        n_items: 60,
        ..SynthConfig::tiny()
    })
}

#[test]
fn mid_training_refresh_is_served_hot_with_cache_invalidation() {
    let data = workload();
    let users: Vec<u32> = (0..10).collect();
    let candidates: Vec<u32> = (0..data.n_items() as u32).collect();

    // A briefly-trained model seeds the handle (version 1)...
    let mut seed_model = GbgcnModel::new(
        GbgcnConfig {
            pretrain_epochs: 1,
            finetune_epochs: 1,
            ..GbgcnConfig::test_config()
        },
        &data,
    );
    seed_model.fit_parallel(&data, &ParallelTrainConfig::serial(), None);
    let v1_snapshot = seed_model.export_snapshot();
    let handle = SnapshotHandle::new(v1_snapshot.clone());

    // ...which a cached, threaded service starts serving immediately.
    let service = RecommendService::with_config(
        QueryEngine::with_handle(
            handle.clone(),
            EngineConfig {
                cache_capacity: 64,
                ..Default::default()
            },
        ),
        ServiceConfig {
            workers: 2,
            ..Default::default()
        },
    );
    for &u in &users {
        let (ver, got) = service.recommend_versioned(u, 10);
        assert_eq!(ver, 1);
        let got: Vec<(u32, f32)> = got.iter().map(|e| (e.item, e.score)).collect();
        assert_eq!(got, reference_topk(&v1_snapshot, u, &candidates, 10));
    }
    // Second pass: all v1 answers now come from the cache.
    for &u in &users {
        service.recommend(u, 10);
    }
    assert_eq!(
        service.engine().cache_stats(),
        (users.len() as u64, users.len() as u64)
    );

    // Mid-run refresh: a longer training run publishes every 2 fine-tune
    // epochs (and once at the end) into the live handle — no restart.
    let mut trainer = GbgcnModel::new(
        GbgcnConfig {
            pretrain_epochs: 2,
            finetune_epochs: 4,
            seed: 99,
            ..GbgcnConfig::test_config()
        },
        &data,
    );
    trainer.fit_parallel(
        &data,
        &ParallelTrainConfig::with_threads(2).refresh_every(2),
        Some(&handle),
    );
    // Publishes after epochs 2 and 4; the final export is skipped since
    // the epoch-4 cadence publish already froze the finished model: 1+2.
    let final_version = handle.version();
    assert_eq!(final_version, 3);

    // Served top-K now matches the offline reference on the *new*
    // embeddings, element for element.
    let refreshed = trainer.export_snapshot();
    for &u in &users {
        let (ver, got) = service.recommend_versioned(u, 10);
        assert_eq!(ver, final_version, "must serve the latest publish");
        let got: Vec<(u32, f32)> = got.iter().map(|e| (e.item, e.score)).collect();
        assert_eq!(
            got,
            reference_topk(&refreshed, u, &candidates, 10),
            "user {u}: hot-swapped response must equal the offline top-K"
        );
    }
    // The version boundary invalidated every cached v1 response: the 10
    // post-swap queries were all misses, not stale hits.
    assert_eq!(
        service.engine().cache_stats(),
        (users.len() as u64, 2 * users.len() as u64)
    );
    // And repeat queries against the new version hit again.
    let (ver, _) = service.recommend_versioned(users[0], 10);
    assert_eq!(ver, final_version);
    assert_eq!(
        service.engine().cache_stats(),
        (users.len() as u64 + 1, 2 * users.len() as u64)
    );
}

#[test]
fn every_published_cadence_version_is_observable_between_epochs() {
    // Drive the refresh cadence manually (publish per epoch via
    // refresh_every = 1) and check the handle's version and tables move
    // in lockstep with a service reading them.
    let data = workload();
    let mut warm = GbgcnModel::new(
        GbgcnConfig {
            pretrain_epochs: 1,
            finetune_epochs: 1,
            ..GbgcnConfig::test_config()
        },
        &data,
    );
    warm.fit_parallel(&data, &ParallelTrainConfig::serial(), None);
    let handle = SnapshotHandle::new(warm.export_snapshot());
    let service = RecommendService::start(QueryEngine::with_handle(
        handle.clone(),
        EngineConfig::default(),
    ));

    let mut trainer = GbgcnModel::new(
        GbgcnConfig {
            pretrain_epochs: 0,
            finetune_epochs: 3,
            seed: 7,
            ..GbgcnConfig::test_config()
        },
        &data,
    );
    trainer.fit_parallel(
        &data,
        &ParallelTrainConfig::with_threads(2).refresh_every(1),
        Some(&handle),
    );
    // 3 per-epoch publishes on top of version 1; no redundant final
    // (the epoch-3 publish is the finished model).
    assert_eq!(handle.version(), 4);
    let (ver, got) = service.recommend_versioned(3, 5);
    assert_eq!(ver, 4);
    let candidates: Vec<u32> = (0..data.n_items() as u32).collect();
    let expect = reference_topk(&trainer.export_snapshot(), 3, &candidates, 5);
    let got: Vec<(u32, f32)> = got.iter().map(|e| (e.item, e.score)).collect();
    assert_eq!(got, expect);
}
