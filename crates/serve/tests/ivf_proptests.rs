//! Property tests for the IVF approximate retrieval layer (PR 5):
//!
//! * `Retrieval::Ivf` with `n_probe = n_clusters` is **bit-identical** to
//!   `Retrieval::Exact` — for `recommend` and `recommend_many`, across
//!   block sizes, user blocks, cluster counts, and a concurrent publish
//!   (the index must be rebuilt, not served stale).
//! * Partial probes always return a subset of the exact ranking with
//!   bit-identical scores, and recall on a *clustered* catalogue (the
//!   regime IVF exists for) stays high at a small probe fraction.

use gb_eval::metrics::recall_vs_exact;
use gb_models::EmbeddingSnapshot;
use gb_serve::{EngineConfig, QueryEngine, Retrieval, ScoredItem};
use gb_tensor::Matrix;
use proptest::prelude::*;
use std::sync::Arc;

/// A deterministic synthetic snapshot; `tag` varies the tables so a
/// publish visibly changes every score.
fn snapshot(tag: u64, n_users: usize, n_items: usize, d: usize) -> EmbeddingSnapshot {
    let t = tag as f32;
    EmbeddingSnapshot::new(
        0.4,
        Matrix::from_fn(n_users, d, |r, c| ((r * 7 + c * 3) as f32 * 0.17 + t).sin()),
        Matrix::from_fn(n_items, d, |r, c| ((r * 5 + c) as f32 * 0.31 - t).cos()),
        Matrix::from_fn(n_users, d, |r, c| ((r + c * 11) as f32 * 0.13 + t).sin()),
        Matrix::from_fn(n_items, d, |r, c| ((r * 3 + c * 2) as f32 * 0.23 + t).cos()),
    )
}

fn pairs(items: &Arc<Vec<ScoredItem>>) -> Vec<(u32, u32)> {
    items.iter().map(|e| (e.item, e.score.to_bits())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The tentpole exactness envelope: probing every cell routes the
    /// query through k-means centroids, inverted lists, and the gathered
    /// scoring kernel — and still reproduces the exhaustive catalogue
    /// walk bit-for-bit, before and after a hot publish.
    #[test]
    fn ivf_full_probe_is_bitwise_exact(
        seed in 0u64..1 << 32,
        block_size in 8usize..=96,
        user_block in 1usize..=8,
        k in 1usize..=12,
        n_clusters in 1usize..=12,
        users in proptest::collection::vec(0u32..40, 1..16),
    ) {
        let v1 = snapshot(seed % 5, 40, 137, 8);
        let v2 = snapshot(seed % 5 + 1, 40, 137, 8);
        let exact = QueryEngine::new(v1.clone());
        let ivf = QueryEngine::with_config(
            v1,
            EngineConfig {
                block_size,
                user_block,
                retrieval: Retrieval::Ivf { n_clusters, n_probe: n_clusters },
                ..Default::default()
            },
        );

        for &user in &users {
            prop_assert_eq!(
                pairs(&ivf.recommend(user, k)),
                pairs(&exact.recommend(user, k)),
                "pre-publish user {} (clusters {})", user, n_clusters
            );
        }
        let (_, many) = ivf.recommend_many(&users, k);
        for (slot, &user) in users.iter().enumerate() {
            prop_assert_eq!(
                pairs(&many[slot]),
                pairs(&exact.recommend(user, k)),
                "pre-publish batched user {}", user
            );
        }

        // Publish to both engines: the IVF index must be rebuilt for the
        // new version, never served stale.
        exact.handle().publish(v2.clone());
        ivf.handle().publish(v2);
        for &user in &users {
            prop_assert_eq!(
                pairs(&ivf.recommend(user, k)),
                pairs(&exact.recommend(user, k)),
                "post-publish user {}", user
            );
        }
        prop_assert_eq!(ivf.ivf_index_version(), Some(2));
    }

    /// Partial probes prune candidates but never perturb them: every
    /// returned item carries the exact pass's bit-identical score and the
    /// returned order embeds into the exact full ranking.
    #[test]
    fn ivf_partial_probe_embeds_into_exact_ranking(
        seed in 0u64..1 << 32,
        n_clusters in 2usize..=12,
        n_probe in 1usize..=12,
        user in 0u32..40,
        k in 1usize..=20,
    ) {
        let snap = snapshot(seed % 9, 40, 150, 8);
        let exact = QueryEngine::new(snap.clone());
        let ivf = QueryEngine::with_config(
            snap,
            EngineConfig {
                retrieval: Retrieval::Ivf { n_clusters, n_probe },
                ..Default::default()
            },
        );
        let full = exact.recommend(user, 150);
        let approx = ivf.recommend(user, k);
        let mut last_pos = 0usize;
        for e in approx.iter() {
            let pos = full.iter().position(|f| f.item == e.item);
            prop_assert!(pos.is_some(), "item {} not in the exact ranking", e.item);
            let pos = pos.expect("checked");
            prop_assert_eq!(e.score.to_bits(), full[pos].score.to_bits());
            prop_assert!(pos >= last_pos, "order must embed into the exact ranking");
            last_pos = pos;
        }
    }
}

/// A catalogue with genuine cluster structure — `n_cats` latent
/// categories, items = category center + small noise. This is the regime
/// IVF targets: real item embeddings are clustered, and the cells k-means
/// recovers route most of any user's top-K into a few lists.
fn clustered_snapshot(
    n_users: usize,
    n_items: usize,
    d: usize,
    n_cats: usize,
) -> EmbeddingSnapshot {
    let center = |cat: usize, c: usize| ((cat * 31 + c * 17) as f32 * 0.73).sin();
    let noise = |r: usize, c: usize| ((r * 13 + c * 7) as f32 * 0.37).sin() * 0.12;
    EmbeddingSnapshot::new(
        0.4,
        Matrix::from_fn(n_users, d, |r, c| ((r * 7 + c * 3) as f32 * 0.29).sin()),
        Matrix::from_fn(n_items, d, |r, c| center(r % n_cats, c) + noise(r, c)),
        Matrix::from_fn(n_users, d, |r, c| ((r + c * 11) as f32 * 0.19).cos()),
        Matrix::from_fn(n_items, d, |r, c| {
            center(r % n_cats, c + d) + noise(r + n_items, c)
        }),
    )
}

/// Recall@10 of partial-probe IVF against exact serving on clustered
/// data. Fully deterministic (fixed tables, seeded k-means), so the
/// asserted floor is stable, not flaky.
#[test]
fn ivf_recall_stays_high_on_clustered_catalogue() {
    let snap = clustered_snapshot(24, 2000, 16, 16);
    let exact = QueryEngine::new(snap.clone());
    let ivf = QueryEngine::with_config(
        snap,
        EngineConfig {
            retrieval: Retrieval::Ivf {
                n_clusters: 16,
                n_probe: 4,
            },
            ..Default::default()
        },
    );
    let mut total = 0.0f64;
    for user in 0..24u32 {
        let e: Vec<u32> = exact.recommend(user, 10).iter().map(|x| x.item).collect();
        let a: Vec<u32> = ivf.recommend(user, 10).iter().map(|x| x.item).collect();
        total += recall_vs_exact(&e, &a) as f64;
    }
    let recall = total / 24.0;
    assert!(
        recall >= 0.95,
        "recall@10 {recall} below 0.95 at a 4/16 probe fraction"
    );
}

/// The cache composes with IVF exactly as with exact retrieval: entries
/// are keyed by version, hits are pointer-equal, and a publish makes the
/// old entries unreachable.
#[test]
fn ivf_results_cache_and_invalidate_by_version() {
    let v1 = snapshot(1, 10, 90, 8);
    let v2 = snapshot(2, 10, 90, 8);
    let engine = QueryEngine::with_config(
        v1,
        EngineConfig {
            cache_capacity: 8,
            retrieval: Retrieval::Ivf {
                n_clusters: 5,
                n_probe: 2,
            },
            ..Default::default()
        },
    );
    let first = engine.recommend(3, 5);
    let second = engine.recommend(3, 5);
    assert!(Arc::ptr_eq(&first, &second), "second query is a cache hit");
    assert_eq!(engine.cache_stats(), (1, 1));
    engine.handle().publish(v2);
    let fresh = engine.recommend(3, 5);
    assert!(
        !Arc::ptr_eq(&first, &fresh),
        "a v1 response must not serve v2"
    );
    assert_eq!(engine.cache_stats(), (1, 2));
}
