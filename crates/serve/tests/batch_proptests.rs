//! Property tests for PR 4's serving fixes and batched path:
//!
//! * [`LruCache`] against a naive reference model over arbitrary
//!   insert/get/clear sequences — contents, eviction order, and counters
//!   all agree.
//! * `QueryEngine::recommend_many` and the service coalescer
//!   (`recommend_batch`) against sequential `recommend` — bitwise, across
//!   user-block sizes 1–8 and across a concurrent publish.

use gb_models::EmbeddingSnapshot;
use gb_serve::{EngineConfig, LruCache, QueryEngine, RecommendService, ScoredItem, ServiceConfig};
use gb_tensor::Matrix;
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// LruCache vs a naive reference model
// ---------------------------------------------------------------------------

/// The obviously-correct model: a recency-ordered Vec (front = most
/// recently used), linear scans everywhere.
struct NaiveLru {
    capacity: usize,
    entries: Vec<(u8, u32)>,
    hits: u64,
    misses: u64,
}

impl NaiveLru {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    fn get(&mut self, key: u8) -> Option<u32> {
        match self.entries.iter().position(|e| e.0 == key) {
            Some(at) => {
                self.hits += 1;
                let e = self.entries.remove(at);
                let v = e.1;
                self.entries.insert(0, e);
                Some(v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: u8, value: u32) {
        if let Some(at) = self.entries.iter().position(|e| e.0 == key) {
            self.entries.remove(at);
        } else if self.entries.len() == self.capacity {
            self.entries.pop(); // evict the back = LRU
        }
        self.entries.insert(0, (key, value));
    }

    fn clear(&mut self) {
        self.entries.clear();
    }
}

/// One scripted cache operation, decoded from raw proptest bytes.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u8, u32),
    Get(u8),
    Clear,
}

fn decode_ops(raw: &[(u8, u8, u32)]) -> Vec<Op> {
    raw.iter()
        .map(|&(sel, key, value)| match sel % 8 {
            // Clear is rare (1 in 8): mostly exercise insert/get churn.
            0..=3 => Op::Insert(key, value),
            4..=6 => Op::Get(key),
            _ => Op::Clear,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lru_matches_naive_model(
        capacity in 1usize..=9,
        raw in proptest::collection::vec((0u8..=255, 0u8..=24, 0u32..1000), 0..120),
    ) {
        let mut real = LruCache::new(capacity);
        let mut naive = NaiveLru::new(capacity);
        for op in decode_ops(&raw) {
            match op {
                Op::Insert(k, v) => {
                    real.insert(k, v);
                    naive.insert(k, v);
                }
                Op::Get(k) => {
                    prop_assert_eq!(real.get(&k).copied(), naive.get(k), "get({})", k);
                }
                Op::Clear => {
                    real.clear();
                    naive.clear();
                }
            }
            prop_assert_eq!(real.len(), naive.entries.len());
            prop_assert!(real.len() <= capacity);
            prop_assert_eq!(real.is_empty(), naive.entries.is_empty());
            prop_assert_eq!(real.stats(), (naive.hits, naive.misses));
        }
        // Final sweep: every key the model holds is retrievable with the
        // model's value; every key it evicted is gone.
        for key in 0u8..=24 {
            let expect = naive.entries.iter().find(|e| e.0 == key).map(|e| e.1);
            prop_assert_eq!(real.get(&key).copied(), expect, "final get({})", key);
        }
    }
}

// ---------------------------------------------------------------------------
// recommend_many / recommend_batch == sequential recommend, bitwise
// ---------------------------------------------------------------------------

/// A deterministic synthetic snapshot; `tag` varies the tables so a
/// publish visibly changes every score.
fn snapshot(tag: u64, n_users: usize, n_items: usize, d: usize) -> EmbeddingSnapshot {
    let t = tag as f32;
    EmbeddingSnapshot::new(
        0.4,
        Matrix::from_fn(n_users, d, |r, c| ((r * 7 + c * 3) as f32 * 0.17 + t).sin()),
        Matrix::from_fn(n_items, d, |r, c| ((r * 5 + c) as f32 * 0.31 - t).cos()),
        Matrix::from_fn(n_users, d, |r, c| ((r + c * 11) as f32 * 0.13 + t).sin()),
        Matrix::from_fn(n_items, d, |r, c| ((r * 3 + c * 2) as f32 * 0.23 + t).cos()),
    )
}

fn pairs(items: &Arc<Vec<ScoredItem>>) -> Vec<(u32, u32)> {
    items.iter().map(|e| (e.item, e.score.to_bits())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn recommend_many_is_bitwise_sequential_across_user_blocks(
        seed in 0u64..1 << 32,
        user_block in 1usize..=8,
        block_size in 8usize..=96,
        k in 1usize..=12,
        users in proptest::collection::vec(0u32..40, 1..20),
        cached in 0u8..2,
    ) {
        let snap = snapshot(seed % 5, 40, 137, 8);
        let sequential = QueryEngine::new(snap.clone());
        let batched = QueryEngine::with_config(
            snap,
            EngineConfig {
                block_size,
                user_block,
                cache_capacity: if cached == 1 { 8 } else { 0 },
                ..Default::default()
            },
        );
        let (_, many) = batched.recommend_many(&users, k);
        for (slot, &user) in users.iter().enumerate() {
            let solo = sequential.recommend(user, k);
            prop_assert_eq!(
                pairs(&many[slot]),
                pairs(&solo),
                "user {} (user_block {}, block_size {})",
                user,
                user_block,
                block_size
            );
        }
    }

    #[test]
    fn coalesced_service_is_bitwise_sequential_across_a_publish(
        seed in 0u64..1 << 32,
        user_block in 1usize..=8,
        k in 1usize..=10,
        users in proptest::collection::vec(0u32..30, 1..24),
        publish_at in 0usize..24,
    ) {
        let v1 = snapshot(seed % 7, 30, 90, 8);
        let v2 = snapshot(seed % 7 + 1, 30, 90, 8);
        // Sequential ground truth per version, from private engines.
        let solo_v1 = QueryEngine::new(v1.clone());
        let solo_v2 = QueryEngine::new(v2.clone());

        let service = RecommendService::with_config(
            QueryEngine::with_config(
                v1,
                EngineConfig {
                    user_block,
                    cache_capacity: 16,
                    ..Default::default()
                },
            ),
            ServiceConfig {
                workers: 2,
                queue_depth: 32,
                warm_k: 5,
                ..Default::default()
            },
        );

        // Fire the batch, publishing mid-stream: every response must be
        // bitwise identical to a sequential query against whichever
        // version the engine pinned for it.
        let mut answers = Vec::with_capacity(users.len());
        for (i, &user) in users.iter().enumerate() {
            if i == publish_at.min(users.len() - 1) {
                service.engine().handle().publish(v2.clone());
            }
            answers.push(service.recommend_versioned(user, k));
        }
        for (&user, (version, got)) in users.iter().zip(&answers) {
            let solo = match *version {
                1 => solo_v1.recommend(user, k),
                2 => solo_v2.recommend(user, k),
                v => panic!("unexpected version {v}"),
            };
            prop_assert_eq!(pairs(got), pairs(&solo), "user {} version {}", user, version);
        }
    }
}

/// The coalescer proper: saturate the queue from many threads so workers
/// actually drain multi-user groups, then check every reply bitwise.
#[test]
fn saturated_coalescer_answers_match_sequential_bitwise() {
    let snap = snapshot(3, 24, 120, 8);
    let sequential = QueryEngine::new(snap.clone());
    let service = RecommendService::with_config(
        QueryEngine::with_config(
            snap,
            EngineConfig {
                user_block: 8,
                ..Default::default()
            },
        ),
        ServiceConfig {
            workers: 2,
            queue_depth: 64,
            warm_k: 5,
            ..Default::default()
        },
    );
    let users: Vec<u32> = (0..24u32).cycle().take(192).collect();
    let got = service.recommend_batch(&users, 10);
    for (slot, &user) in users.iter().enumerate() {
        assert_eq!(
            pairs(&got[slot]),
            pairs(&sequential.recommend(user, 10)),
            "user {user}"
        );
    }
    assert_eq!(service.requests_served(), 192);
    let sw = service.latency_stopwatch();
    assert_eq!(sw.n_samples(), 192);
    assert_eq!(
        service.requests_served(),
        192,
        "draining latencies must not reset the served counter"
    );
}
