//! Property tests for the sharded scatter-gather tier: at any shard
//! count (1–8), over arbitrary snapshots, seen-filters, retrieval modes
//! with exact semantics, and concurrent publishes, [`ShardedEngine`]
//! answers **bitwise identically** to a single unsharded [`QueryEngine`]
//! — same items, same score bits, same order.
//!
//! IVF is tested at full probe (`n_probe = n_clusters`), where the
//! per-shard candidate sets are exhaustive by construction. At *partial*
//! probe a sharded deployment clusters each shard independently, so its
//! candidate sets legitimately differ from a single-engine build's; that
//! regime is approximate on both sides and carries no bitwise contract.

use gb_graph::BitMatrix;
use gb_models::EmbeddingSnapshot;
use gb_serve::{
    EngineConfig, QueryEngine, Retrieval, ScoredItem, ShardedConfig, ShardedEngine, SnapshotHandle,
};
use gb_tensor::Matrix;
use proptest::prelude::*;
use std::sync::Arc;

/// A deterministic synthetic snapshot; `tag` varies the tables so a
/// publish visibly changes every score.
fn snapshot(tag: u64, n_users: usize, n_items: usize, d: usize) -> EmbeddingSnapshot {
    let t = tag as f32;
    EmbeddingSnapshot::new(
        0.4,
        Matrix::from_fn(n_users, d, |r, c| ((r * 7 + c * 3) as f32 * 0.17 + t).sin()),
        Matrix::from_fn(n_items, d, |r, c| ((r * 5 + c) as f32 * 0.31 - t).cos()),
        Matrix::from_fn(n_users, d, |r, c| ((r + c * 11) as f32 * 0.13 + t).sin()),
        Matrix::from_fn(n_items, d, |r, c| ((r * 3 + c * 2) as f32 * 0.23 + t).cos()),
    )
}

fn pairs(items: &Arc<Vec<ScoredItem>>) -> Vec<(u32, u32)> {
    items.iter().map(|e| (e.item, e.score.to_bits())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_recommend_is_bitwise_single_engine(
        tag in 0u64..6,
        n_shards in 1usize..=8,
        n_items in 1usize..=160,
        k in 1usize..=20,
        parallel in 0u8..2,
    ) {
        let snap = snapshot(tag, 12, n_items, 8);
        let single = QueryEngine::new(snap.clone());
        let sharded = ShardedEngine::with_config(
            snap,
            ShardedConfig {
                n_shards,
                parallel_scatter: parallel == 1,
                ..Default::default()
            },
        );
        for user in 0..12u32 {
            prop_assert_eq!(
                pairs(&sharded.recommend(user, k)),
                pairs(&single.recommend(user, k)),
                "user {} shards {} items {}",
                user,
                n_shards,
                n_items
            );
        }
    }

    #[test]
    fn sharded_full_probe_ivf_is_bitwise_exact_single_engine(
        tag in 0u64..6,
        n_shards in 1usize..=6,
        n_clusters in 1usize..=12,
        k in 1usize..=15,
    ) {
        let snap = snapshot(tag, 8, 120, 8);
        // Ground truth: an exact single engine. Full probe makes IVF
        // exact, per shard and unsharded alike.
        let single = QueryEngine::new(snap.clone());
        let sharded = ShardedEngine::with_config(
            snap,
            ShardedConfig {
                n_shards,
                engine: EngineConfig {
                    retrieval: Retrieval::Ivf {
                        n_clusters,
                        n_probe: n_clusters,
                    },
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        for user in 0..8u32 {
            prop_assert_eq!(
                pairs(&sharded.recommend(user, k)),
                pairs(&single.recommend(user, k)),
                "user {} shards {} clusters {}",
                user,
                n_shards,
                n_clusters
            );
        }
    }

    #[test]
    fn sharded_recommend_many_is_bitwise_single_engine(
        tag in 0u64..6,
        n_shards in 1usize..=8,
        k in 1usize..=12,
        users in proptest::collection::vec(0u32..15, 1..24),
    ) {
        let snap = snapshot(tag, 15, 101, 8);
        let single = QueryEngine::new(snap.clone());
        let sharded = ShardedEngine::new(snap, n_shards);
        let (_, many) = sharded.recommend_many(&users, k);
        let (_, solo_many) = single.recommend_many(&users, k);
        for (slot, &user) in users.iter().enumerate() {
            prop_assert_eq!(
                pairs(&many[slot]),
                pairs(&solo_many[slot]),
                "user {} slot {} shards {}",
                user,
                slot,
                n_shards
            );
        }
    }

    #[test]
    fn sharded_seen_filter_matches_global_filter(
        tag in 0u64..6,
        n_shards in 1usize..=8,
        k in 1usize..=90,
        seen in proptest::collection::vec((0u32..10, 0usize..90), 0..60),
    ) {
        let snap = snapshot(tag, 10, 90, 6);
        let mut filter = BitMatrix::zeros(10, 90);
        for &(user, item) in &seen {
            filter.set(user as usize, item);
        }
        let single = QueryEngine::new(snap.clone()).with_seen_filter(filter.clone());
        let sharded = ShardedEngine::new(snap, n_shards).with_seen_filter(filter);
        for user in 0..10u32 {
            prop_assert_eq!(
                pairs(&sharded.recommend(user, k)),
                pairs(&single.recommend(user, k)),
                "user {} shards {}",
                user,
                n_shards
            );
        }
    }

    #[test]
    fn responses_pin_one_version_across_interleaved_publishes(
        tag in 0u64..4,
        n_shards in 2usize..=6,
        k in 1usize..=10,
        users in proptest::collection::vec(0u32..10, 1..20),
        publish_at in 0usize..20,
    ) {
        let v1 = snapshot(tag, 10, 77, 8);
        let v2 = snapshot(tag + 1, 10, 77, 8);
        let solo_v1 = QueryEngine::new(v1.clone());
        let solo_v2 = QueryEngine::new(v2.clone());
        let sharded = ShardedEngine::new(v1, n_shards);
        let mut answers = Vec::with_capacity(users.len());
        for (i, &user) in users.iter().enumerate() {
            if i == publish_at.min(users.len() - 1) {
                sharded.publish(v2.clone());
            }
            answers.push(sharded.recommend_versioned(user, k));
        }
        for (&user, (version, got)) in users.iter().zip(&answers) {
            let solo = match *version {
                1 => solo_v1.recommend(user, k),
                2 => solo_v2.recommend(user, k),
                v => panic!("unexpected version {v}"),
            };
            prop_assert_eq!(pairs(got), pairs(&solo), "user {} version {}", user, version);
        }
    }
}

/// A publisher thread races a stream of queries: every response must be
/// bitwise identical to a single-engine answer for *its* reported
/// version — a scatter must never mix shard answers from two versions.
#[test]
fn concurrent_publishes_never_tear_a_scatter() {
    const VERSIONS: u64 = 6;
    let solos: Vec<QueryEngine> = (0..VERSIONS)
        .map(|tag| QueryEngine::new(snapshot(tag, 12, 96, 8)))
        .collect();
    let sharded = ShardedEngine::with_handle(
        SnapshotHandle::new(snapshot(0, 12, 96, 8)),
        ShardedConfig {
            n_shards: 4,
            ..Default::default()
        },
    );

    std::thread::scope(|scope| {
        let sharded = &sharded;
        let publisher = scope.spawn(move || {
            for tag in 1..VERSIONS {
                std::thread::sleep(std::time::Duration::from_millis(2));
                sharded.publish(snapshot(tag, 12, 96, 8));
            }
        });
        for round in 0..60u32 {
            let user = round % 12;
            let (version, got) = sharded.recommend_versioned(user, 10);
            // Version v serves the tables of tag v-1.
            let solo = solos[(version - 1) as usize].recommend(user, 10);
            assert_eq!(
                pairs(&got),
                pairs(&solo),
                "user {user} version {version} round {round}"
            );
            let users: Vec<u32> = (0..12).map(|i| (round + i) % 12).collect();
            let (version, many) = sharded.recommend_many(&users, 7);
            for (slot, &u) in users.iter().enumerate() {
                let solo = solos[(version - 1) as usize].recommend(u, 7);
                assert_eq!(
                    pairs(&many[slot]),
                    pairs(&solo),
                    "batched user {u} v{version}"
                );
            }
        }
        publisher.join().expect("publisher");
    });
    assert_eq!(sharded.handle().load().version(), VERSIONS);
}
