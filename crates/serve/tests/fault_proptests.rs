//! Fault-path tests: the typed-error surface, worker supervision, load
//! shedding, queue deadlines, degraded scatter-gather, and the atomic
//! cross-shard deal-filter install — all driven by the deterministic
//! [`FaultPlan`] harness, no timing-dependent flakiness in the
//! pass/fail conditions.
//!
//! The contracts pinned here:
//!
//! * A scoring panic is **caught**, surfaces as [`ServeError::Poisoned`]
//!   to exactly the affected caller, and leaves the engine, the worker
//!   pool, and every lock fully serviceable — the next query answers
//!   bitwise identically to an unfaulted engine.
//! * Shed and expired requests get their typed error immediately, are
//!   counted on their own counters, and **never** contaminate the
//!   served-latency percentiles ([`RecommendService::latency_stopwatch`]
//!   samples == requests served, always).
//! * A failed shard either heals in-query (retry), degrades the
//!   response with its id listed (policy on), or fails the query with
//!   [`ServeError::ShardFailed`] (policy off) — and a degraded merge is
//!   bitwise the reference ranking over the surviving shards' items.
//! * Concurrent deal-filter installs and scatters never produce a
//!   mixed-generation candidate mask: every response reflects exactly
//!   one installed filter, even with an injected delay widening the
//!   prepare→install window.

use gb_eval::topk::reference_topk;
use gb_graph::BitMatrix;
use gb_models::EmbeddingSnapshot;
use gb_serve::{
    EngineConfig, FaultPlan, QueryEngine, RecommendService, ScoredItem, ServeError, ServiceConfig,
    ShardPlan, ShardedConfig, ShardedEngine,
};
use gb_tensor::Matrix;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// A deterministic synthetic snapshot; `tag` varies the tables.
fn snapshot(tag: u64, n_users: usize, n_items: usize, d: usize) -> EmbeddingSnapshot {
    let t = tag as f32;
    EmbeddingSnapshot::new(
        0.4,
        Matrix::from_fn(n_users, d, |r, c| ((r * 7 + c * 3) as f32 * 0.17 + t).sin()),
        Matrix::from_fn(n_items, d, |r, c| ((r * 5 + c) as f32 * 0.31 - t).cos()),
        Matrix::from_fn(n_users, d, |r, c| ((r + c * 11) as f32 * 0.13 + t).sin()),
        Matrix::from_fn(n_items, d, |r, c| ((r * 3 + c * 2) as f32 * 0.23 + t).cos()),
    )
}

fn pairs(items: &Arc<Vec<ScoredItem>>) -> Vec<(u32, u32)> {
    items.iter().map(|e| (e.item, e.score.to_bits())).collect()
}

/// Single-threaded deterministic service: one worker, no coalescing.
fn serial_service_cfg() -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        coalesce_cap: 1,
        ..Default::default()
    }
}

fn serial_engine_cfg() -> EngineConfig {
    EngineConfig {
        user_block: 1,
        cache_capacity: 0,
        ..Default::default()
    }
}

// ---------------------------------------------------------------------
// Engine tier: typed validation + caught panics.
// ---------------------------------------------------------------------

#[test]
fn engine_rejects_out_of_range_user_with_typed_error() {
    let engine = QueryEngine::new(snapshot(0, 4, 30, 4));
    match engine.try_recommend(9, 5) {
        Err(ServeError::InvalidRequest { reason }) => {
            assert!(reason.contains("out of range"), "reason: {reason}");
        }
        other => panic!("expected InvalidRequest, got {other:?}"),
    }
    let errs = [
        engine.try_recommend_batch(&[0, 9], 5).unwrap_err(),
        engine.try_recommend_versioned(9, 5).unwrap_err(),
    ];
    for e in errs {
        assert!(matches!(e, ServeError::InvalidRequest { .. }), "{e:?}");
    }
}

#[test]
fn engine_scripted_panic_is_caught_and_engine_survives() {
    let snap = snapshot(1, 6, 50, 4);
    let clean = QueryEngine::new(snap.clone());
    let faulted = QueryEngine::new(snap).with_faults(Arc::new(FaultPlan::new().panic_on_call(1)));
    match faulted.try_recommend(0, 8) {
        Err(ServeError::Poisoned { reason }) => {
            assert!(reason.contains("scripted panic"), "reason: {reason}");
        }
        other => panic!("expected Poisoned, got {other:?}"),
    }
    // The engine (locks included) stays serviceable, and the post-panic
    // answer is bitwise what an unfaulted engine serves.
    let healed = faulted.try_recommend(0, 8).expect("call 2 is unfaulted");
    assert_eq!(pairs(&healed), pairs(&clean.recommend(0, 8)));
}

// ---------------------------------------------------------------------
// Service tier: supervision, shedding, deadlines.
// ---------------------------------------------------------------------

#[test]
fn service_worker_survives_scoring_panic() {
    let snap = snapshot(2, 6, 50, 4);
    let clean = QueryEngine::new(snap.clone());
    let engine = QueryEngine::with_config(snap.clone(), serial_engine_cfg())
        .with_faults(Arc::new(FaultPlan::new().panic_on_call(1)));
    let service = RecommendService::with_config(engine, serial_service_cfg());
    match service.try_recommend(0, 8) {
        Err(ServeError::Poisoned { reason }) => {
            assert!(reason.contains("scripted panic"), "reason: {reason}");
        }
        other => panic!("expected Poisoned, got {other:?}"),
    }
    assert_eq!(service.worker_panics(), 1);
    assert_eq!(service.requests_served(), 0);
    assert_eq!(
        service.latency_stopwatch().n_samples(),
        0,
        "a refused request must not enter the latency percentiles"
    );
    // Same worker thread, next request: served, bitwise clean.
    let healed = service.try_recommend(0, 8).expect("worker survived");
    assert_eq!(pairs(&healed), pairs(&clean.recommend(0, 8)));
    assert_eq!(service.requests_served(), 1);
    assert_eq!(service.latency_stopwatch().n_samples(), 1);
}

#[test]
fn zero_watermark_sheds_every_request() {
    // A response cache so `warm()` has something to do (it no-ops on a
    // cacheless engine).
    let engine = QueryEngine::with_config(
        snapshot(3, 4, 30, 4),
        EngineConfig {
            cache_capacity: 16,
            ..Default::default()
        },
    );
    let service = RecommendService::with_config(
        engine,
        ServiceConfig {
            shed_watermark: 0,
            ..serial_service_cfg()
        },
    );
    for _ in 0..3 {
        match service.try_recommend(0, 5) {
            Err(ServeError::Overloaded { depth, watermark }) => {
                assert_eq!(watermark, 0);
                assert!(depth >= watermark);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
    }
    assert_eq!(service.requests_shed(), 3);
    assert_eq!(service.requests_served(), 0);
    assert_eq!(service.latency_stopwatch().n_samples(), 0);
    // Warm-ups are never shed.
    service.warm(&[0, 1]);
    while service.warmups_served() < 2 {
        std::thread::yield_now();
    }
    assert_eq!(service.requests_shed(), 3, "warm() bypasses the watermark");
}

#[test]
fn queued_past_deadline_requests_expire_before_scoring() {
    let snap = snapshot(4, 6, 50, 4);
    // One worker whose every scoring pass stalls 300ms: the first job of
    // a batch is dequeued fresh, the second waits ≥300ms in queue and
    // must expire against a 50ms budget at dequeue, never scored.
    let engine = QueryEngine::with_config(snap.clone(), serial_engine_cfg()).with_faults(Arc::new(
        FaultPlan::new().delay_scoring(Duration::from_millis(300)),
    ));
    let service = RecommendService::with_config(
        engine,
        ServiceConfig {
            deadline: Some(Duration::from_millis(50)),
            ..serial_service_cfg()
        },
    );
    let results = service.try_recommend_batch(&[0, 1], 6);
    assert!(results[0].is_ok(), "fresh request served: {results:?}");
    assert!(
        matches!(
            results[1],
            Err(ServeError::DeadlineExceeded { budget }) if budget == Duration::from_millis(50)
        ),
        "stale request expired: {results:?}"
    );
    assert_eq!(service.requests_expired(), 1);
    assert_eq!(service.requests_served(), 1);
    assert_eq!(
        service.latency_stopwatch().n_samples(),
        1,
        "expired requests must not enter the latency percentiles"
    );
}

#[test]
fn watermark_sheds_only_past_depth_and_serves_the_rest() {
    let snap = snapshot(5, 6, 50, 4);
    let plan = Arc::new(FaultPlan::new().delay_scoring(Duration::from_millis(150)));
    let engine =
        QueryEngine::with_config(snap.clone(), serial_engine_cfg()).with_faults(Arc::clone(&plan));
    let service = RecommendService::with_config(
        engine,
        ServiceConfig {
            shed_watermark: 1,
            ..serial_service_cfg()
        },
    );
    std::thread::scope(|scope| {
        let t1 = scope.spawn(|| service.try_recommend(0, 6));
        // Once scoring call 1 is underway the queue is empty and the lone
        // worker is pinned for 150ms — admission decisions below are
        // deterministic: user 1 queues at depth 0, user 2 sees depth 1.
        while plan.scoring_calls() < 1 {
            std::thread::yield_now();
        }
        let results = service.try_recommend_batch(&[1, 2], 6);
        assert!(results[0].is_ok(), "below watermark: {results:?}");
        assert!(
            matches!(
                results[1],
                Err(ServeError::Overloaded {
                    depth: 1,
                    watermark: 1
                })
            ),
            "at watermark: {results:?}"
        );
        assert!(t1.join().expect("no panic").is_ok());
    });
    assert_eq!(service.requests_shed(), 1);
    assert_eq!(service.requests_served(), 2);
    assert_eq!(
        service.latency_stopwatch().n_samples(),
        2,
        "shed requests must not enter the latency percentiles"
    );
}

// ---------------------------------------------------------------------
// Router tier: degraded scatter-gather.
// ---------------------------------------------------------------------

fn sharded_with_faults(
    snap: EmbeddingSnapshot,
    n_shards: usize,
    retries: usize,
    allow_partial: bool,
    plan: FaultPlan,
) -> ShardedEngine {
    ShardedEngine::with_config(
        snap,
        ShardedConfig {
            n_shards,
            scatter_retries: retries,
            allow_partial,
            ..Default::default()
        },
    )
    .with_faults(Arc::new(plan))
}

#[test]
fn retry_heals_a_transient_shard_failure() {
    let snap = snapshot(6, 6, 120, 6);
    let single = QueryEngine::new(snap.clone());
    let sharded = sharded_with_faults(snap, 4, 1, false, FaultPlan::new().fail_shard(1, 1));
    let got = sharded.try_recommend(0, 10).expect("retry heals");
    assert!(got.missing_shards.is_empty());
    assert_eq!(pairs(&got.items), pairs(&single.recommend(0, 10)));
    assert_eq!(sharded.shard_failures(), vec![0, 1, 0, 0]);
    assert_eq!(sharded.degraded_served(), 0);
}

#[test]
fn dead_shard_without_partial_policy_fails_the_query() {
    let snap = snapshot(6, 6, 120, 6);
    let sharded = sharded_with_faults(snap, 4, 1, false, FaultPlan::new().fail_shard(2, u64::MAX));
    match sharded.try_recommend(0, 10) {
        Err(ServeError::ShardFailed { shards }) => assert_eq!(shards, vec![2]),
        other => panic!("expected ShardFailed, got {other:?}"),
    }
    // Retried once, failed twice.
    assert_eq!(sharded.shard_failures()[2], 2);
}

#[test]
fn all_shards_failed_is_an_error_even_with_partial_policy() {
    let snap = snapshot(6, 6, 40, 6);
    let plan = FaultPlan::new()
        .fail_shard(0, u64::MAX)
        .fail_shard(1, u64::MAX);
    let sharded = sharded_with_faults(snap, 2, 0, true, plan);
    match sharded.try_recommend(0, 5) {
        Err(ServeError::ShardFailed { shards }) => assert_eq!(shards, vec![0, 1]),
        other => panic!("expected ShardFailed, got {other:?}"),
    }
    assert_eq!(sharded.degraded_served(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// With the partial policy on, a dead shard yields a flagged
    /// degraded response whose merge is exactly the reference ranking
    /// over the surviving shards' item ranges.
    #[test]
    fn degraded_merge_is_reference_over_surviving_shards(
        tag in 0u64..5,
        n_shards in 2usize..=6,
        dead in 0usize..6,
        k in 1usize..=25,
    ) {
        let dead = dead % n_shards;
        let n_items = 110;
        let snap = snapshot(tag, 6, n_items, 6);
        let sharded = sharded_with_faults(
            snap.clone(),
            n_shards,
            0,
            true,
            FaultPlan::new().fail_shard(dead, u64::MAX),
        );
        let (start, len) = ShardPlan::balanced(n_items, n_shards).ranges()[dead];
        let surviving: Vec<u32> = (0..n_items as u32)
            .filter(|&i| (i as usize) < start || (i as usize) >= start + len)
            .collect();
        for user in 0..6u32 {
            let got = sharded.try_recommend(user, k).expect("degraded, not failed");
            prop_assert_eq!(&got.missing_shards, &vec![dead], "user {}", user);
            let want = reference_topk(&snap, user, &surviving, k);
            let got_pairs: Vec<(u32, f32)> =
                got.items.iter().map(|e| (e.item, e.score)).collect();
            prop_assert_eq!(got_pairs, want, "user {} dead shard {}", user, dead);
        }
        prop_assert_eq!(sharded.degraded_served(), 6);
    }

    /// Concurrent deal-filter installs and scatters never serve a
    /// mixed-generation mask: with `k = n_items` the served set equals
    /// the allowed set exactly, so it must be {all}, {odds} (evens
    /// blocked), or {evens} (odds blocked) — any other set means one
    /// scatter paired shard slices of two different filters. An injected
    /// install delay widens the prepare→install window the atomic swap
    /// must win.
    #[test]
    fn concurrent_filter_installs_never_blend_generations(
        tag in 0u64..4,
        n_shards in 1usize..=6,
        delay_pick in 0usize..3,
    ) {
        let delay_us = [0u64, 200, 800][delay_pick];
        let n_items = 48;
        let snap = snapshot(tag, 4, n_items, 5);
        let mut block_evens = BitMatrix::zeros(1, n_items);
        let mut block_odds = BitMatrix::zeros(1, n_items);
        for i in 0..n_items {
            if i % 2 == 0 {
                block_evens.set(0, i);
            } else {
                block_odds.set(0, i);
            }
        }
        let mut plan = FaultPlan::new();
        if delay_us > 0 {
            plan = plan.delay_filter_install(Duration::from_micros(delay_us));
        }
        let sharded = ShardedEngine::with_config(
            snap,
            ShardedConfig {
                n_shards,
                parallel_scatter: n_shards > 1,
                engine: EngineConfig { cache_capacity: 0, ..Default::default() },
                ..Default::default()
            },
        )
        .with_faults(Arc::new(plan));

        let all: Vec<u32> = (0..n_items as u32).collect();
        let odds: Vec<u32> = all.iter().copied().filter(|i| i % 2 == 1).collect();
        let evens: Vec<u32> = all.iter().copied().filter(|i| i % 2 == 0).collect();

        // `prop_assert!` can't early-return from inside the scope
        // closure, so collect the first violation and assert after.
        //
        // Read the baseline generation BEFORE spawning the installer: on
        // a loaded (or single-core) box the installer can finish all 13
        // installs before this thread runs again, and a baseline read
        // after the fact would then equal the final generation forever —
        // an infinite loop, not a failed assert.
        let gen_before = sharded.deal_generation();
        let violation = std::thread::scope(|scope| {
            let installer = scope.spawn(|| {
                for round in 0..12 {
                    if round % 2 == 0 {
                        sharded.set_deal_filter(block_evens.clone());
                    } else {
                        sharded.set_deal_filter(block_odds.clone());
                    }
                }
                sharded.clear_deal_filter();
            });
            let mut bad = None;
            while !installer.is_finished() || sharded.deal_generation() == gen_before {
                let got = sharded.recommend(0, n_items);
                let mut served: Vec<u32> = got.iter().map(|e| e.item).collect();
                served.sort_unstable();
                if !(served == all || served == odds || served == evens) && bad.is_none() {
                    bad = Some(served);
                }
            }
            installer.join().expect("installer panicked");
            bad
        });
        prop_assert_eq!(
            violation,
            None,
            "mixed-generation mask at {} shards",
            n_shards
        );
        // 13 installs happened-before this load.
        prop_assert_eq!(sharded.deal_generation(), 13);
        let final_set: Vec<u32> = sharded.recommend(0, n_items).iter().map(|e| e.item).collect();
        let mut final_sorted = final_set;
        final_sorted.sort_unstable();
        prop_assert_eq!(final_sorted, all, "cleared filter serves everything");
    }

    /// Periodic shard failures under the degraded policy: every query
    /// either matches the full reference or flags the failing shard —
    /// and the infallible wrapper never sees any of it as long as a
    /// retry budget covers the period.
    #[test]
    fn periodic_shard_faults_heal_under_retry(
        tag in 0u64..4,
        n_shards in 2usize..=5,
        every in 2u64..=5,
        k in 1usize..=15,
    ) {
        let snap = snapshot(tag, 5, 90, 5);
        let single = QueryEngine::new(snap.clone());
        // A shard failing every Nth attempt cannot fail twice in a row,
        // so one retry always heals it.
        let sharded = sharded_with_faults(
            snap,
            n_shards,
            1,
            false,
            FaultPlan::new().fail_shard_every(1, every),
        );
        for round in 0..10u32 {
            let user = round % 5;
            let got = sharded.try_recommend(user, k).expect("retry heals periodic faults");
            prop_assert!(got.missing_shards.is_empty());
            prop_assert_eq!(
                pairs(&got.items),
                pairs(&single.recommend(user, k)),
                "round {} user {}",
                round,
                user
            );
        }
        prop_assert_eq!(sharded.degraded_served(), 0);
    }
}
