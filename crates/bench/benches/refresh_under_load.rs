//! Criterion bench: serving latency while snapshots hot-swap underneath.
//!
//! The swap path is an `Arc` pointer replacement behind an `RwLock`, so
//! queries pay one uncontended read-lock + `Arc` clone each; a publish
//! storm should move per-query latency by noise, not milliseconds. The
//! cached row quantifies the other cost of refreshing: every publish
//! invalidates the response cache by version, so a storm turns the hot
//! cache back into miss traffic.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gb_models::EmbeddingSnapshot;
use gb_serve::{EngineConfig, QueryEngine, SnapshotHandle};
use gb_tensor::init;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const N_USERS: usize = 512;
const N_ITEMS: usize = 20_000;
const DIM: usize = 64;
const K: usize = 10;

fn synthetic_snapshot(seed: u64) -> EmbeddingSnapshot {
    let mut rng = StdRng::seed_from_u64(seed);
    EmbeddingSnapshot::new(
        0.6,
        init::xavier_uniform(N_USERS, DIM, &mut rng),
        init::xavier_uniform(N_ITEMS, DIM, &mut rng),
        init::xavier_uniform(N_USERS, DIM, &mut rng),
        init::xavier_uniform(N_ITEMS, DIM, &mut rng),
    )
}

fn bench_refresh_under_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("refresh_under_load_20k_items");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));

    // Cost of one publish: swap pointer + validate shapes (the clone of
    // the 20 MB table set is charged to the caller, as in real refresh).
    group.bench_function("publish_snapshot", |b| {
        let handle = SnapshotHandle::new(synthetic_snapshot(1));
        let fresh = synthetic_snapshot(2);
        b.iter(|| black_box(handle.publish(fresh.clone())))
    });

    // Baseline: query latency with a quiescent handle.
    group.bench_function("query_steady", |b| {
        let engine = QueryEngine::new(synthetic_snapshot(1));
        let mut user = 0u32;
        b.iter(|| {
            user = (user + 1) % N_USERS as u32;
            black_box(engine.recommend(user, K))
        })
    });

    // Same queries while a writer republishes as fast as it can.
    {
        let handle = SnapshotHandle::new(synthetic_snapshot(1));
        let engine = QueryEngine::with_handle(handle.clone(), EngineConfig::default());
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let handle = handle.clone();
            let stop = Arc::clone(&stop);
            let fresh = synthetic_snapshot(3);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    handle.publish(fresh.clone());
                    std::thread::yield_now();
                }
            })
        };
        group.bench_function("query_during_publish_storm", |b| {
            let mut user = 0u32;
            b.iter(|| {
                user = (user + 1) % N_USERS as u32;
                black_box(engine.recommend(user, K))
            })
        });
        stop.store(true, Ordering::Relaxed);
        writer.join().expect("writer thread");
    }

    // The cache-invalidation cost of refreshing: a hot 32-user loop that
    // would be ~100% hits on a quiescent handle keeps missing when every
    // publish retires its version.
    {
        let handle = SnapshotHandle::new(synthetic_snapshot(1));
        let engine = QueryEngine::with_handle(
            handle.clone(),
            EngineConfig {
                cache_capacity: 64,
                ..Default::default()
            },
        );
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let handle = handle.clone();
            let stop = Arc::clone(&stop);
            let fresh = synthetic_snapshot(4);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    handle.publish(fresh.clone());
                    // A storm, but a bounded one: ~1 kHz refresh.
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            })
        };
        group.bench_function("cached_hot_users_during_publish_storm", |b| {
            let mut user = 0u32;
            b.iter(|| {
                user = (user + 1) % 32;
                black_box(engine.recommend(user, K))
            })
        });
        stop.store(true, Ordering::Relaxed);
        writer.join().expect("writer thread");
        let (hits, misses) = engine.cache_stats();
        println!("  cached_hot_users storm hit rate: {hits} hits / {misses} misses");
    }

    group.finish();
}

criterion_group!(benches, bench_refresh_under_load);
criterion_main!(benches);
