//! Criterion bench for the Eq. 9 scoring fast path (DESIGN.md §6):
//! friend-mean precomputation (exact, by linearity of the dot product)
//! versus naive per-friend scoring.

use criterion::{criterion_group, criterion_main, Criterion};
use gb_data::synth::{generate, SynthConfig};
use gb_tensor::{init, kernels, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_scoring(c: &mut Criterion) {
    let data = generate(&SynthConfig {
        n_users: 1000,
        n_items: 250,
        ..SynthConfig::beibei_like()
    });
    let social = data.social().csr().clone();
    let d = 64;
    let mut rng = StdRng::seed_from_u64(1);
    let user_emb = init::xavier_uniform(data.n_users(), d, &mut rng);
    let item_emb = init::xavier_uniform(data.n_items(), d, &mut rng);
    let items: Vec<u32> = (0..data.n_items() as u32).collect();
    let alpha = 0.6f32;

    let mut group = c.benchmark_group("eq9_scoring");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));

    // Precomputed friend-mean (what GbgcnModel/Gbmf do).
    group.bench_function("friend_mean_precomputed", |b| {
        let friend_mean = kernels::segment_mean(&user_emb, &social.offsets(), &social.members());
        b.iter(|| {
            let mut acc = 0.0f32;
            for user in 0..100u32 {
                let own = user_emb.row(user as usize);
                let fm = friend_mean.row(user as usize);
                for &i in &items {
                    let row = item_emb.row(i as usize);
                    let mut o = 0.0;
                    let mut s = 0.0;
                    for k in 0..d {
                        o += own[k] * row[k];
                        s += fm[k] * row[k];
                    }
                    acc += (1.0 - alpha) * o + alpha * s;
                }
            }
            acc
        })
    });

    // Naive: iterate friends per (user, item) pair.
    group.bench_function("per_friend_naive", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for user in 0..100u32 {
                let own = user_emb.row(user as usize);
                let friends = social.neighbors(user);
                for &i in &items {
                    let row = item_emb.row(i as usize);
                    let mut o = 0.0;
                    for k in 0..d {
                        o += own[k] * row[k];
                    }
                    let mut s = 0.0;
                    for &f in friends {
                        let fr = user_emb.row(f as usize);
                        for k in 0..d {
                            s += fr[k] * row[k];
                        }
                    }
                    if !friends.is_empty() {
                        s /= friends.len() as f32;
                    }
                    acc += (1.0 - alpha) * o + alpha * s;
                }
            }
            acc
        })
    });

    group.finish();

    // Correctness cross-check (also asserted in unit tests): both paths
    // agree to float tolerance.
    let friend_mean = kernels::segment_mean(&user_emb, &social.offsets(), &social.members());
    let check_user = 7u32;
    let fm = friend_mean.row(check_user as usize);
    let friends = social.neighbors(check_user);
    if !friends.is_empty() {
        let mut manual = Matrix::zeros(1, d);
        for &f in friends {
            for k in 0..d {
                manual.row_mut(0)[k] += user_emb.row(f as usize)[k];
            }
        }
        for (&raw, &mean) in manual.row(0).iter().zip(fm) {
            let m = raw / friends.len() as f32;
            assert!((m - mean).abs() < 1e-4);
        }
    }
}

criterion_group!(benches, bench_scoring);
criterion_main!(benches);
