//! Criterion bench backing Table IV: one training epoch of each model
//! family on a small standard workload.

use criterion::{criterion_group, criterion_main, Criterion};
use gb_bench::Workload;
use gb_core::{GbgcnConfig, GbgcnModel};
use gb_data::convert::InteractionKind;
use gb_models::{Gbmf, GbmfConfig, Mf, Recommender, TrainConfig};

fn one_epoch_cfg() -> TrainConfig {
    TrainConfig {
        dim: 32,
        epochs: 1,
        batch_size: 512,
        ..Default::default()
    }
}

fn bench_epochs(c: &mut Criterion) {
    let w = Workload::standard("small");
    let mut group = c.benchmark_group("epoch_time");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));

    group.bench_function("mf", |b| {
        b.iter(|| {
            let mut m = Mf::new(one_epoch_cfg(), InteractionKind::BothRoles);
            m.fit(&w.split.train)
        })
    });

    group.bench_function("gbmf", |b| {
        b.iter(|| {
            let mut m = Gbmf::new(GbmfConfig {
                base: one_epoch_cfg(),
                alpha: 0.5,
            });
            m.fit(&w.split.train)
        })
    });

    group.bench_function("gbgcn_finetune", |b| {
        // Pre-built model; measure steady-state fine-tuning epochs.
        let cfg = GbgcnConfig {
            dim: 32,
            pretrain_epochs: 0,
            finetune_epochs: 1,
            batch_size: 512,
            ..GbgcnConfig::default()
        };
        let mut m = GbgcnModel::new(cfg, &w.split.train);
        b.iter(|| m.measure_epoch_secs(1));
    });

    group.finish();
}

criterion_group!(benches, bench_epochs);
criterion_main!(benches);
