//! Criterion bench backing Table IV: one training epoch of each model
//! family on a small standard workload, serial and sharded-parallel.
//!
//! The `*_x{1,2,4}` rows share one shard decomposition per thread count
//! (shards = threads), so they measure pure scheduling speedup — the
//! produced parameters are bit-identical across the row, only the wall
//! clock moves.

use criterion::{criterion_group, criterion_main, Criterion};
use gb_autograd::ShardExecutor;
use gb_bench::Workload;
use gb_core::{GbgcnConfig, GbgcnModel, ParallelTrainConfig};
use gb_data::convert::InteractionKind;
use gb_models::{Gbmf, GbmfConfig, Mf, Recommender, TrainConfig};

fn one_epoch_cfg() -> TrainConfig {
    TrainConfig {
        dim: 32,
        epochs: 1,
        batch_size: 512,
        ..Default::default()
    }
}

fn bench_epochs(c: &mut Criterion) {
    let w = Workload::standard("small");
    let mut group = c.benchmark_group("epoch_time");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));

    group.bench_function("mf", |b| {
        b.iter(|| {
            let mut m = Mf::new(one_epoch_cfg(), InteractionKind::BothRoles);
            m.fit(&w.split.train)
        })
    });

    group.bench_function("gbmf", |b| {
        b.iter(|| {
            let mut m = Gbmf::new(GbmfConfig {
                base: one_epoch_cfg(),
                alpha: 0.5,
            });
            m.fit(&w.split.train)
        })
    });

    group.bench_function("gbgcn_finetune", |b| {
        // Pre-built model; measure steady-state fine-tuning epochs.
        let cfg = GbgcnConfig {
            dim: 32,
            pretrain_epochs: 0,
            finetune_epochs: 1,
            batch_size: 512,
            ..GbgcnConfig::default()
        };
        let mut m = GbgcnModel::new(cfg, &w.split.train);
        b.iter(|| m.measure_epoch_secs(1));
    });

    // Sharded-parallel MF epochs: one fixed 4-shard decomposition across
    // the x1/x2/x4 rows, so every row runs the identical float program
    // (bit-identical embeddings) and only the scheduling differs. On an
    // N-core machine the x4 row shows the real speedup; on a single
    // hardware thread it degenerates to the thread-handoff overhead.
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("mf_sharded4_x{threads}").as_str(), |b| {
            let executor = ShardExecutor::new(threads);
            b.iter(|| {
                let mut m = Mf::new(one_epoch_cfg(), InteractionKind::BothRoles);
                m.fit_sharded(&w.split.train, 4, &executor)
            })
        });
    }

    // Sharded-parallel GBGCN fine-tuning epochs, same fixed 4-shard
    // decomposition. The propagation forward runs once per batch on the
    // calling thread (shards bind read-only views of the propagated
    // tables and seed its single backward), so the serial fraction is
    // one propagation per batch instead of one per shard per batch.
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("gbgcn_finetune4_x{threads}").as_str(), |b| {
            let cfg = GbgcnConfig {
                dim: 32,
                pretrain_epochs: 0,
                finetune_epochs: 1,
                batch_size: 512,
                ..GbgcnConfig::default()
            };
            let par = ParallelTrainConfig::with_threads(4).scheduled_on(threads);
            let mut m = GbgcnModel::new(cfg, &w.split.train);
            b.iter(|| m.measure_epoch_secs_parallel(1, &par));
        });
    }

    group.finish();
}

criterion_group!(benches, bench_epochs);
criterion_main!(benches);
