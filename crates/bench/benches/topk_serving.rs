//! Criterion bench: the serving engine's blocked-kernel + bounded-heap
//! top-K against the eval path's materialize-and-sort baseline, on a
//! catalogue large enough (20k items) that the asymptotics show.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gb_eval::topk::reference_topk;
use gb_models::EmbeddingSnapshot;
use gb_serve::{EngineConfig, QueryEngine};
use gb_tensor::init;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N_USERS: usize = 512;
const N_ITEMS: usize = 20_000;
const DIM: usize = 64;
const K: usize = 10;

fn synthetic_snapshot() -> EmbeddingSnapshot {
    let mut rng = StdRng::seed_from_u64(42);
    EmbeddingSnapshot::new(
        0.6,
        init::xavier_uniform(N_USERS, DIM, &mut rng),
        init::xavier_uniform(N_ITEMS, DIM, &mut rng),
        init::xavier_uniform(N_USERS, DIM, &mut rng),
        init::xavier_uniform(N_ITEMS, DIM, &mut rng),
    )
}

fn bench_topk(c: &mut Criterion) {
    let snap = synthetic_snapshot();
    let engine = QueryEngine::new(snap.clone());
    let candidates: Vec<u32> = (0..N_ITEMS as u32).collect();

    // Sanity before timing: both paths must agree item-for-item.
    let served: Vec<(u32, f32)> = engine
        .recommend(3, K)
        .iter()
        .map(|e| (e.item, e.score))
        .collect();
    assert_eq!(served, reference_topk(&snap, 3, &candidates, K));

    let mut group = c.benchmark_group("topk_serving_20k_items");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));

    // Baseline: score every candidate through the Scorer, materialize the
    // full vector, sort, truncate — what the eval protocol does.
    group.bench_function("materialize_and_sort", |b| {
        let mut user = 0u32;
        b.iter(|| {
            user = (user + 1) % N_USERS as u32;
            black_box(reference_topk(&snap, user, &candidates, K))
        })
    });

    // The serving engine: blocked dual-dot kernel + bounded min-heap.
    group.bench_function("blocked_heap_engine", |b| {
        let mut user = 0u32;
        b.iter(|| {
            user = (user + 1) % N_USERS as u32;
            black_box(engine.recommend(user, K))
        })
    });

    // Engine with a realistic seen-filter in the loop (synthetic bitset:
    // every 16th item seen).
    group.bench_function("blocked_heap_engine_filtered", |b| {
        let mut seen = gb_graph::BitMatrix::zeros(N_USERS, N_ITEMS);
        for u in 0..N_USERS {
            for i in (u % 16..N_ITEMS).step_by(16) {
                seen.set(u, i);
            }
        }
        let filtered = QueryEngine::new(snap.clone()).with_seen_filter(seen);
        let mut user = 0u32;
        b.iter(|| {
            user = (user + 1) % N_USERS as u32;
            black_box(filtered.recommend(user, K))
        })
    });

    // Batched multi-user path: 8 queries answered from one catalogue
    // walk (vs 8 walks above). Answers are bit-identical per user.
    group.bench_function("recommend_many_8_users", |b| {
        let mut base = 0u32;
        b.iter(|| {
            base = (base + 8) % N_USERS as u32;
            let users: Vec<u32> = (base..base + 8).collect();
            black_box(engine.recommend_many(&users, K))
        })
    });

    // The same 8 users sequentially, for the in-bench A/B.
    group.bench_function("recommend_8_users_sequential", |b| {
        let mut base = 0u32;
        b.iter(|| {
            base = (base + 8) % N_USERS as u32;
            for u in base..base + 8 {
                black_box(engine.recommend(u, K));
            }
        })
    });

    // Cached responses for a small hot user set: the LRU fast path.
    group.bench_function("lru_cached_hot_users", |b| {
        let cached = QueryEngine::with_config(
            snap.clone(),
            EngineConfig {
                cache_capacity: 64,
                ..Default::default()
            },
        );
        let mut user = 0u32;
        b.iter(|| {
            user = (user + 1) % 32;
            black_box(cached.recommend(user, K))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_topk);
criterion_main!(benches);
