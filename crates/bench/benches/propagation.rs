//! Criterion bench for the DESIGN.md §6 ablation: in-view propagation
//! without FC layers (the paper's LightGCN-style choice, Eqs. 1–2)
//! versus an NGCF-style propagation with per-layer FC transforms.

use criterion::{criterion_group, criterion_main, Criterion};
use gb_autograd::{ParamStore, Tape};
use gb_data::synth::{generate, SynthConfig};
use gb_tensor::init;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_propagation(c: &mut Criterion) {
    let data = generate(&SynthConfig {
        n_users: 1000,
        n_items: 250,
        ..SynthConfig::beibei_like()
    });
    let graphs = data.build_hetero();
    let gi = &graphs.initiator;
    let d = 32;

    let mut rng = StdRng::seed_from_u64(0);
    let mut store = ParamStore::new();
    let u = store.add("u", init::xavier_uniform(data.n_users(), d, &mut rng));
    let v = store.add("v", init::xavier_uniform(data.n_items(), d, &mut rng));
    let w = store.add("w", init::xavier_uniform(d, d, &mut rng));

    let mut group = c.benchmark_group("propagation");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));

    // The paper's choice: propagation without FC (Eqs. 1-2).
    group.bench_function("lightgcn_style_2layer", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let mut uc = tape.param(&store, u);
            let mut vc = tape.param(&store, v);
            for _ in 0..2 {
                let un =
                    tape.segment_mean(vc, gi.user_to_item().offsets(), gi.user_to_item().members());
                let vn =
                    tape.segment_mean(uc, gi.item_to_user().offsets(), gi.item_to_user().members());
                uc = un;
                vc = vn;
            }
            tape.len()
        })
    });

    // NGCF-style: FC transform + activation per layer.
    group.bench_function("ngcf_style_2layer", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let mut uc = tape.param(&store, u);
            let mut vc = tape.param(&store, v);
            let wv = tape.param(&store, w);
            for _ in 0..2 {
                let ua =
                    tape.segment_mean(vc, gi.user_to_item().offsets(), gi.user_to_item().members());
                let ul = tape.matmul(ua, wv);
                let un = tape.leaky_relu(ul, 0.2);
                let va =
                    tape.segment_mean(uc, gi.item_to_user().offsets(), gi.item_to_user().members());
                let vl = tape.matmul(va, wv);
                let vn = tape.leaky_relu(vl, 0.2);
                uc = un;
                vc = vn;
            }
            tape.len()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_propagation);
criterion_main!(benches);
