//! Criterion bench for negative sampling and batch construction — the
//! per-step data-path costs of the Sec. III-C.2 training loop.

use criterion::{criterion_group, criterion_main, Criterion};
use gb_core::batch::LossBatch;
use gb_data::synth::{generate, SynthConfig};
use gb_data::NegativeSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_sampling(c: &mut Criterion) {
    let data = generate(&SynthConfig {
        n_users: 1000,
        n_items: 250,
        ..SynthConfig::beibei_like()
    });
    let sampler = NegativeSampler::from_dataset(&data);

    let mut group = c.benchmark_group("sampling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));

    group.bench_function("negative_sample_10k", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..10_000u32 {
                acc += sampler.sample_one(i % data.n_users() as u32, &mut rng) as u64;
            }
            acc
        })
    });

    group.bench_function("candidate_sample_999", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| sampler.sample_distinct(3, 200, &[0], &mut rng))
    });

    group.bench_function("loss_batch_build_512", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let indices: Vec<usize> = (0..512.min(data.behaviors().len())).collect();
        b.iter(|| LossBatch::build(&data, &indices, 1, &sampler, &mut rng))
    });

    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
