//! Regenerates **Table IV** — time-efficiency comparison (training and
//! testing wall-clock time per epoch / per evaluation pass).
//!
//! The paper measured one TITAN Xp with DGL; here everything runs
//! single-threaded CPU, so absolute numbers differ, but the *shape*
//! claim is preserved: CF and social baselines are fast, group and
//! group-buying models pay for variable-size friend/group aggregation,
//! and GBGCN is the slowest of all (Sec. IV-C).

use gb_bench::{baseline_zoo, train_gbgcn, tuned_gbgcn_config, write_csv, Workload};
use gb_eval::timing::timed;

fn main() {
    let scale = Workload::scale_from_args();
    let w = Workload::standard(&scale);
    println!("=== Table IV: time efficiency (scale = {scale}) ===\n");
    println!(
        "{:<10} {:>22} {:>22}",
        "Method", "Training (sec/epoch)", "Testing (sec/pass)"
    );

    let mut rows = Vec::new();
    for (name, mut model) in baseline_zoo() {
        let report = model.fit(&w.split.train);
        let (_, test_secs) = timed(|| w.evaluate(model.as_ref()));
        println!(
            "{name:<10} {:>22.3} {:>22.3}",
            report.mean_epoch_secs, test_secs
        );
        rows.push(format!(
            "{name},{:.4},{:.4}",
            report.mean_epoch_secs, test_secs
        ));
    }

    let mut gbgcn = train_gbgcn(&w, tuned_gbgcn_config());
    // Re-measure steady-state fine-tuning epochs explicitly.
    let train_secs = gbgcn.measure_epoch_secs(3);
    let (_, test_secs) = timed(|| w.evaluate(&gbgcn));
    println!("{:<10} {:>22.3} {:>22.3}", "GBGCN", train_secs, test_secs);
    rows.push(format!("GBGCN,{train_secs:.4},{test_secs:.4}"));

    let path = write_csv(
        "table4_time.csv",
        "method,train_sec_per_epoch,test_sec",
        &rows,
    );
    println!("\nCSV written to {}", path.display());
}
