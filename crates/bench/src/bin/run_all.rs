//! Runs the complete experiment suite (Tables II–V, Figs. 4–6) in
//! sequence by invoking the sibling binaries with a shared scale
//! argument. Usage: `run_all [small|paper|large]`.

use std::process::Command;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "paper".to_string());
    let bins = [
        "table2_stats",
        "table3_overall",
        "table4_time",
        "table5_ablation",
        "fig4_alpha",
        "fig4_beta",
        "fig5_cosine_pdf",
        "fig6_tsne",
    ];
    let me = std::env::current_exe().expect("current exe");
    let dir = me.parent().expect("bin dir");
    for bin in bins {
        println!("\n================================================================");
        println!("running {bin} ({scale})");
        println!("================================================================");
        let status = Command::new(dir.join(bin))
            .arg(&scale)
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
        assert!(status.success(), "{bin} exited with {status}");
    }
    println!("\nall experiments complete; CSVs in target/experiments/");
}
