//! Regenerates **Fig. 6** — t-SNE visualization of user and item final
//! embeddings in the initiator and participant views.
//!
//! The paper samples 1000 users and 1000 items, projects the four final
//! embedding sets (`û_i`, `û_p`, `v̂_i`, `v̂_p`) jointly to 2-D and
//! observes a clear initiator-view / participant-view separation. This
//! binary writes the 2-D coordinates with view/entity labels to CSV and
//! prints a cluster-separation score.

use gb_bench::{train_gbgcn, tuned_gbgcn_config, write_csv, Workload};
use gb_eval::tsne::{tsne, TsneConfig};
use gb_tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let scale = Workload::scale_from_args();
    let w = Workload::standard(&scale);
    println!("=== Fig. 6: t-SNE of view embeddings (scale = {scale}) ===\n");

    let model = train_gbgcn(&w, tuned_gbgcn_config());
    let a = model.embedding_analysis();

    // Sample up to 1000 users and 1000 items (paper's sample sizes).
    let mut rng = StdRng::seed_from_u64(6);
    let mut users: Vec<usize> = (0..a.u_hat_i.rows()).collect();
    users.shuffle(&mut rng);
    users.truncate(1000.min(users.len()).min(400)); // cap for O(n^2) t-SNE speed
    let mut items: Vec<usize> = (0..a.v_hat_i.rows()).collect();
    items.shuffle(&mut rng);
    items.truncate(1000.min(items.len()).min(400));

    // Stack: [users x û_i; users x û_p; items x v̂_i; items x v̂_p].
    let d = a.u_hat_i.cols();
    let n = 2 * users.len() + 2 * items.len();
    let mut stacked = Matrix::zeros(n, d);
    let mut labels = Vec::with_capacity(n);
    let mut row = 0;
    for (mat, label) in [
        (&a.u_hat_i, "user_initiator"),
        (&a.u_hat_p, "user_participant"),
    ] {
        for &u in &users {
            stacked.set_row(row, mat.row(u));
            labels.push(label);
            row += 1;
        }
    }
    for (mat, label) in [
        (&a.v_hat_i, "item_initiator"),
        (&a.v_hat_p, "item_participant"),
    ] {
        for &i in &items {
            stacked.set_row(row, mat.row(i));
            labels.push(label);
            row += 1;
        }
    }

    println!("running exact t-SNE on {n} points...");
    let coords = tsne(
        &stacked,
        &TsneConfig {
            n_iter: 300,
            ..TsneConfig::default()
        },
    );

    let rows: Vec<String> = (0..n)
        .map(|r| {
            format!(
                "{},{:.4},{:.4}",
                labels[r],
                coords.get(r, 0),
                coords.get(r, 1)
            )
        })
        .collect();
    let path = write_csv("fig6_tsne.csv", "label,x,y", &rows);

    // Separation score: mean distance between view centroids relative to
    // mean intra-view spread, for users and for items.
    let centroid = |label: &str| -> (f32, f32, f32) {
        let pts: Vec<(f32, f32)> = (0..n)
            .filter(|&r| labels[r] == label)
            .map(|r| (coords.get(r, 0), coords.get(r, 1)))
            .collect();
        let cx = pts.iter().map(|p| p.0).sum::<f32>() / pts.len() as f32;
        let cy = pts.iter().map(|p| p.1).sum::<f32>() / pts.len() as f32;
        let spread = pts
            .iter()
            .map(|p| ((p.0 - cx).powi(2) + (p.1 - cy).powi(2)).sqrt())
            .sum::<f32>()
            / pts.len() as f32;
        (cx, cy, spread)
    };
    for (a_label, b_label, what) in [
        ("user_initiator", "user_participant", "users"),
        ("item_initiator", "item_participant", "items"),
    ] {
        let (ax, ay, asp) = centroid(a_label);
        let (bx, by, bsp) = centroid(b_label);
        let dist = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
        let ratio = dist / (0.5 * (asp + bsp));
        println!(
            "{what}: centroid distance {dist:.2}, mean spread {:.2}, separation ratio {ratio:.2} {}",
            0.5 * (asp + bsp),
            if ratio > 0.5 { "(views separated)" } else { "(views overlap)" }
        );
    }
    println!("\ncoordinates written to {}", path.display());
}
