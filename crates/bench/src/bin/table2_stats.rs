//! Regenerates **Table II** — statistics of the dataset.
//!
//! Prints the synthetic Beibei-like dataset's statistics next to the
//! paper's production numbers so the proportions can be compared
//! directly (the synthetic set is a ~1/100-scale replica; see
//! DESIGN.md §1).

use gb_bench::Workload;

fn main() {
    let scale = Workload::scale_from_args();
    let w = Workload::standard(&scale);
    let s = w.data.stats();

    println!("=== Table II: statistics of the dataset (scale = {scale}) ===\n");
    println!("{s}\n");
    println!("--- paper (Beibei production data) for comparison ---");
    println!("#Users 190,080  #Items 30,782  #Social 748,233");
    println!("#Behaviors 932,896  #Successful 721,605 (77.4%)  #Failed 211,291");
    println!("mean friends/user 7.87   behaviors/user 4.91");
    println!();
    println!(
        "shape check: success ratio {:.3} (paper 0.774), friends/user {:.2} (paper 7.87), behaviors/user {:.2} (paper 4.91)",
        s.success_ratio(),
        s.mean_friends,
        s.behaviors_per_user
    );
}
