//! Regenerates **Table III** — overall performance comparison of all ten
//! methods on the group-buying recommendation task.
//!
//! Trains the nine baselines and GBGCN on the leave-one-out training
//! split, evaluates Recall@{3,5,10,20} and NDCG@{3,5,10,20}, prints the
//! table in the paper's row order, reports GBGCN's improvement over the
//! best baseline per metric, and runs the paired significance test
//! (paper: p < 0.05).

use gb_bench::{
    baseline_zoo, metric_header, metric_row, train_gbgcn, tuned_gbgcn_config, write_csv, Workload,
};
use gb_eval::paired_t_test;

fn main() {
    let scale = Workload::scale_from_args();
    let w = Workload::standard(&scale);
    println!("=== Table III: overall performance (scale = {scale}) ===");
    println!("{}", w.data.stats());
    println!("\n{}", metric_header());

    let mut rows = Vec::new();
    let mut best_baseline: Option<(String, gb_eval::RankingMetrics)> = None;

    for (name, mut model) in baseline_zoo() {
        let report = model.fit(&w.split.train);
        let m = w.evaluate(model.as_ref());
        println!(
            "{}   ({:.2}s/epoch)",
            metric_row(name, &m),
            report.mean_epoch_secs
        );
        rows.push(format!(
            "{name},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
            m.recall_at(3),
            m.recall_at(5),
            m.recall_at(10),
            m.recall_at(20),
            m.ndcg_at(3),
            m.ndcg_at(5),
            m.ndcg_at(10),
            m.ndcg_at(20)
        ));
        let better = match &best_baseline {
            Some((_, best)) => m.ndcg_at(10) > best.ndcg_at(10),
            None => true,
        };
        if better {
            best_baseline = Some((name.to_string(), m));
        }
    }

    let gbgcn = train_gbgcn(&w, tuned_gbgcn_config());
    let gm = w.evaluate(&gbgcn);
    println!("{}", metric_row("GBGCN", &gm));
    rows.push(format!(
        "GBGCN,{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
        gm.recall_at(3),
        gm.recall_at(5),
        gm.recall_at(10),
        gm.recall_at(20),
        gm.ndcg_at(3),
        gm.ndcg_at(5),
        gm.ndcg_at(10),
        gm.ndcg_at(20)
    ));

    let (best_name, best) = best_baseline.expect("at least one baseline");
    println!("\nimprovement of GBGCN over best baseline ({best_name}):");
    for k in [3usize, 5, 10, 20] {
        println!(
            "  Recall@{k:<2} {:+.2}%   NDCG@{k:<2} {:+.2}%",
            100.0 * (gm.recall_at(k) / best.recall_at(k) - 1.0),
            100.0 * (gm.ndcg_at(k) / best.ndcg_at(k) - 1.0)
        );
    }

    let t = paired_t_test(&gm.ndcg_column(10), &best.ndcg_column(10));
    println!(
        "\npaired t-test on per-user NDCG@10 vs {best_name}: t = {:.3}, p = {:.4} ({})",
        t.t,
        t.p_two_sided,
        if t.significant_at(0.05) {
            "significant at 0.05"
        } else {
            "not significant"
        }
    );

    let path = write_csv(
        "table3_overall.csv",
        "method,recall@3,recall@5,recall@10,recall@20,ndcg@3,ndcg@5,ndcg@10,ndcg@20",
        &rows,
    );
    println!("\nCSV written to {}", path.display());
}
