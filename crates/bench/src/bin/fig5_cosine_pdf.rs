//! Regenerates **Fig. 5 (a–d)** — probability density of the cosine
//! similarity between initiator-view and participant-view embeddings:
//!
//! * (a) users, in-view-propagation outputs (`u{0}_i` vs `u{0}_p`);
//! * (b) items, in-view-propagation outputs;
//! * (c) users, cross-view-propagation outputs (`u{1}_i` vs `u{1}_p`);
//! * (d) items, cross-view-propagation outputs.
//!
//! Expected shape (Sec. IV-F): in-view item similarities are nearly 1,
//! in-view user similarities slightly lower, and the cross-view outputs
//! diverge clearly — the FC transforms capture view-specific information.

use gb_bench::{train_gbgcn, tuned_gbgcn_config, write_csv, Workload};
use gb_eval::cosine_pdf::{histogram_density, mean, rowwise_cosine};

fn main() {
    let scale = Workload::scale_from_args();
    let w = Workload::standard(&scale);
    println!("=== Fig. 5: cosine-similarity PDFs between views (scale = {scale}) ===\n");

    let model = train_gbgcn(&w, tuned_gbgcn_config());
    let a = model.embedding_analysis();

    let panels = [
        (
            "a_users_inview",
            rowwise_cosine(&a.u_inview_i, &a.u_inview_p),
        ),
        (
            "b_items_inview",
            rowwise_cosine(&a.v_inview_i, &a.v_inview_p),
        ),
        (
            "c_users_crossview",
            rowwise_cosine(&a.u_cross_i, &a.u_cross_p),
        ),
        (
            "d_items_crossview",
            rowwise_cosine(&a.v_cross_i, &a.v_cross_p),
        ),
    ];

    for (name, sims) in &panels {
        let lo = sims.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = sims.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        println!(
            "{name:<20} mean {:.4}  min {lo:.4}  max {hi:.4}",
            mean(sims)
        );
        let bins = histogram_density(sims, 40, lo.min(hi - 1e-3), hi.max(lo + 1e-3));
        let rows: Vec<String> = bins
            .iter()
            .map(|b| format!("{:.5},{:.5}", b.center, b.density))
            .collect();
        write_csv(&format!("fig5_{name}.csv"), "cosine,density", &rows);
    }

    let mean_a = mean(&panels[0].1);
    let mean_b = mean(&panels[1].1);
    let mean_c = mean(&panels[2].1);
    let mean_d = mean(&panels[3].1);
    println!("\nshape checks (paper Sec. IV-F):");
    println!(
        "  in-view items ~1 and >= in-view users: {} (items {mean_b:.3} vs users {mean_a:.3})",
        if mean_b >= mean_a { "PASS" } else { "FAIL" }
    );
    println!(
        "  cross-view diverges vs in-view (users): {} (cross {mean_c:.3} < in {mean_a:.3})",
        if mean_c < mean_a { "PASS" } else { "FAIL" }
    );
    println!(
        "  cross-view diverges vs in-view (items): {} (cross {mean_d:.3} < in {mean_b:.3})",
        if mean_d < mean_b { "PASS" } else { "FAIL" }
    );
    println!("\nCSVs written to target/experiments/fig5_*.csv");
}
