//! Regenerates **Table V** — impact of the multi-view design.
//!
//! Trains the full GBGCN and its three degenerate variants (views
//! averaged at the output of every propagation layer) and reports the
//! relative change, expecting every ablation to hurt and the double
//! ablation to hurt most. Pass `--separate-raw` as the second argument to
//! also run the DESIGN.md §6 extension ablation (per-view raw embedding
//! tables instead of the paper's shared table).

use gb_bench::{train_gbgcn, tuned_gbgcn_config, write_csv, Workload};
use gb_core::AblationMode;

fn main() {
    let scale = Workload::scale_from_args();
    let separate_raw = std::env::args().any(|a| a == "--separate-raw");
    let w = Workload::standard(&scale);
    println!("=== Table V: impact of multi-view design (scale = {scale}) ===\n");
    println!(
        "{:<28} {:>8} {:>9} {:>8} {:>9} {:>8} {:>9} {:>8} {:>9}",
        "Method", "R@10", "Improve.", "R@20", "Improve.", "N@10", "Improve.", "N@20", "Improve."
    );

    let modes = [
        AblationMode::Full,
        AblationMode::NoItemRoles,
        AblationMode::NoUserRoles,
        AblationMode::NoRoles,
    ];
    let mut rows = Vec::new();
    let mut reference: Option<(f64, f64, f64, f64)> = None;
    for mode in modes {
        let cfg = tuned_gbgcn_config().with_ablation(mode);
        let model = train_gbgcn(&w, cfg);
        let m = w.evaluate(&model);
        let vals = (
            m.recall_at(10),
            m.recall_at(20),
            m.ndcg_at(10),
            m.ndcg_at(20),
        );
        let imp = |v: f64, r: f64| {
            if mode == AblationMode::Full {
                "-".to_string()
            } else {
                format!("{:+.2}%", 100.0 * (v / r - 1.0))
            }
        };
        let r = reference.unwrap_or(vals);
        println!(
            "{:<28} {:>8.4} {:>9} {:>8.4} {:>9} {:>8.4} {:>9} {:>8.4} {:>9}",
            mode.label(),
            vals.0,
            imp(vals.0, r.0),
            vals.1,
            imp(vals.1, r.1),
            vals.2,
            imp(vals.2, r.2),
            vals.3,
            imp(vals.3, r.3)
        );
        rows.push(format!(
            "{},{:.4},{:.4},{:.4},{:.4}",
            mode.label().replace(',', ";"),
            vals.0,
            vals.1,
            vals.2,
            vals.3
        ));
        if reference.is_none() {
            reference = Some(vals);
        }
    }

    if separate_raw {
        println!("\n--- extension ablation (DESIGN.md §6): separate raw embeddings ---");
        let cfg = gb_core::GbgcnConfig {
            separate_raw: true,
            ..tuned_gbgcn_config()
        };
        let model = train_gbgcn(&w, cfg);
        let m = w.evaluate(&model);
        let r = reference.unwrap();
        println!(
            "{:<28} {:>8.4} {:>+8.2}% {:>8.4} {:>+8.2}% (vs shared raw)",
            "Separate Raw Embeddings",
            m.recall_at(10),
            100.0 * (m.recall_at(10) / r.0 - 1.0),
            m.ndcg_at(10),
            100.0 * (m.ndcg_at(10) / r.2 - 1.0),
        );
        rows.push(format!(
            "Separate Raw Embeddings,{:.4},{:.4},{:.4},{:.4}",
            m.recall_at(10),
            m.recall_at(20),
            m.ndcg_at(10),
            m.ndcg_at(20)
        ));
    }

    let path = write_csv(
        "table5_ablation.csv",
        "variant,recall@10,recall@20,ndcg@10,ndcg@20",
        &rows,
    );
    println!("\nCSV written to {}", path.display());
}
