//! Regenerates **Fig. 4 (right pair)** — Recall@10 and NDCG@10 as a
//! function of the loss coefficient β ∈ {0, 0.01, 0.02, 0.05, 0.1, 0.2,
//! 0.5}.
//!
//! β controls how strongly failed group-buying behaviors are treated as
//! friends' negative feedback (Eq. 10). β = 0 degenerates the
//! double-pairwise loss to plain BPR. The paper's optimum on Beibei is
//! 0.05; on the synthetic workload the failure signal is cleaner, which
//! shifts the tolerable β range down (see EXPERIMENTS.md discussion).

use gb_bench::{train_gbgcn, tuned_gbgcn_config, write_csv, Workload};

fn main() {
    let scale = Workload::scale_from_args();
    let w = Workload::standard(&scale);
    println!("=== Fig. 4 (loss coefficient beta) (scale = {scale}) ===\n");
    println!("{:>6} {:>10} {:>10}", "beta", "Recall@10", "NDCG@10");

    let betas = [0.0f32, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5];
    let mut rows = Vec::new();
    for beta in betas {
        let cfg = tuned_gbgcn_config().with_beta(beta);
        let model = train_gbgcn(&w, cfg);
        let m = w.evaluate(&model);
        println!(
            "{beta:>6.2} {:>10.4} {:>10.4}",
            m.recall_at(10),
            m.ndcg_at(10)
        );
        rows.push(format!(
            "{beta:.2},{:.4},{:.4}",
            m.recall_at(10),
            m.ndcg_at(10)
        ));
    }

    println!(
        "\nshape check: large beta (0.2, 0.5) must clearly degrade performance (paper Fig. 4)."
    );
    let path = write_csv("fig4_beta.csv", "beta,recall@10,ndcg@10", &rows);
    println!("CSV written to {}", path.display());
}
