//! Regenerates **Fig. 4 (left pair)** — Recall@10 and NDCG@10 as a
//! function of the role coefficient α ∈ {0.1, …, 0.9}.
//!
//! The paper finds a unimodal curve peaking at α = 0.6: both a selfish
//! recommender (α → 0, ignore friends) and a selfless one (α → 1, ignore
//! the initiator) lose accuracy.

use gb_bench::{train_gbgcn, tuned_gbgcn_config, write_csv, Workload};

fn main() {
    let scale = Workload::scale_from_args();
    let w = Workload::standard(&scale);
    println!("=== Fig. 4 (role coefficient alpha) (scale = {scale}) ===\n");
    println!("{:>6} {:>10} {:>10}", "alpha", "Recall@10", "NDCG@10");

    let mut rows = Vec::new();
    let mut series = Vec::new();
    for step in 1..=9u32 {
        let alpha = step as f32 / 10.0;
        let cfg = tuned_gbgcn_config().with_alpha(alpha);
        let model = train_gbgcn(&w, cfg);
        let m = w.evaluate(&model);
        println!(
            "{alpha:>6.1} {:>10.4} {:>10.4}",
            m.recall_at(10),
            m.ndcg_at(10)
        );
        rows.push(format!(
            "{alpha:.1},{:.4},{:.4}",
            m.recall_at(10),
            m.ndcg_at(10)
        ));
        series.push((alpha, m.ndcg_at(10)));
    }

    // Shape check on NDCG@10 (the rank-sensitive metric): the best alpha
    // should be interior (neither 0.1 nor 0.9).
    let best = series.iter().max_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
    println!(
        "\nbest alpha = {:.1} (paper: 0.6); curve is {}",
        best.0,
        if best.0 > 0.1 && best.0 < 0.9 {
            "interior (matches paper)"
        } else {
            "boundary (deviation)"
        }
    );

    let path = write_csv("fig4_alpha.csv", "alpha,recall@10,ndcg@10", &rows);
    println!("CSV written to {}", path.display());
}
