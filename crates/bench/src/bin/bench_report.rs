//! Machine-readable perf trajectory: measures the serving/training hot
//! paths before/after and writes `BENCH_PR10.json` (pass a path as argv[1]
//! to write elsewhere).
//!
//! Every row is an honest in-process A/B — both sides run in this binary,
//! on this machine, interleaved:
//!
//! * `scoring`      — one full 20k-item catalogue pass through the
//!   blended dual-dot kernel: scalar `kernels::reference` loops vs the
//!   blocked `kernels::blend_dot_block` (the PR 3 kernel trajectory).
//! * `multi_user_scoring` — the same catalogue scored for a block of 8
//!   users: 8 sequential single-user passes (item tables streamed from
//!   memory 8 times) vs one `blend_dot_block_multi` pass (streamed once).
//!   Per-user outputs are bit-identical on both sides.
//! * `matmul_propagation` / `matmul_nt_backward` — the GBGCN cross-view
//!   FC shapes: scalar reference matmuls vs the register-tiled kernels.
//! * `topk_serving` — top-10 over 20k items: materialize-and-sort over
//!   the scalar kernel (the pre-PR 3 serving baseline) vs the blocked
//!   bounded-heap `QueryEngine`.
//! * `topk_serving_multi` — 8 top-10 queries end to end: sequential
//!   `recommend` per user vs one `recommend_many` catalogue walk.
//! * `epoch_time`   — one MF training epoch, 4 shards on 2 threads, small
//!   batches: per-batch `std::thread::scope` spawning vs the persistent
//!   worker pool. Both sides produce bit-identical embeddings.
//! * `ivf_vs_exact_latency` — the scaled-catalogue workload (80k items,
//!   clustered like a real catalogue): a top-10 query through the
//!   exhaustive blocked walk vs IVF retrieval probing 16 of 256 cells.
//!   The companion `ivf_recall_at_10` row reports the measured recall of
//!   the approximate ranking against exact serving on the same workload.
//!
//! Plus the enqueue→reply latency distribution (the corrected clock —
//! queue wait included) of the full `RecommendService` under bursts of
//! queued queries on a `beibei_large`-scale user universe:
//!
//! * `serving_latency_enqueue_to_reply` — coalescing off (`user_block=1`,
//!   one catalogue pass per request) vs on (`user_block=8`, up to 8
//!   queued requests share each pass); p50/p99 per side.
//!
//! And the PR 6 sharded-tier workload — a 2^20-item (1,048,576)
//! clustered catalogue, the first past the million-item mark:
//!
//! * `sharded_vs_single_latency_1m_items` — bursts through the service
//!   against one IVF engine over the whole catalogue vs a 4-shard
//!   `ShardedEngine` (each shard clustering and probing only its
//!   quarter, same global probe fraction); p50/p99 per side, with the
//!   per-shard scatter/merge attribution from `LatencyBreakdown`
//!   embedded as `shard_stage_rows`.
//! * `snapshot_load_1m_items` — cold snapshot availability: the v1
//!   streaming loader (read + parse + copy every float) vs the v2
//!   `open_mmap_snapshot` zero-copy map of the same tables.
//!
//! And the PR 7 streaming-freshness workload, on the 80k-item scaled
//! catalogue with 64-row deltas (one deal-lifecycle tick):
//!
//! * `delta_vs_full_publish` — time until the new version is live on
//!   the handle, for a user-drift tick (64 user rows re-embedded):
//!   shipping a fully materialized snapshot through `publish` vs
//!   shipping only the changed rows through `publish_delta` (both
//!   80k-item tables aliased instead of copied). Both sides produce
//!   bitwise-identical served tables (asserted before timing).
//! * `ivf_update_incremental_vs_rebuild` — bringing the retrieval
//!   index to the new version: a full seeded k-means rebuild vs
//!   `IvfIndex::update` (centroids kept, only moved items re-routed,
//!   untouched packed cells aliased). The derived `freshness_rows`
//!   entry combines both rows into end-to-end publish→serveable lag
//!   and the sustainable publish rate of each path.
//!
//! And the PR 10 training-refactor rows:
//!
//! * `epoch_time_shared_forward` — one GBGCN fine-tuning epoch, 4 shards
//!   on 2 threads: every shard replaying the full propagation forward on
//!   its own tape (the pre-PR 10 recipe, kept as
//!   `sharded_grad_replicated`) vs one shared propagation forward per
//!   batch with per-shard backwards seeded from read-only table views.
//! * `tape_backward_fused` — forward + backward of a gather-heavy
//!   BPR-shaped graph (six 2048-row gathers from one 4096x32 table):
//!   the seed tape's allocate-a-zeroed-table-per-gather backward
//!   (`Tape::new_unfused`) vs the boxed-op tape's fused scatter into one
//!   reused accumulator per parameter slot (`Tape::new`).
//!
//! And the PR 8 robustness-overhead rows:
//!
//! * `supervised_vs_raw_batch_scoring` — the price of worker
//!   supervision when nothing fails: `recommend_many` vs
//!   `try_recommend_many` (request validation + `catch_unwind`) on the
//!   same 8-user batch. Expected within noise of 1.0x.
//! * `shed_vs_queue_p99_under_burst` — the same burst overload with
//!   blocking backpressure only vs a depth-32 admission watermark;
//!   p50/p99 of the *served* requests per side (shed requests are
//!   refused in O(1) and never enter the latency clock).
//!
//! Medians over repeated runs; single-run wall clock, so treat small
//! deltas as noise and mind the core-count note embedded in the output.

use gb_autograd::{ParamStore, ShardExecutor, Tape};
use gb_core::{GbgcnConfig, GbgcnModel, ParallelTrainConfig};
use gb_data::convert::InteractionKind;
use gb_data::synth::{generate, SynthConfig};
use gb_eval::metrics::recall_vs_exact;
use gb_eval::topk::reference_topk;
use gb_eval::Scorer;
use gb_models::{EmbeddingSnapshot, Mf, SnapshotDelta, SnapshotHandle, TrainConfig};
use gb_serve::{
    open_mmap_snapshot, save_mmap_snapshot, EngineConfig, IvfIndex, QueryEngine, RecommendService,
    Retrieval, ServeEngine, ServiceConfig, ShardedConfig, ShardedEngine,
};
use gb_tensor::kernels::{self, reference};
use gb_tensor::{init, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

const N_ITEMS: usize = 20_000;
const DIM: usize = 64;
const REPS: usize = 9;
/// Users per batched scoring block — the serving default
/// (`EngineConfig::user_block`).
const USER_BLOCK: usize = 8;
/// User universe of the latency workload: `SynthConfig::beibei_large`
/// scale (8000 users), over the same 20k-item catalogue.
const N_USERS_LARGE: usize = 8_000;

/// The scaled-catalogue workload (the ROADMAP's deferred item): 4× the
/// 20k catalogue, past where exhaustive per-query scans belong.
const N_ITEMS_SCALED: usize = 80_000;
/// Own/social embedding width of the scaled workload (64-wide
/// concatenated item vectors).
const DIM_SCALED: usize = 32;
/// Latent categories of the scaled catalogue. Real catalogues are
/// clustered (items belong to categories); the IVF cells recover that
/// structure, which is exactly the regime approximate retrieval targets.
const N_CATS_SCALED: usize = 256;
const N_USERS_SCALED: usize = 2_000;
/// IVF configuration measured: probe 16 of 256 cells (1/16 of the
/// catalogue plus 256 routing dots per query).
const IVF_CLUSTERS: usize = 256;
const IVF_PROBES: usize = 16;
/// Users averaged for the recall@10 measurement.
const RECALL_USERS: usize = 128;
/// Item rows replaced per delta publish in the freshness workload — a
/// deal-lifecycle tick touches a small slice of the catalogue.
const DELTA_CHANGED_ROWS: usize = 64;
/// Seed of the freshness workload's IVF builds (any fixed value; the
/// engine's own builds use its internal seed).
const FRESHNESS_IVF_SEED: u64 = 0x1BF5_2026;

/// The sharded-tier workload: past the million-item mark, where one
/// engine's snapshot + IVF build is the monolith the shards split.
const N_ITEMS_1M: usize = 1 << 20; // 1,048,576
const N_USERS_1M: usize = 4_096;
/// Own/social width of the 1M workload (16-wide concatenated vectors —
/// narrow on purpose: the workload stresses catalogue *size*).
const DIM_1M: usize = 8;
/// Latent categories of the 1M catalogue.
const N_CATS_1M: usize = 512;
/// Shards in the sharded side.
const N_SHARDS_1M: usize = 4;
/// Single-engine IVF build over the full catalogue...
const IVF_CLUSTERS_1M: usize = 128;
const IVF_PROBES_1M: usize = 8;
/// ...vs per-shard builds at the same global probe fraction (each shard
/// clusters only its quarter: 4 x 32 cells, probing 2 each).
const IVF_CLUSTERS_PER_SHARD: usize = IVF_CLUSTERS_1M / N_SHARDS_1M;
const IVF_PROBES_PER_SHARD: usize = IVF_PROBES_1M / N_SHARDS_1M;
/// Burst shape of the 1M latency workload.
const BURSTS_1M: usize = 4;
const BURST_1M: usize = 64;

/// Median wall-clock seconds of `f` over [`REPS`] runs (after one warmup).
fn median_secs<F: FnMut()>(mut f: F) -> f64 {
    f(); // warmup
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct Row {
    name: &'static str,
    unit: &'static str,
    before_impl: &'static str,
    after_impl: &'static str,
    before_median_s: f64,
    after_median_s: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.before_median_s / self.after_median_s
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\"name\": \"{}\", \"unit\": \"{}\",\n",
                "     \"before\": {{\"impl\": \"{}\", \"median_s\": {:.6e}}},\n",
                "     \"after\": {{\"impl\": \"{}\", \"median_s\": {:.6e}}},\n",
                "     \"speedup\": {:.3}}}"
            ),
            self.name,
            self.unit,
            self.before_impl,
            self.before_median_s,
            self.after_impl,
            self.after_median_s,
            self.speedup(),
        )
    }
}

fn synthetic_snapshot() -> EmbeddingSnapshot {
    let mut rng = StdRng::seed_from_u64(42);
    EmbeddingSnapshot::new(
        0.6,
        init::xavier_uniform(512, DIM, &mut rng),
        init::xavier_uniform(N_ITEMS, DIM, &mut rng),
        init::xavier_uniform(512, DIM, &mut rng),
        init::xavier_uniform(N_ITEMS, DIM, &mut rng),
    )
}

/// `beibei_large`-scale user universe (8000 users) over the 20k-item
/// catalogue — the latency workload.
fn large_snapshot() -> EmbeddingSnapshot {
    let mut rng = StdRng::seed_from_u64(4242);
    EmbeddingSnapshot::new(
        0.6,
        init::xavier_uniform(N_USERS_LARGE, DIM, &mut rng),
        init::xavier_uniform(N_ITEMS, DIM, &mut rng),
        init::xavier_uniform(N_USERS_LARGE, DIM, &mut rng),
        init::xavier_uniform(N_ITEMS, DIM, &mut rng),
    )
}

/// `EmbeddingSnapshot` scoring through the scalar reference kernel — the
/// "before" side of the serving rows.
struct ReferenceScorer<'a>(&'a EmbeddingSnapshot);

impl Scorer for ReferenceScorer<'_> {
    fn score_items(&self, user: u32, items: &[u32]) -> Vec<f32> {
        let s = self.0;
        let mut out = [0.0f32];
        items
            .iter()
            .map(|&i| {
                reference::blend_dot_block(
                    s.user_own().row(user as usize),
                    s.item_own(),
                    s.user_social().row(user as usize),
                    s.item_social(),
                    s.alpha(),
                    i as usize,
                    &mut out,
                );
                out[0]
            })
            .collect()
    }
}

/// One full catalogue pass in 512-item blocks through `blend`.
fn catalogue_pass(
    snap: &EmbeddingSnapshot,
    user: usize,
    block: &mut [f32],
    blend: impl Fn(&[f32], &Matrix, &[f32], &Matrix, f32, usize, &mut [f32]),
) {
    let own = snap.user_own().row(user);
    let social = snap.user_social().row(user);
    let mut start = 0;
    while start < N_ITEMS {
        let len = block.len().min(N_ITEMS - start);
        blend(
            own,
            snap.item_own(),
            social,
            snap.item_social(),
            snap.alpha(),
            start,
            &mut block[..len],
        );
        start += len;
    }
    std::hint::black_box(&block);
}

fn scoring_row(snap: &EmbeddingSnapshot) -> Row {
    let mut block = vec![0.0f32; 512];
    Row {
        name: "scoring",
        unit: "s_per_catalogue_pass_20k_items_d64",
        before_impl: "kernels::reference::blend_dot_block (scalar loops)",
        after_impl: "kernels::blend_dot_block (8-lane blocked, 4-item tiles)",
        before_median_s: median_secs(|| {
            catalogue_pass(snap, 0, &mut block, reference::blend_dot_block)
        }),
        after_median_s: median_secs(|| {
            catalogue_pass(snap, 0, &mut block, kernels::blend_dot_block)
        }),
    }
}

fn multi_user_scoring_row(snap: &EmbeddingSnapshot) -> Row {
    let users: Vec<u32> = (0..USER_BLOCK as u32).collect();
    let mut block = vec![0.0f32; 512];
    let mut multi_block = vec![0.0f32; USER_BLOCK * 512];

    // Sanity: per-user rows bit-identical before timing anything.
    snap.score_block_multi(&users, 0, 512, &mut multi_block);
    for (u, &user) in users.iter().enumerate() {
        snap.score_block(user, 0, &mut block);
        assert!(
            block
                .iter()
                .zip(&multi_block[u * 512..(u + 1) * 512])
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "batched scoring diverged from single-user scoring"
        );
    }

    Row {
        name: "multi_user_scoring",
        unit: "s_per_8user_catalogue_pass_20k_items_d64",
        before_impl: "8 sequential blend_dot_block passes (item tables streamed once per user)",
        after_impl: "one blend_dot_block_multi pass (item tables streamed once per block)",
        before_median_s: median_secs(|| {
            for u in 0..USER_BLOCK {
                catalogue_pass(snap, u, &mut block, kernels::blend_dot_block);
            }
        }),
        after_median_s: median_secs(|| {
            let mut start = 0usize;
            while start < N_ITEMS {
                let len = 512.min(N_ITEMS - start);
                snap.score_block_multi(&users, start, len, &mut multi_block[..USER_BLOCK * len]);
                start += len;
            }
            std::hint::black_box(&multi_block);
        }),
    }
}

fn matmul_row() -> Row {
    // GBGCN cross-view FC at the "paper" workload scale: 1200 users,
    // (L+1)d = 96-wide concatenated embeddings.
    let mut rng = StdRng::seed_from_u64(7);
    let x = init::xavier_uniform(1200, 96, &mut rng);
    let w = init::xavier_uniform(96, 96, &mut rng);
    Row {
        name: "matmul_propagation",
        unit: "s_per_1200x96x96_product",
        before_impl: "kernels::reference::matmul (seed scalar ikj with zero-skip branch)",
        after_impl: "kernels::matmul (4x8 register-tiled micro-kernel)",
        before_median_s: median_secs(|| {
            std::hint::black_box(reference::matmul(&x, &w));
        }),
        after_median_s: median_secs(|| {
            std::hint::black_box(kernels::matmul(&x, &w));
        }),
    }
}

fn matmul_nt_row() -> Row {
    // The backward of every cross-view FC (`dX = dY * W^T`) — a
    // reduction-shaped product, where the seed's sequential scalar
    // accumulator could not vectorize at all.
    let mut rng = StdRng::seed_from_u64(11);
    let dy = init::xavier_uniform(1200, 96, &mut rng);
    let w = init::xavier_uniform(96, 96, &mut rng);
    Row {
        name: "matmul_nt_backward",
        unit: "s_per_1200x96x96_nt_product",
        before_impl: "kernels::reference::matmul_nt (seed scalar dot loops)",
        after_impl: "kernels::matmul_nt (8-lane dot, 4-row tiles)",
        before_median_s: median_secs(|| {
            std::hint::black_box(reference::matmul_nt(&dy, &w));
        }),
        after_median_s: median_secs(|| {
            std::hint::black_box(kernels::matmul_nt(&dy, &w));
        }),
    }
}

fn topk_row(snap: &EmbeddingSnapshot) -> Row {
    let engine = QueryEngine::new(snap.clone());
    let candidates: Vec<u32> = (0..N_ITEMS as u32).collect();
    let before_scorer = ReferenceScorer(snap);

    // Sanity: identical rankings before timing anything.
    let served: Vec<(u32, f32)> = engine
        .recommend(3, 10)
        .iter()
        .map(|e| (e.item, e.score))
        .collect();
    let offline = reference_topk(snap, 3, &candidates, 10);
    assert_eq!(
        served.iter().map(|e| e.0).collect::<Vec<_>>(),
        offline.iter().map(|e| e.0).collect::<Vec<_>>(),
        "engine and reference rankings diverged"
    );

    let mut user = 0u32;
    let before = median_secs(|| {
        user = (user + 1) % 512;
        std::hint::black_box(reference_topk(&before_scorer, user, &candidates, 10));
    });
    let mut user = 0u32;
    let after = median_secs(|| {
        user = (user + 1) % 512;
        std::hint::black_box(engine.recommend(user, 10));
    });
    Row {
        name: "topk_serving",
        unit: "s_per_top10_query_20k_items",
        before_impl: "materialize-and-sort over the scalar reference kernel",
        after_impl: "QueryEngine (blocked kernel + bounded heap)",
        before_median_s: before,
        after_median_s: after,
    }
}

fn topk_multi_row(snap: &EmbeddingSnapshot) -> Row {
    let engine = QueryEngine::new(snap.clone());
    let mut base = 0u32;
    let before = median_secs(|| {
        base = (base + USER_BLOCK as u32) % 512;
        for u in 0..USER_BLOCK as u32 {
            std::hint::black_box(engine.recommend(base + u, 10));
        }
    });
    let mut base = 0u32;
    let after = median_secs(|| {
        base = (base + USER_BLOCK as u32) % 512;
        let users: Vec<u32> = (base..base + USER_BLOCK as u32).collect();
        std::hint::black_box(engine.recommend_many(&users, 10));
    });
    Row {
        name: "topk_serving_multi",
        unit: "s_per_8_top10_queries_20k_items",
        before_impl: "8 sequential QueryEngine::recommend calls (one catalogue walk each)",
        after_impl: "one QueryEngine::recommend_many call (one shared catalogue walk)",
        before_median_s: before,
        after_median_s: after,
    }
}

/// One enqueue→reply latency distribution: p50/p99 seconds over bursts of
/// queued queries against a `RecommendService`.
struct LatencyRow {
    name: &'static str,
    unit: &'static str,
    before_impl: &'static str,
    after_impl: &'static str,
    before_p50_s: f64,
    before_p99_s: f64,
    after_p50_s: f64,
    after_p99_s: f64,
}

impl LatencyRow {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\"name\": \"{}\", \"unit\": \"{}\",\n",
                "     \"before\": {{\"impl\": \"{}\", \"p50_s\": {:.6e}, \"p99_s\": {:.6e}}},\n",
                "     \"after\": {{\"impl\": \"{}\", \"p50_s\": {:.6e}, \"p99_s\": {:.6e}}},\n",
                "     \"p99_speedup\": {:.3}}}"
            ),
            self.name,
            self.unit,
            self.before_impl,
            self.before_p50_s,
            self.before_p99_s,
            self.after_impl,
            self.after_p50_s,
            self.after_p99_s,
            self.before_p99_s / self.after_p99_s,
        )
    }
}

/// Runs the burst workload against one service configuration and returns
/// `(p50, p99)` of the corrected enqueue→reply latency clock.
fn latency_side(snap: &EmbeddingSnapshot, user_block: usize) -> (f64, f64) {
    const BURSTS: usize = 6;
    const BURST: usize = 128;
    let service = RecommendService::with_config(
        QueryEngine::with_config(
            snap.clone(),
            EngineConfig {
                user_block,
                ..Default::default()
            },
        ),
        ServiceConfig {
            workers: 2,
            queue_depth: BURST,
            warm_k: 10,
            ..Default::default()
        },
    );
    // Deterministic user stream over the large universe: bursts saturate
    // the queue, so recorded latencies include real queue wait — exactly
    // what the coalescer amortizes.
    let mut x = 0x243F_6A88_85A3_08D3u64;
    for _ in 0..BURSTS {
        let users: Vec<u32> = (0..BURST)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) as u32 % N_USERS_LARGE as u32
            })
            .collect();
        std::hint::black_box(service.recommend_batch(&users, 10));
    }
    let sw = service.latency_stopwatch();
    assert_eq!(sw.n_samples(), BURSTS * BURST);
    let ps = sw.percentiles_secs(&[50.0, 99.0]);
    (ps[0], ps[1])
}

fn serving_latency_row(snap: &EmbeddingSnapshot) -> LatencyRow {
    let (before_p50, before_p99) = latency_side(snap, 1);
    let (after_p50, after_p99) = latency_side(snap, USER_BLOCK);
    LatencyRow {
        name: "serving_latency_enqueue_to_reply",
        unit: "s_per_top10_query_8000users_20k_items_bursts_of_128",
        before_impl: "no coalescing (user_block=1): one catalogue pass per queued request",
        after_impl: "worker coalescing (user_block=8): queued requests share catalogue passes",
        before_p50_s: before_p50,
        before_p99_s: before_p99,
        after_p50_s: after_p50,
        after_p99_s: after_p99,
    }
}

/// Runs the burst workload with admission control at `shed_watermark`
/// and returns `(p50, p99)` of the *served* requests plus how many were
/// shed. `usize::MAX` = never shed (blocking backpressure only — the
/// pre-PR 8 behaviour).
fn shed_side(snap: &EmbeddingSnapshot, shed_watermark: usize) -> (f64, f64, usize) {
    const BURSTS: usize = 6;
    const BURST: usize = 128;
    let service = RecommendService::with_config(
        QueryEngine::with_config(
            snap.clone(),
            EngineConfig {
                user_block: USER_BLOCK,
                ..Default::default()
            },
        ),
        ServiceConfig {
            workers: 2,
            queue_depth: BURST,
            warm_k: 10,
            shed_watermark,
            ..Default::default()
        },
    );
    let mut x = 0x243F_6A88_85A3_08D3u64;
    for _ in 0..BURSTS {
        let users: Vec<u32> = (0..BURST)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) as u32 % N_USERS_LARGE as u32
            })
            .collect();
        std::hint::black_box(service.try_recommend_batch(&users, 10));
    }
    let shed = service.requests_shed();
    let sw = service.latency_stopwatch();
    assert_eq!(sw.n_samples() + shed, BURSTS * BURST);
    let ps = sw.percentiles_secs(&[50.0, 99.0]);
    (ps[0], ps[1], shed)
}

/// Load shedding vs pure queueing under the same burst overload: with a
/// queue-depth watermark, requests past the watermark are refused in
/// O(1) at admission and the *served* requests never wait behind a deep
/// backlog — the p99 an operator actually promises. Both sides run the
/// identical offered load; only admission policy differs.
fn shed_vs_queue_row(snap: &EmbeddingSnapshot) -> (LatencyRow, usize) {
    let (before_p50, before_p99, shed_before) = shed_side(snap, usize::MAX);
    assert_eq!(shed_before, 0, "unbounded watermark never sheds");
    let (after_p50, after_p99, shed_after) = shed_side(snap, 32);
    (
        LatencyRow {
            name: "shed_vs_queue_p99_under_burst",
            unit: "s_per_served_top10_query_8000users_20k_items_bursts_of_128",
            before_impl:
                "blocking backpressure only: every burst request queues, p99 rides the backlog",
            after_impl:
                "watermark shedding (depth>=32 refused with Overloaded): served p99 is bounded",
            before_p50_s: before_p50,
            before_p99_s: before_p99,
            after_p50_s: after_p50,
            after_p99_s: after_p99,
        },
        shed_after,
    )
}

/// The cost of worker supervision on the uncontended hot path: the same
/// batched catalogue pass through the raw infallible entry point vs the
/// supervised fallible one (`try_recommend_many` = request validation +
/// `catch_unwind` around scoring). `catch_unwind` is zero-cost until a
/// panic actually unwinds, so this row should sit within noise of 1.0x —
/// it exists to keep that claim measured, not assumed.
fn supervision_row(snap: &EmbeddingSnapshot) -> Row {
    let engine = QueryEngine::with_config(
        snap.clone(),
        EngineConfig {
            user_block: USER_BLOCK,
            cache_capacity: 0,
            ..Default::default()
        },
    );
    let users: Vec<u32> = (0..USER_BLOCK as u32).collect();
    let raw = median_secs(|| {
        std::hint::black_box(engine.recommend_many(&users, 10));
    });
    let supervised = median_secs(|| {
        std::hint::black_box(engine.try_recommend_many(&users, 10).expect("no faults"));
    });
    Row {
        name: "supervised_vs_raw_batch_scoring",
        unit: "s_per_8user_top10_batch_20k_items",
        before_impl: "recommend_many: unsupervised batched catalogue pass",
        after_impl:
            "try_recommend_many: validation + catch_unwind supervision around the same pass",
        before_median_s: raw,
        after_median_s: supervised,
    }
}

/// The scaled 80k-item catalogue: items drawn around `N_CATS_SCALED`
/// category centers (center + 8% noise), users unclustered. Everything
/// is seeded, so the workload — and the measured recall — is exactly
/// reproducible.
fn scaled_clustered_snapshot() -> EmbeddingSnapshot {
    let mut rng = StdRng::seed_from_u64(777);
    let centers_own = init::xavier_uniform(N_CATS_SCALED, DIM_SCALED, &mut rng);
    let centers_social = init::xavier_uniform(N_CATS_SCALED, DIM_SCALED, &mut rng);
    let noise_own = init::xavier_uniform(N_ITEMS_SCALED, DIM_SCALED, &mut rng);
    let noise_social = init::xavier_uniform(N_ITEMS_SCALED, DIM_SCALED, &mut rng);
    let item = |centers: &Matrix, noise: &Matrix| {
        Matrix::from_fn(N_ITEMS_SCALED, DIM_SCALED, |r, c| {
            centers.get(r % N_CATS_SCALED, c) + 0.08 * noise.get(r, c)
        })
    };
    EmbeddingSnapshot::new(
        0.6,
        init::xavier_uniform(N_USERS_SCALED, DIM_SCALED, &mut rng),
        item(&centers_own, &noise_own),
        init::xavier_uniform(N_USERS_SCALED, DIM_SCALED, &mut rng),
        item(&centers_social, &noise_social),
    )
}

/// Exact vs IVF engines over the scaled catalogue. The IVF engine's
/// index build (seeded k-means over all 80k concatenated item vectors)
/// happens on its first query — the warmup inside `median_secs`, never a
/// timed sample.
fn scaled_engines(snap: &EmbeddingSnapshot) -> (QueryEngine, QueryEngine) {
    let exact = QueryEngine::new(snap.clone());
    let ivf = QueryEngine::with_config(
        snap.clone(),
        EngineConfig {
            retrieval: Retrieval::Ivf {
                n_clusters: IVF_CLUSTERS,
                n_probe: IVF_PROBES,
            },
            ..Default::default()
        },
    );
    (exact, ivf)
}

fn ivf_latency_row(exact: &QueryEngine, ivf: &QueryEngine) -> Row {
    let mut user = 0u32;
    let before = median_secs(|| {
        user = (user + 1) % N_USERS_SCALED as u32;
        std::hint::black_box(exact.recommend(user, 10));
    });
    let mut user = 0u32;
    let after = median_secs(|| {
        user = (user + 1) % N_USERS_SCALED as u32;
        std::hint::black_box(ivf.recommend(user, 10));
    });
    Row {
        name: "ivf_vs_exact_latency",
        unit: "s_per_top10_query_80k_items_d32x2",
        before_impl: "exhaustive blocked catalogue walk (Retrieval::Exact)",
        after_impl: "IVF retrieval, 16 of 256 cells probed (Retrieval::Ivf)",
        before_median_s: before,
        after_median_s: after,
    }
}

/// Mean recall@10 of the IVF ranking against exact serving over
/// [`RECALL_USERS`] users of the scaled workload.
fn ivf_recall_at_10(exact: &QueryEngine, ivf: &QueryEngine) -> f64 {
    let mut total = 0.0f64;
    for user in 0..RECALL_USERS as u32 {
        let e: Vec<u32> = exact.recommend(user, 10).iter().map(|x| x.item).collect();
        let a: Vec<u32> = ivf.recommend(user, 10).iter().map(|x| x.item).collect();
        total += recall_vs_exact(&e, &a) as f64;
    }
    total / RECALL_USERS as f64
}

/// The item-churn delta of the index-refresh row:
/// [`DELTA_CHANGED_ROWS`] item rows replaced at even strides across the
/// scaled catalogue, values seeded by the item id.
fn item_churn_delta(snap: &EmbeddingSnapshot) -> SnapshotDelta {
    let (od, sd) = (snap.own_dim(), snap.social_dim());
    let mut delta = SnapshotDelta::new();
    for j in 0..DELTA_CHANGED_ROWS {
        let id = (j * (N_ITEMS_SCALED / DELTA_CHANGED_ROWS)) as u32;
        let row = |w: usize, shift: f32| -> Vec<f32> {
            (0..w)
                .map(|c| ((id as usize + c) as f32 * 0.11 + shift).sin())
                .collect()
        };
        delta = delta.set_item(id, row(od, 0.3), row(sd, -0.7));
    }
    delta
}

/// The user-drift delta of the publish-cost row:
/// [`DELTA_CHANGED_ROWS`] user rows replaced (users whose deal
/// participation moved their embedding between full retrains). This is
/// the dominant streaming tick, and the case where the delta path wins
/// big: item-row churn pays one COW table detach either way (bounded by
/// one table copy), but user drift lets `publish_delta` alias both
/// 80k-item tables while a full publish re-ships them.
fn user_drift_delta(snap: &EmbeddingSnapshot) -> SnapshotDelta {
    let (od, sd) = (snap.own_dim(), snap.social_dim());
    let mut delta = SnapshotDelta::new();
    for j in 0..DELTA_CHANGED_ROWS {
        let id = (j * (N_USERS_SCALED / DELTA_CHANGED_ROWS)) as u32;
        let row = |w: usize, shift: f32| -> Vec<f32> {
            (0..w)
                .map(|c| ((id as usize + c) as f32 * 0.13 + shift).cos())
                .collect()
        };
        delta = delta.set_user(id, row(od, 0.5), row(sd, -0.2));
    }
    delta
}

/// Time-to-live-version of a publish: shipping a fully materialized
/// snapshot vs shipping only the changed rows, on the user-drift tick.
fn delta_publish_row(snap: &EmbeddingSnapshot) -> Row {
    let base = snap.to_shared();
    let delta = user_drift_delta(&base);
    let next_full = delta.apply(&base);
    // The full-publish side hands the handle a snapshot with *owned*
    // tables — what a trainer-side export materializes. Built once here
    // (untimed); each timed publish then pays the full deep copy a real
    // per-tick export would pay.
    let owned = |m: &Matrix| Matrix::from_fn(m.rows(), m.cols(), |r, c| m.get(r, c));
    let next_owned = EmbeddingSnapshot::new(
        next_full.alpha(),
        owned(next_full.user_own()),
        owned(next_full.item_own()),
        owned(next_full.user_social()),
        owned(next_full.item_social()),
    );

    // Sanity: both publish paths serve bitwise-identical tables.
    let h_full = SnapshotHandle::new(base.clone());
    let h_delta = SnapshotHandle::new(base.clone());
    h_full.publish(next_owned.clone());
    h_delta.publish_delta(&delta);
    assert!(
        *h_full.load().snapshot() == *h_delta.load().snapshot(),
        "delta publish diverged from full publish"
    );

    Row {
        name: "delta_vs_full_publish",
        unit: "s_per_publish_80k_items_d32x2_64_changed_user_rows",
        before_impl: "SnapshotHandle::publish of a fully materialized snapshot (every row shipped)",
        after_impl:
            "SnapshotHandle::publish_delta (changed rows only; untouched item tables aliased)",
        before_median_s: median_secs(|| {
            std::hint::black_box(h_full.publish(next_owned.clone()));
        }),
        after_median_s: median_secs(|| {
            std::hint::black_box(h_delta.publish_delta(&delta));
        }),
    }
}

/// Time-to-fresh-index after a delta publish: full seeded k-means
/// rebuild vs incremental nearest-centroid maintenance.
fn ivf_update_row(snap: &EmbeddingSnapshot) -> Row {
    let base = snap.to_shared();
    let delta = item_churn_delta(&base);
    let changed = delta.changed_item_ids();
    let next = delta.apply(&base);
    let prev = IvfIndex::build(&base, 1, IVF_CLUSTERS, FRESHNESS_IVF_SEED, true);

    // Sanity: the incremental index keeps the cell count and stays a
    // partition of the catalogue (every item in exactly one cell).
    let updated = prev.update(&next, 2, &changed, 0);
    assert_eq!(updated.n_clusters(), prev.n_clusters());
    let mut members: Vec<u32> = (0..updated.n_clusters())
        .flat_map(|c| updated.list(c).iter().copied())
        .collect();
    members.sort_unstable();
    assert!(
        members.len() == N_ITEMS_SCALED
            && members.iter().enumerate().all(|(i, &m)| i == m as usize),
        "updated index is not a partition of the catalogue"
    );

    Row {
        name: "ivf_update_incremental_vs_rebuild",
        unit: "s_per_index_refresh_80k_items_256_cells_64_moved_rows",
        before_impl: "IvfIndex::build (full seeded k-means re-clustering of all 80k items)",
        after_impl:
            "IvfIndex::update (centroids kept, 64 moved items re-routed, untouched cells aliased)",
        before_median_s: median_secs(|| {
            std::hint::black_box(IvfIndex::build(
                &next,
                2,
                IVF_CLUSTERS,
                FRESHNESS_IVF_SEED,
                true,
            ));
        }),
        after_median_s: median_secs(|| {
            std::hint::black_box(prev.update(&next, 2, &changed, 0));
        }),
    }
}

/// The 2^20-item clustered catalogue, tables pre-shared so engine and
/// shard construction alias one copy instead of cloning 100+ MB.
fn million_item_snapshot() -> EmbeddingSnapshot {
    let mut rng = StdRng::seed_from_u64(2026);
    let centers_own = init::xavier_uniform(N_CATS_1M, DIM_1M, &mut rng);
    let centers_social = init::xavier_uniform(N_CATS_1M, DIM_1M, &mut rng);
    let noise_own = init::xavier_uniform(N_ITEMS_1M, DIM_1M, &mut rng);
    let noise_social = init::xavier_uniform(N_ITEMS_1M, DIM_1M, &mut rng);
    let item = |centers: &Matrix, noise: &Matrix| {
        Matrix::from_fn(N_ITEMS_1M, DIM_1M, |r, c| {
            centers.get(r % N_CATS_1M, c) + 0.08 * noise.get(r, c)
        })
    };
    EmbeddingSnapshot::new(
        0.6,
        init::xavier_uniform(N_USERS_1M, DIM_1M, &mut rng),
        item(&centers_own, &noise_own),
        init::xavier_uniform(N_USERS_1M, DIM_1M, &mut rng),
        item(&centers_social, &noise_social),
    )
    .to_shared()
}

/// Fires the deterministic burst workload at `service` and returns
/// `(p50, p99)` of the enqueue→reply clock.
fn burst_percentiles<E: ServeEngine>(service: &RecommendService<E>, seed: u64) -> (f64, f64) {
    let mut x = seed;
    for _ in 0..BURSTS_1M {
        let users: Vec<u32> = (0..BURST_1M)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) as u32 % N_USERS_1M as u32
            })
            .collect();
        std::hint::black_box(service.recommend_batch(&users, 10));
    }
    let sw = service.latency_stopwatch();
    assert_eq!(sw.n_samples(), BURSTS_1M * BURST_1M);
    let ps = sw.percentiles_secs(&[50.0, 99.0]);
    (ps[0], ps[1])
}

/// Single IVF engine vs the 4-shard scatter-gather tier over the 2^20
/// catalogue, both pre-warmed (index/slice builds happen before the
/// first timed burst, as they would in a deployment that warms before
/// taking traffic). Also returns the sharded side's per-stage
/// `(label, n, mean_s, p99_s)` attribution.
#[allow(clippy::type_complexity)]
fn sharded_latency_row(snap: &EmbeddingSnapshot) -> (LatencyRow, Vec<(String, usize, f64, f64)>) {
    let service_cfg = || ServiceConfig {
        workers: 2,
        queue_depth: BURST_1M,
        ..Default::default()
    };
    let single = QueryEngine::with_config(
        snap.clone(),
        EngineConfig {
            retrieval: Retrieval::Ivf {
                n_clusters: IVF_CLUSTERS_1M,
                n_probe: IVF_PROBES_1M,
            },
            ..Default::default()
        },
    );
    std::hint::black_box(single.recommend(0, 10)); // IVF build, untimed
    let service = RecommendService::with_config(single, service_cfg());
    let (before_p50, before_p99) = burst_percentiles(&service, 0x9E37_79B9_7F4A_7C15);
    drop(service);

    let sharded = ShardedEngine::with_config(
        snap.clone(),
        ShardedConfig {
            n_shards: N_SHARDS_1M,
            engine: EngineConfig {
                retrieval: Retrieval::Ivf {
                    n_clusters: IVF_CLUSTERS_PER_SHARD,
                    n_probe: IVF_PROBES_PER_SHARD,
                },
                ..Default::default()
            },
            ..Default::default()
        },
    );
    std::hint::black_box(sharded.recommend(0, 10)); // slice set + 4 builds
    let service = RecommendService::with_config(sharded, service_cfg());
    let (after_p50, after_p99) = burst_percentiles(&service, 0x9E37_79B9_7F4A_7C15);
    let stages = service.engine().latency_breakdown().summary();
    (
        LatencyRow {
            name: "sharded_vs_single_latency_1m_items",
            unit: "s_per_top10_query_1048576_items_bursts_of_64",
            before_impl:
                "one QueryEngine over the full catalogue (IVF 8 of 128 cells, one 1M-item build)",
            after_impl:
                "ShardedEngine, 4 shards x 262144 items (IVF 2 of 32 cells each, scatter-gather merge)",
            before_p50_s: before_p50,
            before_p99_s: before_p99,
            after_p50_s: after_p50,
            after_p99_s: after_p99,
        },
        stages,
    )
}

/// Cold snapshot availability at the 1M scale: the v1 streaming loader
/// (read + parse + copy every float) vs mapping the v2 layout. Both
/// sides load bit-identical tables (asserted before timing).
fn mmap_load_row(snap: &EmbeddingSnapshot) -> Row {
    let dir = std::env::temp_dir().join(format!("gb_bench_mmap_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench temp dir");
    let v1 = dir.join("snapshot_v1.gbsn");
    let v2 = dir.join("snapshot_v2.gbsn2");
    gb_serve::save_to_path(snap, &v1).expect("write v1 snapshot");
    save_mmap_snapshot(snap, &v2).expect("write v2 snapshot");
    assert!(
        gb_serve::load_from_path(&v1).expect("v1 load") == open_mmap_snapshot(&v2).expect("v2 map"),
        "v1 and v2 loaders disagree"
    );
    let row = Row {
        name: "snapshot_load_1m_items",
        unit: "s_per_cold_snapshot_open_1048576_items_d8x2",
        before_impl: "v1 streaming loader (chunked read, parse, copy into owned tables)",
        after_impl: "v2 open_mmap_snapshot (validate header, map tables zero-copy)",
        before_median_s: median_secs(|| {
            std::hint::black_box(gb_serve::load_from_path(&v1).expect("v1 load"));
        }),
        after_median_s: median_secs(|| {
            std::hint::black_box(open_mmap_snapshot(&v2).expect("v2 map"));
        }),
    };
    std::fs::remove_file(&v1).ok();
    std::fs::remove_file(&v2).ok();
    row
}

fn epoch_row() -> Row {
    let data = generate(&SynthConfig {
        n_users: 600,
        n_items: 150,
        ..SynthConfig::beibei_like()
    });
    // Small batches on purpose: many batches per epoch is what makes
    // per-batch spawn overhead visible (and is the realistic regime for
    // the paper's batch count at production scale).
    let cfg = || TrainConfig {
        dim: 32,
        epochs: 1,
        batch_size: 64,
        ..Default::default()
    };
    let scoped = ShardExecutor::scoped(2);
    let pooled = ShardExecutor::new(2);
    let before = median_secs(|| {
        let mut m = Mf::new(cfg(), InteractionKind::BothRoles);
        std::hint::black_box(m.fit_sharded(&data, 4, &scoped));
    });
    let after = median_secs(|| {
        let mut m = Mf::new(cfg(), InteractionKind::BothRoles);
        std::hint::black_box(m.fit_sharded(&data, 4, &pooled));
    });
    Row {
        name: "epoch_time",
        unit: "s_per_mf_epoch_600users_4shards_2threads_batch64",
        before_impl: "per-batch std::thread::scope spawning (ShardExecutor::scoped)",
        after_impl: "persistent channel-fed worker pool (ShardExecutor::new)",
        before_median_s: before,
        after_median_s: after,
    }
}

/// PR 10's shared propagation forward: one GBGCN fine-tuning epoch at
/// 4 shards on 2 threads, per-shard propagate replay (the pre-PR 10
/// recipe, kept as `sharded_grad_replicated`) vs one shared forward per
/// batch whose backward is seeded by the reduced per-shard table
/// cotangents. Both recipes produce bitwise-equal losses and
/// rounding-equal gradients (asserted in gb-core's tests); this row
/// prices the redundant propagation work the shared path removes.
fn shared_forward_epoch_row() -> Row {
    let data = generate(&SynthConfig {
        n_users: 600,
        n_items: 150,
        ..SynthConfig::beibei_like()
    });
    let cfg = GbgcnConfig {
        dim: 32,
        batch_size: 64,
        ..GbgcnConfig::test_config()
    };
    let par = ParallelTrainConfig {
        n_shards: 4,
        n_threads: 2,
        refresh_every: 0,
    };
    let mut m = GbgcnModel::new(cfg, &data);
    let before = median_secs(|| {
        std::hint::black_box(m.measure_epoch_secs_replicated(1, &par));
    });
    let after = median_secs(|| {
        std::hint::black_box(m.measure_epoch_secs_parallel(1, &par));
    });
    Row {
        name: "epoch_time_shared_forward",
        unit: "s_per_gbgcn_epoch_600users_4shards_2threads_batch64",
        before_impl: "per-shard propagation replay (every shard re-records propagate on its tape)",
        after_impl:
            "shared propagation forward + per-shard seeded backwards (propagate once per batch)",
        before_median_s: before,
        after_median_s: after,
    }
}

/// PR 10's boxed-op tape: forward + backward of a gather-heavy
/// BPR-shaped graph — six 2048-row gathers from one 4096x32 embedding
/// table feeding rowwise dots and a log-sigmoid head. The unfused side
/// reproduces the seed tape's backward (a zeroed full-size table
/// allocated per gather node); the fused side scatters every gather
/// cotangent into one reused accumulator per parameter slot.
fn tape_backward_row() -> Row {
    let mut rng = StdRng::seed_from_u64(31);
    let mut store = ParamStore::new();
    let emb = store.add("emb", init::xavier_uniform(4096, 32, &mut rng));
    let idx: Vec<Arc<Vec<u32>>> = (0..6u32)
        .map(|k| Arc::new((0..2048u32).map(|i| (i * 37 + k * 131) % 4096).collect()))
        .collect();
    let run = |fused: bool| {
        let mut tape = if fused {
            Tape::new()
        } else {
            Tape::new_unfused()
        };
        let g: Vec<_> = idx
            .iter()
            .map(|ix| tape.gather_param(&store, emb, Arc::clone(ix)))
            .collect();
        let pos_a = tape.rowwise_dot(g[0], g[1]);
        let neg_a = tape.rowwise_dot(g[0], g[2]);
        let pos_b = tape.rowwise_dot(g[3], g[4]);
        let neg_b = tape.rowwise_dot(g[3], g[5]);
        let diff_a = tape.sub(pos_a, neg_a);
        let diff_b = tape.sub(pos_b, neg_b);
        let ls_a = tape.log_sigmoid(diff_a);
        let ls_b = tape.log_sigmoid(diff_b);
        let both = tape.add(ls_a, ls_b);
        let m = tape.mean_all(both);
        let loss = tape.scale(m, -1.0);
        std::hint::black_box(tape.backward(loss, &store));
    };
    Row {
        name: "tape_backward_fused",
        unit: "s_per_fwd_bwd_6x2048row_gathers_4096x32_table",
        before_impl:
            "seed-tape backward (zeroed full-size gradient table allocated per gather node)",
        after_impl: "boxed-op fused scatter (one reused accumulator per parameter slot)",
        before_median_s: median_secs(|| run(false)),
        after_median_s: median_secs(|| run(true)),
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR10.json".to_string());
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());

    let snap = synthetic_snapshot();
    let scaled = scaled_clustered_snapshot();
    let (exact_scaled, ivf_scaled) = scaled_engines(&scaled);
    let million = million_item_snapshot();
    let rows = [
        scoring_row(&snap),
        multi_user_scoring_row(&snap),
        matmul_row(),
        matmul_nt_row(),
        topk_row(&snap),
        topk_multi_row(&snap),
        epoch_row(),
        shared_forward_epoch_row(),
        tape_backward_row(),
        ivf_latency_row(&exact_scaled, &ivf_scaled),
        mmap_load_row(&million),
        delta_publish_row(&scaled),
        ivf_update_row(&scaled),
        supervision_row(&snap),
    ];
    for r in &rows {
        println!(
            "{:<24} before {:>12.3e}s  after {:>12.3e}s  speedup {:>6.2}x",
            r.name,
            r.before_median_s,
            r.after_median_s,
            r.speedup()
        );
    }

    let recall = ivf_recall_at_10(&exact_scaled, &ivf_scaled);
    println!(
        "{:<24} recall@10 {:.4} ({} of {} cells probed, {} items)",
        "ivf_recall_at_10", recall, IVF_PROBES, IVF_CLUSTERS, N_ITEMS_SCALED
    );

    let large = large_snapshot();
    let (sharded_row, shard_stages) = sharded_latency_row(&million);
    let (shed_row, shed_count) = shed_vs_queue_row(&large);
    let latency_rows = [serving_latency_row(&large), sharded_row, shed_row];
    println!(
        "{:<34} shed {} burst requests at watermark 32 (served-only percentiles)",
        "shed_vs_queue_p99_under_burst", shed_count
    );
    for r in &latency_rows {
        println!(
            "{:<34} before p50 {:>10.3e}s p99 {:>10.3e}s  after p50 {:>10.3e}s p99 {:>10.3e}s",
            r.name, r.before_p50_s, r.before_p99_s, r.after_p50_s, r.after_p99_s
        );
    }
    for (label, n, mean, p99) in &shard_stages {
        println!("  stage {label:<8} n {n:>4}  mean {mean:>10.3e}s  p99 {p99:>10.3e}s");
    }

    let body: Vec<String> = rows.iter().map(Row::to_json).collect();
    let latency_body: Vec<String> = latency_rows.iter().map(LatencyRow::to_json).collect();
    let retrieval_body = format!(
        concat!(
            "    {{\"name\": \"ivf_recall_at_10\",\n",
            "     \"unit\": \"mean_recall_vs_exact_top10_over_{}_users\",\n",
            "     \"n_clusters\": {}, \"n_probe\": {}, \"recall_at_10\": {:.4}}}"
        ),
        RECALL_USERS, IVF_CLUSTERS, IVF_PROBES, recall
    );
    // Freshness lag: time from "new rows ready" to "serveable with a
    // fresh retrieval index" — publish plus index refresh, per path.
    // The reciprocal is the publish rate each path can sustain before
    // refreshes pile up faster than they complete.
    let by_name = |n: &str| {
        rows.iter()
            .find(|r| r.name == n)
            .expect("bench row present")
    };
    let publish = by_name("delta_vs_full_publish");
    let index = by_name("ivf_update_incremental_vs_rebuild");
    let full_lag = publish.before_median_s + index.before_median_s;
    let delta_lag = publish.after_median_s + index.after_median_s;
    println!(
        "{:<34} full-path lag {:>10.3e}s ({:.1} publish/s)  delta-path lag {:>10.3e}s ({:.1} publish/s)",
        "freshness_lag_vs_publish_rate",
        full_lag,
        1.0 / full_lag,
        delta_lag,
        1.0 / delta_lag
    );
    let freshness_body = format!(
        concat!(
            "    {{\"name\": \"freshness_lag_vs_publish_rate\",\n",
            "     \"unit\": \"s_from_rows_ready_to_serveable_with_fresh_ivf_80k_items\",\n",
            "     \"full_path\": {{\"impl\": \"full publish + full k-means rebuild\", ",
            "\"lag_s\": {:.6e}, \"max_publish_rate_hz\": {:.3}}},\n",
            "     \"delta_path\": {{\"impl\": \"delta publish + incremental IVF update\", ",
            "\"lag_s\": {:.6e}, \"max_publish_rate_hz\": {:.3}}},\n",
            "     \"lag_speedup\": {:.3}}}"
        ),
        full_lag,
        1.0 / full_lag,
        delta_lag,
        1.0 / delta_lag,
        full_lag / delta_lag
    );
    let stage_body: Vec<String> = shard_stages
        .iter()
        .map(|(label, n, mean, p99)| {
            format!(
                "    {{\"stage\": \"{label}\", \"n\": {n}, \"mean_s\": {mean:.6e}, \"p99_s\": {p99:.6e}}}"
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"pr\": 10,\n",
            "  \"title\": \"Boxed-op autograd tape + shared propagation forward across ",
            "training shards\",\n",
            "  \"host_cores\": {},\n",
            "  \"note\": \"Medians of {} runs on the dev container (1 core — parallel-path rows ",
            "understate real-hardware wins; epoch_time_shared_forward in particular removes ",
            "work that shards redo concurrently on real cores, so its multi-core win is larger ",
            "than measured here). New this PR: the training-refactor rows. ",
            "epoch_time_shared_forward runs one GBGCN fine-tuning epoch at 4 shards on 2 ",
            "threads with every shard replaying the full propagation forward on its own tape ",
            "(the pre-PR 10 recipe) vs one shared propagation forward per batch whose backward ",
            "is seeded by the reduced per-shard table cotangents. tape_backward_fused prices ",
            "the boxed-op tape's fused gather backward — six 2048-row gathers from one 4096x32 ",
            "table through a BPR head, with the seed tape's zeroed-table-per-gather-node ",
            "backward vs scattering into one reused accumulator per parameter slot. ",
            "Carried-over rows: the robustness overhead rows (PR 8), the freshness workload ",
            "(PR 7), the sharded 1M tier + mmap cold load (PR 6), the scaled-catalogue IVF A/B ",
            "and recall (PR 5), batched multi-user scoring and the enqueue-to-reply clock ",
            "(PR 4), and the PR 3 kernel trajectory.\",\n",
            "  \"scaled_catalogue\": {{\"n_items\": {}, \"n_users\": {}, \"own_dim\": {}, ",
            "\"social_dim\": {}, \"n_categories\": {}}},\n",
            "  \"sharded_workload\": {{\"n_items\": {}, \"n_users\": {}, \"own_dim\": {}, ",
            "\"social_dim\": {}, \"n_categories\": {}, \"n_shards\": {}, ",
            "\"single_ivf\": {{\"n_clusters\": {}, \"n_probe\": {}}}, ",
            "\"per_shard_ivf\": {{\"n_clusters\": {}, \"n_probe\": {}}}}},\n",
            "  \"rows\": [\n{}\n  ],\n",
            "  \"retrieval_rows\": [\n{}\n  ],\n",
            "  \"latency_rows\": [\n{}\n  ],\n",
            "  \"freshness_rows\": [\n{}\n  ],\n",
            "  \"shard_stage_rows\": [\n{}\n  ]\n",
            "}}\n"
        ),
        cores,
        REPS,
        N_ITEMS_SCALED,
        N_USERS_SCALED,
        DIM_SCALED,
        DIM_SCALED,
        N_CATS_SCALED,
        N_ITEMS_1M,
        N_USERS_1M,
        DIM_1M,
        DIM_1M,
        N_CATS_1M,
        N_SHARDS_1M,
        IVF_CLUSTERS_1M,
        IVF_PROBES_1M,
        IVF_CLUSTERS_PER_SHARD,
        IVF_PROBES_PER_SHARD,
        body.join(",\n"),
        retrieval_body,
        latency_body.join(",\n"),
        freshness_body,
        stage_body.join(",\n")
    );
    let mut f = std::fs::File::create(&out_path).expect("create bench report");
    f.write_all(json.as_bytes()).expect("write bench report");
    println!("wrote {out_path}");
}
