//! Machine-readable perf trajectory: measures the serving/training hot
//! paths before/after and writes `BENCH_PR5.json` (pass a path as argv[1]
//! to write elsewhere).
//!
//! Every row is an honest in-process A/B — both sides run in this binary,
//! on this machine, interleaved:
//!
//! * `scoring`      — one full 20k-item catalogue pass through the
//!   blended dual-dot kernel: scalar `kernels::reference` loops vs the
//!   blocked `kernels::blend_dot_block` (the PR 3 kernel trajectory).
//! * `multi_user_scoring` — the same catalogue scored for a block of 8
//!   users: 8 sequential single-user passes (item tables streamed from
//!   memory 8 times) vs one `blend_dot_block_multi` pass (streamed once).
//!   Per-user outputs are bit-identical on both sides.
//! * `matmul_propagation` / `matmul_nt_backward` — the GBGCN cross-view
//!   FC shapes: scalar reference matmuls vs the register-tiled kernels.
//! * `topk_serving` — top-10 over 20k items: materialize-and-sort over
//!   the scalar kernel (the pre-PR 3 serving baseline) vs the blocked
//!   bounded-heap `QueryEngine`.
//! * `topk_serving_multi` — 8 top-10 queries end to end: sequential
//!   `recommend` per user vs one `recommend_many` catalogue walk.
//! * `epoch_time`   — one MF training epoch, 4 shards on 2 threads, small
//!   batches: per-batch `std::thread::scope` spawning vs the persistent
//!   worker pool. Both sides produce bit-identical embeddings.
//! * `ivf_vs_exact_latency` — the scaled-catalogue workload (80k items,
//!   clustered like a real catalogue): a top-10 query through the
//!   exhaustive blocked walk vs IVF retrieval probing 16 of 256 cells.
//!   The companion `ivf_recall_at_10` row reports the measured recall of
//!   the approximate ranking against exact serving on the same workload.
//!
//! Plus the enqueue→reply latency distribution (the corrected clock —
//! queue wait included) of the full `RecommendService` under bursts of
//! queued queries on a `beibei_large`-scale user universe:
//!
//! * `serving_latency_enqueue_to_reply` — coalescing off (`user_block=1`,
//!   one catalogue pass per request) vs on (`user_block=8`, up to 8
//!   queued requests share each pass); p50/p99 per side.
//!
//! Medians over repeated runs; single-run wall clock, so treat small
//! deltas as noise and mind the core-count note embedded in the output.

use gb_autograd::ShardExecutor;
use gb_data::convert::InteractionKind;
use gb_data::synth::{generate, SynthConfig};
use gb_eval::metrics::recall_vs_exact;
use gb_eval::topk::reference_topk;
use gb_eval::Scorer;
use gb_models::{EmbeddingSnapshot, Mf, TrainConfig};
use gb_serve::{EngineConfig, QueryEngine, RecommendService, Retrieval, ServiceConfig};
use gb_tensor::kernels::{self, reference};
use gb_tensor::{init, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use std::time::Instant;

const N_ITEMS: usize = 20_000;
const DIM: usize = 64;
const REPS: usize = 9;
/// Users per batched scoring block — the serving default
/// (`EngineConfig::user_block`).
const USER_BLOCK: usize = 8;
/// User universe of the latency workload: `SynthConfig::beibei_large`
/// scale (8000 users), over the same 20k-item catalogue.
const N_USERS_LARGE: usize = 8_000;

/// The scaled-catalogue workload (the ROADMAP's deferred item): 4× the
/// 20k catalogue, past where exhaustive per-query scans belong.
const N_ITEMS_SCALED: usize = 80_000;
/// Own/social embedding width of the scaled workload (64-wide
/// concatenated item vectors).
const DIM_SCALED: usize = 32;
/// Latent categories of the scaled catalogue. Real catalogues are
/// clustered (items belong to categories); the IVF cells recover that
/// structure, which is exactly the regime approximate retrieval targets.
const N_CATS_SCALED: usize = 256;
const N_USERS_SCALED: usize = 2_000;
/// IVF configuration measured: probe 16 of 256 cells (1/16 of the
/// catalogue plus 256 routing dots per query).
const IVF_CLUSTERS: usize = 256;
const IVF_PROBES: usize = 16;
/// Users averaged for the recall@10 measurement.
const RECALL_USERS: usize = 128;

/// Median wall-clock seconds of `f` over [`REPS`] runs (after one warmup).
fn median_secs<F: FnMut()>(mut f: F) -> f64 {
    f(); // warmup
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
    samples[samples.len() / 2]
}

struct Row {
    name: &'static str,
    unit: &'static str,
    before_impl: &'static str,
    after_impl: &'static str,
    before_median_s: f64,
    after_median_s: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.before_median_s / self.after_median_s
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\"name\": \"{}\", \"unit\": \"{}\",\n",
                "     \"before\": {{\"impl\": \"{}\", \"median_s\": {:.6e}}},\n",
                "     \"after\": {{\"impl\": \"{}\", \"median_s\": {:.6e}}},\n",
                "     \"speedup\": {:.3}}}"
            ),
            self.name,
            self.unit,
            self.before_impl,
            self.before_median_s,
            self.after_impl,
            self.after_median_s,
            self.speedup(),
        )
    }
}

fn synthetic_snapshot() -> EmbeddingSnapshot {
    let mut rng = StdRng::seed_from_u64(42);
    EmbeddingSnapshot::new(
        0.6,
        init::xavier_uniform(512, DIM, &mut rng),
        init::xavier_uniform(N_ITEMS, DIM, &mut rng),
        init::xavier_uniform(512, DIM, &mut rng),
        init::xavier_uniform(N_ITEMS, DIM, &mut rng),
    )
}

/// `beibei_large`-scale user universe (8000 users) over the 20k-item
/// catalogue — the latency workload.
fn large_snapshot() -> EmbeddingSnapshot {
    let mut rng = StdRng::seed_from_u64(4242);
    EmbeddingSnapshot::new(
        0.6,
        init::xavier_uniform(N_USERS_LARGE, DIM, &mut rng),
        init::xavier_uniform(N_ITEMS, DIM, &mut rng),
        init::xavier_uniform(N_USERS_LARGE, DIM, &mut rng),
        init::xavier_uniform(N_ITEMS, DIM, &mut rng),
    )
}

/// `EmbeddingSnapshot` scoring through the scalar reference kernel — the
/// "before" side of the serving rows.
struct ReferenceScorer<'a>(&'a EmbeddingSnapshot);

impl Scorer for ReferenceScorer<'_> {
    fn score_items(&self, user: u32, items: &[u32]) -> Vec<f32> {
        let s = self.0;
        let mut out = [0.0f32];
        items
            .iter()
            .map(|&i| {
                reference::blend_dot_block(
                    s.user_own().row(user as usize),
                    s.item_own(),
                    s.user_social().row(user as usize),
                    s.item_social(),
                    s.alpha(),
                    i as usize,
                    &mut out,
                );
                out[0]
            })
            .collect()
    }
}

/// One full catalogue pass in 512-item blocks through `blend`.
fn catalogue_pass(
    snap: &EmbeddingSnapshot,
    user: usize,
    block: &mut [f32],
    blend: impl Fn(&[f32], &Matrix, &[f32], &Matrix, f32, usize, &mut [f32]),
) {
    let own = snap.user_own().row(user);
    let social = snap.user_social().row(user);
    let mut start = 0;
    while start < N_ITEMS {
        let len = block.len().min(N_ITEMS - start);
        blend(
            own,
            snap.item_own(),
            social,
            snap.item_social(),
            snap.alpha(),
            start,
            &mut block[..len],
        );
        start += len;
    }
    std::hint::black_box(&block);
}

fn scoring_row(snap: &EmbeddingSnapshot) -> Row {
    let mut block = vec![0.0f32; 512];
    Row {
        name: "scoring",
        unit: "s_per_catalogue_pass_20k_items_d64",
        before_impl: "kernels::reference::blend_dot_block (scalar loops)",
        after_impl: "kernels::blend_dot_block (8-lane blocked, 4-item tiles)",
        before_median_s: median_secs(|| {
            catalogue_pass(snap, 0, &mut block, reference::blend_dot_block)
        }),
        after_median_s: median_secs(|| {
            catalogue_pass(snap, 0, &mut block, kernels::blend_dot_block)
        }),
    }
}

fn multi_user_scoring_row(snap: &EmbeddingSnapshot) -> Row {
    let users: Vec<u32> = (0..USER_BLOCK as u32).collect();
    let mut block = vec![0.0f32; 512];
    let mut multi_block = vec![0.0f32; USER_BLOCK * 512];

    // Sanity: per-user rows bit-identical before timing anything.
    snap.score_block_multi(&users, 0, 512, &mut multi_block);
    for (u, &user) in users.iter().enumerate() {
        snap.score_block(user, 0, &mut block);
        assert!(
            block
                .iter()
                .zip(&multi_block[u * 512..(u + 1) * 512])
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "batched scoring diverged from single-user scoring"
        );
    }

    Row {
        name: "multi_user_scoring",
        unit: "s_per_8user_catalogue_pass_20k_items_d64",
        before_impl: "8 sequential blend_dot_block passes (item tables streamed once per user)",
        after_impl: "one blend_dot_block_multi pass (item tables streamed once per block)",
        before_median_s: median_secs(|| {
            for u in 0..USER_BLOCK {
                catalogue_pass(snap, u, &mut block, kernels::blend_dot_block);
            }
        }),
        after_median_s: median_secs(|| {
            let mut start = 0usize;
            while start < N_ITEMS {
                let len = 512.min(N_ITEMS - start);
                snap.score_block_multi(&users, start, len, &mut multi_block[..USER_BLOCK * len]);
                start += len;
            }
            std::hint::black_box(&multi_block);
        }),
    }
}

fn matmul_row() -> Row {
    // GBGCN cross-view FC at the "paper" workload scale: 1200 users,
    // (L+1)d = 96-wide concatenated embeddings.
    let mut rng = StdRng::seed_from_u64(7);
    let x = init::xavier_uniform(1200, 96, &mut rng);
    let w = init::xavier_uniform(96, 96, &mut rng);
    Row {
        name: "matmul_propagation",
        unit: "s_per_1200x96x96_product",
        before_impl: "kernels::reference::matmul (seed scalar ikj with zero-skip branch)",
        after_impl: "kernels::matmul (4x8 register-tiled micro-kernel)",
        before_median_s: median_secs(|| {
            std::hint::black_box(reference::matmul(&x, &w));
        }),
        after_median_s: median_secs(|| {
            std::hint::black_box(kernels::matmul(&x, &w));
        }),
    }
}

fn matmul_nt_row() -> Row {
    // The backward of every cross-view FC (`dX = dY * W^T`) — a
    // reduction-shaped product, where the seed's sequential scalar
    // accumulator could not vectorize at all.
    let mut rng = StdRng::seed_from_u64(11);
    let dy = init::xavier_uniform(1200, 96, &mut rng);
    let w = init::xavier_uniform(96, 96, &mut rng);
    Row {
        name: "matmul_nt_backward",
        unit: "s_per_1200x96x96_nt_product",
        before_impl: "kernels::reference::matmul_nt (seed scalar dot loops)",
        after_impl: "kernels::matmul_nt (8-lane dot, 4-row tiles)",
        before_median_s: median_secs(|| {
            std::hint::black_box(reference::matmul_nt(&dy, &w));
        }),
        after_median_s: median_secs(|| {
            std::hint::black_box(kernels::matmul_nt(&dy, &w));
        }),
    }
}

fn topk_row(snap: &EmbeddingSnapshot) -> Row {
    let engine = QueryEngine::new(snap.clone());
    let candidates: Vec<u32> = (0..N_ITEMS as u32).collect();
    let before_scorer = ReferenceScorer(snap);

    // Sanity: identical rankings before timing anything.
    let served: Vec<(u32, f32)> = engine
        .recommend(3, 10)
        .iter()
        .map(|e| (e.item, e.score))
        .collect();
    let offline = reference_topk(snap, 3, &candidates, 10);
    assert_eq!(
        served.iter().map(|e| e.0).collect::<Vec<_>>(),
        offline.iter().map(|e| e.0).collect::<Vec<_>>(),
        "engine and reference rankings diverged"
    );

    let mut user = 0u32;
    let before = median_secs(|| {
        user = (user + 1) % 512;
        std::hint::black_box(reference_topk(&before_scorer, user, &candidates, 10));
    });
    let mut user = 0u32;
    let after = median_secs(|| {
        user = (user + 1) % 512;
        std::hint::black_box(engine.recommend(user, 10));
    });
    Row {
        name: "topk_serving",
        unit: "s_per_top10_query_20k_items",
        before_impl: "materialize-and-sort over the scalar reference kernel",
        after_impl: "QueryEngine (blocked kernel + bounded heap)",
        before_median_s: before,
        after_median_s: after,
    }
}

fn topk_multi_row(snap: &EmbeddingSnapshot) -> Row {
    let engine = QueryEngine::new(snap.clone());
    let mut base = 0u32;
    let before = median_secs(|| {
        base = (base + USER_BLOCK as u32) % 512;
        for u in 0..USER_BLOCK as u32 {
            std::hint::black_box(engine.recommend(base + u, 10));
        }
    });
    let mut base = 0u32;
    let after = median_secs(|| {
        base = (base + USER_BLOCK as u32) % 512;
        let users: Vec<u32> = (base..base + USER_BLOCK as u32).collect();
        std::hint::black_box(engine.recommend_many(&users, 10));
    });
    Row {
        name: "topk_serving_multi",
        unit: "s_per_8_top10_queries_20k_items",
        before_impl: "8 sequential QueryEngine::recommend calls (one catalogue walk each)",
        after_impl: "one QueryEngine::recommend_many call (one shared catalogue walk)",
        before_median_s: before,
        after_median_s: after,
    }
}

/// One enqueue→reply latency distribution: p50/p99 seconds over bursts of
/// queued queries against a `RecommendService`.
struct LatencyRow {
    name: &'static str,
    unit: &'static str,
    before_impl: &'static str,
    after_impl: &'static str,
    before_p50_s: f64,
    before_p99_s: f64,
    after_p50_s: f64,
    after_p99_s: f64,
}

impl LatencyRow {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\"name\": \"{}\", \"unit\": \"{}\",\n",
                "     \"before\": {{\"impl\": \"{}\", \"p50_s\": {:.6e}, \"p99_s\": {:.6e}}},\n",
                "     \"after\": {{\"impl\": \"{}\", \"p50_s\": {:.6e}, \"p99_s\": {:.6e}}},\n",
                "     \"p99_speedup\": {:.3}}}"
            ),
            self.name,
            self.unit,
            self.before_impl,
            self.before_p50_s,
            self.before_p99_s,
            self.after_impl,
            self.after_p50_s,
            self.after_p99_s,
            self.before_p99_s / self.after_p99_s,
        )
    }
}

/// Runs the burst workload against one service configuration and returns
/// `(p50, p99)` of the corrected enqueue→reply latency clock.
fn latency_side(snap: &EmbeddingSnapshot, user_block: usize) -> (f64, f64) {
    const BURSTS: usize = 6;
    const BURST: usize = 128;
    let service = RecommendService::with_config(
        QueryEngine::with_config(
            snap.clone(),
            EngineConfig {
                user_block,
                ..Default::default()
            },
        ),
        ServiceConfig {
            workers: 2,
            queue_depth: BURST,
            warm_k: 10,
        },
    );
    // Deterministic user stream over the large universe: bursts saturate
    // the queue, so recorded latencies include real queue wait — exactly
    // what the coalescer amortizes.
    let mut x = 0x243F_6A88_85A3_08D3u64;
    for _ in 0..BURSTS {
        let users: Vec<u32> = (0..BURST)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) as u32 % N_USERS_LARGE as u32
            })
            .collect();
        std::hint::black_box(service.recommend_batch(&users, 10));
    }
    let sw = service.latency_stopwatch();
    assert_eq!(sw.n_samples(), BURSTS * BURST);
    (sw.percentile_secs(50.0), sw.percentile_secs(99.0))
}

fn serving_latency_row(snap: &EmbeddingSnapshot) -> LatencyRow {
    let (before_p50, before_p99) = latency_side(snap, 1);
    let (after_p50, after_p99) = latency_side(snap, USER_BLOCK);
    LatencyRow {
        name: "serving_latency_enqueue_to_reply",
        unit: "s_per_top10_query_8000users_20k_items_bursts_of_128",
        before_impl: "no coalescing (user_block=1): one catalogue pass per queued request",
        after_impl: "worker coalescing (user_block=8): queued requests share catalogue passes",
        before_p50_s: before_p50,
        before_p99_s: before_p99,
        after_p50_s: after_p50,
        after_p99_s: after_p99,
    }
}

/// The scaled 80k-item catalogue: items drawn around `N_CATS_SCALED`
/// category centers (center + 8% noise), users unclustered. Everything
/// is seeded, so the workload — and the measured recall — is exactly
/// reproducible.
fn scaled_clustered_snapshot() -> EmbeddingSnapshot {
    let mut rng = StdRng::seed_from_u64(777);
    let centers_own = init::xavier_uniform(N_CATS_SCALED, DIM_SCALED, &mut rng);
    let centers_social = init::xavier_uniform(N_CATS_SCALED, DIM_SCALED, &mut rng);
    let noise_own = init::xavier_uniform(N_ITEMS_SCALED, DIM_SCALED, &mut rng);
    let noise_social = init::xavier_uniform(N_ITEMS_SCALED, DIM_SCALED, &mut rng);
    let item = |centers: &Matrix, noise: &Matrix| {
        Matrix::from_fn(N_ITEMS_SCALED, DIM_SCALED, |r, c| {
            centers.get(r % N_CATS_SCALED, c) + 0.08 * noise.get(r, c)
        })
    };
    EmbeddingSnapshot::new(
        0.6,
        init::xavier_uniform(N_USERS_SCALED, DIM_SCALED, &mut rng),
        item(&centers_own, &noise_own),
        init::xavier_uniform(N_USERS_SCALED, DIM_SCALED, &mut rng),
        item(&centers_social, &noise_social),
    )
}

/// Exact vs IVF engines over the scaled catalogue. The IVF engine's
/// index build (seeded k-means over all 80k concatenated item vectors)
/// happens on its first query — the warmup inside `median_secs`, never a
/// timed sample.
fn scaled_engines(snap: &EmbeddingSnapshot) -> (QueryEngine, QueryEngine) {
    let exact = QueryEngine::new(snap.clone());
    let ivf = QueryEngine::with_config(
        snap.clone(),
        EngineConfig {
            retrieval: Retrieval::Ivf {
                n_clusters: IVF_CLUSTERS,
                n_probe: IVF_PROBES,
            },
            ..Default::default()
        },
    );
    (exact, ivf)
}

fn ivf_latency_row(exact: &QueryEngine, ivf: &QueryEngine) -> Row {
    let mut user = 0u32;
    let before = median_secs(|| {
        user = (user + 1) % N_USERS_SCALED as u32;
        std::hint::black_box(exact.recommend(user, 10));
    });
    let mut user = 0u32;
    let after = median_secs(|| {
        user = (user + 1) % N_USERS_SCALED as u32;
        std::hint::black_box(ivf.recommend(user, 10));
    });
    Row {
        name: "ivf_vs_exact_latency",
        unit: "s_per_top10_query_80k_items_d32x2",
        before_impl: "exhaustive blocked catalogue walk (Retrieval::Exact)",
        after_impl: "IVF retrieval, 16 of 256 cells probed (Retrieval::Ivf)",
        before_median_s: before,
        after_median_s: after,
    }
}

/// Mean recall@10 of the IVF ranking against exact serving over
/// [`RECALL_USERS`] users of the scaled workload.
fn ivf_recall_at_10(exact: &QueryEngine, ivf: &QueryEngine) -> f64 {
    let mut total = 0.0f64;
    for user in 0..RECALL_USERS as u32 {
        let e: Vec<u32> = exact.recommend(user, 10).iter().map(|x| x.item).collect();
        let a: Vec<u32> = ivf.recommend(user, 10).iter().map(|x| x.item).collect();
        total += recall_vs_exact(&e, &a) as f64;
    }
    total / RECALL_USERS as f64
}

fn epoch_row() -> Row {
    let data = generate(&SynthConfig {
        n_users: 600,
        n_items: 150,
        ..SynthConfig::beibei_like()
    });
    // Small batches on purpose: many batches per epoch is what makes
    // per-batch spawn overhead visible (and is the realistic regime for
    // the paper's batch count at production scale).
    let cfg = || TrainConfig {
        dim: 32,
        epochs: 1,
        batch_size: 64,
        ..Default::default()
    };
    let scoped = ShardExecutor::scoped(2);
    let pooled = ShardExecutor::new(2);
    let before = median_secs(|| {
        let mut m = Mf::new(cfg(), InteractionKind::BothRoles);
        std::hint::black_box(m.fit_sharded(&data, 4, &scoped));
    });
    let after = median_secs(|| {
        let mut m = Mf::new(cfg(), InteractionKind::BothRoles);
        std::hint::black_box(m.fit_sharded(&data, 4, &pooled));
    });
    Row {
        name: "epoch_time",
        unit: "s_per_mf_epoch_600users_4shards_2threads_batch64",
        before_impl: "per-batch std::thread::scope spawning (ShardExecutor::scoped)",
        after_impl: "persistent channel-fed worker pool (ShardExecutor::new)",
        before_median_s: before,
        after_median_s: after,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR5.json".to_string());
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());

    let snap = synthetic_snapshot();
    let scaled = scaled_clustered_snapshot();
    let (exact_scaled, ivf_scaled) = scaled_engines(&scaled);
    let rows = [
        scoring_row(&snap),
        multi_user_scoring_row(&snap),
        matmul_row(),
        matmul_nt_row(),
        topk_row(&snap),
        topk_multi_row(&snap),
        epoch_row(),
        ivf_latency_row(&exact_scaled, &ivf_scaled),
    ];
    for r in &rows {
        println!(
            "{:<24} before {:>12.3e}s  after {:>12.3e}s  speedup {:>6.2}x",
            r.name,
            r.before_median_s,
            r.after_median_s,
            r.speedup()
        );
    }

    let recall = ivf_recall_at_10(&exact_scaled, &ivf_scaled);
    println!(
        "{:<24} recall@10 {:.4} ({} of {} cells probed, {} items)",
        "ivf_recall_at_10", recall, IVF_PROBES, IVF_CLUSTERS, N_ITEMS_SCALED
    );

    let large = large_snapshot();
    let latency_rows = [serving_latency_row(&large)];
    for r in &latency_rows {
        println!(
            "{:<34} before p50 {:>10.3e}s p99 {:>10.3e}s  after p50 {:>10.3e}s p99 {:>10.3e}s",
            r.name, r.before_p50_s, r.before_p99_s, r.after_p50_s, r.after_p99_s
        );
    }

    let body: Vec<String> = rows.iter().map(Row::to_json).collect();
    let latency_body: Vec<String> = latency_rows.iter().map(LatencyRow::to_json).collect();
    let retrieval_body = format!(
        concat!(
            "    {{\"name\": \"ivf_recall_at_10\",\n",
            "     \"unit\": \"mean_recall_vs_exact_top10_over_{}_users\",\n",
            "     \"n_clusters\": {}, \"n_probe\": {}, \"recall_at_10\": {:.4}}}"
        ),
        RECALL_USERS, IVF_CLUSTERS, IVF_PROBES, recall
    );
    let json = format!(
        concat!(
            "{{\n",
            "  \"pr\": 5,\n",
            "  \"title\": \"IVF approximate retrieval + eval/sampler correctness fixes\",\n",
            "  \"host_cores\": {},\n",
            "  \"note\": \"Medians of {} runs on the dev container (1 core: parallel scaling ",
            "needs real hardware, and latency percentiles here reflect worker threads ",
            "time-slicing one core). The scaled_catalogue workload is the ROADMAP's deferred ",
            "item: 80k items (4x the serving benches) drawn around 256 latent categories, the ",
            "clustered regime real catalogues live in and the first workload where per-query ",
            "work is sublinear in catalogue size (ivf_vs_exact_latency probes 16 of 256 IVF ",
            "cells; ivf_recall_at_10 reports the measured recall of that approximate ranking ",
            "vs exact serving — n_probe = n_clusters would be bit-identical by the exactness ",
            "envelope, property-tested in gb-serve). Earlier rows carry over: batched ",
            "multi-user scoring, the enqueue-to-reply latency clock, and the PR 3 kernel ",
            "trajectory, all bit-identical per the dot-kernel contract.\",\n",
            "  \"scaled_catalogue\": {{\"n_items\": {}, \"n_users\": {}, \"own_dim\": {}, ",
            "\"social_dim\": {}, \"n_categories\": {}}},\n",
            "  \"rows\": [\n{}\n  ],\n",
            "  \"retrieval_rows\": [\n{}\n  ],\n",
            "  \"latency_rows\": [\n{}\n  ]\n",
            "}}\n"
        ),
        cores,
        REPS,
        N_ITEMS_SCALED,
        N_USERS_SCALED,
        DIM_SCALED,
        DIM_SCALED,
        N_CATS_SCALED,
        body.join(",\n"),
        retrieval_body,
        latency_body.join(",\n")
    );
    let mut f = std::fs::File::create(&out_path).expect("create bench report");
    f.write_all(json.as_bytes()).expect("write bench report");
    println!("wrote {out_path}");
}
