//! Machine-readable perf trajectory: measures the PR 3 hot paths
//! before/after and writes `BENCH_PR3.json` (pass a path as argv[1] to
//! write elsewhere).
//!
//! Every row is an honest in-process A/B — both sides run in this binary,
//! on this machine, interleaved:
//!
//! * `scoring`      — one full 20k-item catalogue pass through the
//!   blended dual-dot kernel: scalar `kernels::reference` loops vs the
//!   blocked `kernels::blend_dot_block`.
//! * `matmul_propagation` — the GBGCN cross-view FC shape
//!   (`n_users x (L+1)d` times `(L+1)d x (L+1)d`): scalar reference
//!   matmul vs the register-tiled kernel.
//! * `topk_serving` — top-10 over 20k items: materialize-and-sort over
//!   the scalar kernel (the pre-PR serving baseline) vs the blocked
//!   bounded-heap `QueryEngine`.
//! * `epoch_time`   — one MF training epoch, 4 shards on 2 threads, small
//!   batches: per-batch `std::thread::scope` spawning (the pre-PR
//!   executor) vs the persistent worker pool. Both sides produce
//!   bit-identical embeddings; only scheduling differs.
//!
//! Medians over repeated runs; single-run wall clock, so treat small
//! deltas as noise and mind the core-count note embedded in the output.

use gb_autograd::ShardExecutor;
use gb_data::convert::InteractionKind;
use gb_data::synth::{generate, SynthConfig};
use gb_eval::topk::reference_topk;
use gb_eval::Scorer;
use gb_models::{EmbeddingSnapshot, Mf, TrainConfig};
use gb_serve::QueryEngine;
use gb_tensor::kernels::{self, reference};
use gb_tensor::{init, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use std::time::Instant;

const N_ITEMS: usize = 20_000;
const DIM: usize = 64;
const REPS: usize = 9;

/// Median wall-clock seconds of `f` over [`REPS`] runs (after one warmup).
fn median_secs<F: FnMut()>(mut f: F) -> f64 {
    f(); // warmup
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
    samples[samples.len() / 2]
}

struct Row {
    name: &'static str,
    unit: &'static str,
    before_impl: &'static str,
    after_impl: &'static str,
    before_median_s: f64,
    after_median_s: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.before_median_s / self.after_median_s
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\"name\": \"{}\", \"unit\": \"{}\",\n",
                "     \"before\": {{\"impl\": \"{}\", \"median_s\": {:.6e}}},\n",
                "     \"after\": {{\"impl\": \"{}\", \"median_s\": {:.6e}}},\n",
                "     \"speedup\": {:.3}}}"
            ),
            self.name,
            self.unit,
            self.before_impl,
            self.before_median_s,
            self.after_impl,
            self.after_median_s,
            self.speedup(),
        )
    }
}

fn synthetic_snapshot() -> EmbeddingSnapshot {
    let mut rng = StdRng::seed_from_u64(42);
    EmbeddingSnapshot::new(
        0.6,
        init::xavier_uniform(512, DIM, &mut rng),
        init::xavier_uniform(N_ITEMS, DIM, &mut rng),
        init::xavier_uniform(512, DIM, &mut rng),
        init::xavier_uniform(N_ITEMS, DIM, &mut rng),
    )
}

/// `EmbeddingSnapshot` scoring through the scalar reference kernel — the
/// "before" side of the serving rows.
struct ReferenceScorer<'a>(&'a EmbeddingSnapshot);

impl Scorer for ReferenceScorer<'_> {
    fn score_items(&self, user: u32, items: &[u32]) -> Vec<f32> {
        let s = self.0;
        let mut out = [0.0f32];
        items
            .iter()
            .map(|&i| {
                reference::blend_dot_block(
                    s.user_own().row(user as usize),
                    s.item_own(),
                    s.user_social().row(user as usize),
                    s.item_social(),
                    s.alpha(),
                    i as usize,
                    &mut out,
                );
                out[0]
            })
            .collect()
    }
}

/// One full catalogue pass in 512-item blocks through `blend`.
fn catalogue_pass(
    snap: &EmbeddingSnapshot,
    user: usize,
    block: &mut [f32],
    blend: impl Fn(&[f32], &Matrix, &[f32], &Matrix, f32, usize, &mut [f32]),
) {
    let own = snap.user_own().row(user);
    let social = snap.user_social().row(user);
    let mut start = 0;
    while start < N_ITEMS {
        let len = block.len().min(N_ITEMS - start);
        blend(
            own,
            snap.item_own(),
            social,
            snap.item_social(),
            snap.alpha(),
            start,
            &mut block[..len],
        );
        start += len;
    }
    std::hint::black_box(&block);
}

fn scoring_row(snap: &EmbeddingSnapshot) -> Row {
    let mut block = vec![0.0f32; 512];
    Row {
        name: "scoring",
        unit: "s_per_catalogue_pass_20k_items_d64",
        before_impl: "kernels::reference::blend_dot_block (scalar loops)",
        after_impl: "kernels::blend_dot_block (8-lane blocked, 4-item tiles)",
        before_median_s: median_secs(|| {
            catalogue_pass(snap, 0, &mut block, reference::blend_dot_block)
        }),
        after_median_s: median_secs(|| {
            catalogue_pass(snap, 0, &mut block, kernels::blend_dot_block)
        }),
    }
}

fn matmul_row() -> Row {
    // GBGCN cross-view FC at the "paper" workload scale: 1200 users,
    // (L+1)d = 96-wide concatenated embeddings.
    let mut rng = StdRng::seed_from_u64(7);
    let x = init::xavier_uniform(1200, 96, &mut rng);
    let w = init::xavier_uniform(96, 96, &mut rng);
    Row {
        name: "matmul_propagation",
        unit: "s_per_1200x96x96_product",
        before_impl: "kernels::reference::matmul (seed scalar ikj with zero-skip branch)",
        after_impl: "kernels::matmul (4x8 register-tiled micro-kernel)",
        before_median_s: median_secs(|| {
            std::hint::black_box(reference::matmul(&x, &w));
        }),
        after_median_s: median_secs(|| {
            std::hint::black_box(kernels::matmul(&x, &w));
        }),
    }
}

fn matmul_nt_row() -> Row {
    // The backward of every cross-view FC (`dX = dY * W^T`) — a
    // reduction-shaped product, where the seed's sequential scalar
    // accumulator could not vectorize at all.
    let mut rng = StdRng::seed_from_u64(11);
    let dy = init::xavier_uniform(1200, 96, &mut rng);
    let w = init::xavier_uniform(96, 96, &mut rng);
    Row {
        name: "matmul_nt_backward",
        unit: "s_per_1200x96x96_nt_product",
        before_impl: "kernels::reference::matmul_nt (seed scalar dot loops)",
        after_impl: "kernels::matmul_nt (8-lane dot, 4-row tiles)",
        before_median_s: median_secs(|| {
            std::hint::black_box(reference::matmul_nt(&dy, &w));
        }),
        after_median_s: median_secs(|| {
            std::hint::black_box(kernels::matmul_nt(&dy, &w));
        }),
    }
}

fn topk_row(snap: &EmbeddingSnapshot) -> Row {
    let engine = QueryEngine::new(snap.clone());
    let candidates: Vec<u32> = (0..N_ITEMS as u32).collect();
    let before_scorer = ReferenceScorer(snap);

    // Sanity: identical rankings before timing anything.
    let served: Vec<(u32, f32)> = engine
        .recommend(3, 10)
        .iter()
        .map(|e| (e.item, e.score))
        .collect();
    let offline = reference_topk(snap, 3, &candidates, 10);
    assert_eq!(
        served.iter().map(|e| e.0).collect::<Vec<_>>(),
        offline.iter().map(|e| e.0).collect::<Vec<_>>(),
        "engine and reference rankings diverged"
    );

    let mut user = 0u32;
    let before = median_secs(|| {
        user = (user + 1) % 512;
        std::hint::black_box(reference_topk(&before_scorer, user, &candidates, 10));
    });
    let mut user = 0u32;
    let after = median_secs(|| {
        user = (user + 1) % 512;
        std::hint::black_box(engine.recommend(user, 10));
    });
    Row {
        name: "topk_serving",
        unit: "s_per_top10_query_20k_items",
        before_impl: "materialize-and-sort over the scalar reference kernel",
        after_impl: "QueryEngine (blocked kernel + bounded heap)",
        before_median_s: before,
        after_median_s: after,
    }
}

fn epoch_row() -> Row {
    let data = generate(&SynthConfig {
        n_users: 600,
        n_items: 150,
        ..SynthConfig::beibei_like()
    });
    // Small batches on purpose: many batches per epoch is what makes
    // per-batch spawn overhead visible (and is the realistic regime for
    // the paper's batch count at production scale).
    let cfg = || TrainConfig {
        dim: 32,
        epochs: 1,
        batch_size: 64,
        ..Default::default()
    };
    let scoped = ShardExecutor::scoped(2);
    let pooled = ShardExecutor::new(2);
    let before = median_secs(|| {
        let mut m = Mf::new(cfg(), InteractionKind::BothRoles);
        std::hint::black_box(m.fit_sharded(&data, 4, &scoped));
    });
    let after = median_secs(|| {
        let mut m = Mf::new(cfg(), InteractionKind::BothRoles);
        std::hint::black_box(m.fit_sharded(&data, 4, &pooled));
    });
    Row {
        name: "epoch_time",
        unit: "s_per_mf_epoch_600users_4shards_2threads_batch64",
        before_impl: "per-batch std::thread::scope spawning (ShardExecutor::scoped)",
        after_impl: "persistent channel-fed worker pool (ShardExecutor::new)",
        before_median_s: before,
        after_median_s: after,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR3.json".to_string());
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());

    let snap = synthetic_snapshot();
    let rows = [
        scoring_row(&snap),
        matmul_row(),
        matmul_nt_row(),
        topk_row(&snap),
        epoch_row(),
    ];
    for r in &rows {
        println!(
            "{:<20} before {:>12.3e}s  after {:>12.3e}s  speedup {:>6.2}x",
            r.name,
            r.before_median_s,
            r.after_median_s,
            r.speedup()
        );
    }

    let body: Vec<String> = rows.iter().map(Row::to_json).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"pr\": 3,\n",
            "  \"title\": \"SIMD-blocked kernel layer + persistent shard worker pool\",\n",
            "  \"host_cores\": {},\n",
            "  \"note\": \"Medians of {} runs on the dev container (1 core, as in PR 2: parallel ",
            "scaling needs real hardware). The epoch_time row isolates the executor change ",
            "(per-batch spawning vs persistent pool) with kernels held fixed; the kernel rows ",
            "(scoring, matmul_propagation, matmul_nt_backward, topk_serving) isolate the blocked ",
            "kernels against the seed's scalar loops and are single-threaded, so they transfer ",
            "directly. A full epoch inherits both effects. Both sides of every row produce ",
            "identical results (kernel rows: equal up to float reassociation; epoch row: ",
            "bit-identical).\",\n",
            "  \"rows\": [\n{}\n  ]\n",
            "}}\n"
        ),
        cores,
        REPS,
        body.join(",\n")
    );
    let mut f = std::fs::File::create(&out_path).expect("create bench report");
    f.write_all(json.as_bytes()).expect("write bench report");
    println!("wrote {out_path}");
}
