//! # gb-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (Sec. IV). Each `src/bin/*.rs` binary reproduces one
//! artifact; this library holds the shared plumbing: the standard
//! workload, the tuned model zoo, and table/CSV output helpers.
//!
//! | Binary | Artifact |
//! |---|---|
//! | `table2_stats` | Table II (dataset statistics) |
//! | `table3_overall` | Table III (overall performance, 10 methods) |
//! | `table4_time` | Table IV (training/testing time) |
//! | `table5_ablation` | Table V (multi-view ablation) |
//! | `fig4_alpha` | Fig. 4 left (role coefficient sweep) |
//! | `fig4_beta` | Fig. 4 right (loss coefficient sweep) |
//! | `fig5_cosine_pdf` | Fig. 5 (cosine-similarity PDFs) |
//! | `fig6_tsne` | Fig. 6 (t-SNE embedding visualization) |
//! | `run_all` | everything above, in sequence |
//!
//! Figure data series are written as CSV under `target/experiments/`.

use gb_core::{GbgcnConfig, GbgcnModel};
use gb_data::split::{leave_one_out, Split};
use gb_data::synth::{generate, SynthConfig};
use gb_data::{Dataset, NegativeSampler};
use gb_eval::{EvalProtocol, RankingMetrics, Scorer};
use gb_models::{Recommender, TrainConfig};
use std::io::Write;
use std::path::PathBuf;

/// The standard experiment workload: a scaled Beibei-like dataset with the
/// leave-one-out split and the training-side negative sampler.
pub struct Workload {
    /// The full generated dataset.
    pub data: Dataset,
    /// Leave-one-out split of `data`.
    pub split: Split,
    /// Negative/candidate sampler built from the training split.
    pub sampler: NegativeSampler,
    /// The ranking protocol (exhaustive candidates on the scaled
    /// catalogue; see EXPERIMENTS.md).
    pub protocol: EvalProtocol,
}

impl Workload {
    /// Builds the standard Table III workload.
    ///
    /// `scale` ∈ {"small", "paper", "large"} controls dataset size:
    /// `small` = 600 users (fast smoke runs), `paper` = 1200 users (the
    /// default for all reported numbers), `large` = 8000 users (Table IV
    /// timing).
    pub fn standard(scale: &str) -> Self {
        let cfg = match scale {
            "small" => SynthConfig {
                n_users: 600,
                n_items: 150,
                ..SynthConfig::beibei_like()
            },
            "paper" => SynthConfig {
                n_users: 1200,
                n_items: 300,
                ..SynthConfig::beibei_like()
            },
            "large" => SynthConfig::beibei_large(),
            other => panic!("unknown scale `{other}` (use small|paper|large)"),
        };
        Self::from_synth(cfg)
    }

    /// Builds a workload from an explicit generator config.
    pub fn from_synth(cfg: SynthConfig) -> Self {
        let data = generate(&cfg);
        let split = leave_one_out(&data, 1);
        let sampler = NegativeSampler::from_dataset(&split.train);
        Self {
            data,
            split,
            sampler,
            protocol: EvalProtocol::exhaustive(),
        }
    }

    /// Reads the experiment scale from argv (default "paper").
    pub fn scale_from_args() -> String {
        std::env::args()
            .nth(1)
            .unwrap_or_else(|| "paper".to_string())
    }

    /// Evaluates a trained scorer on the held-out test instances.
    pub fn evaluate(&self, scorer: &dyn Scorer) -> RankingMetrics {
        self.protocol
            .evaluate(scorer, &self.split.test, &self.sampler, self.data.n_items())
    }
}

/// The shared baseline hyper-parameters, tuned once on the validation
/// split of the standard workload (the paper tunes each baseline the same
/// way on its validation set).
pub fn tuned_train_config() -> TrainConfig {
    TrainConfig {
        dim: 32,
        epochs: 40,
        batch_size: 512,
        lr: 5e-3,
        l2: 1e-5,
        ..Default::default()
    }
}

/// The tuned GBGCN configuration for the standard workload.
///
/// α = 0.6 matches the paper's best; β is tuned on validation like every
/// other hyper-parameter (the synthetic dataset's failed-group signal is
/// cleaner than production Beibei, shifting the β optimum down — see
/// EXPERIMENTS.md).
pub fn tuned_gbgcn_config() -> GbgcnConfig {
    GbgcnConfig {
        dim: 32,
        n_layers: 2,
        alpha: 0.6,
        beta: 0.02,
        batch_size: 256,
        pretrain_epochs: 40,
        finetune_epochs: 60,
        pretrain_lr: 0.01,
        finetune_lr: 1.0,
        ..GbgcnConfig::default()
    }
}

/// Builds the full baseline zoo of Table III (everything except GBGCN).
pub fn baseline_zoo() -> Vec<(&'static str, Box<dyn Recommender>)> {
    use gb_data::convert::InteractionKind;
    use gb_models::{Agree, DiffNet, Gbmf, GbmfConfig, Mf, Ncf, Ngcf, Sigr, SocialMf};
    let tc = tuned_train_config;
    vec![
        (
            "MF(oi)",
            Box::new(Mf::new(tc(), InteractionKind::InitiatorOnly)) as Box<dyn Recommender>,
        ),
        ("MF", Box::new(Mf::new(tc(), InteractionKind::BothRoles))),
        ("NCF", Box::new(Ncf::new(tc()))),
        ("NGCF", Box::new(Ngcf::new(tc()))),
        ("SocialMF", Box::new(SocialMf::new(tc(), 0.05))),
        ("DiffNet", Box::new(DiffNet::new(tc()))),
        ("AGREE", Box::new(Agree::new(tc()))),
        ("SIGR", Box::new(Sigr::new(tc()))),
        (
            "GBMF",
            Box::new(Gbmf::new(GbmfConfig {
                base: tc(),
                alpha: 0.5,
            })),
        ),
    ]
}

/// Trains GBGCN on the workload with the tuned config.
pub fn train_gbgcn(w: &Workload, cfg: GbgcnConfig) -> GbgcnModel {
    let mut m = GbgcnModel::new(cfg, &w.split.train);
    m.fit(&w.split.train);
    m
}

/// Formats one Table III-style metric row.
pub fn metric_row(name: &str, m: &RankingMetrics) -> String {
    format!(
        "{name:<10} {:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>8.4}",
        m.recall_at(3),
        m.recall_at(5),
        m.recall_at(10),
        m.recall_at(20),
        m.ndcg_at(3),
        m.ndcg_at(5),
        m.ndcg_at(10),
        m.ndcg_at(20),
    )
}

/// The Table III header line.
pub fn metric_header() -> String {
    format!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "Method", "R@3", "R@5", "R@10", "R@20", "N@3", "N@5", "N@10", "N@20"
    )
}

/// Directory for figure CSVs (`target/experiments/`), created on demand.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    std::fs::create_dir_all(&dir).expect("create experiments dir");
    dir
}

/// Writes CSV rows (with header) into `target/experiments/<name>`.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let path = experiments_dir().join(name);
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").unwrap();
    for r in rows {
        writeln!(f, "{r}").unwrap();
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_workload_builds_and_evaluates() {
        let w = Workload::standard("small");
        assert!(w.split.test.len() == w.data.n_users());
        struct Zero;
        impl Scorer for Zero {
            fn score_items(&self, _u: u32, items: &[u32]) -> Vec<f32> {
                vec![0.0; items.len()]
            }
        }
        let m = w.evaluate(&Zero);
        // All-ties scorer: mid-rank convention puts the test item around
        // the middle, so Recall@20 on a ~150-item catalogue is tiny.
        assert!(m.recall_at(20) < 0.2);
    }

    #[test]
    #[should_panic(expected = "unknown scale")]
    fn unknown_scale_rejected() {
        Workload::standard("huge");
    }

    #[test]
    fn zoo_has_nine_baselines_in_table_order() {
        let zoo = baseline_zoo();
        let names: Vec<&str> = zoo.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec!["MF(oi)", "MF", "NCF", "NGCF", "SocialMF", "DiffNet", "AGREE", "SIGR", "GBMF"]
        );
    }
}
