//! Property tests for the sharded-parallel GBGCN trainer: for any shard
//! count and batch size, running the shard gradients on worker threads
//! produces bit-identical parameters to running them serially — the
//! thread count is scheduling, never numerics.

use gb_core::{GbgcnConfig, GbgcnModel, ParallelTrainConfig};
use gb_data::synth::{generate, SynthConfig};
use gb_data::Dataset;
use gb_eval::Scorer;
use proptest::prelude::*;

fn workload() -> Dataset {
    generate(&SynthConfig::tiny())
}

fn bits(scores: &[f32]) -> Vec<u32> {
    scores.iter().map(|s| s.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn gbgcn_parallel_accumulation_equals_serial_bitwise(
        n_shards in 1usize..=8,
        threads in 2usize..=6,
        batch_size in 8usize..=64,
    ) {
        let d = workload();
        let cfg = GbgcnConfig {
            pretrain_epochs: 1,
            finetune_epochs: 1,
            batch_size,
            ..GbgcnConfig::test_config()
        };
        let par = ParallelTrainConfig {
            n_shards,
            n_threads: 1,
            refresh_every: 0,
        };
        let mut serial = GbgcnModel::new(cfg.clone(), &d);
        serial.fit_parallel(&d, &par, None);
        let mut parallel = GbgcnModel::new(cfg, &d);
        parallel.fit_parallel(&d, &par.clone().scheduled_on(threads), None);

        let items: Vec<u32> = (0..d.n_items() as u32).collect();
        for user in 0..d.n_users() as u32 {
            prop_assert_eq!(
                bits(&serial.score_items(user, &items)),
                bits(&parallel.score_items(user, &items)),
                "user {} with {} shards on {} threads",
                user,
                n_shards,
                threads
            );
        }
    }
}

/// The shards = 1 recipe is not merely *a* deterministic recipe — it is
/// the serial `fit` recipe, bit for bit, whatever the batch size.
#[test]
fn one_shard_parallel_reproduces_legacy_fit_across_batch_sizes() {
    use gb_models::Recommender;
    let d = workload();
    for batch_size in [8usize, 33, 128] {
        let cfg = GbgcnConfig {
            pretrain_epochs: 1,
            finetune_epochs: 2,
            batch_size,
            ..GbgcnConfig::test_config()
        };
        let mut legacy = GbgcnModel::new(cfg.clone(), &d);
        legacy.fit(&d);
        let mut sharded = GbgcnModel::new(cfg, &d);
        sharded.fit_parallel(&d, &ParallelTrainConfig::serial(), None);
        let items: Vec<u32> = (0..d.n_items() as u32).collect();
        for user in 0..d.n_users() as u32 {
            assert_eq!(
                bits(&legacy.score_items(user, &items)),
                bits(&sharded.score_items(user, &items)),
                "batch_size {batch_size}, user {user}"
            );
        }
    }
}
