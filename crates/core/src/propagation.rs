//! The GBGCN forward pass: in-view propagation (Eqs. 1–3) and cross-view
//! propagation (Eqs. 4–8) on the autodiff tape.

use crate::config::{Activation, GbgcnConfig};
use gb_autograd::{ParamId, ParamStore, Tape, Var};
use gb_graph::HeteroGraphs;
use gb_tensor::init;
use rand::rngs::StdRng;

/// Parameter ids of the GBGCN model.
///
/// Six FC transforms connect the subspaces during cross-view propagation;
/// subscripts read *source→target* exactly as in the paper
/// (`w_up_ui` transforms user embeddings from the participant view into
/// the initiator-view user subspace, Eq. 4).
#[derive(Clone, Copy, Debug)]
pub struct PropParams {
    /// Shared raw user embeddings (`u_m`, `P x d`).
    pub user_raw: ParamId,
    /// Shared raw item embeddings (`v_n`, `Q x d`).
    pub item_raw: ParamId,
    /// Optional separate participant-view raw embeddings (extension
    /// ablation; `None` reproduces the paper's shared-raw design).
    pub user_raw_p: Option<ParamId>,
    /// Optional separate participant-view raw item embeddings.
    pub item_raw_p: Option<ParamId>,
    /// `W_{vi,ui}`, `b_{vi,ui}` (Eq. 4, interacted-items term).
    pub w_vi_ui: ParamId,
    pub b_vi_ui: ParamId,
    /// `W_{up,ui}`, `b_{up,ui}` (Eq. 4, shared-to users term).
    pub w_up_ui: ParamId,
    pub b_up_ui: ParamId,
    /// `W_{ui,vi}`, `b_{ui,vi}` (Eq. 5).
    pub w_ui_vi: ParamId,
    pub b_ui_vi: ParamId,
    /// `W_{vp,up}`, `b_{vp,up}` (Eq. 6, interacted-items term).
    pub w_vp_up: ParamId,
    pub b_vp_up: ParamId,
    /// `W_{ui,up}`, `b_{ui,up}` (Eq. 6, shared-by users term).
    pub w_ui_up: ParamId,
    pub b_ui_up: ParamId,
    /// `W_{up,vp}`, `b_{up,vp}` (Eq. 7).
    pub w_up_vp: ParamId,
    pub b_up_vp: ParamId,
}

impl PropParams {
    /// Registers all GBGCN parameters in `store` with Xavier init [39].
    pub fn init(
        store: &mut ParamStore,
        cfg: &GbgcnConfig,
        n_users: usize,
        n_items: usize,
        rng: &mut StdRng,
    ) -> Self {
        let d = cfg.dim;
        // Cross-view FCs operate on the (L+1)d-wide concatenated vectors.
        let dd = (cfg.n_layers + 1) * d;
        let user_raw = store.add("gbgcn.user", init::xavier_uniform(n_users, d, rng));
        let item_raw = store.add("gbgcn.item", init::xavier_uniform(n_items, d, rng));
        let (user_raw_p, item_raw_p) = if cfg.separate_raw {
            (
                Some(store.add("gbgcn.user.p", init::xavier_uniform(n_users, d, rng))),
                Some(store.add("gbgcn.item.p", init::xavier_uniform(n_items, d, rng))),
            )
        } else {
            (None, None)
        };
        let mut fc = |name: &str| {
            let w = store.add(format!("gbgcn.w.{name}"), init::xavier_uniform(dd, dd, rng));
            let b = store.add(format!("gbgcn.b.{name}"), gb_tensor::Matrix::zeros(1, dd));
            (w, b)
        };
        let (w_vi_ui, b_vi_ui) = fc("vi_ui");
        let (w_up_ui, b_up_ui) = fc("up_ui");
        let (w_ui_vi, b_ui_vi) = fc("ui_vi");
        let (w_vp_up, b_vp_up) = fc("vp_up");
        let (w_ui_up, b_ui_up) = fc("ui_up");
        let (w_up_vp, b_up_vp) = fc("up_vp");
        Self {
            user_raw,
            item_raw,
            user_raw_p,
            item_raw_p,
            w_vi_ui,
            b_vi_ui,
            w_up_ui,
            b_up_ui,
            w_ui_vi,
            b_ui_vi,
            w_vp_up,
            b_vp_up,
            w_ui_up,
            b_ui_up,
            w_up_vp,
            b_up_vp,
        }
    }
}

/// All embedding nodes produced by one forward pass.
///
/// `*_inview_*` are the `{0}`-superscript concatenations of Eq. 3
/// (`(L+1)d` wide); `*_cross_*` the `{1}`-superscript cross-view outputs
/// of Eqs. 4–7; `*_hat_*` the final Eq. 8 concatenations (`2(L+1)d`).
#[derive(Clone, Copy, Debug)]
pub struct ViewEmbeddings {
    pub u_inview_i: Var,
    pub u_inview_p: Var,
    pub v_inview_i: Var,
    pub v_inview_p: Var,
    pub u_cross_i: Var,
    pub u_cross_p: Var,
    pub v_cross_i: Var,
    pub v_cross_p: Var,
    pub u_hat_i: Var,
    pub u_hat_p: Var,
    pub v_hat_i: Var,
    pub v_hat_p: Var,
}

fn activate(tape: &mut Tape, x: Var, activation: Activation) -> Var {
    match activation {
        Activation::Tanh => tape.tanh(x),
        Activation::Sigmoid => tape.sigmoid(x),
        Activation::LeakyRelu => tape.leaky_relu(x, 0.2),
    }
}

fn average_pair(tape: &mut Tape, a: Var, b: Var) -> Var {
    let sum = tape.add(a, b);
    tape.scale(sum, 0.5)
}

/// Runs the full GBGCN forward pass on `tape`.
pub fn propagate(
    store: &ParamStore,
    params: &PropParams,
    tape: &mut Tape,
    graphs: &HeteroGraphs,
    cfg: &GbgcnConfig,
) -> ViewEmbeddings {
    let gi = &graphs.initiator;
    let gp = &graphs.participant;
    let gs = &graphs.share;

    // ---- raw embedding layer -------------------------------------------
    let u_raw_i = tape.param(store, params.user_raw);
    let v_raw_i = tape.param(store, params.item_raw);
    let u_raw_p = match params.user_raw_p {
        Some(id) => tape.param(store, id),
        None => u_raw_i,
    };
    let v_raw_p = match params.item_raw_p {
        Some(id) => tape.param(store, id),
        None => v_raw_i,
    };

    // ---- in-view propagation (Eqs. 1-3), no FC layers -------------------
    let mut u_levels_i = vec![u_raw_i];
    let mut u_levels_p = vec![u_raw_p];
    let mut v_levels_i = vec![v_raw_i];
    let mut v_levels_p = vec![v_raw_p];
    for l in 1..=cfg.n_layers {
        let mut u_i = tape.segment_mean(
            v_levels_i[l - 1],
            gi.user_to_item().offsets(),
            gi.user_to_item().members(),
        );
        let mut u_p = tape.segment_mean(
            v_levels_p[l - 1],
            gp.user_to_item().offsets(),
            gp.user_to_item().members(),
        );
        if cfg.ablation.ablate_users() {
            let avg = average_pair(tape, u_i, u_p);
            u_i = avg;
            u_p = avg;
        }
        let mut v_i = tape.segment_mean(
            u_levels_i[l - 1],
            gi.item_to_user().offsets(),
            gi.item_to_user().members(),
        );
        let mut v_p = tape.segment_mean(
            u_levels_p[l - 1],
            gp.item_to_user().offsets(),
            gp.item_to_user().members(),
        );
        if cfg.ablation.ablate_items() {
            let avg = average_pair(tape, v_i, v_p);
            v_i = avg;
            v_p = avg;
        }
        u_levels_i.push(u_i);
        u_levels_p.push(u_p);
        v_levels_i.push(v_i);
        v_levels_p.push(v_p);
    }
    let u_inview_i = tape.concat_cols(&u_levels_i);
    let u_inview_p = tape.concat_cols(&u_levels_p);
    let v_inview_i = tape.concat_cols(&v_levels_i);
    let v_inview_p = tape.concat_cols(&v_levels_p);

    // ---- cross-view propagation (Eqs. 4-7) ------------------------------
    let act = cfg.activation;
    let fc = |tape: &mut Tape, x: Var, w: ParamId, b: ParamId| {
        let wv = tape.param(store, w);
        let bv = tape.param(store, b);
        let lin = tape.matmul(x, wv);
        let biased = tape.add_bias(lin, bv);
        activate(tape, biased, act)
    };

    // Eq. 4: initiator-view users <- own items + users they shared to.
    let items_i = tape.segment_mean(
        v_inview_i,
        gi.user_to_item().offsets(),
        gi.user_to_item().members(),
    );
    let term_items_i = fc(tape, items_i, params.w_vi_ui, params.b_vi_ui);
    let shared_to = tape.segment_mean(u_inview_p, gs.out_csr().offsets(), gs.out_csr().members());
    let term_shared_to = fc(tape, shared_to, params.w_up_ui, params.b_up_ui);
    let mut u_cross_i = tape.add(term_items_i, term_shared_to);

    // Eq. 6: participant-view users <- own items + users who shared to them.
    let items_p = tape.segment_mean(
        v_inview_p,
        gp.user_to_item().offsets(),
        gp.user_to_item().members(),
    );
    let term_items_p = fc(tape, items_p, params.w_vp_up, params.b_vp_up);
    let shared_by = tape.segment_mean(u_inview_i, gs.in_csr().offsets(), gs.in_csr().members());
    let term_shared_by = fc(tape, shared_by, params.w_ui_up, params.b_ui_up);
    let mut u_cross_p = tape.add(term_items_p, term_shared_by);

    if cfg.ablation.ablate_users() {
        let avg = average_pair(tape, u_cross_i, u_cross_p);
        u_cross_i = avg;
        u_cross_p = avg;
    }

    // Eq. 5 / Eq. 7: items <- interacting users of the same view.
    let users_i = tape.segment_mean(
        u_inview_i,
        gi.item_to_user().offsets(),
        gi.item_to_user().members(),
    );
    let mut v_cross_i = fc(tape, users_i, params.w_ui_vi, params.b_ui_vi);
    let users_p = tape.segment_mean(
        u_inview_p,
        gp.item_to_user().offsets(),
        gp.item_to_user().members(),
    );
    let mut v_cross_p = fc(tape, users_p, params.w_up_vp, params.b_up_vp);

    if cfg.ablation.ablate_items() {
        let avg = average_pair(tape, v_cross_i, v_cross_p);
        v_cross_i = avg;
        v_cross_p = avg;
    }

    // ---- Eq. 8 final concatenation --------------------------------------
    ViewEmbeddings {
        u_inview_i,
        u_inview_p,
        v_inview_i,
        v_inview_p,
        u_cross_i,
        u_cross_p,
        v_cross_i,
        v_cross_p,
        u_hat_i: tape.concat_cols(&[u_inview_i, u_cross_i]),
        u_hat_p: tape.concat_cols(&[u_inview_p, u_cross_p]),
        v_hat_i: tape.concat_cols(&[v_inview_i, v_cross_i]),
        v_hat_p: tape.concat_cols(&[v_inview_p, v_cross_p]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AblationMode;
    use gb_data::synth::{generate, SynthConfig};
    use rand::SeedableRng;

    fn setup(cfg: &GbgcnConfig) -> (ParamStore, PropParams, HeteroGraphs) {
        let data = generate(&SynthConfig::tiny());
        let graphs = data.build_hetero();
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let params = PropParams::init(&mut store, cfg, data.n_users(), data.n_items(), &mut rng);
        (store, params, graphs)
    }

    #[test]
    fn output_shapes_follow_the_paper() {
        let cfg = GbgcnConfig::test_config();
        let (store, params, graphs) = setup(&cfg);
        let mut tape = Tape::new();
        let ve = propagate(&store, &params, &mut tape, &graphs, &cfg);
        let dd = (cfg.n_layers + 1) * cfg.dim;
        assert_eq!(tape.value(ve.u_inview_i).cols(), dd);
        assert_eq!(tape.value(ve.u_cross_i).cols(), dd);
        assert_eq!(tape.value(ve.u_hat_i).cols(), 2 * dd);
        assert_eq!(tape.value(ve.v_hat_p).cols(), 2 * dd);
        assert_eq!(tape.value(ve.u_hat_i).rows(), graphs.n_users());
        assert_eq!(tape.value(ve.v_hat_i).rows(), graphs.n_items());
    }

    #[test]
    fn views_differ_without_ablation() {
        let cfg = GbgcnConfig::test_config();
        let (store, params, graphs) = setup(&cfg);
        let mut tape = Tape::new();
        let ve = propagate(&store, &params, &mut tape, &graphs, &cfg);
        // Initiator- and participant-view user embeddings must differ
        // (different graphs drive the propagation).
        assert_ne!(tape.value(ve.u_inview_i), tape.value(ve.u_inview_p));
        assert_ne!(tape.value(ve.u_cross_i), tape.value(ve.u_cross_p));
    }

    #[test]
    fn user_ablation_collapses_user_views_only() {
        let cfg = GbgcnConfig {
            ablation: AblationMode::NoUserRoles,
            ..GbgcnConfig::test_config()
        };
        let (store, params, graphs) = setup(&cfg);
        let mut tape = Tape::new();
        let ve = propagate(&store, &params, &mut tape, &graphs, &cfg);
        // Propagated user levels are averaged; level 0 (shared raw) is
        // identical anyway, so the full concat must match across views.
        assert_eq!(tape.value(ve.u_inview_i), tape.value(ve.u_inview_p));
        assert_eq!(tape.value(ve.u_cross_i), tape.value(ve.u_cross_p));
        // Item views keep their role separation.
        assert_ne!(tape.value(ve.v_inview_i), tape.value(ve.v_inview_p));
    }

    #[test]
    fn full_ablation_collapses_both() {
        let cfg = GbgcnConfig {
            ablation: AblationMode::NoRoles,
            ..GbgcnConfig::test_config()
        };
        let (store, params, graphs) = setup(&cfg);
        let mut tape = Tape::new();
        let ve = propagate(&store, &params, &mut tape, &graphs, &cfg);
        assert_eq!(tape.value(ve.u_hat_i), tape.value(ve.u_hat_p));
        assert_eq!(tape.value(ve.v_hat_i), tape.value(ve.v_hat_p));
    }

    #[test]
    fn separate_raw_registers_extra_tables() {
        let cfg = GbgcnConfig {
            separate_raw: true,
            ..GbgcnConfig::test_config()
        };
        let (store, params, _) = setup(&cfg);
        assert!(params.user_raw_p.is_some());
        assert!(params.item_raw_p.is_some());
        assert!(store.id("gbgcn.user.p").is_some());
    }

    #[test]
    fn forward_values_are_finite() {
        let cfg = GbgcnConfig::test_config();
        let (store, params, graphs) = setup(&cfg);
        let mut tape = Tape::new();
        let ve = propagate(&store, &params, &mut tape, &graphs, &cfg);
        for v in [ve.u_hat_i, ve.u_hat_p, ve.v_hat_i, ve.v_hat_p] {
            assert!(!tape.value(v).has_non_finite());
        }
    }
}
