//! Mini-batch construction for the double-pairwise loss (Sec. III-C.2).
//!
//! A batch samples group-buying behaviors, attaches `k` negative items to
//! each (Sec. III-C.2's quadruples), and flattens them into the index
//! lists the loss needs:
//!
//! * **forward pairs** — `(user, observed item, negative item)` ranked
//!   `observed > negative`: the initiator of *every* behavior plus every
//!   participant of *successful* behaviors (Eqs. 10 first term, 11);
//! * **reversed pairs** — `(friend, negative item, failed item)` ranked
//!   `negative > failed`, weighted by `β`: every friend of the initiator
//!   of a *failed* behavior (Eq. 10 second term).

use gb_data::{Dataset, NegativeSampler};
use rand::rngs::StdRng;
use std::sync::Arc;

/// Flattened index lists for one training batch.
///
/// The index vectors are `Arc`-shared: the gather ops on the tape keep a
/// handle to the very vectors built at batch/split time, so a grad step
/// never re-clones them (they used to be copied once per gather per
/// step).
#[derive(Debug, Default)]
pub struct LossBatch {
    /// Users of the forward BPR pairs (initiators + successful
    /// participants).
    pub fwd_users: Arc<Vec<u32>>,
    /// Observed items of the forward pairs.
    pub fwd_pos: Arc<Vec<u32>>,
    /// Negative items of the forward pairs.
    pub fwd_neg: Arc<Vec<u32>>,
    /// Friends of failed-behavior initiators (reversed pairs).
    pub rev_users: Arc<Vec<u32>>,
    /// The *negative* item, ranked higher for the friend (Eq. 10).
    pub rev_pos: Arc<Vec<u32>>,
    /// The failed target item, ranked lower for the friend.
    pub rev_neg: Arc<Vec<u32>>,
    /// Number of behaviors represented (loss normalizer).
    pub n_behaviors: usize,
}

impl LossBatch {
    /// Assembles a batch from the behaviors at `indices`.
    pub fn build(
        dataset: &Dataset,
        indices: &[usize],
        neg_ratio: usize,
        sampler: &NegativeSampler,
        rng: &mut StdRng,
    ) -> Self {
        let mut fwd_users = Vec::new();
        let mut fwd_pos = Vec::new();
        let mut fwd_neg = Vec::new();
        let mut rev_users = Vec::new();
        let mut rev_pos = Vec::new();
        let mut rev_neg = Vec::new();
        for &idx in indices {
            let b = &dataset.behaviors()[idx];
            let successful = dataset.is_successful(b);
            for _ in 0..neg_ratio.max(1) {
                let neg = sampler.sample_one(b.initiator, rng);
                // Initiator term: present for successful AND failed
                // behaviors (the initiator did want the item).
                fwd_users.push(b.initiator);
                fwd_pos.push(b.item);
                fwd_neg.push(neg);
                if successful {
                    // Participants wanted the item too (Eq. 11).
                    for &p in &b.participants {
                        fwd_users.push(p);
                        fwd_pos.push(b.item);
                        fwd_neg.push(neg);
                    }
                } else {
                    // Friends implicitly rejected the item (Eq. 10):
                    // ranked the unobserved item above the failed one.
                    for &f in dataset.social().friends(b.initiator) {
                        rev_users.push(f);
                        rev_pos.push(neg);
                        rev_neg.push(b.item);
                    }
                }
            }
        }
        LossBatch {
            fwd_users: Arc::new(fwd_users),
            fwd_pos: Arc::new(fwd_pos),
            fwd_neg: Arc::new(fwd_neg),
            rev_users: Arc::new(rev_users),
            rev_pos: Arc::new(rev_pos),
            rev_neg: Arc::new(rev_neg),
            n_behaviors: indices.len() * neg_ratio.max(1),
        }
    }

    /// Whether the batch carries no loss pairs at all (neither forward
    /// nor reversed). Empty batches must never reach the shard executor —
    /// the trainers skip them up front.
    pub fn is_empty(&self) -> bool {
        self.fwd_users.is_empty() && self.rev_users.is_empty()
    }

    /// Splits the batch into up to `n_shards` contiguous sub-batches for
    /// the sharded trainer.
    ///
    /// Forward and reversed pair lists are chunked independently (their
    /// lengths are unrelated), and every shard keeps the parent's
    /// `n_behaviors` so per-shard losses stay on the parent's
    /// normalization — the shard-summed loss equals the unsharded loss up
    /// to the regularization terms, which de-duplicate touched users and
    /// items per shard rather than per batch. Shards empty on both sides
    /// are dropped.
    ///
    /// The decomposition is a pure function of `(self, n_shards)`: it is
    /// the determinism anchor that makes parallel execution bit-identical
    /// to serial execution at the same shard count.
    pub fn split(&self, n_shards: usize) -> Vec<LossBatch> {
        let n = n_shards.max(1);
        let fwd_chunk = self.fwd_users.len().div_ceil(n).max(1);
        let rev_chunk = self.rev_users.len().div_ceil(n).max(1);
        let mut shards = Vec::with_capacity(n);
        for s in 0..n {
            let f0 = (s * fwd_chunk).min(self.fwd_users.len());
            let f1 = ((s + 1) * fwd_chunk).min(self.fwd_users.len());
            let r0 = (s * rev_chunk).min(self.rev_users.len());
            let r1 = ((s + 1) * rev_chunk).min(self.rev_users.len());
            if f0 == f1 && r0 == r1 {
                continue;
            }
            shards.push(LossBatch {
                fwd_users: Arc::new(self.fwd_users[f0..f1].to_vec()),
                fwd_pos: Arc::new(self.fwd_pos[f0..f1].to_vec()),
                fwd_neg: Arc::new(self.fwd_neg[f0..f1].to_vec()),
                rev_users: Arc::new(self.rev_users[r0..r1].to_vec()),
                rev_pos: Arc::new(self.rev_pos[r0..r1].to_vec()),
                rev_neg: Arc::new(self.rev_neg[r0..r1].to_vec()),
                n_behaviors: self.n_behaviors,
            });
        }
        shards
    }

    /// All distinct users appearing in the batch (for regularization).
    pub fn touched_users(&self) -> Vec<u32> {
        let mut users: Vec<u32> = self
            .fwd_users
            .iter()
            .chain(self.rev_users.iter())
            .copied()
            .collect();
        users.sort_unstable();
        users.dedup();
        users
    }

    /// All distinct items appearing in the batch.
    pub fn touched_items(&self) -> Vec<u32> {
        let mut items: Vec<u32> = self
            .fwd_pos
            .iter()
            .chain(self.fwd_neg.iter())
            .chain(self.rev_pos.iter())
            .chain(self.rev_neg.iter())
            .copied()
            .collect();
        items.sort_unstable();
        items.dedup();
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_data::GroupBehavior;
    use rand::SeedableRng;

    fn dataset() -> Dataset {
        Dataset::new(
            5,
            10,
            vec![
                GroupBehavior::new(0, 0, vec![1, 2]), // success (t=1)
                GroupBehavior::new(3, 1, vec![]),     // failed: friends 4
            ],
            vec![(0, 1), (0, 2), (3, 4)],
            vec![1; 10],
        )
    }

    #[test]
    fn successful_behavior_contributes_initiator_and_participants() {
        let d = dataset();
        let sampler = NegativeSampler::from_dataset(&d);
        let mut rng = StdRng::seed_from_u64(0);
        let b = LossBatch::build(&d, &[0], 1, &sampler, &mut rng);
        // initiator + 2 participants
        assert_eq!(*b.fwd_users, vec![0, 1, 2]);
        assert_eq!(*b.fwd_pos, vec![0, 0, 0]);
        assert_eq!(b.fwd_neg.len(), 3);
        // same negative shared within the behavior
        assert!(b.fwd_neg.iter().all(|&n| n == b.fwd_neg[0]));
        assert!(b.rev_users.is_empty());
        assert_eq!(b.n_behaviors, 1);
    }

    #[test]
    fn failed_behavior_contributes_initiator_and_reversed_friends() {
        let d = dataset();
        let sampler = NegativeSampler::from_dataset(&d);
        let mut rng = StdRng::seed_from_u64(0);
        let b = LossBatch::build(&d, &[1], 1, &sampler, &mut rng);
        assert_eq!(*b.fwd_users, vec![3]); // initiator still a positive pair
        assert_eq!(*b.rev_users, vec![4]); // friend 4 gets the reversed pair
        assert_eq!(*b.rev_neg, vec![1]); // failed item ranked lower
        assert_eq!(b.rev_pos.len(), 1); // the sampled negative ranked higher
        assert_ne!(b.rev_pos[0], 1);
    }

    #[test]
    fn neg_ratio_multiplies_quadruples() {
        let d = dataset();
        let sampler = NegativeSampler::from_dataset(&d);
        let mut rng = StdRng::seed_from_u64(0);
        let b = LossBatch::build(&d, &[0], 3, &sampler, &mut rng);
        assert_eq!(b.fwd_users.len(), 9); // 3 negatives x (1 init + 2 parts)
        assert_eq!(b.n_behaviors, 3);
    }

    #[test]
    fn negatives_are_unobserved_for_the_initiator() {
        let d = dataset();
        let sampler = NegativeSampler::from_dataset(&d);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            // Behavior 0's initiator is user 0, whose positives are {0}.
            let b = LossBatch::build(&d, &[0], 1, &sampler, &mut rng);
            assert!(b.fwd_neg.iter().all(|&n| !sampler.is_positive(0, n)));
            // Behavior 1's initiator is user 3, whose positives are {1}.
            let b = LossBatch::build(&d, &[1], 1, &sampler, &mut rng);
            assert!(b.fwd_neg.iter().all(|&n| !sampler.is_positive(3, n)));
        }
    }

    #[test]
    fn split_partitions_pairs_without_loss_or_reorder() {
        let d = dataset();
        let sampler = NegativeSampler::from_dataset(&d);
        let mut rng = StdRng::seed_from_u64(7);
        let b = LossBatch::build(&d, &[0, 1, 0, 1], 3, &sampler, &mut rng);
        for n_shards in 1..=8 {
            let shards = b.split(n_shards);
            assert!(shards.len() <= n_shards);
            let fwd: Vec<u32> = shards
                .iter()
                .flat_map(|s| s.fwd_users.iter().copied())
                .collect();
            let rev: Vec<u32> = shards
                .iter()
                .flat_map(|s| s.rev_users.iter().copied())
                .collect();
            assert_eq!(fwd, *b.fwd_users, "{n_shards} shards");
            assert_eq!(rev, *b.rev_users, "{n_shards} shards");
            assert!(shards.iter().all(|s| s.n_behaviors == b.n_behaviors));
            // Aligned lists stay aligned within every shard.
            for s in &shards {
                assert_eq!(s.fwd_users.len(), s.fwd_pos.len());
                assert_eq!(s.fwd_users.len(), s.fwd_neg.len());
                assert_eq!(s.rev_users.len(), s.rev_pos.len());
                assert_eq!(s.rev_users.len(), s.rev_neg.len());
            }
        }
    }

    #[test]
    fn split_one_is_the_identity_decomposition() {
        let d = dataset();
        let sampler = NegativeSampler::from_dataset(&d);
        let mut rng = StdRng::seed_from_u64(0);
        let b = LossBatch::build(&d, &[0, 1], 2, &sampler, &mut rng);
        let shards = b.split(1);
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].fwd_users, b.fwd_users);
        assert_eq!(shards[0].rev_neg, b.rev_neg);
        assert_eq!(shards[0].n_behaviors, b.n_behaviors);
    }

    #[test]
    fn split_drops_fully_empty_shards() {
        let b = LossBatch {
            fwd_users: Arc::new(vec![1, 2]),
            fwd_pos: Arc::new(vec![0, 0]),
            fwd_neg: Arc::new(vec![3, 4]),
            n_behaviors: 2,
            ..Default::default()
        };
        let shards = b.split(8);
        assert_eq!(shards.len(), 2, "only two one-pair shards survive");
        let empty = LossBatch::default();
        assert!(empty.split(4).is_empty());
    }

    #[test]
    fn touched_sets_are_sorted_and_deduped() {
        let d = dataset();
        let sampler = NegativeSampler::from_dataset(&d);
        let mut rng = StdRng::seed_from_u64(0);
        let b = LossBatch::build(&d, &[0, 1], 2, &sampler, &mut rng);
        let users = b.touched_users();
        assert!(users.windows(2).all(|w| w[0] < w[1]));
        let items = b.touched_items();
        assert!(items.windows(2).all(|w| w[0] < w[1]));
        assert!(items.contains(&0) && items.contains(&1));
    }
}
