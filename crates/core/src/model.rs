//! The trainable GBGCN model: double-pairwise loss, pre-train →
//! fine-tune pipeline, and post-training scoring.

use crate::batch::LossBatch;
use crate::config::{GbgcnConfig, ParallelTrainConfig};
use crate::propagation::{propagate, PropParams, ViewEmbeddings};
use gb_autograd::{Adam, AdamConfig, Gradients, ParamStore, Sgd, ShardExecutor, Tape, Var};
use gb_data::{Dataset, NegativeSampler};
use gb_eval::Scorer;
use gb_graph::{Csr, HeteroGraphs};
use gb_models::common::shuffled_batches;
use gb_models::{EmbeddingSnapshot, Recommender, SnapshotHandle, SnapshotSource, TrainReport};
use gb_tensor::{kernels, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// The twelve propagated tables of one forward pass, `Arc`-shared off
/// the tape that computed them — capturing them copies nothing, which is
/// what lets `finalize` cache the full pass for `embedding_analysis`.
struct PropagatedTables {
    u_inview_i: Arc<Matrix>,
    u_inview_p: Arc<Matrix>,
    v_inview_i: Arc<Matrix>,
    v_inview_p: Arc<Matrix>,
    u_cross_i: Arc<Matrix>,
    u_cross_p: Arc<Matrix>,
    v_cross_i: Arc<Matrix>,
    v_cross_p: Arc<Matrix>,
    u_hat_i: Arc<Matrix>,
    u_hat_p: Arc<Matrix>,
    v_hat_i: Arc<Matrix>,
    v_hat_p: Arc<Matrix>,
}

impl PropagatedTables {
    fn capture(tape: &Tape, ve: &ViewEmbeddings) -> Self {
        Self {
            u_inview_i: tape.arc_value(ve.u_inview_i),
            u_inview_p: tape.arc_value(ve.u_inview_p),
            v_inview_i: tape.arc_value(ve.v_inview_i),
            v_inview_p: tape.arc_value(ve.v_inview_p),
            u_cross_i: tape.arc_value(ve.u_cross_i),
            u_cross_p: tape.arc_value(ve.u_cross_p),
            v_cross_i: tape.arc_value(ve.v_cross_i),
            v_cross_p: tape.arc_value(ve.v_cross_p),
            u_hat_i: tape.arc_value(ve.u_hat_i),
            u_hat_p: tape.arc_value(ve.u_hat_p),
            v_hat_i: tape.arc_value(ve.v_hat_i),
            v_hat_p: tape.arc_value(ve.v_hat_p),
        }
    }

    fn to_analysis(&self) -> EmbeddingAnalysis {
        EmbeddingAnalysis {
            u_inview_i: (*self.u_inview_i).clone(),
            u_inview_p: (*self.u_inview_p).clone(),
            v_inview_i: (*self.v_inview_i).clone(),
            v_inview_p: (*self.v_inview_p).clone(),
            u_cross_i: (*self.u_cross_i).clone(),
            u_cross_p: (*self.u_cross_p).clone(),
            v_cross_i: (*self.v_cross_i).clone(),
            v_cross_p: (*self.v_cross_p).clone(),
            u_hat_i: (*self.u_hat_i).clone(),
            u_hat_p: (*self.u_hat_p).clone(),
            v_hat_i: (*self.v_hat_i).clone(),
            v_hat_p: (*self.v_hat_p).clone(),
        }
    }
}

/// Cached post-training representations used for scoring (Eq. 9) and,
/// via the cached [`PropagatedTables`], for `embedding_analysis`.
struct FinalEmbeddings {
    views: PropagatedTables,
    /// Per-user mean of friends' participant-view embeddings — Eq. 9's
    /// social term precomputed by linearity of the dot product.
    friend_mean_p: Matrix,
}

/// The eight embedding matrices the Fig. 5 / Fig. 6 analyses inspect.
pub struct EmbeddingAnalysis {
    /// In-view user embeddings, initiator view (`u{0}_i`).
    pub u_inview_i: Matrix,
    /// In-view user embeddings, participant view (`u{0}_p`).
    pub u_inview_p: Matrix,
    /// In-view item embeddings, initiator view.
    pub v_inview_i: Matrix,
    /// In-view item embeddings, participant view.
    pub v_inview_p: Matrix,
    /// Cross-view user embeddings, initiator view (`u{1}_i`).
    pub u_cross_i: Matrix,
    /// Cross-view user embeddings, participant view (`u{1}_p`).
    pub u_cross_p: Matrix,
    /// Cross-view item embeddings, initiator view.
    pub v_cross_i: Matrix,
    /// Cross-view item embeddings, participant view.
    pub v_cross_p: Matrix,
    /// Final user embeddings per view (Eq. 8), for the t-SNE plot.
    pub u_hat_i: Matrix,
    /// Final participant-view user embeddings.
    pub u_hat_p: Matrix,
    /// Final initiator-view item embeddings.
    pub v_hat_i: Matrix,
    /// Final participant-view item embeddings.
    pub v_hat_p: Matrix,
}

/// The GBGCN model bound to a training dataset's graphs.
pub struct GbgcnModel {
    cfg: GbgcnConfig,
    store: ParamStore,
    params: PropParams,
    graphs: HeteroGraphs,
    social: Csr,
    dataset: Dataset,
    finals: Option<FinalEmbeddings>,
    /// Counts full GBGCN propagation forward passes — observability for
    /// the shared-forward contract (`sharded_grad` runs `propagate`
    /// exactly once per batch regardless of shard count).
    propagate_calls: AtomicU64,
}

/// Tape vars of the propagated tables Eq. 9 reads, whether they live on
/// a full forward tape (serial path) or entered a shard tape as `input`
/// leaves (shared-forward path).
struct ScoreTables {
    u_hat_i: Var,
    v_hat_i: Var,
    v_hat_p: Var,
    friend_mean: Var,
}

/// One shared forward pass per training batch: the propagated tables
/// every shard reads, recorded once on the calling thread. Shards bind
/// `tables` positionally as `input` leaves (same order as `vars`),
/// return cotangents w.r.t. them, and the reduced cotangents seed one
/// backward sweep over `tape`.
struct SharedForward {
    tape: Tape,
    /// Vars of the shared tables on `tape`, in fixed slot order.
    vars: Vec<Var>,
    /// The tables' values, `Arc`-shared with every shard tape.
    tables: Vec<Arc<Matrix>>,
}

impl GbgcnModel {
    /// Creates an untrained model over `train`'s behavioral graphs.
    pub fn new(cfg: GbgcnConfig, train: &Dataset) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let params = PropParams::init(&mut store, &cfg, train.n_users(), train.n_items(), &mut rng);
        let graphs = train.build_hetero();
        let social = train.social().csr().clone();
        Self {
            cfg,
            store,
            params,
            graphs,
            social,
            dataset: train.clone(),
            finals: None,
            propagate_calls: AtomicU64::new(0),
        }
    }

    /// Number of full propagation forward passes run so far (tests and
    /// benches assert the shared-forward once-per-batch contract on it).
    pub fn propagation_forward_count(&self) -> u64 {
        self.propagate_calls.load(Ordering::Relaxed)
    }

    /// The one gateway to [`propagate`]: every forward pass is counted,
    /// so [`GbgcnModel::propagation_forward_count`] is trustworthy.
    fn propagate_counted(&self, tape: &mut Tape) -> ViewEmbeddings {
        self.propagate_calls.fetch_add(1, Ordering::Relaxed);
        propagate(&self.store, &self.params, tape, &self.graphs, &self.cfg)
    }

    /// The active configuration.
    pub fn config(&self) -> &GbgcnConfig {
        &self.cfg
    }

    /// Number of scalar parameters.
    pub fn n_parameters(&self) -> usize {
        self.store.scalar_count()
    }

    /// Eq. 9 on the tape for aligned `(user, item)` index lists.
    fn tape_scores(
        &self,
        tape: &mut Tape,
        t: &ScoreTables,
        users: Arc<Vec<u32>>,
        items: Arc<Vec<u32>>,
    ) -> Var {
        let ue = tape.gather(t.u_hat_i, users.clone());
        let vi = tape.gather(t.v_hat_i, items.clone());
        let fm = tape.gather(t.friend_mean, users);
        let vp = tape.gather(t.v_hat_p, items);
        let own = tape.rowwise_dot(ue, vi);
        let social = tape.rowwise_dot(fm, vp);
        let own_w = tape.scale(own, 1.0 - self.cfg.alpha);
        let social_w = tape.scale(social, self.cfg.alpha);
        tape.add(own_w, social_w)
    }

    /// Pre-training scores: the "extremely simplified version of GBGCN
    /// that removes all propagation layers" (Sec. III-C.3) — Eq. 9 on the
    /// raw embeddings.
    fn pretrain_scores(
        &self,
        tape: &mut Tape,
        u_raw: Var,
        friend_mean: Var,
        users: Arc<Vec<u32>>,
        items: Arc<Vec<u32>>,
    ) -> Var {
        let ue = tape.gather(u_raw, users.clone());
        let ie = tape.gather_param(&self.store, self.params.item_raw, items.clone());
        let fm = tape.gather(friend_mean, users);
        let own = tape.rowwise_dot(ue, ie);
        let social = tape.rowwise_dot(fm, ie);
        let own_w = tape.scale(own, 1.0 - self.cfg.alpha);
        let social_w = tape.scale(social, self.cfg.alpha);
        tape.add(own_w, social_w)
    }

    /// Assembles the double-pairwise loss (Eqs. 10–12) from scored pairs,
    /// then adds L2 and social regularization on the raw embeddings.
    ///
    /// `social_vars`, when given, are `(user_raw_full, raw_friend_mean)`
    /// vars already on the tape (shard tapes pass their `input` leaves);
    /// when `None` the social-reg term records its own param node and
    /// segment mean (the replicated/serial path).
    fn assemble_loss(
        &self,
        tape: &mut Tape,
        batch: &LossBatch,
        fwd_pos: Var,
        fwd_neg: Var,
        rev: Option<(Var, Var)>,
        social_vars: Option<(Var, Var)>,
    ) -> Var {
        let diff = tape.sub(fwd_pos, fwd_neg);
        let ls = tape.log_sigmoid(diff);
        let fwd_sum = tape.sum_all(ls);
        let mut total = tape.scale(fwd_sum, -1.0);
        if let Some((rev_pos, rev_neg)) = rev {
            let rdiff = tape.sub(rev_pos, rev_neg);
            let rls = tape.log_sigmoid(rdiff);
            let rsum = tape.sum_all(rls);
            let weighted = tape.scale(rsum, -self.cfg.beta);
            total = tape.add(total, weighted);
        }
        let norm = tape.scale(total, 1.0 / batch.n_behaviors.max(1) as f32);

        // L2 on touched raw embeddings.
        let touched_u = Arc::new(batch.touched_users());
        let touched_v = Arc::new(batch.touched_items());
        let ue = tape.gather_param(&self.store, self.params.user_raw, touched_u.clone());
        let vee = tape.gather_param(&self.store, self.params.item_raw, touched_v);
        let l2u = tape.sum_sq(ue);
        let l2v = tape.sum_sq(vee);
        let l2 = tape.add(l2u, l2v);
        let l2 = tape.scale(l2, self.cfg.l2 / batch.n_behaviors.max(1) as f32);
        let mut loss = tape.add(norm, l2);

        // Social regularization [1] on raw user embeddings.
        if self.cfg.social_reg > 0.0 {
            let (u_full, fm_raw) = social_vars.unwrap_or_else(|| {
                let u_full = tape.param(&self.store, self.params.user_raw);
                let fm_raw =
                    tape.segment_mean(u_full, self.social.offsets(), self.social.members());
                (u_full, fm_raw)
            });
            let ub = tape.gather(u_full, touched_u.clone());
            let fmb = tape.gather(fm_raw, touched_u);
            let gap = tape.sub(ub, fmb);
            let sq = tape.sum_sq(gap);
            let reg = tape.scale(sq, self.cfg.social_reg / batch.n_behaviors.max(1) as f32);
            loss = tape.add(loss, reg);
        }
        loss
    }

    /// Replicated-forward gradient of the full model on one batch: the
    /// whole pass — propagation included — is recorded on one tape.
    /// Pure in `(self, batch)`. This is the serial validation trainer's
    /// step and the "before" side of the shared-forward bench A/B; the
    /// sharded trainer shares one propagation per batch instead
    /// ([`GbgcnModel::sharded_grad`]).
    fn finetune_grad(&self, batch: &LossBatch) -> (f32, Gradients) {
        let mut tape = Tape::new();
        let ve = self.propagate_counted(&mut tape);
        let friend_mean =
            tape.segment_mean(ve.u_hat_p, self.social.offsets(), self.social.members());
        let st = ScoreTables {
            u_hat_i: ve.u_hat_i,
            v_hat_i: ve.v_hat_i,
            v_hat_p: ve.v_hat_p,
            friend_mean,
        };
        let fwd_pos = self.tape_scores(
            &mut tape,
            &st,
            batch.fwd_users.clone(),
            batch.fwd_pos.clone(),
        );
        let fwd_neg = self.tape_scores(
            &mut tape,
            &st,
            batch.fwd_users.clone(),
            batch.fwd_neg.clone(),
        );
        let rev = if batch.rev_users.is_empty() {
            None
        } else {
            let rp = self.tape_scores(
                &mut tape,
                &st,
                batch.rev_users.clone(),
                batch.rev_pos.clone(),
            );
            let rn = self.tape_scores(
                &mut tape,
                &st,
                batch.rev_users.clone(),
                batch.rev_neg.clone(),
            );
            Some((rp, rn))
        };
        let loss = self.assemble_loss(&mut tape, batch, fwd_pos, fwd_neg, rev, None);
        let value = tape.value(loss).get(0, 0);
        let grads = tape.backward(loss, &self.store);
        (value, grads)
    }

    /// One full-model training step; returns the batch loss.
    fn finetune_step(&mut self, batch: &LossBatch, sgd: &Sgd) -> f32 {
        let (value, grads) = self.finetune_grad(batch);
        sgd.step(&mut self.store, &grads);
        value
    }

    /// Replicated-forward gradient of the propagation-free pre-training
    /// model on one batch; returns `(loss, gradients)` without stepping.
    /// Serial counterpart of [`GbgcnModel::pretrain_shard_grad`].
    fn pretrain_grad(&self, batch: &LossBatch) -> (f32, Gradients) {
        let mut tape = Tape::new();
        let u_raw = tape.param(&self.store, self.params.user_raw);
        let friend_mean = tape.segment_mean(u_raw, self.social.offsets(), self.social.members());
        let fwd_pos = self.pretrain_scores(
            &mut tape,
            u_raw,
            friend_mean,
            batch.fwd_users.clone(),
            batch.fwd_pos.clone(),
        );
        let fwd_neg = self.pretrain_scores(
            &mut tape,
            u_raw,
            friend_mean,
            batch.fwd_users.clone(),
            batch.fwd_neg.clone(),
        );
        let rev = if batch.rev_users.is_empty() {
            None
        } else {
            let rp = self.pretrain_scores(
                &mut tape,
                u_raw,
                friend_mean,
                batch.rev_users.clone(),
                batch.rev_pos.clone(),
            );
            let rn = self.pretrain_scores(
                &mut tape,
                u_raw,
                friend_mean,
                batch.rev_users.clone(),
                batch.rev_neg.clone(),
            );
            Some((rp, rn))
        };
        let loss = self.assemble_loss(&mut tape, batch, fwd_pos, fwd_neg, rev, None);
        let value = tape.value(loss).get(0, 0);
        let grads = tape.backward(loss, &self.store);
        (value, grads)
    }

    /// One pre-training step on the propagation-free model.
    fn pretrain_step(&mut self, batch: &LossBatch, adam: &mut Adam) -> f32 {
        let (value, grads) = self.pretrain_grad(batch);
        adam.step(&mut self.store, &grads);
        value
    }

    /// Records the per-batch shared forward pass: one propagation (or
    /// one raw-table read for pre-training) computed on the calling
    /// thread, whose tables every shard consumes read-only.
    ///
    /// Fixed slot order — fine-tuning: `[u_hat_i, v_hat_i, v_hat_p,
    /// friend_mean]` plus `[user_raw, raw_friend_mean]` when social
    /// regularization is active; pre-training: `[user_raw,
    /// raw_friend_mean]` (the raw friend mean doubles as the social-reg
    /// term's segment mean — it is the same computation).
    fn shared_forward(&self, finetune: bool) -> SharedForward {
        let mut tape = Tape::new();
        let mut vars = Vec::with_capacity(6);
        if finetune {
            let ve = self.propagate_counted(&mut tape);
            let friend_mean =
                tape.segment_mean(ve.u_hat_p, self.social.offsets(), self.social.members());
            vars.extend([ve.u_hat_i, ve.v_hat_i, ve.v_hat_p, friend_mean]);
            if self.cfg.social_reg > 0.0 {
                let u_full = tape.param(&self.store, self.params.user_raw);
                let fm_raw =
                    tape.segment_mean(u_full, self.social.offsets(), self.social.members());
                vars.extend([u_full, fm_raw]);
            }
        } else {
            let u_raw = tape.param(&self.store, self.params.user_raw);
            let friend_mean =
                tape.segment_mean(u_raw, self.social.offsets(), self.social.members());
            vars.extend([u_raw, friend_mean]);
        }
        let tables = vars.iter().map(|&v| tape.arc_value(v)).collect();
        SharedForward { tape, vars, tables }
    }

    /// Consumer side of the shared-forward protocol for one fine-tuning
    /// shard: binds `tables` as `input` leaves (slot order of
    /// [`GbgcnModel::shared_forward`]), scores and assembles the loss on
    /// a private tape, and returns `(loss, param gradients, per-table
    /// cotangents)`. Pure in `(self, batch, tables)`, so shards may run
    /// on any thread in any order.
    fn finetune_shard_grad(
        &self,
        batch: &LossBatch,
        tables: &[Arc<Matrix>],
    ) -> (f32, Gradients, Vec<Option<Matrix>>) {
        let mut tape = Tape::new();
        let inputs: Vec<Var> = tables.iter().map(|t| tape.input(Arc::clone(t))).collect();
        let st = ScoreTables {
            u_hat_i: inputs[0],
            v_hat_i: inputs[1],
            v_hat_p: inputs[2],
            friend_mean: inputs[3],
        };
        let social_vars = (self.cfg.social_reg > 0.0).then(|| (inputs[4], inputs[5]));
        let fwd_pos = self.tape_scores(
            &mut tape,
            &st,
            batch.fwd_users.clone(),
            batch.fwd_pos.clone(),
        );
        let fwd_neg = self.tape_scores(
            &mut tape,
            &st,
            batch.fwd_users.clone(),
            batch.fwd_neg.clone(),
        );
        let rev = if batch.rev_users.is_empty() {
            None
        } else {
            let rp = self.tape_scores(
                &mut tape,
                &st,
                batch.rev_users.clone(),
                batch.rev_pos.clone(),
            );
            let rn = self.tape_scores(
                &mut tape,
                &st,
                batch.rev_users.clone(),
                batch.rev_neg.clone(),
            );
            Some((rp, rn))
        };
        let loss = self.assemble_loss(&mut tape, batch, fwd_pos, fwd_neg, rev, social_vars);
        let value = tape.value(loss).get(0, 0);
        let (grads, table_grads) = tape.backward_with_inputs(loss, &self.store);
        (value, grads, table_grads)
    }

    /// Pre-training counterpart of [`GbgcnModel::finetune_shard_grad`]:
    /// the shared tables are `[user_raw, raw_friend_mean]`, reused by
    /// both Eq. 9 scoring and the social-regularization term.
    fn pretrain_shard_grad(
        &self,
        batch: &LossBatch,
        tables: &[Arc<Matrix>],
    ) -> (f32, Gradients, Vec<Option<Matrix>>) {
        let mut tape = Tape::new();
        let inputs: Vec<Var> = tables.iter().map(|t| tape.input(Arc::clone(t))).collect();
        let (u_raw, friend_mean) = (inputs[0], inputs[1]);
        let social_vars = (self.cfg.social_reg > 0.0).then_some((u_raw, friend_mean));
        let fwd_pos = self.pretrain_scores(
            &mut tape,
            u_raw,
            friend_mean,
            batch.fwd_users.clone(),
            batch.fwd_pos.clone(),
        );
        let fwd_neg = self.pretrain_scores(
            &mut tape,
            u_raw,
            friend_mean,
            batch.fwd_users.clone(),
            batch.fwd_neg.clone(),
        );
        let rev = if batch.rev_users.is_empty() {
            None
        } else {
            let rp = self.pretrain_scores(
                &mut tape,
                u_raw,
                friend_mean,
                batch.rev_users.clone(),
                batch.rev_pos.clone(),
            );
            let rn = self.pretrain_scores(
                &mut tape,
                u_raw,
                friend_mean,
                batch.rev_users.clone(),
                batch.rev_neg.clone(),
            );
            Some((rp, rn))
        };
        let loss = self.assemble_loss(&mut tape, batch, fwd_pos, fwd_neg, rev, social_vars);
        let value = tape.value(loss).get(0, 0);
        let (grads, table_grads) = tape.backward_with_inputs(loss, &self.store);
        (value, grads, table_grads)
    }

    /// Shard-summed loss and merged gradient of one mini-batch under the
    /// `cfg.n_shards` decomposition, computed on `executor`'s threads and
    /// reduced in fixed shard order.
    ///
    /// The forward pass through the propagation layers runs **once per
    /// batch** on the calling thread ([`GbgcnModel::shared_forward`]);
    /// shards read the `Arc`'d tables, their per-table cotangents are
    /// reduced in fixed shard order, and a single seeded backward sweep
    /// over the shared tape produces the propagation gradients. The
    /// whole pipeline stays a pure function of `(self, batch, n_shards)`
    /// — thread count never changes a bit.
    fn sharded_grad(
        &self,
        batch: &LossBatch,
        n_shards: usize,
        executor: &ShardExecutor,
        finetune: bool,
    ) -> (f32, Gradients) {
        // Empty-batch fast path: a zero-example batch decomposes into
        // zero shards — return immediately instead of waking the pool.
        if batch.is_empty() {
            return (0.0, Gradients::empty(self.store.len()));
        }
        let shards = batch.split(n_shards);
        let mut fwd = self.shared_forward(finetune);
        // Per-shard table-cotangent side channel: `accumulate` merges
        // only `(loss, Gradients)`, so the third output travels through
        // shard-indexed one-shot slots instead.
        let table_grads: Vec<OnceLock<Vec<Option<Matrix>>>> =
            (0..shards.len()).map(|_| OnceLock::new()).collect();
        let (loss, mut grads) = executor.accumulate(self.store.len(), shards.len(), |s| {
            let (value, grads, tg) = if finetune {
                self.finetune_shard_grad(&shards[s], &fwd.tables)
            } else {
                self.pretrain_shard_grad(&shards[s], &fwd.tables)
            };
            assert!(
                table_grads[s].set(tg).is_ok(),
                "shard {s} ran twice within one accumulate call"
            );
            (value, grads)
        });
        // Reduce the per-shard table cotangents in fixed shard order —
        // the same determinism anchor the parameter-gradient merge uses.
        let mut reduced: Vec<Option<Matrix>> = (0..fwd.vars.len()).map(|_| None).collect();
        for slot in table_grads {
            // invariant: `accumulate` runs every shard closure exactly
            // once before returning (or propagates its panic), so every
            // slot is filled here.
            let shard_grads = slot
                .into_inner()
                .expect("shard table gradients published before accumulate returned");
            for (acc, g) in reduced.iter_mut().zip(shard_grads) {
                if let Some(g) = g {
                    match acc {
                        Some(a) => kernels::add_assign(a, &g),
                        slot @ None => *slot = Some(g),
                    }
                }
            }
        }
        // One propagation backward per batch, seeded with the reduced
        // cotangents.
        let seeds: Vec<(Var, Matrix)> = fwd
            .vars
            .iter()
            .zip(reduced)
            .filter_map(|(&v, g)| g.map(|g| (v, g)))
            .collect();
        if !seeds.is_empty() {
            grads.merge(fwd.tape.backward_seeded(seeds, &self.store));
        }
        (loss, grads)
    }

    /// Per-shard replicated-forward gradient: every shard replays the
    /// full propagation on its own tape (the pre-shared-forward recipe).
    /// Kept only as the "before" side of the `BENCH_PR10` epoch-time A/B
    /// ([`GbgcnModel::measure_epoch_secs_replicated`]).
    fn sharded_grad_replicated(
        &self,
        batch: &LossBatch,
        n_shards: usize,
        executor: &ShardExecutor,
    ) -> (f32, Gradients) {
        if batch.is_empty() {
            return (0.0, Gradients::empty(self.store.len()));
        }
        let shards = batch.split(n_shards);
        executor.accumulate(self.store.len(), shards.len(), |s| {
            self.finetune_grad(&shards[s])
        })
    }

    /// Runs the full forward pass once and caches all twelve propagated
    /// tables (`Arc`-shared off the tape — no copies) for scoring and
    /// analysis. `embedding_analysis` reads this cache instead of
    /// re-propagating.
    fn finalize(&mut self) {
        let mut tape = Tape::new();
        let ve = self.propagate_counted(&mut tape);
        let views = PropagatedTables::capture(&tape, &ve);
        let (offsets, members) = self.social.segments();
        let friend_mean_p = kernels::segment_mean(&views.u_hat_p, offsets, members);
        self.finals = Some(FinalEmbeddings {
            views,
            friend_mean_p,
        });
    }

    /// Extracts the embedding matrices for the Fig. 5 / Fig. 6 analyses.
    ///
    /// Served from the forward pass `finalize` cached when available;
    /// only an unfitted model pays for a fresh propagation here.
    pub fn embedding_analysis(&self) -> EmbeddingAnalysis {
        if let Some(f) = &self.finals {
            return f.views.to_analysis();
        }
        let mut tape = Tape::new();
        let ve = self.propagate_counted(&mut tape);
        PropagatedTables::capture(&tape, &ve).to_analysis()
    }

    /// Fits with validation-based model selection (Sec. IV-A.2: "we save
    /// the model that has the best performance on the validation set").
    ///
    /// Runs the usual pre-train → fine-tune pipeline, but every
    /// `check_every` fine-tuning epochs evaluates NDCG@10 on the
    /// validation instances and snapshots the parameters when it improves;
    /// the best snapshot is restored before finalization.
    pub fn fit_with_validation(
        &mut self,
        train: &Dataset,
        validation: &[gb_data::TestInstance],
        check_every: usize,
    ) -> TrainReport {
        use gb_autograd::checkpoint;
        use gb_eval::EvalProtocol;

        let cfg = self.cfg.clone();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let sampler = NegativeSampler::from_dataset(train);
        let n = train.behaviors().len();
        let protocol = EvalProtocol::exhaustive();

        // Pre-training identical to `fit`.
        let mut adam = Adam::new(AdamConfig::with_lr(cfg.pretrain_lr), &self.store);
        for _ in 0..cfg.pretrain_epochs {
            for batch_idx in shuffled_batches(n, cfg.batch_size, &mut rng) {
                let batch = LossBatch::build(train, &batch_idx, cfg.neg_ratio, &sampler, &mut rng);
                self.pretrain_step(&batch, &mut adam);
            }
        }
        if cfg.pretrain_epochs > 0 {
            for id in [self.params.user_raw, self.params.item_raw] {
                let normalized = kernels::normalize_rows(self.store.value(id));
                *self.store.value_mut(id) = normalized;
            }
        }

        // Fine-tuning with periodic validation checkpoints.
        let sgd = Sgd::new(cfg.finetune_lr).with_clip_norm(10.0);
        let mut best_snapshot = checkpoint::snapshot(&self.store);
        let mut best_score = f64::NEG_INFINITY;
        let mut final_loss = 0.0f32;
        let start = Instant::now();
        for epoch in 0..cfg.finetune_epochs {
            let mut loss_sum = 0.0f32;
            let mut n_batches = 0;
            for batch_idx in shuffled_batches(n, cfg.batch_size, &mut rng) {
                let batch = LossBatch::build(train, &batch_idx, cfg.neg_ratio, &sampler, &mut rng);
                loss_sum += self.finetune_step(&batch, &sgd);
                n_batches += 1;
            }
            final_loss = loss_sum / n_batches.max(1) as f32;
            let last = epoch + 1 == cfg.finetune_epochs;
            if !validation.is_empty() && (epoch % check_every.max(1) == 0 || last) {
                self.finalize();
                let m = protocol.evaluate(self, validation, &sampler, train.n_items());
                let score = m.ndcg_at(10);
                if score > best_score {
                    best_score = score;
                    best_snapshot = checkpoint::snapshot(&self.store);
                }
                if cfg.verbose {
                    eprintln!(
                        "[GBGCN validate] epoch {epoch}: NDCG@10 {score:.4} (best {best_score:.4})"
                    );
                }
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        checkpoint::restore(&mut self.store, &best_snapshot);
        self.finalize();
        TrainReport {
            epochs: cfg.pretrain_epochs + cfg.finetune_epochs,
            mean_epoch_secs: elapsed / cfg.finetune_epochs.max(1) as f64,
            final_loss,
        }
    }

    /// Saves the trained parameters as a JSON checkpoint.
    pub fn save_checkpoint<W: std::io::Write>(&self, w: W) -> std::io::Result<()> {
        gb_autograd::checkpoint::save_json(&self.store, w)
    }

    /// Loads parameters from a JSON checkpoint produced by
    /// [`GbgcnModel::save_checkpoint`] (shapes must match this model's
    /// configuration), then refreshes the cached final embeddings.
    pub fn load_checkpoint<R: std::io::Read>(&mut self, r: R) -> std::io::Result<()> {
        gb_autograd::checkpoint::load_json(&mut self.store, r)?;
        self.finalize();
        Ok(())
    }

    /// Mean wall-clock seconds of one fine-tuning epoch (for Table IV);
    /// runs `n` measured epochs without disturbing determinism guarantees
    /// beyond advancing the training state. The one-shard instance of
    /// [`GbgcnModel::measure_epoch_secs_parallel`].
    pub fn measure_epoch_secs(&mut self, n: usize) -> f64 {
        self.measure_epoch_secs_parallel(n, &ParallelTrainConfig::serial())
    }

    /// Sharded-parallel counterpart of [`Recommender::fit`].
    ///
    /// Every mini-batch (negative sampling included) is assembled on the
    /// calling thread from the same RNG stream as the serial path, split
    /// into `par.n_shards` deterministic sub-batches
    /// ([`LossBatch::split`]), and the per-shard gradients — computed on
    /// `par.n_threads` worker threads — are reduced in fixed shard order
    /// before a single optimizer step. Consequences:
    ///
    /// * with `n_shards = 1` the run is bit-identical to
    ///   [`Recommender::fit`];
    /// * for a fixed `n_shards`, every `n_threads` produces bit-identical
    ///   parameters (the property tests assert this);
    /// * `n_shards > 1` changes float summation order (and counts a
    ///   user/item touched by several shards once per shard in the
    ///   regularizers), so it is a different — equally valid — recipe,
    ///   itself reproducible for that shard count.
    ///
    /// When `handle` is given, the trainer re-exports its embeddings
    /// every `par.refresh_every` fine-tuning epochs and publishes them,
    /// so a live `gb-serve` engine hot-swaps to fresh embeddings mid-run
    /// without restart. The finished model is always published: by the
    /// last cadence publish when the cadence lands on the final epoch,
    /// or by one closing export otherwise (including `refresh_every = 0`).
    pub fn fit_parallel(
        &mut self,
        train: &Dataset,
        par: &ParallelTrainConfig,
        handle: Option<&SnapshotHandle>,
    ) -> TrainReport {
        assert_eq!(
            train.n_users(),
            self.graphs.n_users(),
            "dataset/user mismatch"
        );
        assert_eq!(
            train.n_items(),
            self.graphs.n_items(),
            "dataset/item mismatch"
        );
        let cfg = self.cfg.clone();
        let executor = ShardExecutor::new(par.n_threads);
        let n_shards = par.n_shards.max(1);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let sampler = NegativeSampler::from_dataset(train);
        let n = train.behaviors().len();

        // --- stage 1: Adam pre-training of the simplified model ---------
        let mut adam = Adam::new(AdamConfig::with_lr(cfg.pretrain_lr), &self.store);
        for epoch in 0..cfg.pretrain_epochs {
            let mut loss_sum = 0.0f32;
            let mut n_batches = 0;
            for batch_idx in shuffled_batches(n, cfg.batch_size, &mut rng) {
                let batch = LossBatch::build(train, &batch_idx, cfg.neg_ratio, &sampler, &mut rng);
                let (loss, grads) = self.sharded_grad(&batch, n_shards, &executor, false);
                adam.step(&mut self.store, &grads);
                loss_sum += loss;
                n_batches += 1;
            }
            if cfg.verbose {
                eprintln!(
                    "[GBGCN pre-train x{n_shards}] epoch {epoch}: loss {:.4}",
                    loss_sum / n_batches.max(1) as f32
                );
            }
        }

        // --- normalization of pre-trained embeddings ---------------------
        if cfg.pretrain_epochs > 0 {
            for id in [self.params.user_raw, self.params.item_raw] {
                let normalized = kernels::normalize_rows(self.store.value(id));
                *self.store.value_mut(id) = normalized;
            }
        }

        // --- stage 2: SGD fine-tuning with incremental refresh -----------
        let sgd = Sgd::new(cfg.finetune_lr).with_clip_norm(10.0);
        let mut final_loss = 0.0f32;
        let start = Instant::now();
        for epoch in 0..cfg.finetune_epochs {
            let mut loss_sum = 0.0f32;
            let mut n_batches = 0;
            for batch_idx in shuffled_batches(n, cfg.batch_size, &mut rng) {
                let batch = LossBatch::build(train, &batch_idx, cfg.neg_ratio, &sampler, &mut rng);
                let (loss, grads) = self.sharded_grad(&batch, n_shards, &executor, true);
                sgd.step(&mut self.store, &grads);
                loss_sum += loss;
                n_batches += 1;
            }
            final_loss = loss_sum / n_batches.max(1) as f32;
            if cfg.verbose {
                eprintln!("[GBGCN fine-tune x{n_shards}] epoch {epoch}: loss {final_loss:.4}");
            }
            if let Some(handle) = handle {
                if par.refresh_every > 0 && (epoch + 1) % par.refresh_every == 0 {
                    self.finalize();
                    handle.publish(self.export_snapshot());
                }
            }
        }
        let elapsed = start.elapsed().as_secs_f64();

        self.finalize();
        if let Some(handle) = handle {
            // Skip the final export when the cadence already published
            // after the last epoch — the tables are identical, and a
            // redundant version would only invalidate the serving cache.
            let cadence_covered_last_epoch = par.refresh_every > 0
                && cfg.finetune_epochs > 0
                && cfg.finetune_epochs.is_multiple_of(par.refresh_every);
            if !cadence_covered_last_epoch {
                handle.publish(self.export_snapshot());
            }
        }
        TrainReport {
            epochs: cfg.pretrain_epochs + cfg.finetune_epochs,
            mean_epoch_secs: elapsed / cfg.finetune_epochs.max(1) as f64,
            final_loss,
        }
    }

    /// Parallel counterpart of [`GbgcnModel::measure_epoch_secs`]: mean
    /// wall-clock seconds of one sharded fine-tuning epoch under `par`.
    pub fn measure_epoch_secs_parallel(&mut self, n: usize, par: &ParallelTrainConfig) -> f64 {
        self.measure_epoch_loop(n, par, true)
    }

    /// Epoch timing of the pre-shared-forward recipe: every shard
    /// replays the full propagation forward on its own tape. Kept only
    /// as the "before" side of the `BENCH_PR10` shared-forward A/B.
    pub fn measure_epoch_secs_replicated(&mut self, n: usize, par: &ParallelTrainConfig) -> f64 {
        self.measure_epoch_loop(n, par, false)
    }

    fn measure_epoch_loop(&mut self, n: usize, par: &ParallelTrainConfig, shared: bool) -> f64 {
        let executor = ShardExecutor::new(par.n_threads);
        let n_shards = par.n_shards.max(1);
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xBEEF);
        let sampler = NegativeSampler::from_dataset(&self.dataset);
        let sgd = Sgd::new(self.cfg.finetune_lr).with_clip_norm(10.0);
        let start = Instant::now();
        for _ in 0..n.max(1) {
            for batch_idx in shuffled_batches(
                self.dataset.behaviors().len(),
                self.cfg.batch_size,
                &mut rng,
            ) {
                let batch = LossBatch::build(
                    &self.dataset,
                    &batch_idx,
                    self.cfg.neg_ratio,
                    &sampler,
                    &mut rng,
                );
                let (_, grads) = if shared {
                    self.sharded_grad(&batch, n_shards, &executor, true)
                } else {
                    self.sharded_grad_replicated(&batch, n_shards, &executor)
                };
                sgd.step(&mut self.store, &grads);
            }
        }
        start.elapsed().as_secs_f64() / n.max(1) as f64
    }
}

impl Recommender for GbgcnModel {
    fn name(&self) -> &str {
        self.cfg.ablation.label()
    }

    /// Pre-trains with Adam, normalizes the raw embeddings, fine-tunes the
    /// full model with vanilla SGD (Sec. III-C.3), then caches finals.
    ///
    /// Definitionally the one-shard, one-thread instance of
    /// [`GbgcnModel::fit_parallel`] — one pipeline, no duplicated loops.
    fn fit(&mut self, train: &Dataset) -> TrainReport {
        self.fit_parallel(train, &ParallelTrainConfig::serial(), None)
    }
}

impl SnapshotSource for GbgcnModel {
    /// Freezes the cached Eq. 8/9 terms — `u_hat_i`, `v_hat_i`,
    /// `friend_mean_p`, `v_hat_p` — exactly as [`Scorer::score_items`]
    /// reads them, so a served snapshot reproduces offline scores
    /// bit-for-bit.
    fn export_snapshot(&self) -> EmbeddingSnapshot {
        // invariant: exporting an unfitted model is a caller programming
        // error — every trainer path finalizes before export, and the
        // should-panic tests pin the message.
        let f = self.finals.as_ref().expect("model not fitted");
        EmbeddingSnapshot::new(
            self.cfg.alpha,
            (*f.views.u_hat_i).clone(),
            (*f.views.v_hat_i).clone(),
            f.friend_mean_p.clone(),
            (*f.views.v_hat_p).clone(),
        )
    }
}

impl Scorer for GbgcnModel {
    /// Eq. 9 via the lane-blocked [`kernels::dot`] — the identical
    /// accumulation order the serving kernel uses, so exported snapshots
    /// score bit-for-bit like this method.
    fn score_items(&self, user: u32, items: &[u32]) -> Vec<f32> {
        // invariant: scoring an unfitted model is a caller programming
        // error — every trainer path finalizes before scoring, and the
        // should-panic tests pin the message.
        let f = self.finals.as_ref().expect("model not fitted");
        let own = f.views.u_hat_i.row(user as usize);
        let social = f.friend_mean_p.row(user as usize);
        let a = self.cfg.alpha;
        items
            .iter()
            .map(|&i| {
                let o = kernels::dot(own, f.views.v_hat_i.row(i as usize));
                let s = kernels::dot(social, f.views.v_hat_p.row(i as usize));
                (1.0 - a) * o + a * s
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_data::synth::{generate, SynthConfig};
    use gb_data::GroupBehavior;

    fn tiny_train() -> Dataset {
        generate(&SynthConfig::tiny())
    }

    #[test]
    fn fit_produces_finite_scores() {
        let d = tiny_train();
        let mut m = GbgcnModel::new(GbgcnConfig::test_config(), &d);
        let report = m.fit(&d);
        assert!(report.final_loss.is_finite());
        let items: Vec<u32> = (0..d.n_items() as u32).collect();
        let scores = m.score_items(0, &items);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn training_is_deterministic() {
        let d = tiny_train();
        let cfg = GbgcnConfig {
            pretrain_epochs: 2,
            finetune_epochs: 2,
            ..GbgcnConfig::test_config()
        };
        let mut a = GbgcnModel::new(cfg.clone(), &d);
        let mut b = GbgcnModel::new(cfg, &d);
        a.fit(&d);
        b.fit(&d);
        let items: Vec<u32> = (0..d.n_items() as u32).collect();
        assert_eq!(a.score_items(3, &items), b.score_items(3, &items));
    }

    #[test]
    fn learns_to_rank_observed_items_on_tiny_data() {
        // Hand-built dataset with sharply separated tastes.
        let behaviors = vec![
            GroupBehavior::new(0, 0, vec![1]),
            GroupBehavior::new(0, 1, vec![1]),
            GroupBehavior::new(1, 0, vec![0]),
            GroupBehavior::new(2, 2, vec![3]),
            GroupBehavior::new(2, 3, vec![3]),
            GroupBehavior::new(3, 2, vec![2]),
        ];
        let d = Dataset::new(4, 4, behaviors, vec![(0, 1), (2, 3)], vec![1; 4]);
        let cfg = GbgcnConfig {
            dim: 8,
            pretrain_epochs: 60,
            finetune_epochs: 60,
            pretrain_lr: 0.02,
            finetune_lr: 0.5,
            batch_size: 8,
            ..GbgcnConfig::test_config()
        };
        let mut m = GbgcnModel::new(cfg, &d);
        m.fit(&d);
        let s0 = m.score_items(0, &[0, 1, 2, 3]);
        assert!(s0[0] > s0[2] && s0[0] > s0[3], "user 0 scores {s0:?}");
        let s2 = m.score_items(2, &[0, 1, 2, 3]);
        assert!(s2[2] > s2[0] && s2[3] > s2[1], "user 2 scores {s2:?}");
    }

    #[test]
    fn alpha_zero_ignores_friends() {
        let d = tiny_train();
        let cfg = GbgcnConfig {
            alpha: 0.0,
            pretrain_epochs: 1,
            finetune_epochs: 1,
            ..GbgcnConfig::test_config()
        };
        let mut m = GbgcnModel::new(cfg, &d);
        m.fit(&d);
        // With alpha = 0 the score must equal the initiator-view dot alone.
        let f = m.finals.as_ref().unwrap();
        let manual: f32 = f
            .views
            .u_hat_i
            .row(0)
            .iter()
            .zip(f.views.v_hat_i.row(5))
            .map(|(a, b)| a * b)
            .sum();
        let scored = m.score_items(0, &[5])[0];
        assert!((scored - manual).abs() < 1e-5);
    }

    #[test]
    fn embedding_analysis_shapes() {
        let d = tiny_train();
        let cfg = GbgcnConfig {
            pretrain_epochs: 1,
            finetune_epochs: 1,
            ..GbgcnConfig::test_config()
        };
        let mut m = GbgcnModel::new(cfg.clone(), &d);
        m.fit(&d);
        let a = m.embedding_analysis();
        let dd = (cfg.n_layers + 1) * cfg.dim;
        assert_eq!(a.u_inview_i.shape(), (d.n_users(), dd));
        assert_eq!(a.v_cross_p.shape(), (d.n_items(), dd));
        assert_eq!(a.u_hat_p.shape(), (d.n_users(), 2 * dd));
    }

    #[test]
    fn pretraining_normalizes_raw_embeddings() {
        let d = tiny_train();
        let cfg = GbgcnConfig {
            pretrain_epochs: 2,
            finetune_epochs: 0,
            ..GbgcnConfig::test_config()
        };
        let mut m = GbgcnModel::new(cfg, &d);
        m.fit(&d);
        let u = m.store.value(m.params.user_raw);
        for r in 0..u.rows() {
            let norm: f32 = u.row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!(
                (norm - 1.0).abs() < 1e-4 || norm == 0.0,
                "row {r} norm {norm}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn scoring_before_fit_panics() {
        let d = tiny_train();
        let m = GbgcnModel::new(GbgcnConfig::test_config(), &d);
        m.score_items(0, &[0]);
    }

    #[test]
    fn snapshot_export_matches_cached_scoring() {
        let d = tiny_train();
        let cfg = GbgcnConfig {
            pretrain_epochs: 2,
            finetune_epochs: 2,
            ..GbgcnConfig::test_config()
        };
        let mut m = GbgcnModel::new(cfg, &d);
        m.fit(&d);
        let snap = m.export_snapshot();
        assert_eq!(snap.n_users(), d.n_users());
        assert_eq!(snap.n_items(), d.n_items());
        let items: Vec<u32> = (0..d.n_items() as u32).collect();
        for user in [0u32, 3, 5] {
            assert_eq!(
                m.score_items(user, &items),
                snap.score_items(user, &items),
                "user {user}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn snapshot_export_before_fit_panics() {
        let d = tiny_train();
        let m = GbgcnModel::new(GbgcnConfig::test_config(), &d);
        let _ = m.export_snapshot();
    }

    #[test]
    fn checkpoint_roundtrip_preserves_scores() {
        let d = tiny_train();
        let cfg = GbgcnConfig {
            pretrain_epochs: 2,
            finetune_epochs: 2,
            ..GbgcnConfig::test_config()
        };
        let mut m = GbgcnModel::new(cfg.clone(), &d);
        m.fit(&d);
        let items: Vec<u32> = (0..d.n_items() as u32).collect();
        let before = m.score_items(1, &items);

        let mut buf = Vec::new();
        m.save_checkpoint(&mut buf).unwrap();

        let mut fresh = GbgcnModel::new(cfg, &d);
        fresh.load_checkpoint(buf.as_slice()).unwrap();
        let after = fresh.score_items(1, &items);
        for (a, b) in before.iter().zip(&after) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn parallel_with_one_shard_is_bit_identical_to_serial_fit() {
        let d = tiny_train();
        let cfg = GbgcnConfig {
            pretrain_epochs: 2,
            finetune_epochs: 2,
            ..GbgcnConfig::test_config()
        };
        let mut serial = GbgcnModel::new(cfg.clone(), &d);
        serial.fit(&d);
        let mut parallel = GbgcnModel::new(cfg, &d);
        parallel.fit_parallel(&d, &ParallelTrainConfig::serial(), None);
        let items: Vec<u32> = (0..d.n_items() as u32).collect();
        for user in [0u32, 3, 7] {
            assert_eq!(
                serial.score_items(user, &items),
                parallel.score_items(user, &items),
                "user {user}"
            );
        }
    }

    #[test]
    fn thread_count_never_changes_sharded_results() {
        let d = tiny_train();
        let cfg = GbgcnConfig {
            pretrain_epochs: 1,
            finetune_epochs: 2,
            ..GbgcnConfig::test_config()
        };
        let par = ParallelTrainConfig::with_threads(3);
        let mut one_thread = GbgcnModel::new(cfg.clone(), &d);
        one_thread.fit_parallel(&d, &par.clone().scheduled_on(1), None);
        let mut four_threads = GbgcnModel::new(cfg, &d);
        four_threads.fit_parallel(&d, &par.scheduled_on(4), None);
        let items: Vec<u32> = (0..d.n_items() as u32).collect();
        for user in 0..d.n_users() as u32 {
            assert_eq!(
                one_thread.score_items(user, &items),
                four_threads.score_items(user, &items),
                "user {user}"
            );
        }
    }

    #[test]
    fn sharded_grad_propagates_exactly_once_per_batch() {
        let d = tiny_train();
        let m = GbgcnModel::new(GbgcnConfig::test_config(), &d);
        let sampler = NegativeSampler::from_dataset(&d);
        let mut rng = StdRng::seed_from_u64(11);
        let batch = LossBatch::build(&d, &[0, 1, 2, 3, 4, 5], 2, &sampler, &mut rng);
        let executor = ShardExecutor::new(2);
        for n_shards in [1usize, 4, 8] {
            let before = m.propagation_forward_count();
            let _ = m.sharded_grad(&batch, n_shards, &executor, true);
            assert_eq!(
                m.propagation_forward_count() - before,
                1,
                "fine-tuning at {n_shards} shards must propagate once"
            );
        }
        // Pre-training has no propagation layers at all.
        let before = m.propagation_forward_count();
        let _ = m.sharded_grad(&batch, 4, &executor, false);
        assert_eq!(m.propagation_forward_count(), before);
    }

    #[test]
    fn embedding_analysis_reads_the_finalize_cache() {
        let d = tiny_train();
        let cfg = GbgcnConfig {
            pretrain_epochs: 1,
            finetune_epochs: 1,
            ..GbgcnConfig::test_config()
        };
        let mut m = GbgcnModel::new(cfg, &d);
        m.fit(&d);
        let after_fit = m.propagation_forward_count();
        let a = m.embedding_analysis();
        let b = m.embedding_analysis();
        assert_eq!(
            m.propagation_forward_count(),
            after_fit,
            "analysis after fit must reuse the finalize cache"
        );
        assert_eq!(a.u_hat_i.as_slice(), b.u_hat_i.as_slice());
        // An unfitted model still works — via a fresh (counted) pass.
        let fresh = GbgcnModel::new(GbgcnConfig::test_config(), &d);
        let _ = fresh.embedding_analysis();
        assert_eq!(fresh.propagation_forward_count(), 1);
    }

    #[test]
    fn shared_forward_matches_replicated_recipe() {
        // The shared-forward decomposition is mathematically identical to
        // the per-shard replicated forward: bitwise-equal loss (forward
        // values are the same computation) and gradients equal up to
        // float re-association in the backward reduction.
        let d = tiny_train();
        let m = GbgcnModel::new(GbgcnConfig::test_config(), &d);
        let sampler = NegativeSampler::from_dataset(&d);
        let mut rng = StdRng::seed_from_u64(5);
        let batch = LossBatch::build(&d, &[0, 2, 4, 6], 2, &sampler, &mut rng);
        let executor = ShardExecutor::new(3);
        for n_shards in [1usize, 4] {
            let (shared_loss, shared) = m.sharded_grad(&batch, n_shards, &executor, true);
            let (repl_loss, repl) = m.sharded_grad_replicated(&batch, n_shards, &executor);
            assert_eq!(shared_loss, repl_loss, "{n_shards} shards");
            assert_eq!(shared.touched(), repl.touched(), "{n_shards} shards");
            for ((id_a, ga), (id_b, gb)) in shared.iter().zip(repl.iter()) {
                assert_eq!(id_a, id_b);
                for (x, y) in ga.as_slice().iter().zip(gb.as_slice()) {
                    assert!(
                        (x - y).abs() <= 1e-4 * x.abs().max(y.abs()).max(1.0),
                        "param {id_a}: {x} vs {y} ({n_shards} shards)"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_behavior_dataset_trains_and_scores_without_panics() {
        // Zero-example epochs take the empty-batch fast path (no shard
        // decomposition, no pool wake-ups) and still finalize cleanly.
        let d = Dataset::new(4, 4, vec![], vec![(0, 1)], vec![1; 4]);
        let cfg = GbgcnConfig {
            pretrain_epochs: 1,
            finetune_epochs: 2,
            ..GbgcnConfig::test_config()
        };
        let mut m = GbgcnModel::new(cfg, &d);
        let report = m.fit_parallel(&d, &ParallelTrainConfig::with_threads(3), None);
        assert_eq!(report.final_loss, 0.0);
        let scores = m.score_items(0, &[0, 1, 2, 3]);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn refresh_publishes_per_cadence_epoch_without_redundant_final() {
        use gb_models::SnapshotHandle;
        let d = tiny_train();
        let cfg = GbgcnConfig {
            pretrain_epochs: 1,
            finetune_epochs: 4,
            ..GbgcnConfig::test_config()
        };
        // Seed the handle with an early snapshot of the right shape.
        let mut warmup = GbgcnModel::new(cfg.clone(), &d);
        warmup.fit_parallel(
            &d,
            &ParallelTrainConfig {
                refresh_every: 0,
                ..ParallelTrainConfig::serial()
            },
            None,
        );
        let handle = SnapshotHandle::new(warmup.export_snapshot());
        assert_eq!(handle.version(), 1);

        let mut m = GbgcnModel::new(cfg, &d);
        m.fit_parallel(
            &d,
            &ParallelTrainConfig::with_threads(2).refresh_every(2),
            Some(&handle),
        );
        // Publishes after epochs 2 and 4; the final export is skipped
        // because the epoch-4 cadence publish already froze the finished
        // parameters: 1 + 2.
        assert_eq!(handle.version(), 3);
        // The served tables are exactly the finished model's export.
        let items: Vec<u32> = (0..d.n_items() as u32).collect();
        assert_eq!(
            handle.load().snapshot().score_items(2, &items),
            m.export_snapshot().score_items(2, &items)
        );
    }

    #[test]
    fn validation_fit_never_returns_a_worse_model_than_its_best_checkpoint() {
        use gb_data::split::leave_one_out;
        let d = tiny_train();
        let split = leave_one_out(&d, 3);
        let cfg = GbgcnConfig {
            pretrain_epochs: 4,
            finetune_epochs: 8,
            ..GbgcnConfig::test_config()
        };
        let mut m = GbgcnModel::new(cfg, &split.train);
        let report = m.fit_with_validation(&split.train, &split.validation, 2);
        assert!(report.final_loss.is_finite());
        // The returned model scores finitely and the validation machinery
        // restored a snapshot (scoring works without an explicit fit()).
        assert!(m.score_items(0, &[0, 1, 2]).iter().all(|s| s.is_finite()));
    }
}
