//! # gb-core
//!
//! GBGCN — the Group-Buying Graph Convolutional Network of
//! *"Group-Buying Recommendation for Social E-Commerce"* (ICDE 2021),
//! implemented from scratch on the `gb-autograd` substrate.
//!
//! The model follows Sec. III of the paper exactly:
//!
//! 1. **Raw embedding layer** — one shared embedding per user and item
//!    (the paper argues shared raw embeddings equalize model capacity and
//!    force the raw features to serve both roles);
//! 2. **In-view propagation** (Eqs. 1–3) — LightGCN-style mean
//!    aggregation without FC layers, run separately on the initiator view
//!    `Gi` and participant view `Gp`, with all layer outputs concatenated;
//! 3. **Cross-view propagation** (Eqs. 4–8) — FC-transformed aggregation
//!    across views along the directed share graph `Gs` (outgoing
//!    neighbours feed the initiator view, incoming neighbours feed the
//!    participant view) plus in-view interaction aggregation;
//! 4. **Prediction** (Eq. 9) — `(1-α)`-weighted initiator interest plus
//!    `α`-weighted mean of the friends' participant-view interest;
//! 5. **Double-pairwise loss** (Eqs. 10–12) — BPR on the initiator for
//!    every behavior; BPR on participants for successful behaviors; and
//!    *reversed* BPR (weighted by `β`) on the initiator's friends for
//!    failed behaviors, distilling the strong-negative signal;
//! 6. **Pre-train → fine-tune** (Sec. III-C.3) — Adam on the
//!    propagation-free model, embedding normalization, then vanilla SGD
//!    on the full model.
//!
//! The Table V ablations (averaging the two views' user and/or item
//! embeddings after every propagation output) are built in via
//! [`AblationMode`].

pub mod batch;
pub mod config;
pub mod model;
pub mod propagation;

pub use config::{AblationMode, Activation, GbgcnConfig, ParallelTrainConfig};
pub use model::{EmbeddingAnalysis, GbgcnModel};
