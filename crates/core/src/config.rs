//! GBGCN hyper-parameters.

/// Which multi-view components are ablated (Table V).
///
/// The paper's ablation replaces the two views' embeddings with their
/// average at the output of every propagation layer, "without reducing
/// the capacity of the model".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AblationMode {
    /// The full GBGCN model.
    Full,
    /// Average the item embeddings across views ("Without Item Roles").
    NoItemRoles,
    /// Average the user embeddings across views ("Without User Roles").
    NoUserRoles,
    /// Average both ("Without Item and User Roles").
    NoRoles,
}

impl AblationMode {
    /// Whether user-view embeddings are averaged.
    pub fn ablate_users(self) -> bool {
        matches!(self, AblationMode::NoUserRoles | AblationMode::NoRoles)
    }

    /// Whether item-view embeddings are averaged.
    pub fn ablate_items(self) -> bool {
        matches!(self, AblationMode::NoItemRoles | AblationMode::NoRoles)
    }

    /// Display name matching Table V's rows.
    pub fn label(self) -> &'static str {
        match self {
            AblationMode::Full => "GBGCN",
            AblationMode::NoItemRoles => "Without Item Roles",
            AblationMode::NoUserRoles => "Without User Roles",
            AblationMode::NoRoles => "Without Item and User Roles",
        }
    }
}

/// Activation `σ(·)` of the cross-view FC transforms (the paper leaves
/// the concrete choice to the implementation; tanh is the default here —
/// zero-centered, so the Fig. 5 cosine analysis can show genuine
/// view divergence).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Hyperbolic tangent (default).
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// LeakyReLU with slope 0.2.
    LeakyRelu,
}

/// Knobs of the sharded-parallel trainer
/// ([`crate::GbgcnModel::fit_parallel`]).
///
/// `n_shards` is part of the numerical recipe: each mini-batch is split
/// into that many deterministic sub-batches whose gradients are reduced
/// in shard order before a single optimizer step. `n_threads` is pure
/// scheduling — any thread count produces bit-identical parameters for a
/// fixed shard count.
#[derive(Clone, Debug)]
pub struct ParallelTrainConfig {
    /// Gradient shards per mini-batch (≥ 1).
    pub n_shards: usize,
    /// Worker threads computing shard gradients (≥ 1; clamped to the
    /// shard count).
    pub n_threads: usize,
    /// Publish a snapshot to the serving handle every this many
    /// fine-tuning epochs (0 = only once, after training finishes).
    pub refresh_every: usize,
}

impl Default for ParallelTrainConfig {
    /// Four shards (a fixed constant — shard count is part of the
    /// numerical recipe, so it must not follow the host's core count or
    /// results would differ across machines) scheduled on every
    /// available core.
    fn default() -> Self {
        Self {
            n_shards: 4,
            n_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            refresh_every: 0,
        }
    }
}

impl ParallelTrainConfig {
    /// One shard on one thread: the exact serial recipe.
    pub fn serial() -> Self {
        Self {
            n_shards: 1,
            n_threads: 1,
            refresh_every: 0,
        }
    }

    /// `n` shards on `n` threads.
    pub fn with_threads(n: usize) -> Self {
        Self {
            n_shards: n.max(1),
            n_threads: n.max(1),
            refresh_every: 0,
        }
    }

    /// Same decomposition, different thread count — the configuration
    /// pair the determinism tests compare.
    pub fn scheduled_on(mut self, threads: usize) -> Self {
        self.n_threads = threads.max(1);
        self
    }

    /// Sets the snapshot refresh cadence (in fine-tuning epochs).
    pub fn refresh_every(mut self, epochs: usize) -> Self {
        self.refresh_every = epochs;
        self
    }
}

/// Full hyper-parameter set of GBGCN, mirroring Sec. IV-A.2.
#[derive(Clone, Debug)]
pub struct GbgcnConfig {
    /// Embedding size `d` (paper: 32).
    pub dim: usize,
    /// In-view propagation depth `L` (paper: 2).
    pub n_layers: usize,
    /// Role coefficient `α` of Eq. 9 (paper's best: 0.6).
    pub alpha: f32,
    /// Loss coefficient `β` of Eq. 10 (paper's best: 0.05).
    pub beta: f32,
    /// L2 regularization coefficient on batch raw embeddings.
    pub l2: f32,
    /// Social-regularization coefficient (the term of SocialMF [1] the
    /// paper adds "for better learning").
    pub social_reg: f32,
    /// Mini-batch size in behaviors (paper: 4096 on full Beibei).
    pub batch_size: usize,
    /// Negative items sampled per behavior (paper: 1).
    pub neg_ratio: usize,
    /// Adam pre-training epochs on the propagation-free model.
    pub pretrain_epochs: usize,
    /// Adam pre-training learning rate (paper searches 1e-2..1e-5).
    pub pretrain_lr: f32,
    /// SGD fine-tuning epochs on the full model.
    pub finetune_epochs: usize,
    /// SGD fine-tuning learning rate (paper searches {10, 3, 1, 0.3};
    /// scaled here along with the dataset).
    pub finetune_lr: f32,
    /// Cross-view activation.
    pub activation: Activation,
    /// Table V ablation switch.
    pub ablation: AblationMode,
    /// Extension ablation (DESIGN.md §6): use per-view raw embeddings
    /// instead of the paper's shared raw embeddings.
    pub separate_raw: bool,
    /// RNG seed.
    pub seed: u64,
    /// Log per-epoch losses to stderr.
    pub verbose: bool,
}

impl Default for GbgcnConfig {
    fn default() -> Self {
        Self {
            dim: 32,
            n_layers: 2,
            alpha: 0.6,
            beta: 0.05,
            l2: 1e-5,
            social_reg: 1e-4,
            batch_size: 1024,
            neg_ratio: 1,
            pretrain_epochs: 20,
            pretrain_lr: 5e-3,
            finetune_epochs: 20,
            finetune_lr: 0.3,
            activation: Activation::Tanh,
            ablation: AblationMode::Full,
            separate_raw: false,
            seed: 42,
            verbose: false,
        }
    }
}

impl GbgcnConfig {
    /// Config with a different role coefficient α.
    pub fn with_alpha(mut self, alpha: f32) -> Self {
        self.alpha = alpha;
        self
    }

    /// Config with a different loss coefficient β.
    pub fn with_beta(mut self, beta: f32) -> Self {
        self.beta = beta;
        self
    }

    /// Config with an ablation mode.
    pub fn with_ablation(mut self, ablation: AblationMode) -> Self {
        self.ablation = ablation;
        self
    }

    /// Config with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Small, fast configuration for unit tests.
    pub fn test_config() -> Self {
        Self {
            dim: 8,
            n_layers: 2,
            batch_size: 64,
            pretrain_epochs: 5,
            pretrain_lr: 0.01,
            finetune_epochs: 5,
            finetune_lr: 0.1,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_flags() {
        assert!(!AblationMode::Full.ablate_users());
        assert!(!AblationMode::Full.ablate_items());
        assert!(AblationMode::NoUserRoles.ablate_users());
        assert!(!AblationMode::NoUserRoles.ablate_items());
        assert!(AblationMode::NoItemRoles.ablate_items());
        assert!(AblationMode::NoRoles.ablate_users() && AblationMode::NoRoles.ablate_items());
    }

    #[test]
    fn labels_match_table_v() {
        assert_eq!(AblationMode::Full.label(), "GBGCN");
        assert_eq!(AblationMode::NoItemRoles.label(), "Without Item Roles");
        assert_eq!(AblationMode::NoUserRoles.label(), "Without User Roles");
        assert_eq!(AblationMode::NoRoles.label(), "Without Item and User Roles");
    }

    #[test]
    fn builder_methods_compose() {
        let cfg = GbgcnConfig::default()
            .with_alpha(0.3)
            .with_beta(0.2)
            .with_ablation(AblationMode::NoRoles)
            .with_seed(7);
        assert_eq!(cfg.alpha, 0.3);
        assert_eq!(cfg.beta, 0.2);
        assert_eq!(cfg.ablation, AblationMode::NoRoles);
        assert_eq!(cfg.seed, 7);
    }

    #[test]
    fn paper_defaults() {
        let cfg = GbgcnConfig::default();
        assert_eq!(cfg.dim, 32);
        assert_eq!(cfg.n_layers, 2);
        assert!((cfg.alpha - 0.6).abs() < 1e-6);
        assert!((cfg.beta - 0.05).abs() < 1e-6);
    }
}
