//! gb-lint holds itself to its own rules: every module of the crate
//! must lint clean under its real workspace-relative path, and the
//! walker must keep the deliberately-violating fixtures out of
//! workspace scans.

use gb_lint::{lint_source, workspace_files};

#[test]
fn gb_lint_lints_itself_clean() {
    let src_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut checked = 0usize;
    for entry in std::fs::read_dir(&src_dir).expect("read crates/lint/src") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let name = path
            .file_name()
            .expect("file name")
            .to_string_lossy()
            .into_owned();
        let src = std::fs::read_to_string(&path).expect("read module source");
        let findings = lint_source(&format!("crates/lint/src/{name}"), &src);
        assert!(findings.is_empty(), "{name} has findings: {findings:?}");
        checked += 1;
    }
    assert!(checked >= 5, "expected the gb-lint modules, saw {checked}");
}

#[test]
fn workspace_walker_skips_the_fixture_directory() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let files = workspace_files(root).expect("walk workspace");
    assert!(
        files.iter().any(|(rel, _)| rel == "crates/lint/src/lib.rs"),
        "walker missed the lint crate itself"
    );
    assert!(
        files.iter().all(|(rel, _)| !rel.contains("/fixtures/")),
        "walker descended into fixtures/"
    );
}
