//! Per-rule fixture tests: each rule has a must-fire fixture (exact
//! `file:line` assertions) and a must-not-fire fixture exercising the
//! lexer's blind spots — strings, comments, raw strings, `#[cfg(test)]`
//! modules, and suppressed lines.
//!
//! The fixtures live in `crates/lint/fixtures/`, a directory the
//! workspace walker skips, and are linted here through [`lint_source`]
//! under virtual paths chosen to land in each rule's scope.

use gb_lint::{lint_source, Finding};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lines of `findings` carrying `rule`, in report order.
fn spans(rule: &str, findings: &[Finding]) -> Vec<usize> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

#[test]
fn unsafe_needs_safety_fires_at_exact_spans() {
    let f = lint_source(
        "crates/tensor/src/unsafe_fixture.rs",
        &fixture("unsafe_fire.rs"),
    );
    assert_eq!(spans("unsafe-needs-safety", &f), vec![4, 11]);
    assert_eq!(f.len(), 2, "unexpected extra findings: {f:?}");
}

#[test]
fn unsafe_needs_safety_accepts_documented_and_quoted() {
    let f = lint_source(
        "crates/tensor/src/unsafe_fixture.rs",
        &fixture("unsafe_clean.rs"),
    );
    assert!(f.is_empty(), "clean fixture flagged: {f:?}");
}

#[test]
fn panic_needs_invariant_fires_at_exact_spans() {
    let f = lint_source(
        "crates/serve/src/panic_fixture.rs",
        &fixture("panic_fire.rs"),
    );
    assert_eq!(spans("panic-needs-invariant", &f), vec![4, 8, 14]);
    assert_eq!(f.len(), 3, "unexpected extra findings: {f:?}");
}

#[test]
fn panic_needs_invariant_accepts_annotated_suppressed_and_tests() {
    let f = lint_source(
        "crates/serve/src/panic_fixture.rs",
        &fixture("panic_clean.rs"),
    );
    assert!(f.is_empty(), "clean fixture flagged: {f:?}");
}

#[test]
fn panic_needs_invariant_is_scoped_to_the_request_paths() {
    // The same bare panics outside the serving/training scope are not
    // this rule's business.
    let f = lint_source(
        "crates/eval/src/panic_fixture.rs",
        &fixture("panic_fire.rs"),
    );
    assert!(f.is_empty(), "out-of-scope file flagged: {f:?}");
}

#[test]
fn no_bare_locks_fires_at_exact_spans() {
    let f = lint_source(
        "crates/autograd/src/locks_fixture.rs",
        &fixture("locks_fire.rs"),
    );
    assert_eq!(spans("no-bare-locks", &f), vec![6, 10, 14]);
    assert_eq!(f.len(), 3, "unexpected extra findings: {f:?}");
}

#[test]
fn no_bare_locks_accepts_recover_helpers_io_writes_and_tests() {
    let f = lint_source(
        "crates/autograd/src/locks_fixture.rs",
        &fixture("locks_clean.rs"),
    );
    assert!(f.is_empty(), "clean fixture flagged: {f:?}");
}

#[test]
fn float_total_order_fires_at_exact_spans() {
    let f = lint_source(
        "crates/eval/src/float_fixture.rs",
        &fixture("float_fire.rs"),
    );
    assert_eq!(spans("float-total-order", &f), vec![4, 8]);
    assert_eq!(f.len(), 2, "unexpected extra findings: {f:?}");
}

#[test]
fn float_total_order_accepts_total_cmp_and_quoted() {
    let f = lint_source(
        "crates/eval/src/float_fixture.rs",
        &fixture("float_clean.rs"),
    );
    assert!(f.is_empty(), "clean fixture flagged: {f:?}");
}

#[test]
fn no_hash_iteration_fires_once_per_line() {
    // Two mentions per line (annotation + constructor) collapse to one
    // finding; the `use` declaration is not flagged at all.
    let f = lint_source(
        "crates/tensor/src/hash_fixture.rs",
        &fixture("hash_fire.rs"),
    );
    assert_eq!(spans("no-hash-iteration", &f), vec![6, 7]);
    assert_eq!(f.len(), 2, "unexpected extra findings: {f:?}");
}

#[test]
fn no_hash_iteration_accepts_btree_suppressions_and_tests() {
    let f = lint_source(
        "crates/tensor/src/hash_fixture.rs",
        &fixture("hash_clean.rs"),
    );
    assert!(f.is_empty(), "clean fixture flagged: {f:?}");
}

#[test]
fn no_hash_iteration_is_scoped_to_determinism_critical_modules() {
    let f = lint_source("crates/data/src/hash_fixture.rs", &fixture("hash_fire.rs"));
    assert!(f.is_empty(), "out-of-scope file flagged: {f:?}");
}

#[test]
fn no_wallclock_in_kernels_fires_at_exact_spans() {
    let f = lint_source(
        "crates/tensor/src/wall_fixture.rs",
        &fixture("wallclock_fire.rs"),
    );
    assert_eq!(spans("no-wallclock-in-kernels", &f), vec![4, 9, 10]);
    assert_eq!(f.len(), 3, "unexpected extra findings: {f:?}");
}

#[test]
fn no_wallclock_in_kernels_accepts_comments_strings_and_tests() {
    let f = lint_source(
        "crates/tensor/src/wall_fixture.rs",
        &fixture("wallclock_clean.rs"),
    );
    assert!(f.is_empty(), "clean fixture flagged: {f:?}");
}

#[test]
fn bad_suppressions_are_findings_and_do_not_suppress() {
    let f = lint_source(
        "crates/serve/src/suppression_fixture.rs",
        &fixture("bad_suppression.rs"),
    );
    assert_eq!(spans("bad-suppression", &f), vec![6, 11]);
    // The reasonless allow on line 6 must not shield the panic it
    // precedes.
    assert_eq!(spans("panic-needs-invariant", &f), vec![7]);
    assert_eq!(f.len(), 3, "unexpected extra findings: {f:?}");
}
