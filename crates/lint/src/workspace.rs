//! Workspace walking, the committed baseline, and report formatting.

use crate::rules::{lint_source, Finding};
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into. `fixtures` holds this crate's
/// deliberately-violating rule fixtures; `vendor` is third-party
/// stand-in code that does not follow workspace conventions.
const SKIP_DIRS: &[&str] = &["vendor", "target", "fixtures", ".git", ".github"];

/// Top-level entries of the workspace that contain first-party Rust.
const SCAN_ROOTS: &[&str] = &["src", "crates", "examples", "tests"];

/// Collects every first-party `.rs` file under `root`, as
/// `(relative_path, absolute_path)` with `/`-separated relative paths,
/// sorted for deterministic reports.
pub fn workspace_files(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    for top in SCAN_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, top, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, rel: &str, out: &mut Vec<(String, PathBuf)>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let path = entry.path();
        let rel_child = format!("{rel}/{name}");
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                walk(&path, &rel_child, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push((rel_child, path));
        }
    }
    Ok(())
}

/// Lints every workspace file under `root`, returning unsuppressed
/// findings (baseline not yet applied).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for (rel, abs) in workspace_files(root)? {
        let src = std::fs::read_to_string(&abs)?;
        findings.extend(lint_source(&rel, &src));
    }
    Ok(findings)
}

/// One grandfathered allowance from the committed baseline file.
///
/// Keyed on `(rule, file, count)` rather than line numbers so unrelated
/// edits to a file don't churn the baseline: up to `count` findings of
/// `rule` in `file` (lowest lines first) are tolerated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineEntry {
    pub rule: String,
    pub file: String,
    pub count: usize,
    pub reason: String,
}

/// Parses the baseline format: one `rule<TAB>file<TAB>count<TAB>reason`
/// entry per line; `#` comments and blank lines ignored. The reason is
/// mandatory — a baseline without a justification is just a muted bug.
pub fn parse_baseline(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.splitn(4, '\t').collect();
        if parts.len() != 4 {
            return Err(format!(
                "baseline line {}: expected `rule<TAB>file<TAB>count<TAB>reason`, got {raw:?}",
                idx + 1
            ));
        }
        let count: usize = parts[2]
            .parse()
            .map_err(|_| format!("baseline line {}: bad count {:?}", idx + 1, parts[2]))?;
        if parts[3].trim().is_empty() {
            return Err(format!(
                "baseline line {}: the justification is mandatory",
                idx + 1
            ));
        }
        out.push(BaselineEntry {
            rule: parts[0].to_string(),
            file: parts[1].to_string(),
            count,
            reason: parts[3].trim().to_string(),
        });
    }
    Ok(out)
}

/// Splits `findings` into `(unbaselined, n_baselined, stale_entries)`.
/// Stale entries matched fewer findings than they grandfather — a sign
/// the underlying debt was paid and the entry should be deleted.
pub fn apply_baseline(
    findings: Vec<Finding>,
    baseline: &[BaselineEntry],
) -> (Vec<Finding>, usize, Vec<BaselineEntry>) {
    let mut budget: Vec<usize> = baseline.iter().map(|e| e.count).collect();
    let mut kept = Vec::new();
    let mut n_baselined = 0usize;
    for f in findings {
        let slot = baseline
            .iter()
            .position(|e| e.rule == f.rule && e.file == f.file);
        match slot {
            Some(s) if budget[s] > 0 => {
                budget[s] -= 1;
                n_baselined += 1;
            }
            _ => kept.push(f),
        }
    }
    let stale = baseline
        .iter()
        .zip(&budget)
        .filter(|(_, &left)| left > 0)
        .map(|(e, _)| e.clone())
        .collect();
    (kept, n_baselined, stale)
}

/// Minimal JSON string escaping (the report is flat strings/numbers).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The `--format json` report: findings with `file:line` spans plus the
/// baseline bookkeeping, machine-stable for the CI gate.
pub fn render_json(findings: &[Finding], n_baselined: usize, stale: &[BaselineEntry]) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{}\n",
            json_escape(f.rule),
            json_escape(&f.file),
            f.line,
            json_escape(&f.message),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"n_findings\": {},\n", findings.len()));
    out.push_str(&format!("  \"n_baselined\": {n_baselined},\n"));
    out.push_str("  \"stale_baseline\": [\n");
    for (i, e) in stale.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"count\": {}}}{}\n",
            json_escape(&e.rule),
            json_escape(&e.file),
            e.count,
            if i + 1 < stale.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The human report: `file:line: [rule] message` lines plus a summary.
pub fn render_human(findings: &[Finding], n_baselined: usize, stale: &[BaselineEntry]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.file, f.line, f.rule, f.message
        ));
    }
    for e in stale {
        out.push_str(&format!(
            "warning: stale baseline entry ({} in {}, {} grandfathered) — \
             the debt was paid, delete the entry\n",
            e.rule, e.file, e.count
        ));
    }
    out.push_str(&format!(
        "{} finding(s), {} baselined\n",
        findings.len(),
        n_baselined
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &'static str, file: &str, line: usize) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            message: "m".to_string(),
        }
    }

    #[test]
    fn baseline_grandfathers_up_to_count_lowest_lines_first() {
        let baseline = parse_baseline(
            "# comment\n\
             float-total-order\tcrates/x.rs\t2\tlegacy comparator, tracked in ROADMAP\n",
        )
        .unwrap();
        let findings = vec![
            f("float-total-order", "crates/x.rs", 3),
            f("float-total-order", "crates/x.rs", 9),
            f("float-total-order", "crates/x.rs", 20),
            f("float-total-order", "crates/y.rs", 1),
        ];
        let (kept, n, stale) = apply_baseline(findings, &baseline);
        assert_eq!(n, 2);
        assert!(stale.is_empty());
        assert_eq!(kept.len(), 2);
        assert_eq!((kept[0].file.as_str(), kept[0].line), ("crates/x.rs", 20));
        assert_eq!(kept[1].file.as_str(), "crates/y.rs");
    }

    #[test]
    fn unused_baseline_entries_are_reported_stale() {
        let baseline = parse_baseline("no-bare-locks\tcrates/x.rs\t1\tpaid off\n").unwrap();
        let (kept, n, stale) = apply_baseline(vec![], &baseline);
        assert!(kept.is_empty());
        assert_eq!(n, 0);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].rule, "no-bare-locks");
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        assert!(parse_baseline("rule only\n").is_err());
        assert!(parse_baseline("r\tf\tnotanumber\treason\n").is_err());
        assert!(parse_baseline("r\tf\t1\t \n").is_err(), "empty reason");
        assert!(parse_baseline("# all comments\n\n").unwrap().is_empty());
    }

    #[test]
    fn json_report_is_well_formed_and_escaped() {
        let findings = vec![f("float-total-order", "a\"b.rs", 7)];
        let json = render_json(&findings, 1, &[]);
        assert!(json.contains("\"file\": \"a\\\"b.rs\""));
        assert!(json.contains("\"n_findings\": 1"));
        assert!(json.contains("\"n_baselined\": 1"));
    }
}
