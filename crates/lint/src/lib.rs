//! `gb-lint` — the workspace invariant checker.
//!
//! A self-contained, offline static-analysis pass that mechanically
//! enforces the hand-maintained contracts this reproduction's
//! determinism, safety, and fault-tolerance tiers rest on. The
//! vendored-only container rules out `syn`, so the pipeline is a
//! hand-rolled lexer ([`lexer`]) feeding a token-pattern rule engine
//! ([`rules`]), plus workspace walking / baseline / reporting
//! ([`workspace`]).
//!
//! The rules (see `rules::ALL_RULES` and the README catalogue):
//!
//! * `unsafe-needs-safety` — every `unsafe` carries a `// SAFETY:`
//!   comment or `# Safety` doc section.
//! * `panic-needs-invariant` — `unwrap`/`expect`/panic macros on the
//!   request/training path carry an `// invariant:` annotation.
//! * `no-bare-locks` — `.lock()`/`.read()`/`.write()` go through the
//!   poison-recovering `*_recover` helpers.
//! * `float-total-order` — `partial_cmp` is banned; `total_cmp` ranks
//!   floats under the strict total order the serving tier relies on.
//! * `no-hash-iteration` — hash containers are banned in
//!   determinism-critical numeric modules.
//! * `no-wallclock-in-kernels` — no `Instant`/`SystemTime` in
//!   kernel/scoring modules.
//!
//! Findings are suppressed inline with a justified `lint:allow`
//! comment (`rule` in parens, then a mandatory `: reason`), e.g.
//! `lint:allow(no-hash-iteration): lookup-only map, never iterated`,
//! or grandfathered in the committed
//! `lint-baseline.txt`. The CLI (`cargo run -p gb-lint`) exits nonzero
//! on any unsuppressed, unbaselined finding — CI runs it as a hard
//! gate, outside the tier-1 build/test jobs.

pub mod lexer;
pub mod rules;
pub mod workspace;

pub use rules::{lint_source, Finding};
pub use workspace::{
    apply_baseline, lint_workspace, parse_baseline, render_human, render_json, workspace_files,
    BaselineEntry,
};
