//! The rule engine: project-specific invariant checks over the token
//! stream, inline suppressions, and per-rule path scoping.
//!
//! Every rule guards a contract the workspace's determinism, safety, or
//! fault-tolerance story depends on (see the README's "Static analysis
//! & invariants" section for the catalogue). Rules are mechanical token
//! patterns — no type information — so each one is scoped to the
//! modules where its pattern is unambiguous enough to enforce, and
//! every finding can be suppressed inline with a justified `lint:allow`
//! comment naming the rule in parens followed by `: <reason>`.

use crate::lexer::{lex, Token, TokenKind};

/// One reported violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (kebab-case, stable — baseline files key on it).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// Human-readable description of the violation and the fix.
    pub message: String,
}

pub const UNSAFE_NEEDS_SAFETY: &str = "unsafe-needs-safety";
pub const PANIC_NEEDS_INVARIANT: &str = "panic-needs-invariant";
pub const NO_BARE_LOCKS: &str = "no-bare-locks";
pub const FLOAT_TOTAL_ORDER: &str = "float-total-order";
pub const NO_HASH_ITERATION: &str = "no-hash-iteration";
pub const NO_WALLCLOCK_IN_KERNELS: &str = "no-wallclock-in-kernels";
/// Meta-rule: a malformed `lint:allow` (missing justification or
/// unknown rule name) is itself a finding — suppressions without a
/// reason are how grandfathered mess accretes.
pub const BAD_SUPPRESSION: &str = "bad-suppression";

/// Every real (suppressible) rule.
pub const ALL_RULES: &[&str] = &[
    UNSAFE_NEEDS_SAFETY,
    PANIC_NEEDS_INVARIANT,
    NO_BARE_LOCKS,
    FLOAT_TOTAL_ORDER,
    NO_HASH_ITERATION,
    NO_WALLCLOCK_IN_KERNELS,
];

/// Path prefixes a rule is enforced under (forward-slash relative
/// paths). An empty list means "the whole workspace".
///
/// The scopes mirror the architecture:
/// * `unsafe-needs-safety` and `float-total-order` are global — an
///   undocumented `unsafe` or a NaN-partial comparator is wrong
///   anywhere, test code included.
/// * `panic-needs-invariant` covers the request path (`gb-serve`) and
///   the training hot path that serves it (`SnapshotHandle`, the shard
///   executor, snapshot construction, the boxed-op tape, and the GBGCN
///   trainer) — the modules where an unannotated panic takes live
///   traffic or a training run down.
/// * `no-bare-locks` covers every crate that adopted the PR 8
///   poison-recovery convention.
/// * `no-hash-iteration` and `no-wallclock-in-kernels` cover the
///   determinism-critical numeric modules, where hash iteration order
///   or wall-clock reads would break bitwise reproducibility.
pub fn rule_scope(rule: &str) -> &'static [&'static str] {
    match rule {
        UNSAFE_NEEDS_SAFETY | FLOAT_TOTAL_ORDER => &[],
        PANIC_NEEDS_INVARIANT => &[
            "crates/serve/src/",
            "crates/models/src/handle.rs",
            "crates/models/src/snapshot.rs",
            "crates/autograd/src/parallel.rs",
            "crates/autograd/src/tape.rs",
            "crates/core/src/model.rs",
        ],
        NO_BARE_LOCKS => &[
            "crates/serve/src/",
            "crates/models/src/",
            "crates/autograd/src/",
        ],
        NO_HASH_ITERATION => &[
            "crates/tensor/src/",
            "crates/core/src/propagation.rs",
            "crates/serve/src/ivf.rs",
            "crates/serve/src/topk.rs",
            "crates/serve/src/engine.rs",
            "crates/autograd/src/tape.rs",
            "crates/models/src/snapshot.rs",
        ],
        NO_WALLCLOCK_IN_KERNELS => &[
            "crates/tensor/src/",
            "crates/core/src/propagation.rs",
            "crates/serve/src/ivf.rs",
            "crates/serve/src/topk.rs",
            "crates/serve/src/engine.rs",
            "crates/serve/src/cache.rs",
            "crates/autograd/src/tape.rs",
        ],
        _ => &[],
    }
}

fn in_scope(rule: &str, path: &str) -> bool {
    let scope = rule_scope(rule);
    scope.is_empty() || scope.iter().any(|p| path == *p || path.starts_with(p))
}

/// Per-line facts used by the justification scans.
struct LineInfo {
    /// The line carries at least one non-comment, non-attribute token.
    has_code: bool,
    /// The line carries attribute tokens.
    has_attr: bool,
    /// Concatenated text of every comment token covering the line.
    comments: String,
    /// Text of the last non-comment token on the line (statement-end
    /// detection for the upward justification walk).
    last_code: String,
}

struct FileMap {
    tokens: Vec<Token>,
    lines: Vec<LineInfo>,
}

fn build_map(src: &str) -> FileMap {
    let tokens = lex(src);
    let n_lines = src.lines().count().max(1);
    let mut lines: Vec<LineInfo> = (0..n_lines)
        .map(|_| LineInfo {
            has_code: false,
            has_attr: false,
            comments: String::new(),
            last_code: String::new(),
        })
        .collect();
    for t in &tokens {
        for l in t.line..=t.end_line.min(n_lines) {
            let info = &mut lines[l - 1];
            if t.is_comment() {
                info.comments.push_str(&t.text);
                info.comments.push('\n');
            } else if t.in_attr {
                info.has_attr = true;
            } else {
                info.has_code = true;
                info.last_code = t.text.clone();
            }
        }
    }
    FileMap { tokens, lines }
}

impl FileMap {
    /// True when a comment containing one of `markers` covers `line`
    /// itself, a line of the same (possibly multi-line) statement, or
    /// the contiguous comment/attribute block directly above the
    /// statement. Blank lines and earlier statements break the search.
    fn justified(&self, line: usize, markers: &[&str]) -> bool {
        let hit = |l: usize| {
            self.lines
                .get(l - 1)
                .is_some_and(|i| markers.iter().any(|m| i.comments.contains(m)))
        };
        if hit(line) {
            return true;
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            if hit(l) {
                return true;
            }
            let info = &self.lines[l - 1];
            if info.has_code {
                // Same statement if the line does not end one; a
                // terminator means we reached the previous statement
                // without finding a marker.
                let ended = info
                    .last_code
                    .chars()
                    .last()
                    .is_some_and(|c| matches!(c, ';' | '{' | '}' | ','));
                if ended {
                    return false;
                }
            } else if !info.has_attr && info.comments.is_empty() {
                return false; // blank line breaks the association
            }
        }
        false
    }
}

/// An inline suppression parsed from a comment: `lint:allow` with the
/// rule name in parens and a mandatory `: reason` tail.
struct Allow {
    rule: String,
    /// Line the comment ends on: the allow covers findings on this line
    /// (trailing comment) and the next (comment-above form).
    line: usize,
    has_reason: bool,
    known_rule: bool,
}

/// Extracts every justified-suppression comment from the token stream.
fn collect_allows(tokens: &[Token]) -> Vec<Allow> {
    let mut out = Vec::new();
    for t in tokens.iter().filter(|t| t.is_comment()) {
        let text = &t.text;
        let mut from = 0usize;
        while let Some(p) = text[from..].find("lint:allow(") {
            let start = from + p + "lint:allow(".len();
            let Some(close) = text[start..].find(')') else {
                break;
            };
            let rule = text[start..start + close].trim().to_string();
            let rest = &text[start + close + 1..];
            // Justification: a `:` followed by non-empty text (strip a
            // block comment's closing delimiter before judging).
            let rest_line = rest.lines().next().unwrap_or("");
            let rest_line = rest_line.trim_end_matches("*/").trim();
            let has_reason = rest_line
                .strip_prefix(':')
                .is_some_and(|r| !r.trim().is_empty());
            out.push(Allow {
                known_rule: ALL_RULES.contains(&rule.as_str()),
                rule,
                line: t.end_line,
                has_reason,
            });
            from = start + close + 1;
        }
    }
    out
}

/// Lints one file's source. `rel_path` decides rule scoping (and
/// whether the whole file is test code — `tests/` and `benches/`
/// directories). Returns unsuppressed findings, sorted by line.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let map = build_map(src);
    let file_is_test = rel_path.split('/').any(|c| c == "tests" || c == "benches");
    let mut findings: Vec<Finding> = Vec::new();
    let mut push = |rule: &'static str, line: usize, message: String| {
        findings.push(Finding {
            rule,
            file: rel_path.to_string(),
            line,
            message,
        });
    };

    // Non-comment tokens, for sequence patterns.
    let sig: Vec<&Token> = map.tokens.iter().filter(|t| !t.is_comment()).collect();
    // Token ranges of `use` declarations (no-hash-iteration skips the
    // import — the construction/iteration site is where the allow
    // belongs, not every mention).
    let mut in_use = vec![false; sig.len()];
    {
        let mut inside = false;
        for (i, t) in sig.iter().enumerate() {
            if !inside
                && t.kind == TokenKind::Ident
                && t.text == "use"
                && (i == 0 || matches!(sig[i - 1].text.as_str(), ";" | "{" | "}" | "pub"))
            {
                inside = true;
            }
            in_use[i] = inside;
            if inside && t.kind == TokenKind::Punct && t.text == ";" {
                inside = false;
            }
        }
    }

    // Dedup consecutive hash-container mentions on one line (e.g.
    // `let m: HashMap<..> = HashMap::new()`): one finding per line.
    let mut last_hash_line = 0usize;
    for (i, t) in sig.iter().enumerate() {
        let test_code = file_is_test || t.in_test;
        let prev = |k: usize| i.checked_sub(k).map(|j| sig[j]);
        let next = |k: usize| sig.get(i + k).copied();

        // unsafe-needs-safety: every `unsafe` keyword (block, fn, impl,
        // trait) needs a `// SAFETY:` comment or a `# Safety` doc
        // section on the preceding comment block. Applies in test code
        // too: a test poking raw pointers owes the same argument.
        if in_scope(UNSAFE_NEEDS_SAFETY, rel_path)
            && t.kind == TokenKind::Ident
            && t.text == "unsafe"
            && !t.in_attr
            && !map.justified(t.line, &["SAFETY:", "# Safety"])
        {
            push(
                UNSAFE_NEEDS_SAFETY,
                t.line,
                "`unsafe` without a `// SAFETY:` comment (or `# Safety` doc section) \
                 stating why the contract holds"
                    .to_string(),
            );
        }

        // panic-needs-invariant: request/training-path panics must
        // carry the PR 8 `// invariant:` annotation (or be converted to
        // a typed error). Test code is exempt.
        if in_scope(PANIC_NEEDS_INVARIANT, rel_path) && !test_code && !t.in_attr {
            let is_method_panic = t.kind == TokenKind::Ident
                && (t.text == "unwrap" || t.text == "expect")
                && prev(1).is_some_and(|p| p.text == ".")
                && next(1).is_some_and(|n| n.text == "(");
            let is_macro_panic = t.kind == TokenKind::Ident
                && matches!(
                    t.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                )
                && next(1).is_some_and(|n| n.text == "!");
            if (is_method_panic || is_macro_panic) && !map.justified(t.line, &["invariant:"]) {
                push(
                    PANIC_NEEDS_INVARIANT,
                    t.line,
                    format!(
                        "`{}` on a request/training path without an `// invariant:` comment \
                         stating why it cannot fire (or convert to a typed error)",
                        t.text
                    ),
                );
            }
        }

        // no-bare-locks: `.lock()` / `.read()` / `.write()` with empty
        // argument lists (the `Mutex`/`RwLock` signatures — `io::Read`
        // and `io::Write` calls take arguments) must go through the
        // poison-recovering helpers. Test code is exempt: tests poison
        // locks on purpose.
        if in_scope(NO_BARE_LOCKS, rel_path)
            && !test_code
            && t.kind == TokenKind::Ident
            && matches!(t.text.as_str(), "lock" | "read" | "write")
            && prev(1).is_some_and(|p| p.text == ".")
            && next(1).is_some_and(|n| n.text == "(")
            && next(2).is_some_and(|n| n.text == ")")
        {
            push(
                NO_BARE_LOCKS,
                t.line,
                format!(
                    "bare `.{}()` — route through the poison-recovering \
                     `{}_recover` helper (or justify why poisoning must propagate)",
                    t.text, t.text
                ),
            );
        }

        // float-total-order: `partial_cmp` is banned workspace-wide —
        // on the f32/f64 hot paths it either panics on NaN or silently
        // drops elements from sorts; `total_cmp` is bit-identical on
        // the finite inputs these paths see and total on the rest.
        if in_scope(FLOAT_TOTAL_ORDER, rel_path)
            && t.kind == TokenKind::Ident
            && t.text == "partial_cmp"
        {
            push(
                FLOAT_TOTAL_ORDER,
                t.line,
                "`partial_cmp` in a float comparator — use `total_cmp` \
                 (total over NaN, bit-identical on finite inputs)"
                    .to_string(),
            );
        }

        // no-hash-iteration: hash containers are banned by default in
        // determinism-critical numeric modules — iteration order is
        // randomized across processes, so any iteration would break
        // bit-identity. Lookup-only uses carry a justified allow; `use`
        // declarations are skipped (the construction site is flagged).
        if in_scope(NO_HASH_ITERATION, rel_path)
            && !test_code
            && !in_use[i]
            && t.kind == TokenKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet")
            && last_hash_line != t.line
        {
            last_hash_line = t.line;
            push(
                NO_HASH_ITERATION,
                t.line,
                format!(
                    "`{}` in a determinism-critical module — iteration order would \
                     break bit-identity; use a Vec/BTreeMap or justify a lookup-only use",
                    t.text
                ),
            );
        }

        // no-wallclock-in-kernels: kernel/scoring modules must stay
        // pure functions of their inputs — no `Instant::now` /
        // `SystemTime` reads (timing belongs to the service layer and
        // `gb-eval`).
        if in_scope(NO_WALLCLOCK_IN_KERNELS, rel_path)
            && !test_code
            && t.kind == TokenKind::Ident
            && (t.text == "Instant" || t.text == "SystemTime")
        {
            push(
                NO_WALLCLOCK_IN_KERNELS,
                t.line,
                format!(
                    "`{}` in a kernel/scoring module — wall-clock reads make the \
                     hot path impure; time at the service/eval layer instead",
                    t.text
                ),
            );
        }
    }

    // Suppressions.
    let allows = collect_allows(&map.tokens);
    let mut kept: Vec<Finding> = Vec::new();
    for f in findings {
        let suppressed = allows.iter().any(|a| {
            a.known_rule
                && a.has_reason
                && a.rule == f.rule
                && (a.line == f.line || a.line + 1 == f.line)
        });
        if !suppressed {
            kept.push(f);
        }
    }
    for a in &allows {
        if !a.has_reason {
            kept.push(Finding {
                rule: BAD_SUPPRESSION,
                file: rel_path.to_string(),
                line: a.line,
                message: format!(
                    "`lint:allow({})` without a justification — write \
                     `lint:allow({}): <why this is sound>`",
                    a.rule, a.rule
                ),
            });
        } else if !a.known_rule {
            kept.push(Finding {
                rule: BAD_SUPPRESSION,
                file: rel_path.to_string(),
                line: a.line,
                message: format!("`lint:allow({})` names an unknown rule", a.rule),
            });
        }
    }
    kept.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(b.rule)));
    kept
}
