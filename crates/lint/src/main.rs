//! CLI for the workspace invariant checker.
//!
//! ```text
//! cargo run -p gb-lint [--release] -- [--root DIR] [--baseline FILE] [--format human|json]
//! ```
//!
//! Exit codes: 0 clean (every finding fixed, suppressed with a
//! justified `lint:allow`, or baselined), 1 unsuppressed findings,
//! 2 usage/IO error.

use gb_lint::{apply_baseline, lint_workspace, parse_baseline, render_human, render_json};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    baseline: Option<PathBuf>,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut root = PathBuf::from(".");
    let mut baseline = None;
    let mut json = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => root = PathBuf::from(it.next().ok_or("--root needs a value")?),
            "--baseline" => {
                baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a value")?))
            }
            "--format" => match it.next().as_deref() {
                Some("human") => json = false,
                Some("json") => json = true,
                other => return Err(format!("--format must be human or json, got {other:?}")),
            },
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Args {
        root,
        baseline,
        json,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("gb-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| args.root.join("lint-baseline.txt"));
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match parse_baseline(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("gb-lint: {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        },
        // A missing baseline file just means "nothing grandfathered".
        Err(_) => Vec::new(),
    };
    let findings = match lint_workspace(&args.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("gb-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let (kept, n_baselined, stale) = apply_baseline(findings, &baseline);
    let report = if args.json {
        render_json(&kept, n_baselined, &stale)
    } else {
        render_human(&kept, n_baselined, &stale)
    };
    print!("{report}");
    if kept.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
